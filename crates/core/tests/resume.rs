//! Session-resumption tickets: reconnecting after a server restart with
//! one round trip instead of the full Figure-3 handshake.
//!
//! Invariants, per ISSUE:
//!
//! 1. a post-restart reconnect with a banked ticket is a *hit*: one wire
//!    round trip, no Rabin decryption, and the mount keeps working with
//!    a fresh session;
//! 2. round-trip accounting proves the saving — the resumed reconnect
//!    costs exactly one RT less than the identical workload with
//!    resumption disabled;
//! 3. tickets rotate (single-use) and survive repeated restarts;
//! 4. an expired ticket is rejected and the client falls back to the
//!    full handshake, loudly (counter) but successfully;
//! 5. resumption composes with the negotiated ChaCha20-Poly1305 suite.

use std::sync::Arc;
use std::sync::OnceLock;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_proto::channel::SuiteId;
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_sim::{NetParams, SimClock, SimTime, Transport};
use sfs_telemetry::Telemetry;
use sfs_vfs::{Credentials, Vfs};

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xA5A5);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xB6B6);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn client_ephemeral() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xE9E9);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xC7C7);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

const ALICE_UID: u32 = 1000;

struct World {
    clock: SimClock,
    server: Arc<SfsServer>,
    client: Arc<SfsClient>,
    path: SelfCertifyingPath,
}

fn build_world(entropy: &[u8]) -> World {
    let clock = SimClock::new();
    let vfs = Vfs::new(7, clock.clone());
    let root_creds = Credentials::root();
    let home = vfs.mkdir_p("/home/alice").unwrap();
    vfs.setattr(
        &root_creds,
        home,
        sfs_vfs::SetAttr {
            uid: Some(ALICE_UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();
    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: ALICE_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("sfs.lcs.mit.edu"),
        server_key(),
        vfs,
        auth,
        SfsPrg::from_entropy(b"resume-server"),
    );
    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    net.register(server.clone());
    let client = SfsClient::with_ephemeral(net, entropy, client_ephemeral());
    client.install_agent_key(ALICE_UID, user_key());
    let path = server.path().clone();
    World {
        clock,
        server,
        client,
        path,
    }
}

/// Mount, restart the server, write through the dead session. Returns
/// the number of wire round trips the whole sequence took.
fn restart_and_write(w: &World) -> u64 {
    let file = format!("{}/home/alice/notes", w.path.full_path());
    w.client.write_file(ALICE_UID, &file, b"before").unwrap();
    let (mount, _, _) = w.client.resolve(ALICE_UID, &file).unwrap();
    let before = mount.round_trips();
    w.server.crash_restart();
    w.client.write_file(ALICE_UID, &file, b"after").unwrap();
    assert_eq!(w.client.read_file(ALICE_UID, &file).unwrap(), b"after");
    assert!(mount.reconnects() >= 1, "restart must force a reconnect");
    mount.round_trips() - before
}

#[test]
fn post_restart_reconnect_resumes_with_a_ticket() {
    let w = build_world(b"resume-basic");
    let file = format!("{}/home/alice/notes", w.path.full_path());
    w.client.write_file(ALICE_UID, &file, b"v1").unwrap();
    let (mount, _, _) = w.client.resolve(ALICE_UID, &file).unwrap();
    let session_before = mount.session_id();

    w.server.crash_restart();
    w.client.write_file(ALICE_UID, &file, b"v2").unwrap();

    let (hits, misses, rejected) = w.client.resume_stats();
    assert_eq!(
        (hits, misses, rejected),
        (1, 0, 0),
        "the reconnect must be a ticket-resume hit"
    );
    assert_ne!(
        mount.session_id(),
        session_before,
        "a resumed session is a fresh session"
    );
    assert_eq!(w.client.read_file(ALICE_UID, &file).unwrap(), b"v2");
}

#[test]
fn resume_saves_exactly_one_round_trip_over_full_rekey() {
    // Two identical worlds, one workload; the only difference is the
    // resumption switch. Full keyneg spends two round trips (hello +
    // client-keys) where the ticket path spends one.
    let resumed = build_world(b"rt-accounting");
    let control = build_world(b"rt-accounting");
    control.client.set_resumption(false);

    let rt_resumed = restart_and_write(&resumed);
    let rt_control = restart_and_write(&control);

    assert_eq!(resumed.client.resume_stats().0, 1);
    assert_eq!(
        control.client.resume_stats(),
        (0, 0, 0),
        "the control arm must not touch the ticket machinery"
    );
    assert_eq!(
        rt_resumed,
        rt_control - 1,
        "ticket resume must replace the 2-RT handshake with 1 RT"
    );
}

#[test]
fn tickets_rotate_across_repeated_restarts() {
    let w = build_world(b"resume-rotate");
    let file = format!("{}/home/alice/log", w.path.full_path());
    w.client.write_file(ALICE_UID, &file, b"r0").unwrap();
    let (mount, _, _) = w.client.resolve(ALICE_UID, &file).unwrap();
    // Each restart consumes the banked ticket and banks the rotated one
    // from the resume reply — hits keep accumulating without a single
    // full handshake in between.
    for round in 1..=3u64 {
        w.server.crash_restart();
        let payload = format!("r{round}");
        w.client
            .write_file(ALICE_UID, &file, payload.as_bytes())
            .unwrap();
        assert_eq!(
            w.client.resume_stats(),
            (round, 0, 0),
            "restart {round} must resume off the rotated ticket"
        );
    }
    assert_eq!(mount.reconnects(), 3);
    assert_eq!(w.client.read_file(ALICE_UID, &file).unwrap(), b"r3");
}

#[test]
fn expired_ticket_falls_back_to_full_handshake() {
    let w = build_world(b"resume-expiry");
    let file = format!("{}/home/alice/stale", w.path.full_path());
    w.client.write_file(ALICE_UID, &file, b"old").unwrap();

    // Outlive the ticket (1 virtual hour), then kill the session.
    w.clock.advance(SimTime::from_millis(2 * 3_600 * 1_000));
    w.server.crash_restart();
    w.client.write_file(ALICE_UID, &file, b"new").unwrap();

    let (hits, misses, rejected) = w.client.resume_stats();
    assert_eq!(
        (hits, misses, rejected),
        (0, 0, 1),
        "an expired ticket must be rejected, not honored"
    );
    assert_eq!(w.client.read_file(ALICE_UID, &file).unwrap(), b"new");
}

#[test]
fn reconnect_without_a_ticket_counts_a_miss() {
    let w = build_world(b"resume-miss");
    w.client.set_resumption(false);
    let file = format!("{}/home/alice/miss", w.path.full_path());
    // Mount with resumption off: no ticket is banked. Turning it on
    // afterwards leaves the next reconnect empty-handed.
    w.client.write_file(ALICE_UID, &file, b"one").unwrap();
    w.client.set_resumption(true);
    w.server.crash_restart();
    w.client.write_file(ALICE_UID, &file, b"two").unwrap();
    assert_eq!(
        w.client.resume_stats(),
        (0, 1, 0),
        "no banked ticket must count as a miss"
    );
}

#[test]
fn resume_preserves_the_negotiated_chacha_suite() {
    let w = build_world(b"resume-chacha");
    w.client.set_suite_offer(&[SuiteId::ChaCha20Poly1305]);
    let file = format!("{}/home/alice/fast", w.path.full_path());
    w.client.write_file(ALICE_UID, &file, b"aead").unwrap();
    let (mount, _, _) = w.client.resolve(ALICE_UID, &file).unwrap();

    w.server.crash_restart();
    w.client.write_file(ALICE_UID, &file, b"aead2").unwrap();

    assert_eq!(w.client.resume_stats().0, 1, "resume must hit under chacha");
    assert!(mount.reconnects() >= 1);
    assert_eq!(w.client.read_file(ALICE_UID, &file).unwrap(), b"aead2");
}

#[test]
fn resume_telemetry_counters_fire() {
    let tel = Telemetry::counters();
    let w = build_world(b"resume-counters");
    w.client.set_telemetry(&tel);
    w.server.set_telemetry(&tel);
    let file = format!("{}/home/alice/tel", w.path.full_path());
    w.client.write_file(ALICE_UID, &file, b"x").unwrap();
    w.server.crash_restart();
    w.client.write_file(ALICE_UID, &file, b"y").unwrap();
    let snap = tel.counters_snapshot();
    let get = |proc: &str, name: &str| {
        snap.iter()
            .find(|(p, n, _)| p == proc && *n == name)
            .map(|(_, _, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get("client", "resume.hit"), 1);
    assert_eq!(get("server", "resume.accepted"), 1);
    assert_eq!(get("client", "resume.miss"), 0);
    assert_eq!(get("server", "resume.rejected"), 0);
}
