//! End-to-end tests: client ↔ server over the simulated network, with the
//! complete protocol stack (key negotiation, secure channel, user
//! authentication, NFS relay, caching).

use std::sync::Arc;

use sfs::agent::Agent;
use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{ClientError, SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs::sfskey;
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::Status;
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, Vfs};
use std::sync::OnceLock;

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xA5A5);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xB6B6);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xC7C7);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

/// A full test world: one server (with alice registered), one client.
struct World {
    clock: SimClock,
    net: Arc<SfsNetwork>,
    server: Arc<SfsServer>,
    client: Arc<SfsClient>,
    path: SelfCertifyingPath,
}

const ALICE_UID: u32 = 1000;

fn build_world() -> World {
    let clock = SimClock::new();
    let vfs = Vfs::new(7, clock.clone());
    // Server-side content: /home/alice owned by alice, /public readable.
    let root_creds = Credentials::root();
    let home = vfs.mkdir_p("/home/alice").unwrap();
    vfs.setattr(
        &root_creds,
        home,
        sfs_vfs::SetAttr {
            uid: Some(ALICE_UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();
    let public = vfs.mkdir_p("/public").unwrap();
    vfs.setattr(
        &root_creds,
        public,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            ..Default::default()
        },
    )
    .unwrap();
    vfs.write_file(&root_creds, public, "motd", b"welcome to sfs")
        .unwrap();
    let (motd, _) = vfs.lookup(&root_creds, public, "motd").unwrap();
    vfs.setattr(
        &root_creds,
        motd,
        sfs_vfs::SetAttr {
            mode: Some(0o644),
            ..Default::default()
        },
    )
    .unwrap();

    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: ALICE_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("sfs.lcs.mit.edu"),
        server_key(),
        vfs,
        auth,
        SfsPrg::from_entropy(b"server"),
    );
    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    net.register(server.clone());
    let client = SfsClient::new(net.clone(), b"client");
    // Alice's agent holds her key.
    client.agent(ALICE_UID).lock().add_key(user_key());
    let path = server.path().clone();
    World {
        clock,
        net,
        server,
        client,
        path,
    }
}

#[test]
fn mount_and_read_public_file() {
    let w = build_world();
    let file = format!("{}/public/motd", w.path.full_path());
    let data = w.client.read_file(ALICE_UID, &file).unwrap();
    assert_eq!(data, b"welcome to sfs");
}

#[test]
fn authenticated_user_writes_home_directory() {
    let w = build_world();
    let file = format!("{}/home/alice/notes.txt", w.path.full_path());
    w.client
        .write_file(ALICE_UID, &file, b"meeting at noon")
        .unwrap();
    assert_eq!(
        w.client.read_file(ALICE_UID, &file).unwrap(),
        b"meeting at noon"
    );
    // The write really landed on the server's file system.
    let (ino, _) = w
        .server
        .vfs()
        .lookup_path(&Credentials::root(), "/home/alice/notes.txt")
        .unwrap();
    assert_eq!(
        w.server.vfs().read_file(&Credentials::root(), ino).unwrap(),
        b"meeting at noon"
    );
}

#[test]
fn unauthenticated_user_is_anonymous() {
    let w = build_world();
    // Bob (uid 2000) has no key in his agent: anonymous access.
    let file = format!("{}/home/alice/secret.txt", w.path.full_path());
    let err = w.client.write_file(2000, &file, b"x").unwrap_err();
    assert_eq!(err, ClientError::Nfs(Status::Acces));
    // But the world-readable file is available anonymously.
    let motd = format!("{}/public/motd", w.path.full_path());
    assert_eq!(w.client.read_file(2000, &motd).unwrap(), b"welcome to sfs");
}

#[test]
fn wrong_key_for_user_gets_anonymous_permissions() {
    let w = build_world();
    // Carol presents a key the authserver has never seen.
    let mut rng = XorShiftSource::new(0xDD);
    let carol_key = generate_keypair(512, &mut rng);
    w.client.agent(3000).lock().add_key(carol_key);
    let file = format!("{}/home/alice/secret", w.path.full_path());
    assert_eq!(
        w.client.write_file(3000, &file, b"x").unwrap_err(),
        ClientError::Nfs(Status::Acces)
    );
}

#[test]
fn attribute_caching_reduces_rpcs() {
    let w = build_world();
    let file = format!("{}/public/motd", w.path.full_path());
    let (mount, fh, _) = w.client.resolve(ALICE_UID, &file).unwrap();
    let before = w.client.network_rpcs();
    for _ in 0..50 {
        w.client.getattr(&mount, ALICE_UID, &fh).unwrap();
    }
    let with_cache = w.client.network_rpcs() - before;
    assert!(
        with_cache <= 1,
        "cached getattrs should not hit the wire (got {with_cache})"
    );

    w.client.set_caching(false);
    let before = w.client.network_rpcs();
    for _ in 0..50 {
        w.client.getattr(&mount, ALICE_UID, &fh).unwrap();
    }
    let without_cache = w.client.network_rpcs() - before;
    assert_eq!(without_cache, 50);
}

#[test]
fn lease_invalidation_on_write() {
    let w = build_world();
    let file = format!("{}/home/alice/journal", w.path.full_path());
    w.client.write_file(ALICE_UID, &file, b"day one").unwrap();
    let (mount, fh, attr0) = w.client.resolve(ALICE_UID, &file).unwrap();
    assert_eq!(attr0.size, 7);
    // A write through the protocol invalidates the cached attributes via
    // the server's lease callback, so the next getattr sees fresh data.
    let reply = w
        .client
        .call_nfs(
            &mount,
            ALICE_UID,
            &sfs_nfs3::proto::Nfs3Request::Write {
                fh: fh.clone(),
                offset: 7,
                stable: sfs_nfs3::proto::StableHow::FileSync,
                data: b", day two".to_vec(),
            },
        )
        .unwrap();
    assert_eq!(reply.status(), Status::Ok, "{reply:?}");
    let attr = w.client.getattr(&mount, ALICE_UID, &fh).unwrap();
    assert_eq!(attr.size, 16, "stale cached size would be 7");
}

#[test]
fn symlinks_traversed_server_side_content() {
    let w = build_world();
    // Server root gets a symlink: /latest -> /public/motd.
    let vfs = w.server.vfs();
    let root = vfs.root();
    vfs.symlink(&Credentials::root(), root, "latest", "/public/motd")
        .unwrap();
    // NOTE: absolute symlink targets on the server are interpreted
    // relative to the mount by the client when they do not start with
    // /sfs — the client rebuilds them under the mount's own path.
    let link = format!("{}/latest", w.path.full_path());
    let target = w.client.readlink(ALICE_UID, &link).unwrap();
    assert_eq!(target, "/public/motd");
}

#[test]
fn cross_server_secure_links() {
    // Two servers; a symlink on server A names server B's self-certifying
    // path (§2.4 "secure links").
    let w = build_world();
    let clock = w.clock.clone();
    let vfs_b = Vfs::new(8, clock.clone());
    vfs_b
        .write_file(&Credentials::root(), vfs_b.root(), "data", b"on server B")
        .unwrap();
    let mut rng = XorShiftSource::new(0xEE);
    let key_b = generate_keypair(768, &mut rng);
    let auth_b = Arc::new(AuthServer::new(srp_group(), 2));
    let server_b = SfsServer::new(
        ServerConfig::new("b.example.org"),
        key_b,
        vfs_b,
        auth_b,
        SfsPrg::from_entropy(b"server-b"),
    );
    w.net.register(server_b.clone());
    // Fix permissions: the file must be world-readable for anonymous
    // access from the client.
    let vfs = server_b.vfs();
    let (ino, _) = vfs.lookup_path(&Credentials::root(), "/data").unwrap();
    vfs.setattr(
        &Credentials::root(),
        ino,
        sfs_vfs::SetAttr {
            mode: Some(0o644),
            ..Default::default()
        },
    )
    .unwrap();

    // The secure link on server A points at B's full self-certifying
    // pathname.
    let target = format!("{}/data", server_b.path().full_path());
    let vfs_a = w.server.vfs();
    let (pub_ino, _) = vfs_a.lookup_path(&Credentials::root(), "/public").unwrap();
    vfs_a
        .symlink(&Credentials::root(), pub_ino, "b-data", &target)
        .unwrap();

    let via_link = format!("{}/public/b-data", w.path.full_path());
    assert_eq!(
        w.client.read_file(ALICE_UID, &via_link).unwrap(),
        b"on server B"
    );
}

#[test]
fn agent_links_resolve_human_names() {
    let w = build_world();
    w.client
        .agent(ALICE_UID)
        .lock()
        .create_link("mit", &w.path.full_path());
    let via_name = "/sfs/mit/public/motd";
    assert_eq!(
        w.client.read_file(ALICE_UID, via_name).unwrap(),
        b"welcome to sfs"
    );
    // Another user without the link cannot use the name.
    assert!(w.client.read_file(2000, via_name).is_err());
}

#[test]
fn sfs_listing_is_per_agent() {
    let w = build_world();
    let motd = format!("{}/public/motd", w.path.full_path());
    w.client.read_file(ALICE_UID, &motd).unwrap();
    assert!(w.client.list_sfs(ALICE_UID).contains(&w.path.dir_name()));
    assert!(
        !w.client.list_sfs(2000).contains(&w.path.dir_name()),
        "uid 2000 never referenced this pathname"
    );
}

#[test]
fn mitm_server_with_different_key_rejected() {
    let w = build_world();
    // An attacker at a different location claims alice's HostID… the
    // pathname names the key, so a rogue server at the *same* location
    // with a different key fails certification.
    let clock = w.clock.clone();
    let mut rng = XorShiftSource::new(0xBAD);
    let rogue_key = generate_keypair(768, &mut rng);
    let rogue = SfsServer::new(
        ServerConfig::new("rogue.example.org"),
        rogue_key,
        Vfs::new(9, clock.clone()),
        Arc::new(AuthServer::new(srp_group(), 2)),
        SfsPrg::from_entropy(b"rogue"),
    );
    w.net.register(rogue);
    // Build a path claiming the rogue location but the real server's
    // HostID — e.g. a phishing link.
    let forged = SelfCertifyingPath {
        location: "rogue.example.org".into(),
        host_id: w.path.host_id,
    };
    let err = w.client.mount(ALICE_UID, &forged).unwrap_err();
    assert!(matches!(err, ClientError::KeyMismatch), "{err:?}");
}

#[test]
fn sfskey_password_bootstrap_end_to_end() {
    let w = build_world();
    // Alice registers with a password (done at the office).
    let mut rng = XorShiftSource::new(0x51);
    sfskey::register(
        w.server.authserver(),
        "alice",
        b"correct horse battery staple",
        &user_key(),
        &mut rng,
    );

    // Traveling: a fresh agent on some other machine, no keys, no
    // configuration. One password recovers everything.
    let conn = w.server.accept();
    let mut agent = Agent::new();
    let result = sfskey::add(
        &conn,
        &srp_group(),
        &mut agent,
        "alice",
        b"correct horse battery staple",
        &mut rng,
    )
    .unwrap();
    assert_eq!(result.server_path.as_ref().unwrap(), &w.path);
    let got_key = result.private_key.unwrap();
    assert_eq!(got_key.public(), user_key().public());
    assert_eq!(agent.key_count(), 1);

    // Wrong password: rejected, nothing leaks.
    let conn = w.server.accept();
    let mut agent2 = Agent::new();
    let err = sfskey::add(
        &conn,
        &srp_group(),
        &mut agent2,
        "alice",
        b"wrong password",
        &mut rng,
    )
    .unwrap_err();
    assert!(matches!(err, sfskey::SfskeyError::Rejected(_)), "{err:?}");
    assert_eq!(agent2.key_count(), 0);
}

#[test]
fn pwd_returns_self_certifying_path() {
    let w = build_world();
    let dir = format!("{}/home/alice", w.path.full_path());
    let (mount, _, _) = w.client.resolve(ALICE_UID, &dir).unwrap();
    let pwd = w.client.pwd(&mount, "home/alice");
    assert_eq!(pwd, dir);
    // Bookmark and return via the Location name.
    let parsed = SelfCertifyingPath::parse_full(&pwd).unwrap().0;
    w.client.agent(ALICE_UID).lock().add_bookmark(&parsed);
    let again = format!("/sfs/{}/public/motd", w.path.location);
    assert_eq!(
        w.client.read_file(ALICE_UID, &again).unwrap(),
        b"welcome to sfs"
    );
}

#[test]
fn virtual_time_advances_with_work() {
    let w = build_world();
    let before = w.clock.now();
    let file = format!("{}/public/motd", w.path.full_path());
    w.client.read_file(ALICE_UID, &file).unwrap();
    assert!(
        w.clock.now() > before,
        "network transit must consume virtual time"
    );
}

#[test]
fn agent_ipc_is_uid_attested() {
    // §3.2: agents reach the client master over protected Unix-domain
    // sockets; `suidconnect` attests the caller's uid, so one user's
    // agent commands cannot touch another user's namespace view.
    let w = build_world();
    let socket = w.client.agent_socket();
    let mut enc = sfs_xdr::XdrEncoder::new();
    enc.put_u32(0)
        .put_string("mit")
        .put_string(&w.path.full_path());
    // Alice registers the link over IPC.
    let reply = socket.connect_and_call(ALICE_UID, enc.bytes());
    let mut dec = sfs_xdr::XdrDecoder::new(&reply);
    assert_eq!(dec.get_u32().unwrap(), 0);
    // It works for alice…
    assert_eq!(
        w.client
            .read_file(ALICE_UID, "/sfs/mit/public/motd")
            .unwrap(),
        b"welcome to sfs"
    );
    // …and not for bob, whose (separate) agent never saw the command.
    assert!(w.client.read_file(2000, "/sfs/mit/public/motd").is_err());
    // Listing over IPC shows per-uid views.
    let mut enc = sfs_xdr::XdrEncoder::new();
    enc.put_u32(1);
    let reply = socket.connect_and_call(ALICE_UID, enc.bytes());
    let mut dec = sfs_xdr::XdrDecoder::new(&reply);
    assert_eq!(dec.get_u32().unwrap(), 0);
    let n = dec.get_u32().unwrap();
    let names: Vec<String> = (0..n).map(|_| dec.get_string().unwrap()).collect();
    assert!(names.contains(&"mit".to_string()));
    // Unknown commands answer with a structured error, never panic: a
    // status code, the echoed command (u32::MAX — this header is not
    // even readable), and a message.
    let reply = socket.connect_and_call(ALICE_UID, &[0xff; 3]);
    let mut dec = sfs_xdr::XdrDecoder::new(&reply);
    assert_eq!(dec.get_u32().unwrap(), sfs::client::AGENT_ERR_UNKNOWN_CMD);
    assert_eq!(dec.get_u32().unwrap(), u32::MAX);
    assert!(!dec.get_string().unwrap().is_empty());
}

#[test]
fn agent_socket_errors_are_structured() {
    // A replacement agent (the paper lets users swap agents at will)
    // needs error *codes* it can dispatch on, not prose. Each failure
    // class gets its own status, the offending command is echoed back,
    // and the message is advisory.
    let w = build_world();
    let socket = w.client.agent_socket();
    // Recognised command, malformed arguments.
    let mut enc = sfs_xdr::XdrEncoder::new();
    enc.put_u32(0).put_u32(0xdead_beef); // cmd 0 wants two strings
    let reply = socket.connect_and_call(ALICE_UID, enc.bytes());
    let mut dec = sfs_xdr::XdrDecoder::new(&reply);
    assert_eq!(dec.get_u32().unwrap(), sfs::client::AGENT_ERR_BAD_ARGS);
    assert_eq!(dec.get_u32().unwrap(), 0, "offending command echoed");
    assert!(!dec.get_string().unwrap().is_empty());
    // Readable header, unknown command code.
    let mut enc = sfs_xdr::XdrEncoder::new();
    enc.put_u32(42);
    let reply = socket.connect_and_call(ALICE_UID, enc.bytes());
    let mut dec = sfs_xdr::XdrDecoder::new(&reply);
    assert_eq!(dec.get_u32().unwrap(), sfs::client::AGENT_ERR_UNKNOWN_CMD);
    assert_eq!(dec.get_u32().unwrap(), 42, "offending command echoed");
    assert!(!dec.get_string().unwrap().is_empty());
    // Success still leads with AGENT_OK.
    let mut enc = sfs_xdr::XdrEncoder::new();
    enc.put_u32(1);
    let reply = socket.connect_and_call(ALICE_UID, enc.bytes());
    let mut dec = sfs_xdr::XdrDecoder::new(&reply);
    assert_eq!(dec.get_u32().unwrap(), sfs::client::AGENT_OK);
}

#[test]
fn each_mount_gets_its_own_device_number() {
    // §3.3: "by assigning each file system its own device number, this
    // scheme prevents a malicious server from tricking the pwd command
    // into printing an incorrect path", and device+inode uniquely
    // identify files for utilities.
    let w = build_world();
    let mut rng = XorShiftSource::new(0xDE5);
    let key_b = generate_keypair(768, &mut rng);
    let vfs_b = Vfs::new(99, w.clock.clone());
    vfs_b
        .write_file(&Credentials::root(), vfs_b.root(), "f", b"b")
        .unwrap();
    let server_b = SfsServer::new(
        ServerConfig::new("b.example.org"),
        key_b,
        vfs_b,
        Arc::new(AuthServer::new(srp_group(), 2)),
        SfsPrg::from_entropy(b"dev-b"),
    );
    w.net.register(server_b.clone());
    let (_, _, attr_a) = w
        .client
        .resolve(ALICE_UID, &format!("{}/public/motd", w.path.full_path()))
        .unwrap();
    let (_, _, attr_b) = w
        .client
        .resolve(ALICE_UID, &format!("{}/f", server_b.path().full_path()))
        .unwrap();
    assert_ne!(
        attr_a.fsid, attr_b.fsid,
        "distinct mounts, distinct devices"
    );
}
