//! Chaos soak: the full SFS stack (key negotiation, secure channel, user
//! authentication, NFS relay, disk) driven over a seeded [`FaultPlan`]
//! injecting every fault kind the simulator knows — drops, duplicates,
//! reorders, corruption, delays, partitions, server crash-restarts, and
//! transient disk sync-write failures.
//!
//! Three invariants, per ISSUE and paper §2.1 ("an attacker can delay,
//! duplicate, modify, or drop" packets):
//!
//! 1. every seeded run *completes* — the client's retransmission,
//!    backoff, and reconnect/rekey machinery rides out the faults;
//! 2. no corrupted payload is ever accepted past the MAC — every byte
//!    read back equals every byte written;
//! 3. rerunning a seed reproduces the run bit-for-bit: identical
//!    virtual-time totals and an identical fault-event log.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::sync::OnceLock;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork, DEFAULT_PIPELINE_WINDOW};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_sim::{
    DiskParams, FaultEvent, FaultKind, FaultPlan, NetParams, SimClock, SimDisk, Transport,
};
use sfs_vfs::{Credentials, Vfs};

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xA5A5);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xB6B6);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn client_ephemeral() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xE9E9);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xC7C7);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

const ALICE_UID: u32 = 1000;

struct World {
    clock: SimClock,
    server: Arc<SfsServer>,
    client: Arc<SfsClient>,
    path: SelfCertifyingPath,
}

/// Builds the e2e world with `plan` wired through every layer: the disk
/// under the Vfs, the server's crash schedule, and every wire the
/// network dials.
fn build_chaos_world(plan: &FaultPlan) -> World {
    let clock = SimClock::new();
    let disk = SimDisk::new(clock.clone(), DiskParams::ibm_18es());
    disk.set_fault_plan(plan.clone());
    let vfs = Vfs::new(7, clock.clone()).with_disk(disk);
    let root_creds = Credentials::root();
    let home = vfs.mkdir_p("/home/alice").unwrap();
    vfs.setattr(
        &root_creds,
        home,
        sfs_vfs::SetAttr {
            uid: Some(ALICE_UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();
    let public = vfs.mkdir_p("/public").unwrap();
    vfs.setattr(
        &root_creds,
        public,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            ..Default::default()
        },
    )
    .unwrap();
    vfs.write_file(&root_creds, public, "motd", b"welcome to sfs")
        .unwrap();
    let (motd, _) = vfs.lookup(&root_creds, public, "motd").unwrap();
    vfs.setattr(
        &root_creds,
        motd,
        sfs_vfs::SetAttr {
            mode: Some(0o644),
            ..Default::default()
        },
    )
    .unwrap();

    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: ALICE_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("sfs.lcs.mit.edu"),
        server_key(),
        vfs,
        auth,
        SfsPrg::from_entropy(b"server"),
    );
    server.set_fault_plan(plan.clone());
    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    net.set_fault_plan(plan.clone());
    net.register(server.clone());
    let client = SfsClient::with_ephemeral(net, b"chaos-client", client_ephemeral());
    client.agent(ALICE_UID).lock().add_key(user_key());
    let path = server.path().clone();
    World {
        clock,
        server,
        client,
        path,
    }
}

/// Everything one seeded run produced, for reproducibility assertions.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    total_ns: u64,
    events: Vec<FaultEvent>,
    reconnects: u64,
}

/// Runs the paper workload (create and write a handful of files in
/// alice's home, read every byte back, read the world-readable motd)
/// under `spec` at an explicit pipeline window: 1 forces the strict
/// blocking protocol, deeper windows stream the same workload through
/// the in-flight machinery. `mid_advance_ns` optionally jumps the
/// virtual clock mid-workload so scheduled instants (partitions,
/// crashes) land between RPCs. Panics if the workload fails or any
/// payload comes back altered.
fn soak_with_window(spec: &str, mid_advance_ns: u64, window: usize) -> Outcome {
    soak_with_window_cores(spec, mid_advance_ns, window, 0)
}

/// [`soak_with_window`] with the multi-core shard engine installed on
/// the server (`cores == 0` leaves the legacy single-core path). With an
/// engine present the streamed workload's seal/open work really is
/// scheduled across core timelines, which the soak asserts by checking
/// the engine accumulated busy time.
fn soak_with_window_cores(spec: &str, mid_advance_ns: u64, window: usize, cores: usize) -> Outcome {
    let plan = FaultPlan::from_spec(spec).unwrap();
    let w = build_chaos_world(&plan);
    if cores > 0 {
        w.server.set_cores(cores);
    }
    w.client.set_pipeline_window(window);
    let home = format!("{}/home/alice", w.path.full_path());
    let files: Vec<(String, Vec<u8>)> = (0..5)
        .map(|i| {
            (
                format!("{home}/chaos-{i}"),
                format!("chaos file {i}: every byte must survive the MAC").into_bytes(),
            )
        })
        .collect();
    for (i, (path, data)) in files.iter().enumerate() {
        w.client.write_file(ALICE_UID, path, data).unwrap();
        if i == 1 && mid_advance_ns > 0 {
            w.clock.advance_ns(mid_advance_ns);
        }
    }
    for (path, data) in &files {
        assert_eq!(
            &w.client.read_file(ALICE_UID, path).unwrap(),
            data,
            "a corrupted payload leaked past the MAC in {spec:?}"
        );
    }
    let motd = format!("{}/public/motd", w.path.full_path());
    assert_eq!(
        w.client.read_file(ALICE_UID, &motd).unwrap(),
        b"welcome to sfs"
    );
    let (mount, _, _) = w.client.resolve(ALICE_UID, &motd).unwrap();
    if cores > 0 {
        // The five chaos files are single-WRITE payloads, which the
        // windowed client degenerates to blocking calls — so stream one
        // multi-chunk file too, forcing real windowed batches through
        // the engine, and pin that the engine actually scheduled them.
        let big = format!("{}/home/alice/chaos-stream", w.path.full_path());
        let stream: Vec<u8> = (0..65_536u32).map(|i| (i % 253) as u8).collect();
        w.client.write_file(ALICE_UID, &big, &stream).unwrap();
        assert_eq!(
            w.client.read_file(ALICE_UID, &big).unwrap(),
            stream,
            "streamed payload corrupted under {spec:?} at cores={cores}"
        );
        let engine = w.server.shard_engine().expect("engine installed");
        assert!(
            engine.frames_scheduled() > 0,
            "the shard engine never scheduled any work in {spec:?}"
        );
    }
    Outcome {
        total_ns: w.clock.now().as_nanos(),
        events: plan.events(),
        reconnects: mount.reconnects(),
    }
}

/// Runs `spec` twice at the default pipeline window and asserts the two
/// runs are indistinguishable: same virtual-time total, same fault-event
/// log (instants, kinds, and sites), same reconnect count.
fn soak_twice(spec: &str, mid_advance_ns: u64) -> Outcome {
    soak_twice_with_window(spec, mid_advance_ns, DEFAULT_PIPELINE_WINDOW)
}

/// [`soak_twice`] at an explicit pipeline window.
fn soak_twice_with_window(spec: &str, mid_advance_ns: u64, window: usize) -> Outcome {
    let a = soak_with_window(spec, mid_advance_ns, window);
    let b = soak_with_window(spec, mid_advance_ns, window);
    assert_eq!(
        a.total_ns, b.total_ns,
        "virtual-time total diverged across reruns of {spec:?}"
    );
    assert_eq!(
        a.events, b.events,
        "fault schedule diverged across reruns of {spec:?}"
    );
    assert_eq!(a.reconnects, b.reconnects);
    a
}

fn kinds(events: &[FaultEvent]) -> BTreeSet<&'static str> {
    events.iter().map(|e| e.kind.label()).collect()
}

// ---- one seeded plan per fault kind -------------------------------------

#[test]
fn survives_packet_drops() {
    let out = soak_twice("seed=101,drop=50", 0);
    assert!(
        kinds(&out.events).contains(FaultKind::Drop.label()),
        "{out:?}"
    );
}

#[test]
fn survives_packet_duplication() {
    let out = soak_twice("seed=102,dup=40", 0);
    assert!(
        kinds(&out.events).contains(FaultKind::Duplicate.label()),
        "{out:?}"
    );
}

#[test]
fn survives_packet_reordering() {
    let out = soak_twice("seed=103,reorder=40", 0);
    assert!(
        kinds(&out.events).contains(FaultKind::Reorder.label()),
        "{out:?}"
    );
}

#[test]
fn survives_packet_corruption() {
    // Every flipped bit must be caught by the channel MAC and retried;
    // `soak` asserts byte-for-byte read-back.
    let out = soak_twice("seed=104,corrupt=25", 0);
    assert!(
        kinds(&out.events).contains(FaultKind::Corrupt.label()),
        "{out:?}"
    );
}

#[test]
fn survives_packet_delays() {
    let out = soak_twice("seed=105,delay=200,delay_ns=5ms", 0);
    assert!(
        kinds(&out.events).contains(FaultKind::Delay.label()),
        "{out:?}"
    );
}

#[test]
fn survives_network_partition() {
    // The partition opens 1ms in (mid-workload, thanks to the clock jump)
    // and every packet inside it is dropped; each retransmission timeout
    // advances the clock one second, so the client waits it out and the
    // workload still completes.
    let out = soak_twice("seed=106,partition=2ms+3s", 2_000_000);
    assert!(
        kinds(&out.events).contains(FaultKind::Partition.label()),
        "{out:?}"
    );
}

#[test]
fn survives_scheduled_server_crash() {
    // The crash instant (1s, safely after the mount handshake) passes
    // when the mid-workload clock jump crosses it; the next sealed call
    // hits "connection reset: server restarted", and the client
    // reconnects and renegotiates session keys transparently.
    let out = soak_twice("seed=107,crash=1s", 2_000_000_000);
    assert!(
        kinds(&out.events).contains(FaultKind::ServerCrash.label()),
        "{out:?}"
    );
    assert!(
        out.reconnects >= 1,
        "a crash mid-workload must force at least one rekey: {out:?}"
    );
}

#[test]
fn survives_disk_sync_write_failures() {
    let out = soak_twice("seed=108,syncfail=300", 0);
    assert!(
        kinds(&out.events).contains(FaultKind::DiskSyncFail.label()),
        "{out:?}"
    );
}

// ---- mixed-fault soak ---------------------------------------------------

/// Twelve more seeded plans (20 total across the suite) mixing fault
/// kinds, including hostile combinations: corruption under drops,
/// partitions over a lossy link, crashes with disk failures.
const MIXED_SPECS: &[(&str, u64)] = &[
    ("seed=1,drop=20,dup=10,reorder=10", 0),
    ("seed=2,drop=15,corrupt=15", 0),
    ("seed=3,delay=100,delay_ns=2ms,drop=10", 0),
    ("seed=4,dup=25,corrupt=10", 0),
    ("seed=5,reorder=30,delay=50,delay_ns=1ms", 0),
    ("seed=6,drop=10,syncfail=150", 0),
    ("seed=7,partition=2ms+2s,drop=10", 2_000_000),
    ("seed=8,crash=1s,corrupt=10", 2_000_000_000),
    (
        "seed=9,drop=25,dup=15,reorder=10,corrupt=10,delay=50,delay_ns=1ms",
        0,
    ),
    ("seed=10,crash=1s,partition=1500ms+2s,drop=5", 2_000_000_000),
    ("seed=11,syncfail=200,corrupt=15,dup=10", 0),
    ("seed=12,drop=30,delay=100,delay_ns=3ms,syncfail=100", 0),
];

#[test]
fn mixed_chaos_soak_completes_and_reproduces() {
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut injected = 0usize;
    for (spec, jump) in MIXED_SPECS {
        let out = soak_twice(spec, *jump);
        seen.extend(kinds(&out.events));
        injected += out.events.len();
    }
    assert!(injected > 0, "the soak must actually inject faults");
    // Across the battery, every fault kind the simulator knows shows up.
    for kind in [
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Corrupt,
        FaultKind::Delay,
        FaultKind::Partition,
        FaultKind::ServerCrash,
        FaultKind::DiskSyncFail,
    ] {
        assert!(
            seen.contains(kind.label()),
            "no mixed plan injected {:?}; saw {seen:?}",
            kind.label()
        );
    }
}

#[test]
fn mixed_storm_survives_multicore_dispatch() {
    // The mixed-fault battery reruns with the shard engine installed at
    // cores ∈ {1, 4}: streamed payloads must still survive the storm
    // byte-for-byte (asserted inside the soak), the engine must actually
    // schedule work, and every configuration must reproduce exactly
    // across reruns.
    for cores in [1usize, 4] {
        for (spec, jump) in &MIXED_SPECS[..6] {
            let a = soak_with_window_cores(spec, *jump, DEFAULT_PIPELINE_WINDOW, cores);
            let b = soak_with_window_cores(spec, *jump, DEFAULT_PIPELINE_WINDOW, cores);
            assert_eq!(
                a, b,
                "multicore soak diverged across reruns of {spec:?} at cores={cores}"
            );
        }
    }
}

// ---- manual crash: the kill-server regression ---------------------------

#[test]
fn manual_server_kill_mid_workload_recovers_via_rekey() {
    // No network faults at all: the only disturbance is the server being
    // killed by hand between two writes. The client must back off,
    // redial, renegotiate session keys, and finish the workload — and
    // its attribute/access caches must not serve pre-crash entries as if
    // nothing happened.
    let plan = FaultPlan::from_spec("seed=200").unwrap();
    let w = build_chaos_world(&plan);
    let file = format!("{}/home/alice/journal", w.path.full_path());
    w.client
        .write_file(ALICE_UID, &file, b"before crash")
        .unwrap();
    let (mount, _, _) = w.client.resolve(ALICE_UID, &file).unwrap();
    let session_before = mount.session_id();
    assert_eq!(mount.reconnects(), 0);
    // Warm the attribute cache on a file the post-crash workload will
    // not touch: repeated getattrs stay off the wire.
    let motd = format!("{}/public/motd", w.path.full_path());
    let (_, motd_fh, _) = w.client.resolve(ALICE_UID, &motd).unwrap();
    w.client.getattr(&mount, ALICE_UID, &motd_fh).unwrap();
    let rpcs = w.client.network_rpcs();
    w.client.getattr(&mount, ALICE_UID, &motd_fh).unwrap();
    assert_eq!(w.client.network_rpcs(), rpcs, "getattr should be cached");

    w.server.crash_restart();

    w.client
        .write_file(ALICE_UID, &file, b"after crash, new session")
        .unwrap();
    assert_eq!(
        w.client.read_file(ALICE_UID, &file).unwrap(),
        b"after crash, new session"
    );
    assert!(mount.reconnects() >= 1, "the kill must force a reconnect");
    assert_ne!(
        mount.session_id(),
        session_before,
        "rekey must produce a fresh session"
    );
    // The reconnect dropped the pre-crash attribute/access caches: the
    // getattr that was a cache hit before now has to go back to the wire.
    let rpcs = w.client.network_rpcs();
    w.client.getattr(&mount, ALICE_UID, &motd_fh).unwrap();
    assert!(
        w.client.network_rpcs() > rpcs,
        "attr cache must be invalidated by the reconnect"
    );
    // The crash is visible in the plan's event log too.
    assert!(kinds(&plan.events()).contains(FaultKind::ServerCrash.label()));
}

#[test]
fn every_pipeline_window_survives_the_mixed_storm() {
    // The full soak workload (windowed write-behind streams, read-ahead
    // read-back, cross-mount motd read) swept across pipeline depths
    // under a storm mixing every wire fault kind. Each depth must
    // complete byte-for-byte and reproduce bit-for-bit; deeper windows
    // keep more sealed frames exposed to the storm at once, so this is
    // the soak's worst case for the in-flight machinery.
    let spec = "seed=120,drop=15,dup=15,reorder=20,corrupt=10,delay=80,delay_ns=2ms";
    for window in [1usize, 2, DEFAULT_PIPELINE_WINDOW, 16] {
        let out = soak_twice_with_window(spec, 0, window);
        assert!(
            !out.events.is_empty(),
            "window {window}: the storm injected nothing"
        );
    }
}

#[test]
fn blocking_and_windowed_soaks_agree_on_payloads() {
    // Same clean-wire workload at window 1 and window 8: the payload
    // assertions inside `soak` already prove both protocols deliver
    // identical bytes; the windowed run must also never be slower than
    // the blocking one in virtual time.
    let blocking = soak_with_window("seed=121", 0, 1);
    let windowed = soak_with_window("seed=121", 0, DEFAULT_PIPELINE_WINDOW);
    assert!(
        windowed.total_ns <= blocking.total_ns,
        "pipelining made the clean-wire soak slower: {} > {}",
        windowed.total_ns,
        blocking.total_ns
    );
}

#[test]
fn backoff_cap_holds_when_partition_outlives_the_retransmit_schedule() {
    // A partition long enough to consume the entire per-RPC retransmit
    // schedule and push the reconnect loop to its backoff ceiling. Three
    // things must hold while the client waits it out: every backoff
    // interval respects the configured cap (within the ±25% jitter
    // spread), the mount's auth seqnos only move forward across the
    // forced reconnects, and the write that straddled the partition
    // executes exactly once — the file ends up byte-identical to the
    // single acked write, reissues notwithstanding.
    use sfs::client::RetryPolicy;
    use sfs_telemetry::Telemetry;

    const CAP_NS: u64 = 2_000_000_000;

    fn backoff_intervals(trace: &str) -> Vec<u64> {
        let mut out = Vec::new();
        let mut rest = trace;
        while let Some(i) = rest.find("\"name\":\"backoff\"") {
            rest = &rest[i..];
            let key = "\"args\":{\"ns\":\"";
            let a = rest.find(key).expect("backoff instant carries its ns") + key.len();
            let tail = &rest[a..];
            let end = tail.find('"').unwrap();
            out.push(tail[..end].parse().unwrap());
            rest = tail;
        }
        out
    }

    let run = || {
        let plan = FaultPlan::from_spec("seed=170,partition=1s+20s").unwrap();
        let w = build_chaos_world(&plan);
        let tel = Telemetry::recording(w.clock.clone());
        w.client.set_telemetry(&tel);
        w.client.set_retry_policy(RetryPolicy {
            max_retransmits: 3,
            max_reconnects: 16,
            base_backoff_ns: 100_000_000,
            max_backoff_ns: CAP_NS,
        });
        let file = format!("{}/home/alice/longhaul", w.path.full_path());
        w.client.write_file(ALICE_UID, &file, b"before").unwrap();
        let (mount, _, _) = w.client.resolve(ALICE_UID, &file).unwrap();
        let seq_before = mount.seqno();
        assert!(
            w.clock.now().as_nanos() < 1_000_000_000,
            "setup overran the scheduled partition start"
        );
        // Step into the partition: this write's retransmissions all die,
        // the schedule escalates to reconnect, and the capped reconnect
        // backoff rides out the remaining ~20 seconds.
        w.clock.advance_ns(1_000_000_000);
        w.client.write_file(ALICE_UID, &file, b"across").unwrap();
        assert!(
            w.clock.now().as_nanos() > 21_000_000_000,
            "the workload cannot have finished inside the partition"
        );
        assert!(
            mount.reconnects() >= 1,
            "outliving the retransmit schedule must escalate to reconnect"
        );
        let seq_after = mount.seqno();
        assert!(
            seq_after > seq_before,
            "auth seqnos must move strictly forward across reconnects"
        );
        assert_eq!(
            w.client.read_file(ALICE_UID, &file).unwrap(),
            b"across",
            "the straddling write must land exactly once, byte-for-byte"
        );

        let intervals = backoff_intervals(&tel.chrome_trace());
        assert!(
            intervals.len() >= 4,
            "waiting out a 20s partition must back off repeatedly: {intervals:?}"
        );
        let spread = CAP_NS / 4;
        assert!(
            intervals.iter().all(|&ns| ns <= CAP_NS + spread),
            "a backoff exceeded the cap plus jitter: {intervals:?}"
        );
        assert!(
            intervals.iter().any(|&ns| ns >= CAP_NS - spread),
            "the schedule never reached its ceiling: {intervals:?}"
        );
        (
            w.clock.now().as_nanos(),
            plan.events(),
            mount.reconnects(),
            seq_after,
            intervals,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "the capped-backoff run must reproduce bit-for-bit");
}
