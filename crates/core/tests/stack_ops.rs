//! Full-stack coverage of the remaining NFS operations through the SFS
//! client/server (rename, hard links, readdir-plus, large I/O), plus
//! server robustness against arbitrary connection bytes.

use std::sync::Arc;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{SfsClient, SfsNetwork};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{Nfs3Reply, Nfs3Request, StableHow};
use sfs_sim::{NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, SetAttr, Vfs};
use std::sync::OnceLock;

const UID: u32 = 1000;

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x57AC);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x57AD);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn world() -> (Arc<SfsServer>, Arc<SfsClient>) {
    let clock = SimClock::new();
    let vfs = Vfs::new(7, clock.clone());
    let root_creds = Credentials::root();
    let work = vfs.mkdir_p("/work").unwrap();
    vfs.setattr(
        &root_creds,
        work,
        SetAttr {
            mode: Some(0o777),
            uid: Some(UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();
    let auth = Arc::new(AuthServer::new(
        {
            let mut rng = XorShiftSource::new(0x57AE);
            SrpGroup::generate(128, &mut rng)
        },
        2,
    ));
    auth.register_user(UserRecord {
        user: "u".into(),
        uid: UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("stack.example.org"),
        server_key(),
        vfs,
        auth,
        SfsPrg::from_entropy(b"stack-server"),
    );
    let net = SfsNetwork::new(clock, NetParams::switched_100mbit(Transport::Tcp));
    net.register(server.clone());
    let client = SfsClient::new(net, b"stack-client");
    client.agent(UID).lock().add_key(user_key());
    (server, client)
}

#[test]
fn rename_through_the_stack() {
    let (server, client) = world();
    let base = format!("{}/work", server.path().full_path());
    client
        .write_file(UID, &format!("{base}/draft"), b"v1")
        .unwrap();
    let (mount, dir_fh, _) = client.resolve(UID, &base).unwrap();
    let reply = client
        .call_nfs(
            &mount,
            UID,
            &Nfs3Request::Rename {
                from_dir: dir_fh.clone(),
                from_name: "draft".into(),
                to_dir: dir_fh,
                to_name: "final".into(),
            },
        )
        .unwrap();
    assert!(matches!(reply, Nfs3Reply::Rename { .. }), "{reply:?}");
    assert!(client.read_file(UID, &format!("{base}/draft")).is_err());
    assert_eq!(
        client.read_file(UID, &format!("{base}/final")).unwrap(),
        b"v1"
    );
}

#[test]
fn hard_links_through_the_stack() {
    let (server, client) = world();
    let base = format!("{}/work", server.path().full_path());
    client
        .write_file(UID, &format!("{base}/orig"), b"shared bytes")
        .unwrap();
    let (mount, dir_fh, _) = client.resolve(UID, &base).unwrap();
    let (_, file_fh, _) = client.resolve(UID, &format!("{base}/orig")).unwrap();
    let reply = client
        .call_nfs(
            &mount,
            UID,
            &Nfs3Request::Link {
                fh: file_fh,
                dir: dir_fh,
                name: "alias".into(),
            },
        )
        .unwrap();
    match reply {
        Nfs3Reply::Link { attr, .. } => assert_eq!(attr.attr.unwrap().nlink, 2),
        other => panic!("{other:?}"),
    }
    assert_eq!(
        client.read_file(UID, &format!("{base}/alias")).unwrap(),
        b"shared bytes"
    );
    client.remove(UID, &format!("{base}/orig")).unwrap();
    assert_eq!(
        client.read_file(UID, &format!("{base}/alias")).unwrap(),
        b"shared bytes"
    );
}

#[test]
fn readdirplus_returns_handles_and_attrs() {
    let (server, client) = world();
    let base = format!("{}/work", server.path().full_path());
    for i in 0..5 {
        client
            .write_file(UID, &format!("{base}/item{i}"), format!("{i}").as_bytes())
            .unwrap();
    }
    let (mount, dir_fh, _) = client.resolve(UID, &base).unwrap();
    let reply = client
        .call_nfs(
            &mount,
            UID,
            &Nfs3Request::ReadDir {
                dir: dir_fh,
                cookie: 0,
                count: 100,
                plus: true,
            },
        )
        .unwrap();
    match reply {
        Nfs3Reply::ReadDir { entries, eof, .. } => {
            assert!(eof);
            assert_eq!(entries.len(), 5);
            for e in entries {
                let (fh, attr) = e.plus.expect("plus data");
                assert_eq!(fh.0.len(), 24, "SFS (encrypted) handle length");
                assert!(attr.attr.is_some());
                assert!(attr.lease_ns > 0, "plus attrs carry leases");
            }
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn multi_megabyte_file_roundtrip() {
    let (server, client) = world();
    let base = format!("{}/work", server.path().full_path());
    let path = format!("{base}/big.bin");
    // 2 MiB of patterned data, written in 64 KiB chunks through the real
    // channel (every byte is ARC4-encrypted and MAC'd twice).
    let chunk: Vec<u8> = (0..65536u32).map(|i| (i % 251) as u8).collect();
    client.write_file(UID, &path, b"").unwrap();
    let (mount, fh, _) = client.resolve(UID, &path).unwrap();
    for i in 0..32u64 {
        let reply = client
            .call_nfs(
                &mount,
                UID,
                &Nfs3Request::Write {
                    fh: fh.clone(),
                    offset: i * 65536,
                    stable: StableHow::Unstable,
                    data: chunk.clone(),
                },
            )
            .unwrap();
        assert!(matches!(reply, Nfs3Reply::Write { .. }), "{reply:?}");
    }
    let reply = client
        .call_nfs(
            &mount,
            UID,
            &Nfs3Request::Commit {
                fh: fh.clone(),
                offset: 0,
                count: 0,
            },
        )
        .unwrap();
    assert!(matches!(reply, Nfs3Reply::Commit { .. }));
    let data = client.read_file(UID, &path).unwrap();
    assert_eq!(data.len(), 32 * 65536);
    assert_eq!(&data[..65536], &chunk[..]);
    assert_eq!(&data[31 * 65536..], &chunk[..]);
}

/// The server connection must survive arbitrary attacker bytes at any
/// protocol stage — before and after key negotiation. Packets come
/// from a seeded SplitMix64 stream (48 deterministic cases).
#[test]
fn server_conn_never_panics_on_garbage() {
    static SERVER: OnceLock<Arc<SfsServer>> = OnceLock::new();
    let server = SERVER.get_or_init(|| world().0).clone();
    let mut state = 0x6A4Bu64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _case in 0..48 {
        let conn = server.accept();
        for _ in 0..(1 + next() % 5) {
            let len = (next() % 120) as usize;
            let packet: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            let _ = conn.handle_bytes(&packet);
        }
    }
}
