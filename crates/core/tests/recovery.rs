//! Client crash-recovery: a client that dies mid-session journals enough
//! state — mounts, agent keys and links, seqno high-water marks — to come
//! back as *itself*, and nothing more.
//!
//! Invariants, per ISSUE and paper §2:
//!
//! 1. a restarted client reconstructs its mount table from the journal,
//!    re-running the full key negotiation against each recorded HostID —
//!    self-certification, not the journal, is the trust decision;
//! 2. a HostID whose server no longer proves the journaled identity (a
//!    swapped key) is refused, loudly;
//! 3. authentication seqnos resume past the journaled high-water mark, so
//!    a signed seqno is never reused across a crash;
//! 4. keys the user never asked to persist (a plain in-memory agent
//!    install) are *not* resurrected — they must be re-acquired via
//!    `sfskey` SRP retrieval, which works under a faulty network;
//! 5. rerunning a seeded crash-recovery scenario reproduces it exactly.

use std::sync::Arc;
use std::sync::OnceLock;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{RetryPolicy, SfsClient, SfsNetwork};
use sfs::journal::ClientJournal;
use sfs::server::{ServerConfig, SfsServer};
use sfs::sfskey;
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_sim::{DiskParams, FaultPlan, JournalDisk, NetParams, SimClock, SimDisk, Transport};
use sfs_telemetry::Telemetry;
use sfs_vfs::{Credentials, Vfs};

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xA5A5);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn second_server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xD4D4);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn swapped_server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xBAD0);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xB6B6);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn client_ephemeral() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xE9E9);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xC7C7);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

const ALICE_UID: u32 = 1000;

fn make_server(location: &str, key: RabinPrivateKey, clock: &SimClock) -> Arc<SfsServer> {
    let vfs = Vfs::new(7, clock.clone());
    let root_creds = Credentials::root();
    let home = vfs.mkdir_p("/home/alice").unwrap();
    vfs.setattr(
        &root_creds,
        home,
        sfs_vfs::SetAttr {
            uid: Some(ALICE_UID),
            gid: Some(100),
            // Private: anonymous (key-less) access must bounce off it.
            mode: Some(0o700),
            ..Default::default()
        },
    )
    .unwrap();
    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: ALICE_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });
    SfsServer::new(
        ServerConfig::new(location),
        key,
        vfs,
        auth,
        SfsPrg::from_entropy(location.as_bytes()),
    )
}

struct World {
    clock: SimClock,
    net: Arc<SfsNetwork>,
    server: Arc<SfsServer>,
    path: SelfCertifyingPath,
    journal: ClientJournal,
}

fn build_world(spec: &str) -> (World, FaultPlan) {
    let plan = FaultPlan::from_spec(spec).unwrap();
    let clock = SimClock::new();
    let server = make_server("sfs.lcs.mit.edu", server_key(), &clock);
    server.set_fault_plan(plan.clone());
    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    net.set_fault_plan(plan.clone());
    net.register(server.clone());
    let journal_disk = SimDisk::new(clock.clone(), DiskParams::ibm_18es());
    journal_disk.set_fault_plan(plan.clone());
    let journal = ClientJournal::new(JournalDisk::new(journal_disk, 0));
    let path = server.path().clone();
    (
        World {
            clock,
            net,
            server,
            path,
            journal,
        },
        plan,
    )
}

/// A fresh client incarnation on the shared network, wired to the shared
/// journal — what a reboot of the client machine produces.
fn boot_client(w: &World, entropy: &[u8]) -> Arc<SfsClient> {
    let client = SfsClient::with_ephemeral(w.net.clone(), entropy, client_ephemeral());
    client.attach_journal(w.journal.clone());
    client
}

#[test]
fn restarted_client_recovers_mounts_keys_and_seqnos_from_journal() {
    let (w, plan) = build_world("seed=301,drop=10,dup=10");
    let tel = Telemetry::counters();

    // First incarnation: journal attached from boot, key installed
    // through the journaling path, a link created over the agent IPC
    // socket, real authenticated traffic.
    let client = boot_client(&w, b"recovery-client");
    client.install_agent_key(ALICE_UID, user_key());
    client.create_agent_link(ALICE_UID, "mit", &w.path.full_path());
    let file = format!("{}/home/alice/notes", w.path.full_path());
    client
        .write_file(ALICE_UID, &file, b"survives the crash")
        .unwrap();
    let (mount, _, _) = client.resolve(ALICE_UID, &file).unwrap();
    let seq_before = mount.seq_watermark();
    assert!(seq_before > 1, "authentication must have consumed seqnos");
    let records_before = w.journal.len();
    assert!(records_before > 0, "journal must have accumulated records");

    // The crash: the incarnation vanishes, taking every in-memory table
    // with it. Only the journal (and the server) survive.
    plan.note_client_crash(w.clock.now());
    drop(client);
    drop(mount);

    // Second incarnation, cold: no keys, no mounts, no caches.
    let reborn = boot_client(&w, b"recovery-client-reborn");
    reborn.set_telemetry(&tel);
    let report = reborn.recover(ALICE_UID).unwrap();
    assert_eq!(report.remounted, vec![w.path.dir_name()], "{report:?}");
    assert!(report.refused.is_empty(), "{report:?}");
    assert_eq!(report.key_mismatch_refusals, 0);
    assert!(report.agent_keys_restored >= 1, "{report:?}");
    assert!(report.agent_links_restored >= 1, "{report:?}");
    assert!(report.records_replayed as usize >= records_before);

    // The restored agent authenticates without any re-enrollment…
    assert_eq!(
        reborn.read_file(ALICE_UID, &file).unwrap(),
        b"survives the crash"
    );
    // …through the restored dynamic link too.
    assert_eq!(
        reborn
            .read_file(ALICE_UID, "/sfs/mit/home/alice/notes")
            .unwrap(),
        b"survives the crash"
    );
    assert_eq!(reborn.agent(ALICE_UID).lock().key_count(), 1);

    // Seqno monotonicity across the crash: the reborn mount resumed past
    // the journaled high-water mark, which is past every seqno the dead
    // incarnation ever signed.
    let (mount, _, _) = reborn.resolve(ALICE_UID, &file).unwrap();
    assert!(
        mount.seq_watermark() >= seq_before,
        "seqno watermark regressed across restart: {} < {}",
        mount.seq_watermark(),
        seq_before
    );

    // Recovery telemetry: replays, remounts, restored agent state.
    assert_eq!(tel.counter("client", "client.recovery.journal_replays"), 1);
    assert_eq!(tel.counter("client", "client.recovery.remounts"), 1);
    assert!(tel.counter("client", "client.recovery.agent_keys") >= 1);
    assert!(tel.counter("client", "client.recovery.agent_links") >= 1);
    assert_eq!(
        tel.counter("client", "client.recovery.key_mismatch_refusals"),
        0
    );

    // The crash shows up in the plan's event log alongside wire faults.
    assert!(plan
        .events()
        .iter()
        .any(|e| e.kind == sfs_sim::FaultKind::ClientCrash));
}

#[test]
fn recovery_refuses_mount_whose_server_key_was_swapped() {
    let (w, _plan) = build_world("seed=302");
    let second = make_server("b.example.org", second_server_key(), &w.clock);
    w.net.register(second.clone());
    let second_path = second.path().clone();

    let client = boot_client(&w, b"swap-client");
    client.install_agent_key(ALICE_UID, user_key());
    client.mount(ALICE_UID, &w.path).unwrap();
    client.mount(ALICE_UID, &second_path).unwrap();
    drop(client);

    // While the client is down, `b.example.org` is replaced by a server
    // with a *different* key — the paper's key-swap attack. The HostID in
    // the journal still names the old key.
    let impostor = make_server("b.example.org", swapped_server_key(), &w.clock);
    w.net.register(impostor);

    let reborn = boot_client(&w, b"swap-client-reborn");
    let tel = Telemetry::counters();
    reborn.set_telemetry(&tel);
    // A swapped key only surfaces after the retry budget is exhausted
    // (one mangled hello must not condemn a mount); keep the budget small
    // so the test stays fast.
    reborn.set_retry_policy(RetryPolicy {
        max_reconnects: 1,
        ..RetryPolicy::default()
    });
    let report = reborn.recover(ALICE_UID).unwrap();
    assert_eq!(
        report.remounted,
        vec![w.path.dir_name()],
        "only the honest server comes back: {report:?}"
    );
    assert_eq!(report.key_mismatch_refusals, 1, "{report:?}");
    assert_eq!(report.refused.len(), 1);
    assert_eq!(report.refused[0].0, second_path.dir_name());
    assert_eq!(
        tel.counter("client", "client.recovery.key_mismatch_refusals"),
        1
    );
    // The honest mount is fully usable…
    let file = format!("{}/home/alice/ok", w.path.full_path());
    reborn.write_file(ALICE_UID, &file, b"still here").unwrap();
    // …and the swapped HostID stays unmounted: a fresh access re-fails
    // self-certification rather than silently trusting the impostor.
    assert!(reborn.mount(ALICE_UID, &second_path).is_err());
}

#[test]
fn unjournaled_key_needs_sfskey_srp_reacquisition_after_restart() {
    // A key dropped straight into the in-memory agent (no journaling
    // path) dies with the client — by design, the journal persists only
    // what went through the journaling APIs. Getting it back is exactly
    // the paper's §2.4 travel scenario: one SRP password retrieves the
    // key from the authserver, over the same faulty network.
    let (w, _plan) = build_world("seed=303,drop=15,dup=10");
    let mut rng = XorShiftSource::new(0x51);
    sfskey::register(
        w.server.authserver(),
        "alice",
        b"correct horse battery staple",
        &user_key(),
        &mut rng,
    );

    let client = boot_client(&w, b"srp-client");
    // Deliberately bypass `install_agent_key`: an ephemeral install.
    client.agent(ALICE_UID).lock().add_key(user_key());
    let file = format!("{}/home/alice/diary", w.path.full_path());
    client.write_file(ALICE_UID, &file, b"pre-crash").unwrap();
    drop(client);

    let reborn = boot_client(&w, b"srp-client-reborn");
    let report = reborn.recover(ALICE_UID).unwrap();
    assert_eq!(report.remounted, vec![w.path.dir_name()]);
    assert_eq!(
        report.agent_keys_restored, 0,
        "an unjournaled key must not be resurrected: {report:?}"
    );
    // Without the key the client is anonymous: alice's 0700 home refuses.
    assert!(reborn.read_file(ALICE_UID, &file).is_err());

    // sfskey SRP retrieval end-to-end: password → mutual auth → sealed
    // key download → journaled install.
    let conn = w.server.accept();
    let mut fresh_agent = sfs::Agent::new();
    let result = sfskey::add(
        &conn,
        &srp_group(),
        &mut fresh_agent,
        "alice",
        b"correct horse battery staple",
        &mut rng,
    )
    .unwrap();
    let key = result.private_key.unwrap();
    assert_eq!(key.public(), user_key().public());
    reborn.install_agent_key(ALICE_UID, key);
    // A fresh session picks up the new credentials (the old session
    // already fell back to anonymous for this uid).
    reborn.remount(ALICE_UID, &w.path).unwrap();
    assert_eq!(reborn.read_file(ALICE_UID, &file).unwrap(), b"pre-crash");

    // And this time the key *was* journaled: a second crash restores it.
    drop(reborn);
    let third = boot_client(&w, b"srp-client-third");
    let report = third.recover(ALICE_UID).unwrap();
    assert_eq!(report.agent_keys_restored, 1, "{report:?}");
    assert_eq!(third.read_file(ALICE_UID, &file).unwrap(), b"pre-crash");
}

#[test]
fn recovery_replays_across_a_compaction_checkpoint() {
    // Journal GC must be invisible to recovery: fold the live journal
    // into a checkpoint mid-session, keep working, crash, and the reborn
    // client must recover state from both sides of the checkpoint.
    let (w, plan) = build_world("seed=305");
    let client = boot_client(&w, b"compact-client");
    client.install_agent_key(ALICE_UID, user_key());
    client.create_agent_link(ALICE_UID, "mit", &w.path.full_path());
    let pre = format!("{}/home/alice/pre", w.path.full_path());
    client
        .write_file(ALICE_UID, &pre, b"before checkpoint")
        .unwrap();

    // Compaction truncates to one record and preserves the folded state.
    let records_before = w.journal.len();
    assert!(records_before > 1);
    let folded_before = w.journal.replay().unwrap();
    w.journal.compact().unwrap();
    assert_eq!(w.journal.len(), 1, "compaction leaves one checkpoint");
    let folded_after = w.journal.replay().unwrap();
    assert_eq!(folded_after.mounts, folded_before.mounts);
    assert_eq!(folded_after.seq_hwm, folded_before.seq_hwm);
    assert_eq!(folded_after.agent_keys, folded_before.agent_keys);
    assert_eq!(folded_after.agent_links, folded_before.agent_links);

    // More journaled activity lands *after* the checkpoint.
    let post = format!("{}/home/alice/post", w.path.full_path());
    client
        .write_file(ALICE_UID, &post, b"after checkpoint")
        .unwrap();
    let (mount, _, _) = client.resolve(ALICE_UID, &post).unwrap();
    let seq_before = mount.seq_watermark();

    plan.note_client_crash(w.clock.now());
    drop(client);
    drop(mount);

    let reborn = boot_client(&w, b"compact-client-reborn");
    let report = reborn.recover(ALICE_UID).unwrap();
    assert_eq!(report.remounted, vec![w.path.dir_name()], "{report:?}");
    assert!(report.agent_keys_restored >= 1, "{report:?}");
    assert!(report.agent_links_restored >= 1, "{report:?}");
    // State journaled before the checkpoint…
    assert_eq!(
        reborn.read_file(ALICE_UID, &pre).unwrap(),
        b"before checkpoint"
    );
    assert_eq!(
        reborn
            .read_file(ALICE_UID, "/sfs/mit/home/alice/pre")
            .unwrap(),
        b"before checkpoint"
    );
    // …and after it both survive the crash.
    assert_eq!(
        reborn.read_file(ALICE_UID, &post).unwrap(),
        b"after checkpoint"
    );
    let (mount, _, _) = reborn.resolve(ALICE_UID, &post).unwrap();
    assert!(
        mount.seq_watermark() >= seq_before,
        "seqno watermark regressed across a checkpointed restart"
    );
}

#[test]
fn seeded_crash_recovery_reruns_identically() {
    // Byte-for-byte reproducibility of a full crash/recover cycle under
    // wire faults: identical journal record counts, identical recovery
    // reports, identical virtual-time totals, identical fault logs.
    let run = || {
        let (w, plan) = build_world("seed=304,drop=15,corrupt=10,ccrash=2s");
        let client = boot_client(&w, b"det-client");
        client.install_agent_key(ALICE_UID, user_key());
        let file = format!("{}/home/alice/det", w.path.full_path());
        client
            .write_file(ALICE_UID, &file, b"deterministic")
            .unwrap();
        // Cross the scheduled client-crash instant, then honour it.
        w.clock.advance_ns(2_500_000_000);
        assert_eq!(plan.client_epoch(w.clock.now()), 1);
        plan.note_client_crash(w.clock.now());
        drop(client);
        let reborn = boot_client(&w, b"det-client-reborn");
        let report = reborn.recover(ALICE_UID).unwrap();
        let data = reborn.read_file(ALICE_UID, &file).unwrap();
        (
            w.journal.len(),
            report.records_replayed,
            report.remounted,
            data,
            w.clock.now().as_nanos(),
            plan.events(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "crash-recovery run diverged across reruns");
}
