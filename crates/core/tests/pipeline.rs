//! Pipelined-RPC property tests: a window of in-flight calls must
//! execute **exactly once each, in order**, no matter how the wire
//! reorders, duplicates, delays, or drops the frames.
//!
//! The oracle is a batch of `Mkdir` calls with distinct names issued
//! through [`SfsClient::call_nfs_window`]:
//!
//! * at-most-once: a retransmitted frame that re-executed (instead of
//!   being answered from the server's reply cache) would return
//!   `Status::Exist` for a directory the same batch already created —
//!   so an all-success batch proves nothing ran twice;
//! * at-least-once: re-issuing the identical batch afterwards must come
//!   back all-`Exist`, proving every call of the first batch really
//!   executed;
//! * in-order: the server's sequencer admits frames strictly by channel
//!   sequence number, so replies decode against their own requests or
//!   not at all — the xid→slot matching is asserted by construction
//!   (every slot filled exactly once).
//!
//! Fault kinds are restricted to drop/dup/reorder/delay: those are the
//! ones the windowed retransmission machinery must absorb *without*
//! tearing down the session (corruption and crashes legitimately force
//! a reconnect-and-reissue, which is chaos.rs territory). Every spec is
//! run twice and must reproduce byte for byte.

use std::sync::Arc;
use std::sync::OnceLock;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{RetryPolicy, SfsClient, SfsNetwork, DEFAULT_PIPELINE_WINDOW};
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::XorShiftSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::{Nfs3Reply, Nfs3Request, Sattr3, Status};
use sfs_sim::{FaultEvent, FaultPlan, NetParams, SimClock, Transport};
use sfs_vfs::{Credentials, Vfs};

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xA5A5);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xB6B6);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn client_ephemeral() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xE9E9);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xC7C7);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

const ALICE_UID: u32 = 1000;

/// The batch is wider than the window so the engine must run several
/// exchange rounds and chunk boundaries are exercised.
const BATCH: usize = 12;

struct World {
    clock: SimClock,
    client: Arc<SfsClient>,
    server: Arc<SfsServer>,
    home: String,
}

/// Full client/server stack with `plan` wired through the network (the
/// only fault site these properties exercise).
fn build_world(plan: &FaultPlan) -> World {
    let clock = SimClock::new();
    let vfs = Vfs::new(7, clock.clone());
    let root_creds = Credentials::root();
    let home = vfs.mkdir_p("/home/alice").unwrap();
    vfs.setattr(
        &root_creds,
        home,
        sfs_vfs::SetAttr {
            uid: Some(ALICE_UID),
            gid: Some(100),
            ..Default::default()
        },
    )
    .unwrap();
    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: ALICE_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });
    let server = SfsServer::new(
        ServerConfig::new("sfs.lcs.mit.edu"),
        server_key(),
        vfs,
        auth,
        SfsPrg::from_entropy(b"pipeline-server"),
    );
    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    net.set_fault_plan(plan.clone());
    net.register(server.clone());
    let client = SfsClient::with_ephemeral(net, b"pipeline-client", client_ephemeral());
    client.agent(ALICE_UID).lock().add_key(user_key());
    // These properties assert that *retransmission alone* rides out the
    // wire faults (reconnects == 0 below), so give it enough budget that
    // even a 30% drop rate can't exhaust it before the seeded plan
    // relents.
    client.set_retry_policy(RetryPolicy {
        max_retransmits: 32,
        ..RetryPolicy::default()
    });
    let home = format!("{}/home/alice", server.path().full_path());
    World {
        clock,
        client,
        server,
        home,
    }
}

fn mkdir_batch(dir_fh: &sfs_nfs3::FileHandle, tag: &str) -> Vec<Nfs3Request> {
    (0..BATCH)
        .map(|i| Nfs3Request::Mkdir {
            dir: dir_fh.clone(),
            name: format!("{tag}-{i:02}"),
            attrs: Sattr3::default(),
        })
        .collect()
}

/// Everything one seeded run produced, for reproducibility comparison.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    total_ns: u64,
    events: Vec<FaultEvent>,
    replies: Vec<String>,
    /// Reconnects forced after the mount was established.
    mid_batch_reconnects: u64,
}

/// Runs the exactly-once oracle under `spec` at `window` and returns
/// the run's fingerprint. Panics on any violation.
fn exactly_once(spec: &str, window: usize) -> Outcome {
    let plan = FaultPlan::from_spec(spec).unwrap();
    let w = build_world(&plan);
    w.client.set_pipeline_window(window);
    let (mount, dir_fh, _) = w.client.resolve(ALICE_UID, &w.home).unwrap();
    // Mount establishment (key negotiation + SRP auth) may legitimately
    // need a reconnect under heavy drops — the handshake has no reply
    // cache to fall back on. The exactly-once property targets the
    // windowed data path, so score reconnects from here on.
    let reconnects_at_mount = mount.reconnects();

    // First batch: all 12 must succeed. An Exist here means a
    // retransmitted frame re-executed instead of hitting the reply
    // cache — the at-most-once property is broken.
    let reqs = mkdir_batch(&dir_fh, "once");
    let replies = w.client.call_nfs_window(&mount, ALICE_UID, &reqs).unwrap();
    assert_eq!(replies.len(), BATCH);
    let mid_batch_reconnects = mount.reconnects() - reconnects_at_mount;
    for (i, reply) in replies.iter().enumerate() {
        // The unconditional at-most-once property: as long as the
        // session survived, retransmitted frames must hit the reply
        // cache, never re-execute. Only a reconnect-and-reissue (a
        // stray frame killed the session mid-batch) may legitimately
        // surface Exist for its own already-executed calls.
        let ok = matches!(reply, Nfs3Reply::Mkdir { .. })
            || (mid_batch_reconnects > 0
                && matches!(
                    reply,
                    Nfs3Reply::Error {
                        status: Status::Exist,
                        ..
                    }
                ));
        assert!(
            ok,
            "call {i} of the windowed batch did not execute exactly once \
             under {spec:?} (window {window}): {reply:?}"
        );
    }

    // Second, identical batch: every call must now fail with Exist,
    // proving the first batch's calls all actually executed
    // (at-least-once), and proving these twelve executed too.
    let replay = w.client.call_nfs_window(&mount, ALICE_UID, &reqs).unwrap();
    for (i, reply) in replay.iter().enumerate() {
        assert!(
            matches!(
                reply,
                Nfs3Reply::Error {
                    status: Status::Exist,
                    ..
                }
            ),
            "re-issued call {i} should have found its directory already \
             present under {spec:?} (window {window}): {reply:?}"
        );
    }

    Outcome {
        total_ns: w.clock.now().as_nanos(),
        events: plan.events(),
        replies: replies.iter().map(|r| format!("{r:?}")).collect(),
        mid_batch_reconnects,
    }
}

/// Seeded wire-fault plans: drop/dup/reorder/delay alone and in
/// combination, at escalating intensities.
const WIRE_SPECS: &[&str] = &[
    "seed=501,drop=30",
    "seed=502,dup=35",
    "seed=503,reorder=45",
    "seed=504,delay=150,delay_ns=3ms",
    "seed=505,drop=20,dup=20",
    "seed=506,reorder=30,delay=100,delay_ns=1ms",
    "seed=507,drop=15,dup=15,reorder=25,delay=80,delay_ns=2ms",
];

#[test]
fn windowed_batches_execute_exactly_once_under_wire_faults() {
    for spec in WIRE_SPECS {
        let a = exactly_once(spec, DEFAULT_PIPELINE_WINDOW);
        let b = exactly_once(spec, DEFAULT_PIPELINE_WINDOW);
        assert_eq!(a, b, "windowed run diverged across reruns of {spec:?}");
        assert!(
            !a.events.is_empty(),
            "{spec:?} injected nothing — the property was vacuous"
        );
        // On these seeded plans the window machinery rides out every
        // fault by retransmission alone: the session never dies, so
        // every first-batch reply was a success (asserted above).
        assert_eq!(
            a.mid_batch_reconnects, 0,
            "wire faults in {spec:?} must not force the windowed data \
             path to reconnect"
        );
    }
}

#[test]
fn full_reply_cache_evicts_oldest_first_without_breaking_exactly_once() {
    // The server keeps 256 sealed replies for retransmission. Drive well
    // over that many sequenced calls through one session on a clean wire
    // and verify (a) the cache actually evicted (counter + size gauge),
    // and (b) exactly-once semantics survived: every distinct Mkdir
    // succeeded once, and a full re-issue comes back all-Exist. Eviction
    // is oldest-first by channel sequence number, so the recent replies a
    // client could still legitimately retransmit for stay answerable.
    const CALLS: usize = 280; // > REPLY_CACHE_CAPACITY (256)
    let plan = FaultPlan::from_spec("seed=0").unwrap();
    let w = build_world(&plan);
    let tel = sfs_telemetry::Telemetry::counters();
    w.server.set_telemetry(&tel);
    w.client.set_pipeline_window(8);
    let (mount, dir_fh, _) = w.client.resolve(ALICE_UID, &w.home).unwrap();
    let reqs: Vec<Nfs3Request> = (0..CALLS)
        .map(|i| Nfs3Request::Mkdir {
            dir: dir_fh.clone(),
            name: format!("evict-{i:03}"),
            attrs: Sattr3::default(),
        })
        .collect();
    let replies = w.client.call_nfs_window(&mount, ALICE_UID, &reqs).unwrap();
    assert_eq!(replies.len(), CALLS);
    for (i, reply) in replies.iter().enumerate() {
        assert!(
            matches!(reply, Nfs3Reply::Mkdir { .. }),
            "call {i} did not execute exactly once: {reply:?}"
        );
    }
    // The first batch alone overflows the cache.
    let evicted_after_first = tel.counter("server", "replycache.evictions");
    assert!(
        evicted_after_first >= (CALLS - 256) as u64,
        "expected at least {} evictions, saw {evicted_after_first}",
        CALLS - 256
    );
    assert_eq!(tel.gauge("server", "replycache.size"), 256);

    // Re-issue the identical batch: all-Exist proves every original call
    // executed, and the session survived the evictions — the cache only
    // dropped replies too old for any in-window retransmission to want.
    let replay = w.client.call_nfs_window(&mount, ALICE_UID, &reqs).unwrap();
    for (i, reply) in replay.iter().enumerate() {
        assert!(
            matches!(
                reply,
                Nfs3Reply::Error {
                    status: Status::Exist,
                    ..
                }
            ),
            "re-issued call {i} should have found its directory: {reply:?}"
        );
    }
    assert_eq!(mount.reconnects(), 0, "eviction must not kill the session");
    assert_eq!(tel.gauge("server", "replycache.size"), 256);
    assert!(tel.counter("server", "replycache.evictions") > evicted_after_first);
}

#[test]
fn every_window_depth_preserves_exactly_once() {
    // The nastiest combined spec, swept across window depths including
    // the blocking degenerate case.
    let spec = "seed=507,drop=15,dup=15,reorder=25,delay=80,delay_ns=2ms";
    for window in [1usize, 2, 3, 8, 16] {
        exactly_once(spec, window);
    }
}

#[test]
fn window_one_matches_blocking_replies() {
    // Window 1 through the windowed entry point and the plain blocking
    // path must produce identical reply streams on a clean wire.
    let plan = FaultPlan::from_spec("seed=0").unwrap();

    let w = build_world(&plan);
    w.client.set_pipeline_window(1);
    let (mount, dir_fh, _) = w.client.resolve(ALICE_UID, &w.home).unwrap();
    let reqs = mkdir_batch(&dir_fh, "parity");
    let windowed = w.client.call_nfs_window(&mount, ALICE_UID, &reqs).unwrap();

    let w2 = build_world(&plan);
    let (mount2, dir_fh2, _) = w2.client.resolve(ALICE_UID, &w2.home).unwrap();
    let reqs2 = mkdir_batch(&dir_fh2, "parity");
    let blocking: Vec<Nfs3Reply> = reqs2
        .iter()
        .map(|r| w2.client.call_nfs(&mount2, ALICE_UID, r).unwrap())
        .collect();

    let fp = |rs: &[Nfs3Reply]| rs.iter().map(|r| format!("{r:?}")).collect::<Vec<_>>();
    assert_eq!(fp(&windowed), fp(&blocking));
}

#[test]
fn write_behind_barrier_roundtrips_under_wire_faults() {
    // Streaming writes ride the write-behind queue; the barrier at
    // read-back must flush them in order even while the wire misbehaves.
    let plan = FaultPlan::from_spec("seed=509,drop=20,reorder=30,delay=60,delay_ns=1ms").unwrap();
    let w = build_world(&plan);
    w.client.set_pipeline_window(DEFAULT_PIPELINE_WINDOW);
    let path = format!("{}/stream", w.home);
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    w.client.write_file(ALICE_UID, &path, &data).unwrap();
    assert_eq!(
        w.client.read_file(ALICE_UID, &path).unwrap(),
        data,
        "write-behind + barrier lost or reordered bytes"
    );
}
