//! Multi-client cache-coherence oracle: 2–4 clients and one server share
//! a seeded fault plan, and every read is checked against the set of
//! values *legally observable* given the write history, the server's
//! lease duration, and piggybacked invalidations.
//!
//! The oracle's rules, per ISSUE and paper §3.3 (leases + invalidation
//! callbacks are the enhanced-caching extension):
//!
//! 1. **validity** — an observed file size must be one the write history
//!    actually produced;
//! 2. **monotonicity** — one client never observes a file shrink;
//! 3. **lease bound** — a stale value may be served only while the lease
//!    granted before the overwriting commit could still be live: a stale
//!    read later than `t_commit(next) + lease_ns` is a failure;
//! 4. **invalidation bound** (fault-free plans only, where delivery is
//!    guaranteed) — once a client completes any round trip after a
//!    commit, the piggybacked invalidation has arrived, so a subsequent
//!    stale read from cache is a failure. Under faults a reply carrying
//!    the invalidation can be legitimately lost and the lease is the
//!    backstop, so rule 4 is not applied there.
//!
//! Versions are file *sizes*, verified by *content hash*: every write
//! appends exactly one byte (a deterministic function of file and
//! offset) at the committed size, so duplicated or re-executed writes
//! (fault-plan duplicates, post-reconnect reissues) are idempotent and
//! the version sequence stays strictly increasing. Each commit also
//! records the SHA-1 of the full expected contents, and every scored
//! read includes a wire READ whose bytes must hash-match the commit of
//! their length — a size alone can be right while the content is torn
//! or mixed across versions, and the hash catches exactly that.
//!
//! Scheduled client crash-restarts (`ccrash=`) kill a client mid-run:
//! the incarnation is dropped, a cold one is rebuilt from the journal via
//! [`SfsClient::recover`], and the oracle keeps scoring its reads —
//! recovery must come back with cold caches, so a recovered client can
//! never serve a pre-crash stale value.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::sync::OnceLock;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{Mount, SfsClient, SfsNetwork, DEFAULT_PIPELINE_WINDOW};
use sfs::journal::ClientJournal;
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::{RandomSource, XorShiftSource};
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::sha1::sha1;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{FileHandle, Nfs3Reply, Nfs3Request, StableHow};
use sfs_proto::channel::SuiteId;
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_sim::{
    DiskParams, FaultEvent, FaultKind, FaultPlan, JournalDisk, NetParams, SimClock, SimDisk,
    Transport,
};
use sfs_vfs::{Credentials, Vfs};

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xA5A5);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xB6B6);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn client_ephemeral() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xE9E9);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xC7C7);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

const ALICE_UID: u32 = 1000;
/// Short lease so expiry is actually exercised inside a few-second run
/// (the 30s default would make every stale read trivially legal).
const LEASE_NS: u64 = 250_000_000;
/// Virtual time between workload operations.
const OP_GAP_NS: u64 = 60_000_000;
const FILES: usize = 3;
const OPS: usize = 36;

/// The byte version `offset + 1` of file `f` appends. A function of
/// (file, offset) only, so fault-plan duplicates and post-reconnect
/// reissues rewrite the same byte — idempotent — while the content still
/// varies along the file, which is what gives the hash oracle teeth.
fn version_byte(f: usize, offset: u64) -> u8 {
    b'a' + ((f as u64 + offset) % 26) as u8
}

/// One committed version of a file: the size it reached, the SHA-1 of
/// its full expected contents, when it committed, and each client's
/// completed-round-trip count at commit (rule 4's reference point — any
/// later completed round trip carried the invalidation).
struct Commit {
    size: u64,
    hash: [u8; 20],
    t_ns: u64,
    rt_at_commit: Vec<u64>,
}

struct Harness {
    clock: SimClock,
    net: Arc<SfsNetwork>,
    plan: FaultPlan,
    path: SelfCertifyingPath,
    server: Arc<SfsServer>,
    journals: Vec<ClientJournal>,
    clients: Vec<Arc<SfsClient>>,
    mounts: Vec<Arc<Mount>>,
    fhs: Vec<FileHandle>,
    history: Vec<Vec<Commit>>,
    /// Expected full contents per file, maintained alongside `history`.
    contents: Vec<Vec<u8>>,
    last_seen: Vec<Vec<u64>>,
    crashes_done: usize,
    violations: Vec<String>,
    /// Whether rule 4 applies (no wire faults that can eat a reply).
    guaranteed_delivery: bool,
    /// Pipeline window applied to every client incarnation.
    window: usize,
    /// Cipher suite offered by every client incarnation (None: the
    /// default paper-baseline offer).
    suite: Option<SuiteId>,
}

fn build_harness(spec: &str, n_clients: usize, guaranteed_delivery: bool) -> Harness {
    build_harness_windowed(
        spec,
        n_clients,
        guaranteed_delivery,
        DEFAULT_PIPELINE_WINDOW,
    )
}

/// [`build_harness`] with an explicit pipeline window applied to every
/// client incarnation, crash-reborn ones included.
fn build_harness_windowed(
    spec: &str,
    n_clients: usize,
    guaranteed_delivery: bool,
    window: usize,
) -> Harness {
    build_harness_suited(spec, n_clients, guaranteed_delivery, window, None)
}

/// [`build_harness_windowed`] with an explicit cipher-suite offer made
/// by every client incarnation, crash-reborn ones included.
fn build_harness_suited(
    spec: &str,
    n_clients: usize,
    guaranteed_delivery: bool,
    window: usize,
    suite: Option<SuiteId>,
) -> Harness {
    let plan = FaultPlan::from_spec(spec).unwrap();
    let clock = SimClock::new();
    let vfs = Vfs::new(7, clock.clone());
    let root_creds = Credentials::root();
    let public = vfs.mkdir_p("/public").unwrap();
    vfs.setattr(
        &root_creds,
        public,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            ..Default::default()
        },
    )
    .unwrap();
    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: ALICE_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });
    let mut config = ServerConfig::new("sfs.lcs.mit.edu");
    config.lease_ns = LEASE_NS;
    let server = SfsServer::new(
        config,
        server_key(),
        vfs,
        auth,
        SfsPrg::from_entropy(b"coherence-server"),
    );
    server.set_fault_plan(plan.clone());
    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    net.set_fault_plan(plan.clone());
    net.register(server.clone());
    let path = server.path().clone();

    let mut journals = Vec::new();
    let mut clients = Vec::new();
    let mut mounts = Vec::new();
    for i in 0..n_clients {
        let disk = SimDisk::new(clock.clone(), DiskParams::ibm_18es());
        disk.set_fault_plan(plan.clone());
        let journal = ClientJournal::new(JournalDisk::new(disk, (i as u64) << 32));
        let client = SfsClient::with_ephemeral(
            net.clone(),
            format!("coh-client-{i}-epoch-0").as_bytes(),
            client_ephemeral(),
        );
        client.set_pipeline_window(window);
        if let Some(s) = suite {
            client.set_suite_offer(&[s]);
        }
        client.attach_journal(journal.clone());
        client.install_agent_key(ALICE_UID, user_key());
        let mount = client.mount(ALICE_UID, &path).unwrap();
        journals.push(journal);
        clients.push(client);
        mounts.push(mount);
    }

    // Client 0 creates the version-counter files (size 0 = version 0).
    let mut fhs = Vec::new();
    let mut history = Vec::new();
    for f in 0..FILES {
        let p = format!("{}/public/coh-{f}", path.full_path());
        clients[0].write_file(ALICE_UID, &p, b"").unwrap();
        let (_, fh, _) = clients[0].resolve(ALICE_UID, &p).unwrap();
        fhs.push(fh);
        history.push(vec![Commit {
            size: 0,
            hash: sha1(b""),
            t_ns: clock.now().as_nanos(),
            rt_at_commit: mounts.iter().map(|m| m.round_trips()).collect(),
        }]);
    }

    Harness {
        clock,
        net,
        plan,
        path,
        server,
        journals,
        clients,
        mounts,
        fhs,
        history,
        contents: vec![Vec::new(); FILES],
        last_seen: vec![vec![0; FILES]; n_clients],
        crashes_done: 0,
        violations: Vec::new(),
        guaranteed_delivery,
        window,
        suite,
    }
}

impl Harness {
    /// Honours any scheduled client-crash instants the clock has crossed:
    /// the victim incarnation is dropped and a cold one recovers from the
    /// journal.
    fn honour_client_crashes(&mut self) {
        while self.crashes_done < self.plan.client_epoch(self.clock.now()) as usize {
            let victim = self.crashes_done % self.clients.len();
            self.plan.note_client_crash(self.clock.now());
            self.crashes_done += 1;
            let reborn = SfsClient::with_ephemeral(
                self.net.clone(),
                format!("coh-client-{victim}-epoch-{}", self.crashes_done).as_bytes(),
                client_ephemeral(),
            );
            reborn.set_pipeline_window(self.window);
            if let Some(s) = self.suite {
                reborn.set_suite_offer(&[s]);
            }
            reborn.attach_journal(self.journals[victim].clone());
            let report = reborn.recover(ALICE_UID).unwrap();
            assert_eq!(
                report.remounted,
                vec![self.path.dir_name()],
                "recovery must re-establish the journaled mount: {report:?}"
            );
            self.mounts[victim] = reborn.mount(ALICE_UID, &self.path).unwrap();
            self.clients[victim] = reborn;
        }
    }

    /// Appends one byte to `f` through client `i` and records the commit.
    fn write(&mut self, i: usize, f: usize) {
        let offset = self.history[f].last().unwrap().size;
        let byte = version_byte(f, offset);
        let reply = self.clients[i]
            .call_nfs(
                &self.mounts[i],
                ALICE_UID,
                &Nfs3Request::Write {
                    fh: self.fhs[f].clone(),
                    offset,
                    stable: StableHow::FileSync,
                    data: vec![byte],
                },
            )
            .unwrap();
        assert!(
            matches!(reply, Nfs3Reply::Write { count: 1, .. }),
            "append must write exactly one byte: {reply:?}"
        );
        self.contents[f].push(byte);
        self.history[f].push(Commit {
            size: offset + 1,
            hash: sha1(&self.contents[f]),
            t_ns: self.clock.now().as_nanos(),
            rt_at_commit: self.mounts.iter().map(|m| m.round_trips()).collect(),
        });
    }

    /// Reads `f`'s size through client `i` (cache-aware getattr) and
    /// scores it against the oracle rules.
    fn read_and_check(&mut self, i: usize, f: usize) {
        let rt_before = self.mounts[i].round_trips();
        let t_read = self.clock.now().as_nanos();
        let attr = self.clients[i]
            .getattr(&self.mounts[i], ALICE_UID, &self.fhs[f])
            .unwrap();
        let s = attr.size;
        let latest = self.history[f].last().unwrap().size;
        // Rule 1: the size must be one the history produced.
        if self.history[f].iter().all(|c| c.size != s) {
            self.violations.push(format!(
                "client {i} file {f}: observed size {s} never committed (latest {latest})"
            ));
            return;
        }
        // Rule 2: no client ever sees a file shrink.
        if s < self.last_seen[i][f] {
            self.violations.push(format!(
                "client {i} file {f}: size went backwards {} -> {s}",
                self.last_seen[i][f]
            ));
        }
        self.last_seen[i][f] = s;
        if s == latest {
            return;
        }
        // The read is stale: the commit that obsoleted `s`.
        let next = &self.history[f][(s + 1) as usize];
        // Rule 3: every lease covering `s` was granted before `next`
        // committed, so none survives past `next.t_ns + lease`.
        if t_read > next.t_ns + LEASE_NS {
            self.violations.push(format!(
                "client {i} file {f}: stale size {s} served {}ns past lease expiry",
                t_read - (next.t_ns + LEASE_NS)
            ));
        }
        // Rule 4: with guaranteed delivery, a completed round trip after
        // the commit carried the invalidation.
        if self.guaranteed_delivery && rt_before > next.rt_at_commit[i] {
            self.violations.push(format!(
                "client {i} file {f}: stale size {s} served after a post-commit \
                 round trip delivered the invalidation"
            ));
        }
    }

    /// Reads `f`'s full contents over the wire through client `i` and
    /// scores them against the hash oracle: whatever length comes back
    /// must be a committed version, and the bytes must hash-match that
    /// commit — a right-sized reply with mixed-version or corrupted
    /// content is exactly the torn write a size-only oracle cannot see.
    fn wire_read_and_check(&mut self, i: usize, f: usize) {
        let t_read = self.clock.now().as_nanos();
        let reply = self.clients[i]
            .call_nfs(
                &self.mounts[i],
                ALICE_UID,
                &Nfs3Request::Read {
                    fh: self.fhs[f].clone(),
                    offset: 0,
                    count: 8192,
                },
            )
            .unwrap();
        let data = match reply {
            Nfs3Reply::Read { data, .. } => data,
            other => panic!("unexpected read reply: {other:?}"),
        };
        let s = data.len() as u64;
        let latest = self.history[f].last().unwrap().size;
        // Rule 1 (strengthened): the length must be a committed version
        // AND the bytes must be that version's bytes.
        match self.history[f].iter().find(|c| c.size == s) {
            None => {
                self.violations.push(format!(
                    "client {i} file {f}: wire read returned {s} bytes, a length \
                     never committed (latest {latest})"
                ));
                return;
            }
            Some(c) if c.hash != sha1(&data) => {
                self.violations.push(format!(
                    "client {i} file {f}: wire read of {s} bytes does not hash-match \
                     committed version {s} — torn or mixed-version content"
                ));
                return;
            }
            Some(_) => {}
        }
        // Rule 2: the wire observation participates in monotonicity too.
        if s < self.last_seen[i][f] {
            self.violations.push(format!(
                "client {i} file {f}: wire read went backwards {} -> {s}",
                self.last_seen[i][f]
            ));
        }
        self.last_seen[i][f] = s;
        // Rule 3: a stale wire read is bounded by the lease like any other.
        if s < latest {
            let next = &self.history[f][(s + 1) as usize];
            if t_read > next.t_ns + LEASE_NS {
                self.violations.push(format!(
                    "client {i} file {f}: stale wire read of size {s} served \
                     {}ns past lease expiry",
                    t_read - (next.t_ns + LEASE_NS)
                ));
            }
        }
    }

    /// Drives the seeded workload to completion and returns the oracle's
    /// verdict plus everything needed for reproducibility comparison.
    fn run(mut self, seed: u64) -> RunOutcome {
        let mut rng = XorShiftSource::new(seed | 1);
        let mut draw = move || {
            let mut b = [0u8; 8];
            rng.fill(&mut b);
            u64::from_le_bytes(b)
        };
        for _ in 0..OPS {
            self.clock.advance_ns(OP_GAP_NS);
            self.honour_client_crashes();
            let i = (draw() as usize) % self.clients.len();
            let f = (draw() as usize) % FILES;
            if draw() % 10 < 3 {
                self.write(i, f);
            } else {
                self.read_and_check(i, f);
                self.wire_read_and_check(i, f);
            }
        }
        RunOutcome {
            violations: self.violations,
            total_ns: self.clock.now().as_nanos(),
            events: self.plan.events(),
            sizes: self
                .history
                .iter()
                .map(|h| h.last().unwrap().size)
                .collect(),
            journal_records: self.journals.iter().map(|j| j.len()).collect(),
            crashes: self.crashes_done,
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    violations: Vec<String>,
    total_ns: u64,
    events: Vec<FaultEvent>,
    sizes: Vec<u64>,
    journal_records: Vec<usize>,
    crashes: usize,
}

fn run_spec(spec: &str, seed: u64, n_clients: usize, guaranteed: bool) -> RunOutcome {
    build_harness(spec, n_clients, guaranteed).run(seed)
}

fn run_spec_windowed(
    spec: &str,
    seed: u64,
    n_clients: usize,
    guaranteed: bool,
    window: usize,
) -> RunOutcome {
    build_harness_windowed(spec, n_clients, guaranteed, window).run(seed)
}

/// ≥20 seeded plans mixing every fault kind the simulator knows,
/// including simultaneous client+server crashes. `(spec, n_clients)`.
const COHERENCE_SPECS: &[(&str, usize)] = &[
    ("seed=401,drop=20", 2),
    ("seed=402,dup=25", 3),
    ("seed=403,reorder=25", 2),
    ("seed=404,corrupt=15", 2),
    ("seed=405,delay=150,delay_ns=2ms", 3),
    ("seed=406,partition=500ms+1s", 2),
    ("seed=407,crash=900ms", 3),
    ("seed=408,syncfail=200", 2),
    ("seed=409,ccrash=800ms", 2),
    // Simultaneous client and server crash at the same instant.
    ("seed=410,ccrash=700ms,crash=700ms", 2),
    ("seed=411,drop=15,dup=10,ccrash=900ms", 3),
    ("seed=412,corrupt=10,ccrash=600ms,crash=1500ms", 2),
    ("seed=413,drop=10,reorder=15,delay=80,delay_ns=1ms", 4),
    // Simultaneous again, later in the run.
    ("seed=414,crash=1s,ccrash=1s", 3),
    ("seed=415,drop=10,syncfail=150,ccrash=1200ms", 2),
    ("seed=416,dup=15,corrupt=10,crash=800ms", 2),
    ("seed=417,partition=600ms+800ms,ccrash=1600ms", 2),
    (
        "seed=418,drop=25,dup=10,reorder=10,corrupt=10,delay=60,delay_ns=1ms",
        3,
    ),
    ("seed=419,ccrash=600ms,ccrash=1500ms,drop=10", 2),
    ("seed=420,crash=700ms,ccrash=1300ms,dup=10", 3),
    (
        "seed=421,drop=15,corrupt=10,crash=1s,ccrash=1s,syncfail=100",
        2,
    ),
];

#[test]
fn coherence_oracle_passes_over_all_seeded_fault_plans() {
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut crashes = 0;
    for (spec, n) in COHERENCE_SPECS {
        let out = run_spec(spec, 0x5EED, *n, false);
        assert!(
            out.violations.is_empty(),
            "coherence violated under {spec:?}: {:#?}",
            out.violations
        );
        seen.extend(out.events.iter().map(|e| e.kind.label()));
        crashes += out.crashes;
    }
    assert!(crashes >= 8, "the battery must exercise client restarts");
    // Across the battery every fault kind shows up, client crashes
    // included.
    for kind in [
        FaultKind::Drop,
        FaultKind::Duplicate,
        FaultKind::Reorder,
        FaultKind::Corrupt,
        FaultKind::Delay,
        FaultKind::Partition,
        FaultKind::ServerCrash,
        FaultKind::ClientCrash,
        FaultKind::DiskSyncFail,
    ] {
        assert!(
            seen.contains(kind.label()),
            "no coherence plan injected {:?}; saw {seen:?}",
            kind.label()
        );
    }
}

fn run_spec_cores(spec: &str, seed: u64, n_clients: usize, cores: usize) -> RunOutcome {
    let h = build_harness(spec, n_clients, false);
    h.server.set_cores(cores);
    h.run(seed)
}

#[test]
fn multicore_dispatch_causes_no_semantic_drift_in_the_oracle_battery() {
    // The full 21-plan battery reruns with the shard engine installed at
    // cores ∈ {1, 4}. The blocking oracle workload must be *byte-for-byte*
    // identical to the pre-shard baseline — same virtual-time total, same
    // fault log, same sizes, journals, and crash count — because the
    // engine only reschedules windowed traffic and the sharded reply
    // cache is semantically identical to the flat map it replaced (the
    // dup/drop plans replay retransmissions through it at 4 shards).
    for (spec, n) in COHERENCE_SPECS {
        let baseline = run_spec(spec, 0x5EED, *n, false);
        assert!(baseline.violations.is_empty(), "{spec:?}");
        for cores in [1usize, 4] {
            let out = run_spec_cores(spec, 0x5EED, *n, cores);
            assert_eq!(
                out, baseline,
                "op log drifted from the pre-shard baseline under {spec:?} \
                 at cores={cores}"
            );
        }
    }
}

#[test]
fn negotiated_chacha_suite_passes_the_oracle_battery_at_both_core_counts() {
    // The full 21-plan battery reruns with every client incarnation
    // offering ChaCha20-Poly1305 (negotiated, not assumed: a stripped
    // offer would fail key confirmation and show up as violations or a
    // hang) at cores ∈ {1, 4}. Frame sizes differ from the ARC4 baseline
    // (16-byte tag vs 20-byte MAC) so virtual-time totals are not
    // compared — the oracle's coherence rules and per-configuration
    // determinism are the invariants.
    for (spec, n) in COHERENCE_SPECS {
        let mut per_core = Vec::new();
        for cores in [1usize, 4] {
            let h = build_harness_suited(
                spec,
                *n,
                false,
                DEFAULT_PIPELINE_WINDOW,
                Some(SuiteId::ChaCha20Poly1305),
            );
            h.server.set_cores(cores);
            let out = h.run(0x5EED);
            assert!(
                out.violations.is_empty(),
                "coherence violated under {spec:?} with chacha at cores={cores}: {:#?}",
                out.violations
            );
            per_core.push(out);
        }
        // The shard engine must not perturb the blocking oracle workload
        // under the negotiated suite either.
        assert_eq!(
            per_core[0], per_core[1],
            "chacha oracle run drifted between core counts under {spec:?}"
        );
    }
}

#[test]
fn multicore_dispatch_is_deterministic_across_reruns() {
    for (spec, n) in [
        ("seed=409,ccrash=800ms", 2usize),
        (
            "seed=418,drop=25,dup=10,reorder=10,corrupt=10,delay=60,delay_ns=1ms",
            3,
        ),
    ] {
        let a = run_spec_cores(spec, 0x5EED, n, 4);
        let b = run_spec_cores(spec, 0x5EED, n, 4);
        assert_eq!(a, b, "4-core run diverged across reruns of {spec:?}");
    }
}

#[test]
fn windowed_streams_are_coherent_under_multicore_dispatch() {
    // The engine-exercising variant: streamed write-behind/read-ahead
    // traffic goes through the windowed exchange, so seal/open really is
    // scheduled across cores here (asserted via core busy time). The
    // bytes must survive the faulty wire at every core count, and each
    // configuration must reproduce exactly.
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    for cores in [1usize, 4] {
        let mut elapsed = Vec::new();
        for _ in 0..2 {
            let h = build_harness_windowed(
                "seed=453,reorder=20,dup=10",
                2,
                false,
                DEFAULT_PIPELINE_WINDOW,
            );
            h.server.set_cores(cores);
            let p = format!("{}/public/stream", h.path.full_path());
            h.clients[0].write_file(ALICE_UID, &p, &data).unwrap();
            assert_eq!(
                h.clients[1].read_file(ALICE_UID, &p).unwrap(),
                data,
                "cross-client stream lost bytes at cores={cores}"
            );
            let engine = h.server.shard_engine().expect("engine installed");
            assert!(
                engine.frames_scheduled() > 0,
                "the shard engine never scheduled any work"
            );
            elapsed.push(h.clock.now().as_nanos());
        }
        assert_eq!(
            elapsed[0], elapsed[1],
            "multicore stream diverged across reruns at cores={cores}"
        );
    }
}

#[test]
fn coherence_runs_reproduce_byte_for_byte() {
    // A subset of plans — including client crash-restarts — rerun
    // identically: same virtual-time totals, same fault logs, same final
    // sizes, same journal record counts, same (empty) violation list.
    for (spec, n) in [
        ("seed=409,ccrash=800ms", 2usize),
        ("seed=410,ccrash=700ms,crash=700ms", 2),
        (
            "seed=418,drop=25,dup=10,reorder=10,corrupt=10,delay=60,delay_ns=1ms",
            3,
        ),
    ] {
        let a = run_spec(spec, 0x5EED, n, false);
        let b = run_spec(spec, 0x5EED, n, false);
        assert_eq!(a, b, "coherence run diverged across reruns of {spec:?}");
    }
}

#[test]
fn oracle_detects_deliberately_torn_write() {
    // Self-test for the content-hash rule: corrupt a file's bytes behind
    // the protocol's back without changing its size. The size oracle is
    // blind to this by construction; the hash oracle must flag it.
    let script = |torn: bool| -> Vec<String> {
        let mut h = build_harness("seed=451", 2, true);
        h.write(0, 0);
        h.write(0, 0);
        if torn {
            // Reach into the server's VFS as root and flip the first
            // byte — same size, wrong content, like a torn or misdirected
            // write on the server's disk.
            let vfs = h.server.vfs();
            let root = Credentials::root();
            let (public, _) = vfs.lookup(&root, vfs.root(), "public").unwrap();
            let (ino, _) = vfs.lookup(&root, public, "coh-0").unwrap();
            vfs.write(&root, ino, 0, b"Z", true).unwrap();
        }
        h.read_and_check(1, 0);
        h.wire_read_and_check(1, 0);
        h.violations
    };

    let violations = script(true);
    assert!(
        violations.iter().any(|v| v.contains("hash-match")),
        "the oracle failed to flag the torn write: {violations:#?}"
    );
    // Control: the identical sequence without corruption is coherent.
    let violations = script(false);
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn oracle_detects_deliberately_injected_stale_read() {
    // Self-test: a client that drops invalidation callbacks on the floor
    // is exactly the stale-read bug the oracle exists to catch. Clean
    // plan (delivery guaranteed), so rule 4 applies. The same scripted
    // sequence runs twice — once with the bug, once without — and the
    // oracle must flag exactly the buggy run.
    let script = |buggy: bool| -> (u64, Vec<String>) {
        let h = build_harness("seed=450", 2, true);
        let (a, b) = (&h.clients[0], &h.clients[1]);
        let (ma, mb) = (&h.mounts[0], &h.mounts[1]);
        let fh = &h.fhs[0];
        let fh_other = &h.fhs[1];
        let mut violations = Vec::new();

        // B caches file 0 at version 0.
        let attr = b.getattr(mb, ALICE_UID, fh).unwrap();
        assert_eq!(attr.size, 0);
        // A appends: version 1 commits; B's invalidation is queued.
        let reply = a
            .call_nfs(
                ma,
                ALICE_UID,
                &Nfs3Request::Write {
                    fh: fh.clone(),
                    offset: 0,
                    stable: StableHow::FileSync,
                    data: vec![b'x'],
                },
            )
            .unwrap();
        assert!(matches!(reply, Nfs3Reply::Write { count: 1, .. }));
        let rt_at_commit = mb.round_trips();

        // The (conditional) bug: B ignores the piggybacked invalidation
        // its next round trip delivers.
        b.set_ignore_invalidations(buggy);
        let _ = b.getattr(mb, ALICE_UID, fh_other).unwrap(); // cache miss → wire
        assert!(
            mb.round_trips() > rt_at_commit,
            "the probe RPC must complete a post-commit round trip"
        );
        // B re-reads file 0; rule 4 scores the observation.
        let rt_before = mb.round_trips();
        let seen = b.getattr(mb, ALICE_UID, fh).unwrap();
        if seen.size != 1 && rt_before > rt_at_commit {
            violations.push(format!(
                "client 1 file 0: stale size {} served after a post-commit \
                 round trip delivered the invalidation",
                seen.size
            ));
        }
        (seen.size, violations)
    };

    let (stale_size, violations) = script(true);
    assert_eq!(
        stale_size, 0,
        "the injected bug must actually cause a stale read"
    );
    assert!(
        !violations.is_empty(),
        "the oracle failed to flag the injected stale read"
    );

    // Control: the identical sequence without the bug is coherent — the
    // invalidation lands, the cache entry is dropped, the read refetches.
    let (fresh_size, violations) = script(false);
    assert_eq!(fresh_size, 1, "with callbacks applied the read is fresh");
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn coherence_oracle_holds_at_every_pipeline_window() {
    // The oracle's rules are window-agnostic: whether a client keeps one
    // or sixteen calls in flight, committed sizes stay monotone and
    // lease-bounded. Swept at the blocking depth and beyond the default,
    // over plans that stress reordering (the pipeline's worst enemy) and
    // client crashes (reborn incarnations inherit the window).
    for window in [1usize, DEFAULT_PIPELINE_WINDOW, 16] {
        for (spec, n) in [
            ("seed=403,reorder=25", 2usize),
            ("seed=413,drop=10,reorder=15,delay=80,delay_ns=1ms", 4),
            ("seed=411,drop=15,dup=10,ccrash=900ms", 3),
        ] {
            let a = run_spec_windowed(spec, 0x5EED, n, false, window);
            assert!(
                a.violations.is_empty(),
                "coherence violated under {spec:?} at window {window}: {:#?}",
                a.violations
            );
            let b = run_spec_windowed(spec, 0x5EED, n, false, window);
            assert_eq!(
                a, b,
                "windowed coherence run diverged across reruns of {spec:?} \
                 at window {window}"
            );
        }
    }
}

#[test]
fn windowed_streams_are_coherent_across_clients() {
    // Client 0 streams a multi-chunk file through the write-behind queue
    // (flushed by the close barrier); client 1 read-ahead-streams it
    // back. The bytes must survive the faulty wire and the handoff
    // between two independently-mounted clients.
    let h = build_harness_windowed(
        "seed=452,reorder=20,dup=10",
        2,
        false,
        DEFAULT_PIPELINE_WINDOW,
    );
    let p = format!("{}/public/stream", h.path.full_path());
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    h.clients[0].write_file(ALICE_UID, &p, &data).unwrap();
    assert_eq!(
        h.clients[1].read_file(ALICE_UID, &p).unwrap(),
        data,
        "cross-client stream lost or reordered bytes"
    );
}
