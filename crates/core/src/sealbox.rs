//! One-shot sealed boxes under a 20-byte symmetric key.
//!
//! Used for the two places SFS encrypts data outside a long-lived secure
//! channel: the payload returned over a freshly negotiated SRP session
//! key, and users' private keys at rest under an eksblowfish-derived key
//! (§2.4). The construction reuses the secure channel's ARC4 + re-keyed
//! SHA-1 MAC framing with both direction keys set to the box key; each key
//! must be used to seal at most once (SRP keys and password-derived keys
//! with fresh salts satisfy this).

use sfs_proto::channel::{ChannelError, SecureChannelEnd};
use sfs_proto::keyneg::SessionKeys;

fn keys(key: &[u8; 20]) -> SessionKeys {
    SessionKeys {
        kcs: *key,
        ksc: *key,
        session_id: [0u8; 20],
    }
}

/// Seals `plaintext` under `key`.
pub fn seal(key: &[u8; 20], plaintext: &[u8]) -> Vec<u8> {
    SecureChannelEnd::client(&keys(key))
        .seal(plaintext)
        .expect("fresh channel cannot be poisoned")
}

/// Opens a box sealed by [`seal`] under the same key.
pub fn open(key: &[u8; 20], frame: &[u8]) -> Result<Vec<u8>, ChannelError> {
    SecureChannelEnd::server(&keys(key)).open(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let key = [7u8; 20];
        let boxed = seal(&key, b"private key material");
        assert_eq!(open(&key, &boxed).unwrap(), b"private key material");
    }

    #[test]
    fn wrong_key_fails() {
        let boxed = seal(&[7u8; 20], b"data");
        assert!(open(&[8u8; 20], &boxed).is_err());
    }

    #[test]
    fn tampering_fails() {
        let key = [7u8; 20];
        let mut boxed = seal(&key, b"data");
        let n = boxed.len();
        boxed[n - 1] ^= 1;
        assert!(open(&key, &boxed).is_err());
    }

    #[test]
    fn hides_plaintext() {
        let boxed = seal(&[7u8; 20], b"supersecretvalue");
        assert!(!boxed.windows(11).any(|w| w == b"supersecret"));
    }
}
