//! The authentication server, `authserv` (§2.5).
//!
//! "authserv translates authentication requests into credentials. It does
//! so by consulting one or more databases mapping public keys to users. …
//! Each of authserv's public key databases is configured as either
//! read-only or writable. … authserv maintains two versions of every
//! writable database, a public one and a private one. The public database
//! contains public keys and credentials, but no information with which an
//! attacker could verify a guessed password."
//!
//! Passwords never reach the server: SRP verifiers are registered instead,
//! and both the SRP input and the private-key encryption key are hardened
//! with eksblowfish (§2.5.2) so that even a stolen *private* database makes
//! guessing cost "almost a full second of CPU time per account and
//! candidate password".

use std::collections::BTreeMap;

use sfs_bignum::{Nat, RandomSource};
use sfs_crypto::eksblowfish::{password_kdf, SALT_LEN};
use sfs_crypto::sha1::DIGEST_LEN;
use sfs_crypto::srp::{self, SrpGroup, SrpServer};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_proto::userauth::{AuthError, AuthMsg};
use sfs_telemetry::sync::Mutex;
use sfs_vfs::Credentials;

/// A user entry in the *public* database: safe to export to the world
/// over SFS itself ("a central server can easily maintain the keys of all
/// users in a department and export its public database to
/// separately-administered file servers without trusting them").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserRecord {
    /// Login name.
    pub user: String,
    /// Unix uid the key maps to.
    pub uid: u32,
    /// Group list.
    pub gids: Vec<u32>,
    /// The user's public key (serialized).
    pub public_key: Vec<u8>,
}

/// Per-user entry in the *private* database: SRP data and the encrypted
/// private key. Never exported.
#[derive(Clone)]
struct PrivateRecord {
    srp_salt: Vec<u8>,
    srp_verifier: Nat,
    ekb_salt: [u8; SALT_LEN],
    ekb_cost: u32,
    encrypted_private_key: Option<Vec<u8>>,
}

/// One public-key database (a writable master or an imported read-only
/// copy).
#[derive(Debug, Default, Clone)]
struct PublicDb {
    by_key: BTreeMap<Vec<u8>, UserRecord>,
}

impl PublicDb {
    fn insert(&mut self, rec: UserRecord) {
        self.by_key.insert(rec.public_key.clone(), rec);
    }

    fn lookup(&self, key: &[u8]) -> Option<&UserRecord> {
        self.by_key.get(key)
    }
}

struct Inner {
    /// The writable database.
    writable: PublicDb,
    /// Imported read-only databases, searched after the writable one
    /// ("a server can import a centrally-maintained list of users over SFS
    /// while also keeping a few guest accounts in a local database").
    imported: Vec<PublicDb>,
    /// The private half of the writable database, keyed by user name.
    private: BTreeMap<String, PrivateRecord>,
    /// Unix passwords for the bootstrap path ("authserv can optionally let
    /// users who actually log in to a file server register initial public
    /// keys by typing their Unix passwords").
    unix_passwords: BTreeMap<String, Vec<u8>>,
    /// Registration-by-Unix-password enabled?
    allow_unix_bootstrap: bool,
}

/// The authserver.
pub struct AuthServer {
    inner: Mutex<Inner>,
    group: SrpGroup,
    /// eksblowfish cost parameter ("one can increase [it] as computers get
    /// faster"). Kept small in tests; real deployments used ~2^8.
    cost: u32,
    /// The file server's self-certifying pathname, returned over SRP so
    /// users can bootstrap from a password alone (§2.4).
    server_path: Mutex<Option<SelfCertifyingPath>>,
}

impl AuthServer {
    /// Creates an authserver with the given SRP group and eksblowfish
    /// cost.
    pub fn new(group: SrpGroup, cost: u32) -> Self {
        AuthServer {
            inner: Mutex::new(Inner {
                writable: PublicDb::default(),
                imported: Vec::new(),
                private: BTreeMap::new(),
                unix_passwords: BTreeMap::new(),
                allow_unix_bootstrap: false,
            }),
            group,
            cost,
            server_path: Mutex::new(None),
        }
    }

    /// Records the file server's self-certifying pathname for SRP
    /// bootstrap.
    pub fn set_server_path(&self, path: SelfCertifyingPath) {
        *self.server_path.lock() = Some(path);
    }

    /// The SRP group used by this server.
    pub fn group(&self) -> &SrpGroup {
        &self.group
    }

    /// The eksblowfish cost parameter.
    pub fn cost(&self) -> u32 {
        self.cost
    }

    /// Registers (or replaces) a user record in the writable database.
    pub fn register_user(&self, rec: UserRecord) {
        self.inner.lock().writable.insert(rec);
    }

    /// Imports a read-only copy of another realm's public database.
    /// authserv "can continue to function normally when it temporarily
    /// cannot reach the servers for those databases" because the copy is
    /// local.
    pub fn import_read_only(&self, records: Vec<UserRecord>) {
        let mut db = PublicDb::default();
        for r in records {
            db.insert(r);
        }
        self.inner.lock().imported.push(db);
    }

    /// Exports the public database (no password-equivalent data inside).
    pub fn export_public_db(&self) -> Vec<UserRecord> {
        self.inner
            .lock()
            .writable
            .by_key
            .values()
            .cloned()
            .collect()
    }

    /// Looks up credentials for a public key across all databases,
    /// writable first.
    pub fn credentials_for_key(&self, key: &[u8]) -> Option<(String, Credentials)> {
        let inner = self.inner.lock();
        let rec = inner
            .writable
            .lookup(key)
            .or_else(|| inner.imported.iter().find_map(|db| db.lookup(key)))?;
        Some((
            rec.user.clone(),
            Credentials {
                uid: rec.uid,
                gids: rec.gids.clone(),
            },
        ))
    }

    /// Validates a signed authentication request (Figure 4, steps 4–5):
    /// verifies the signature over (AuthID, SeqNo) and maps the public key
    /// to credentials.
    pub fn validate(
        &self,
        msg: &AuthMsg,
        auth_id: &[u8; DIGEST_LEN],
        seq_no: u32,
    ) -> Result<(String, Credentials), AuthError> {
        let key = msg.verify(auth_id, seq_no)?;
        self.credentials_for_key(&key.to_bytes())
            .ok_or(AuthError::UnknownUser)
    }

    /// Hardens a password for SRP use: eksblowfish first (the expensive
    /// step both sides pay), yielding bytes that feed SRP's private
    /// exponent.
    pub fn harden_password(cost: u32, salt: &[u8; SALT_LEN], password: &[u8]) -> Vec<u8> {
        password_kdf(cost, salt, password, 32)
    }

    /// Registers SRP data for a user. Called by `sfskey` at setup time
    /// with data computed client-side; the password itself never appears
    /// here.
    pub fn srp_register(
        &self,
        user: &str,
        srp_salt: Vec<u8>,
        srp_verifier: Nat,
        ekb_salt: [u8; SALT_LEN],
    ) {
        self.inner.lock().private.insert(
            user.to_string(),
            PrivateRecord {
                srp_salt,
                srp_verifier,
                ekb_salt,
                ekb_cost: self.cost,
                encrypted_private_key: None,
            },
        );
    }

    /// The eksblowfish salt/cost a client needs before it can harden its
    /// password for `user` (public by necessity, like any salt).
    pub fn password_params(&self, user: &str) -> Option<([u8; SALT_LEN], u32)> {
        let inner = self.inner.lock();
        let rec = inner.private.get(user)?;
        Some((rec.ekb_salt, rec.ekb_cost))
    }

    /// Stores an eksblowfish-encrypted copy of the user's private key
    /// ("a user can additionally register an encrypted copy of his private
    /// key and retrieve that copy along with the server's self-certifying
    /// pathname").
    pub fn register_encrypted_private_key(&self, user: &str, blob: Vec<u8>) -> bool {
        let mut inner = self.inner.lock();
        match inner.private.get_mut(user) {
            Some(rec) => {
                rec.encrypted_private_key = Some(blob);
                true
            }
            None => false,
        }
    }

    /// Starts the server side of an SRP handshake for `user`; returns the
    /// SRP state, the salt, and `B`.
    pub fn srp_start<R: RandomSource>(
        &self,
        user: &str,
        rng: &mut R,
    ) -> Option<(SrpServer, Vec<u8>, Nat)> {
        let (salt, verifier) = {
            let inner = self.inner.lock();
            let rec = inner.private.get(user)?;
            (rec.srp_salt.clone(), rec.srp_verifier.clone())
        };
        let (server, b_pub) = SrpServer::start(&self.group, user, &salt, &verifier, rng);
        Some((server, salt, b_pub))
    }

    /// The payload returned to a successfully SRP-authenticated client:
    /// the server's self-certifying pathname and the user's encrypted
    /// private key, if registered.
    pub fn srp_payload(&self, user: &str) -> (Option<SelfCertifyingPath>, Option<Vec<u8>>) {
        let path = self.server_path.lock().clone();
        let blob = self
            .inner
            .lock()
            .private
            .get(user)
            .and_then(|r| r.encrypted_private_key.clone());
        (path, blob)
    }

    /// Changes a user's registered public key (§2.5.2: authserv "allows
    /// them to connect over the network with sfskey and change their
    /// public keys"). The request must be signed by the *old* key — the
    /// same trust the key it replaces carried.
    pub fn change_public_key(
        &self,
        user: &str,
        new_key: &[u8],
        signature: &[u8],
    ) -> Result<(), AuthError> {
        let (old_key_bytes, uid, gids) = {
            let inner = self.inner.lock();
            let rec = inner
                .writable
                .by_key
                .values()
                .find(|r| r.user == user)
                .ok_or(AuthError::UnknownUser)?;
            (rec.public_key.clone(), rec.uid, rec.gids.clone())
        };
        let old_key = sfs_crypto::rabin::RabinPublicKey::from_bytes(&old_key_bytes)
            .map_err(|_| AuthError::BadKey)?;
        let sig = sfs_crypto::rabin::RabinSignature::from_bytes(signature)
            .map_err(|_| AuthError::BadSignature)?;
        if !old_key.verify(&key_update_body(user, new_key), &sig) {
            return Err(AuthError::BadSignature);
        }
        let mut inner = self.inner.lock();
        inner.writable.by_key.remove(&old_key_bytes);
        inner.writable.insert(UserRecord {
            user: user.to_string(),
            uid,
            gids,
            public_key: new_key.to_vec(),
        });
        Ok(())
    }

    /// Enables Unix-password bootstrap and sets a user's Unix password
    /// (standing in for the system password file).
    pub fn set_unix_password(&self, user: &str, password: &[u8]) {
        let mut inner = self.inner.lock();
        inner.allow_unix_bootstrap = true;
        inner
            .unix_passwords
            .insert(user.to_string(), password.to_vec());
    }

    /// Bootstrap: register an initial public key by proving knowledge of
    /// the Unix password. Returns `false` when disabled or the password is
    /// wrong.
    pub fn register_key_via_unix_password(
        &self,
        user: &str,
        password: &[u8],
        uid: u32,
        gids: Vec<u32>,
        public_key: Vec<u8>,
    ) -> bool {
        let mut inner = self.inner.lock();
        if !inner.allow_unix_bootstrap {
            return false;
        }
        match inner.unix_passwords.get(user) {
            Some(stored) if stored.as_slice() == password => {
                inner.writable.insert(UserRecord {
                    user: user.to_string(),
                    uid,
                    gids,
                    public_key,
                });
                true
            }
            _ => false,
        }
    }
}

impl std::fmt::Debug for AuthServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("AuthServer")
            .field("users", &inner.writable.by_key.len())
            .field("imported_dbs", &inner.imported.len())
            .field("cost", &self.cost)
            .finish()
    }
}

/// The bytes signed by the old key to authorize a key change.
pub fn key_update_body(user: &str, new_key: &[u8]) -> Vec<u8> {
    use sfs_xdr::XdrEncoder;
    let mut enc = XdrEncoder::new();
    enc.put_string("KeyUpdate");
    enc.put_string(user);
    enc.put_opaque(new_key);
    enc.into_bytes()
}

/// Client side of a key change: sign the update with the old key.
pub fn sign_key_update(
    old_key: &sfs_crypto::rabin::RabinPrivateKey,
    user: &str,
    new_key: &[u8],
) -> Vec<u8> {
    old_key
        .sign(&key_update_body(user, new_key))
        .to_bytes(old_key.public().len())
}

/// Client-side helper mirroring the registration computation `sfskey`
/// performs: harden the password, derive SRP salt/verifier, and return
/// everything the server stores.
pub fn client_srp_registration<R: RandomSource>(
    group: &SrpGroup,
    cost: u32,
    user: &str,
    password: &[u8],
    rng: &mut R,
) -> (Vec<u8>, Nat, [u8; SALT_LEN]) {
    let mut ekb_salt = [0u8; SALT_LEN];
    rng.fill(&mut ekb_salt);
    let hardened = AuthServer::harden_password(cost, &ekb_salt, password);
    let mut srp_salt = vec![0u8; 16];
    rng.fill(&mut srp_salt);
    let verifier = srp::compute_verifier(group, user, &hardened, &srp_salt);
    (srp_salt, verifier, ekb_salt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;
    use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
    use sfs_crypto::srp::SrpClient;
    use sfs_proto::pathname::HostId;
    use sfs_proto::userauth::AuthInfo;
    use std::sync::OnceLock;

    fn group() -> SrpGroup {
        static G: OnceLock<SrpGroup> = OnceLock::new();
        G.get_or_init(|| {
            let mut rng = XorShiftSource::new(0x6409);
            SrpGroup::generate(128, &mut rng)
        })
        .clone()
    }

    fn user_key() -> &'static RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = XorShiftSource::new(0xD0E);
            generate_keypair(512, &mut rng)
        })
    }

    fn server_with_alice() -> AuthServer {
        let s = AuthServer::new(group(), 2);
        s.register_user(UserRecord {
            user: "alice".into(),
            uid: 1000,
            gids: vec![100, 200],
            public_key: user_key().public().to_bytes(),
        });
        s
    }

    #[test]
    fn validates_signed_request() {
        let s = server_with_alice();
        let info = AuthInfo::for_fs("host", HostId([1u8; 20]), [2u8; 20]);
        let msg = AuthMsg::sign(user_key(), &info, 1);
        let (user, creds) = s.validate(&msg, &info.auth_id(), 1).unwrap();
        assert_eq!(user, "alice");
        assert_eq!(creds.uid, 1000);
        assert_eq!(creds.gids, vec![100, 200]);
    }

    #[test]
    fn unknown_key_rejected() {
        let s = AuthServer::new(group(), 2);
        let info = AuthInfo::for_fs("host", HostId([1u8; 20]), [2u8; 20]);
        let msg = AuthMsg::sign(user_key(), &info, 1);
        assert_eq!(
            s.validate(&msg, &info.auth_id(), 1).unwrap_err(),
            AuthError::UnknownUser
        );
    }

    #[test]
    fn imported_db_consulted_after_writable() {
        let s = AuthServer::new(group(), 2);
        s.import_read_only(vec![UserRecord {
            user: "remote-bob".into(),
            uid: 2000,
            gids: vec![2000],
            public_key: user_key().public().to_bytes(),
        }]);
        let (user, creds) = s
            .credentials_for_key(&user_key().public().to_bytes())
            .unwrap();
        assert_eq!(user, "remote-bob");
        assert_eq!(creds.uid, 2000);
        // A writable entry shadows the import.
        s.register_user(UserRecord {
            user: "local-bob".into(),
            uid: 3000,
            gids: vec![3000],
            public_key: user_key().public().to_bytes(),
        });
        let (user, _) = s
            .credentials_for_key(&user_key().public().to_bytes())
            .unwrap();
        assert_eq!(user, "local-bob");
    }

    #[test]
    fn public_export_contains_no_secrets() {
        let s = server_with_alice();
        let mut rng = XorShiftSource::new(5);
        let (salt, verifier, ekb_salt) =
            client_srp_registration(&group(), 2, "alice", b"hunter2", &mut rng);
        s.srp_register("alice", salt, verifier, ekb_salt);
        s.register_encrypted_private_key("alice", vec![1, 2, 3]);
        // The export is UserRecords only: no verifier, salt, or key blob
        // types exist in the exported structure at all.
        let export = s.export_public_db();
        assert_eq!(export.len(), 1);
        assert_eq!(export[0].user, "alice");
    }

    #[test]
    fn srp_end_to_end_with_hardened_password() {
        let s = server_with_alice();
        s.set_server_path(SelfCertifyingPath {
            location: "host.example.com".into(),
            host_id: HostId([9u8; 20]),
        });
        let mut rng = XorShiftSource::new(6);
        let (salt, verifier, ekb_salt) =
            client_srp_registration(&group(), 2, "alice", b"hunter2", &mut rng);
        s.srp_register("alice", salt, verifier, ekb_salt);

        // Client side: fetch salt/cost, harden, run SRP.
        let (ekb_salt, cost) = s.password_params("alice").unwrap();
        let hardened = AuthServer::harden_password(cost, &ekb_salt, b"hunter2");
        let (client, a_pub) = SrpClient::start(&group(), "alice", &hardened, &mut rng);
        let (server, salt, b_pub) = s.srp_start("alice", &mut rng).unwrap();
        let cs = client.process(&salt, &b_pub).unwrap();
        let ss = server.process(&a_pub, &cs.m1).unwrap();
        cs.verify_server(&ss.m2).unwrap();
        assert_eq!(cs.key, ss.key);
        let (path, _) = s.srp_payload("alice");
        assert!(path.is_some());
    }

    #[test]
    fn srp_wrong_password_fails() {
        let s = server_with_alice();
        let mut rng = XorShiftSource::new(7);
        let (salt, verifier, ekb_salt) =
            client_srp_registration(&group(), 2, "alice", b"hunter2", &mut rng);
        s.srp_register("alice", salt, verifier, ekb_salt);
        let (ekb_salt, cost) = s.password_params("alice").unwrap();
        let hardened = AuthServer::harden_password(cost, &ekb_salt, b"wrong-guess");
        let (client, a_pub) = SrpClient::start(&group(), "alice", &hardened, &mut rng);
        let (server, salt, b_pub) = s.srp_start("alice", &mut rng).unwrap();
        let cs = client.process(&salt, &b_pub).unwrap();
        assert!(server.process(&a_pub, &cs.m1).is_err());
    }

    #[test]
    fn srp_unknown_user_yields_none() {
        let s = server_with_alice();
        let mut rng = XorShiftSource::new(8);
        assert!(s.srp_start("mallory", &mut rng).is_none());
    }

    #[test]
    fn unix_bootstrap_registration() {
        let s = AuthServer::new(group(), 2);
        // Disabled by default.
        assert!(!s.register_key_via_unix_password("alice", b"pw", 1000, vec![100], vec![1]));
        s.set_unix_password("alice", b"pw");
        assert!(!s.register_key_via_unix_password("alice", b"wrong", 1000, vec![100], vec![1]));
        assert!(s.register_key_via_unix_password(
            "alice",
            b"pw",
            1000,
            vec![100],
            user_key().public().to_bytes()
        ));
        assert!(s
            .credentials_for_key(&user_key().public().to_bytes())
            .is_some());
    }

    #[test]
    fn key_change_requires_old_key_signature() {
        let s = server_with_alice();
        let mut rng = XorShiftSource::new(0x11E);
        let new_key = generate_keypair(512, &mut rng);
        let new_bytes = new_key.public().to_bytes();
        // Signed by the old key: accepted, and lookups move over.
        let sig = sign_key_update(user_key(), "alice", &new_bytes);
        s.change_public_key("alice", &new_bytes, &sig).unwrap();
        assert!(s.credentials_for_key(&new_bytes).is_some());
        assert!(
            s.credentials_for_key(&user_key().public().to_bytes())
                .is_none(),
            "old key no longer maps"
        );
        // An attacker's key cannot authorize a change.
        let attacker = generate_keypair(512, &mut rng);
        let bad_sig = sign_key_update(&attacker, "alice", &attacker.public().to_bytes());
        assert_eq!(
            s.change_public_key("alice", &attacker.public().to_bytes(), &bad_sig)
                .unwrap_err(),
            AuthError::BadSignature
        );
        // Unknown users are rejected.
        assert_eq!(
            s.change_public_key("mallory", &new_bytes, &sig)
                .unwrap_err(),
            AuthError::UnknownUser
        );
    }

    #[test]
    fn encrypted_key_requires_existing_srp_record() {
        let s = server_with_alice();
        assert!(!s.register_encrypted_private_key("alice", vec![1]));
        let mut rng = XorShiftSource::new(9);
        let (salt, verifier, ekb_salt) =
            client_srp_registration(&group(), 2, "alice", b"pw", &mut rng);
        s.srp_register("alice", salt, verifier, ekb_salt);
        assert!(s.register_encrypted_private_key("alice", vec![1]));
        let (_, blob) = s.srp_payload("alice");
        assert_eq!(blob, Some(vec![1]));
    }
}
