//! Multi-core server dispatch: worker shards, per-core crypto
//! scheduling, and batched disk commits.
//!
//! The windowed RPC engine (DESIGN.md §11) overlaps one connection's
//! crypto against the *wire*, but the server itself was still a single
//! logical core: every frame's seal/open and disk work queued behind
//! every other frame's, so one core's ARC4+SHA-1 throughput capped the
//! realm. A [`ShardEngine`] models an N-core server in virtual time:
//!
//! - **Crypto on any core.** Each frame's analytic CPU cost (user
//!   crossing + RPC processing + copies; the seal/open work) is placed
//!   on whichever [`CoreSet`] timeline can start it earliest, so frames
//!   whose service windows overlap in absolute virtual time run in
//!   parallel — until every core is busy and queueing re-emerges.
//!   Per-channel cipher order is *not* the scheduler's problem: frames
//!   are decrypted strictly in channel-sequence order by the
//!   `FrameSequencer` discipline before any cost is scheduled, so the
//!   engine only ever decides *when* work finishes, never in what order
//!   cipher state advances.
//! - **Disk by handle shard.** Each request's disk work is tallied by
//!   the [`sfs_sim::SimDisk`] (instead of charged to the shared clock)
//!   and placed on the owning shard's [`DiskCommitQueue`], chosen by a
//!   deterministic handle→shard map. Commits that arrive while the
//!   shard's spindle is busy join the in-progress batch and skip their
//!   positioning cost — group commit across connections.
//!
//! Everything is deterministic: placement is earliest-start,
//! lowest-index tie-break, and the engine holds no wall-clock state.

use std::collections::BTreeMap;
use std::sync::Arc;

use sfs_sim::{CoreSet, DiskQueueStats, DiskTally};
use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

struct EngineState {
    cores: CoreSet,
    disks: Vec<sfs_sim::DiskCommitQueue>,
    frames: u64,
}

/// The multi-core scheduler installed on an [`crate::SfsServer`] by
/// [`crate::SfsServer::set_cores`].
pub struct ShardEngine {
    shards: usize,
    /// Pre-built telemetry process names ("shard0", "shard1", …) so the
    /// hot path never formats strings.
    procs: Vec<String>,
    inner: Mutex<EngineState>,
}

impl ShardEngine {
    /// An engine with `n` cores, each owning one disk-commit shard.
    pub fn new(n: usize) -> Arc<Self> {
        let n = n.max(1);
        Arc::new(ShardEngine {
            shards: n,
            procs: (0..n).map(|i| format!("shard{i}")).collect(),
            inner: Mutex::new(EngineState {
                cores: CoreSet::new(n),
                disks: vec![sfs_sim::DiskCommitQueue::new(); n],
                frames: 0,
            }),
        })
    }

    /// Number of cores (= worker shards).
    pub fn cores(&self) -> usize {
        self.shards
    }

    /// The deterministic handle→shard map (FNV-1a over the NFS-form
    /// handle bytes). NFS-form handles are stable across reconnects and
    /// across the per-session handle encryption, so a file's disk work
    /// always lands on the same shard.
    pub fn shard_of(&self, handle: &[u8]) -> u32 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in handle {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards as u64) as u32
    }

    /// Schedules one request: `cpu_ns` of crypto/dispatch work on the
    /// earliest-free core starting no earlier than `arrival_ns`, then
    /// the tallied disk work (if any) on `shard`'s commit queue (the
    /// scheduling core's queue when the request touched no file
    /// handle). Returns the absolute completion instant.
    pub fn schedule(
        &self,
        arrival_ns: u64,
        cpu_ns: u64,
        disk: DiskTally,
        shard: Option<u32>,
        tel: &Telemetry,
    ) -> u64 {
        let mut st = self.inner.lock();
        st.frames += 1;
        let res = st.cores.reserve(arrival_ns, cpu_ns);
        tel.count(&self.procs[res.core], "server.shard.busy_ticks", cpu_ns);
        if disk.total_ns == 0 {
            return res.end_ns;
        }
        let idx = shard.unwrap_or(res.core as u32) as usize % self.shards;
        let commit = st.disks[idx].commit(res.end_ns, disk.total_ns, disk.positioning_ns);
        let proc = &self.procs[idx];
        tel.gauge_set(proc, "server.shard.queue_depth", commit.queued_behind);
        if let Some(size) = commit.closed_batch {
            tel.record(proc, "server.disk.batch_size", size);
            // Histograms never reach the Chrome trace; a timestamped
            // instant per closed batch puts the group commits on the
            // shard's track too.
            tel.instant_kv(proc, "core.shard", "disk.batch_commit", "size", size);
        }
        commit.done_ns
    }

    /// Flushes still-open batch sizes into the `server.disk.batch_size`
    /// histogram (a run's final batch never sees a successor close it).
    pub fn finish(&self, tel: &Telemetry) {
        let st = self.inner.lock();
        for (i, q) in st.disks.iter().enumerate() {
            let open = q.current_batch();
            if open > 0 {
                tel.record(&self.procs[i], "server.disk.batch_size", open);
            }
        }
    }

    /// Frames scheduled through the engine so far. Non-zero even for
    /// zero-cost frames (clients with no CPU model attached), so tests
    /// can assert the multi-core path actually ran.
    pub fn frames_scheduled(&self) -> u64 {
        self.inner.lock().frames
    }

    /// Per-core busy nanoseconds.
    pub fn core_busy_ns(&self) -> Vec<u64> {
        let st = self.inner.lock();
        (0..self.shards).map(|i| st.cores.busy_ns(i)).collect()
    }

    /// Per-shard disk-queue statistics.
    pub fn disk_stats(&self) -> Vec<DiskQueueStats> {
        let st = self.inner.lock();
        st.disks.iter().map(|q| q.stats()).collect()
    }
}

impl std::fmt::Debug for ShardEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ShardEngine({} cores)", self.shards)
    }
}

/// The pipelined reply cache, split into per-shard maps.
///
/// Semantically identical to one flat `BTreeMap<u64, Vec<u8>>` with
/// oldest-first eviction — a retransmission can only ask for a recent
/// channel sequence number, so dropping the globally lowest keys
/// preserves exactly-once for every answerable replay — but each entry
/// lives in the map owned by `chanseq % shards`. That makes each shard's
/// cache single-owner under multi-core dispatch: a worker answering a
/// replay for its shard never touches (or invalidates) another shard's
/// entries.
pub struct ShardedReplyCache {
    shards: Vec<BTreeMap<u64, Vec<u8>>>,
    capacity: usize,
    len: usize,
}

impl ShardedReplyCache {
    /// A cache of `capacity` total entries across `shards` maps.
    pub fn new(capacity: usize, shards: usize) -> Self {
        ShardedReplyCache {
            shards: vec![BTreeMap::new(); shards.max(1)],
            capacity,
            len: 0,
        }
    }

    fn shard(&self, chanseq: u64) -> usize {
        (chanseq % self.shards.len() as u64) as usize
    }

    /// The cached sealed reply for `chanseq`, if still retained.
    pub fn get(&self, chanseq: u64) -> Option<&Vec<u8>> {
        self.shards[self.shard(chanseq)].get(&chanseq)
    }

    /// Inserts a sealed reply; returns how many old entries were evicted
    /// (globally oldest first) to stay within capacity.
    pub fn insert(&mut self, chanseq: u64, bytes: Vec<u8>) -> u64 {
        let s = self.shard(chanseq);
        if self.shards[s].insert(chanseq, bytes).is_none() {
            self.len += 1;
        }
        let mut evicted = 0;
        while self.len > self.capacity {
            let oldest = self
                .shards
                .iter()
                .filter_map(|m| m.keys().next().copied())
                .min()
                .expect("cache non-empty");
            let idx = self.shard(oldest);
            self.shards[idx].remove(&oldest);
            self.len -= 1;
            evicted += 1;
        }
        evicted
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_is_deterministic_and_spread() {
        let e = ShardEngine::new(4);
        let handles: Vec<Vec<u8>> = (0u32..64).map(|i| i.to_be_bytes().to_vec()).collect();
        let a: Vec<u32> = handles.iter().map(|h| e.shard_of(h)).collect();
        let b: Vec<u32> = handles.iter().map(|h| e.shard_of(h)).collect();
        assert_eq!(a, b);
        for s in 0..4u32 {
            assert!(a.contains(&s), "shard {s} never chosen over 64 handles");
        }
    }

    #[test]
    fn four_cores_overlap_cpu_work() {
        let tel = Telemetry::disabled();
        let one = ShardEngine::new(1);
        let four = ShardEngine::new(4);
        let zero = DiskTally::default();
        // Eight frames all arriving at t=0, 100 µs of crypto each.
        let serial: u64 = (0..8)
            .map(|_| one.schedule(0, 100_000, zero, None, &tel))
            .max()
            .unwrap();
        let parallel: u64 = (0..8)
            .map(|_| four.schedule(0, 100_000, zero, None, &tel))
            .max()
            .unwrap();
        assert_eq!(serial, 800_000);
        assert_eq!(parallel, 200_000);
    }

    #[test]
    fn disk_commits_batch_on_one_shard() {
        let tel = Telemetry::disabled();
        let e = ShardEngine::new(2);
        let tally = DiskTally {
            total_ns: 1_100,
            positioning_ns: 1_000,
            ops: 1,
        };
        // Same shard, arriving together: first pays positioning, the
        // rest ride the batch.
        let d1 = e.schedule(0, 10, tally, Some(0), &tel);
        let d2 = e.schedule(0, 10, tally, Some(0), &tel);
        let d3 = e.schedule(0, 10, tally, Some(0), &tel);
        assert_eq!(d1, 10 + 1_100);
        assert_eq!(d2, d1 + 100);
        assert_eq!(d3, d2 + 100);
        let stats = e.disk_stats();
        assert_eq!(stats[0].commits, 3);
        assert_eq!(stats[0].joined, 2);
        // The other shard's spindle is untouched.
        assert_eq!(stats[1].commits, 0);
    }

    #[test]
    fn sharded_reply_cache_matches_flat_semantics() {
        let mut flat = BTreeMap::new();
        let mut sharded = ShardedReplyCache::new(8, 4);
        for seq in 0u64..32 {
            let bytes = vec![seq as u8; 3];
            flat.insert(seq, bytes.clone());
            while flat.len() > 8 {
                let oldest = *flat.keys().next().unwrap();
                flat.remove(&oldest);
            }
            sharded.insert(seq, bytes);
        }
        assert_eq!(sharded.len(), flat.len());
        for seq in 0u64..32 {
            assert_eq!(sharded.get(seq), flat.get(&seq));
        }
    }
}
