//! The read-only client (§2.4, §3.2).
//!
//! "Implementing the read-only client and server required no changes to
//! existing SFS code; only configuration files had to be changed." This
//! module is that subordinate client daemon: it speaks the read-only
//! dialect (cleartext fetches of a signed root and content-addressed
//! blocks), verifies everything against the self-certifying pathname's
//! key, and caches verified blocks — replicas may be arbitrarily
//! malicious, so nothing unverified is ever returned.

use std::collections::HashMap;

use sfs_crypto::rabin::RabinPublicKey;
use sfs_crypto::sha1::sha1;
use sfs_proto::keyneg::{KeyNegRequest, KeyNegServerReply};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_proto::readonly::{Digest, RoNode, SignedRoot};
use sfs_sim::{Wire, WireError};
use sfs_telemetry::sync::Mutex;
use sfs_xdr::Xdr;

use crate::server::ServerConn;
use crate::wire::{CallMsg, Dialect, ReplyMsg, Service};

/// Errors from the read-only client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoClientError {
    /// Network failure.
    Net(WireError),
    /// The server's key does not match the pathname (self-certification
    /// failed).
    HostIdMismatch,
    /// The signed root failed verification.
    BadRootSignature,
    /// A served block did not hash to its digest (lying replica).
    DigestMismatch,
    /// Path or block not present.
    NotFound,
    /// Unexpected protocol reply.
    Protocol(String),
}

impl std::fmt::Display for RoClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoClientError::Net(e) => write!(f, "network: {e}"),
            RoClientError::HostIdMismatch => write!(f, "server key does not match HostID"),
            RoClientError::BadRootSignature => write!(f, "signed root failed verification"),
            RoClientError::DigestMismatch => write!(f, "block does not match digest"),
            RoClientError::NotFound => write!(f, "no such file"),
            RoClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for RoClientError {}

impl From<WireError> for RoClientError {
    fn from(e: WireError) -> Self {
        RoClientError::Net(e)
    }
}

/// A mounted read-only file system.
pub struct RoMount {
    path: SelfCertifyingPath,
    wire: Wire,
    conn: ServerConn,
    root: SignedRoot,
    /// Verified blocks, by digest. Content addressing makes this cache
    /// trivially shareable between mutually distrustful users — a digest
    /// names exactly one value.
    cache: Mutex<HashMap<Digest, RoNode>>,
}

impl RoMount {
    /// Connects to `path` over `wire`/`conn` using the read-only dialect,
    /// certifying the server key against the HostID and verifying the
    /// signed root.
    pub fn connect(
        path: SelfCertifyingPath,
        wire: Wire,
        conn: ServerConn,
    ) -> Result<RoMount, RoClientError> {
        let hello = CallMsg::Hello {
            req: KeyNegRequest {
                location: path.location.clone(),
                host_id: path.host_id,
            },
            service: Service::File,
            dialect: Dialect::ReadOnly,
            version: 1,
            extensions: String::new(),
        };
        let reply = call(&wire, &conn, hello)?;
        let key = match reply {
            ReplyMsg::ServerReply(KeyNegServerReply::ServerKey(k)) => {
                RabinPublicKey::from_bytes(&k).map_err(|_| RoClientError::HostIdMismatch)?
            }
            other => return Err(RoClientError::Protocol(format!("{other:?}"))),
        };
        if !path.certifies(&key) {
            return Err(RoClientError::HostIdMismatch);
        }
        let root = match call(&wire, &conn, CallMsg::RoGetRoot)? {
            ReplyMsg::RoRoot(root) => root,
            other => return Err(RoClientError::Protocol(format!("{other:?}"))),
        };
        if !root.verify(&key) {
            return Err(RoClientError::BadRootSignature);
        }
        Ok(RoMount {
            path,
            wire,
            conn,
            root,
            cache: Mutex::new(HashMap::new()),
        })
    }

    /// The mounted pathname.
    pub fn path(&self) -> &SelfCertifyingPath {
        &self.path
    }

    /// The verified snapshot version.
    pub fn version(&self) -> u64 {
        self.root.version
    }

    /// Network round trips so far.
    pub fn round_trips(&self) -> u64 {
        self.wire.round_trips()
    }

    /// Fetches and verifies the block named by `digest`.
    fn fetch(&self, digest: Digest) -> Result<RoNode, RoClientError> {
        if let Some(node) = self.cache.lock().get(&digest) {
            return Ok(node.clone());
        }
        let block = match call(&self.wire, &self.conn, CallMsg::RoGetBlock(digest))? {
            ReplyMsg::RoBlock(b) => b,
            ReplyMsg::Error(_) => return Err(RoClientError::NotFound),
            other => return Err(RoClientError::Protocol(format!("{other:?}"))),
        };
        // The integrity check: the block must hash to the digest that
        // named it, no matter who served it.
        if sha1(&block) != digest {
            return Err(RoClientError::DigestMismatch);
        }
        let node = RoNode::from_xdr(&block).map_err(|e| RoClientError::Protocol(e.to_string()))?;
        self.cache.lock().insert(digest, node.clone());
        Ok(node)
    }

    /// Resolves a `/`-separated path to a node.
    pub fn resolve(&self, path: &str) -> Result<RoNode, RoClientError> {
        let mut node = self.fetch(self.root.root_digest)?;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let RoNode::Dir(entries) = &node else {
                return Err(RoClientError::NotFound);
            };
            let (_, _, digest) = entries
                .iter()
                .find(|(name, _, _)| name == comp)
                .ok_or(RoClientError::NotFound)?;
            node = self.fetch(*digest)?;
        }
        Ok(node)
    }

    /// Reads a whole file.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, RoClientError> {
        match self.resolve(path)? {
            RoNode::File(data) => Ok(data),
            _ => Err(RoClientError::NotFound),
        }
    }

    /// Reads a symlink target (the certification-authority primitive:
    /// CAs are "ordinary file systems serving symbolic links").
    pub fn readlink(&self, path: &str) -> Result<String, RoClientError> {
        match self.resolve(path)? {
            RoNode::Symlink(target) => Ok(target),
            _ => Err(RoClientError::NotFound),
        }
    }

    /// Lists a directory.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, RoClientError> {
        match self.resolve(path)? {
            RoNode::Dir(entries) => Ok(entries.into_iter().map(|(n, _, _)| n).collect()),
            _ => Err(RoClientError::NotFound),
        }
    }
}

impl std::fmt::Debug for RoMount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RoMount({} v{})",
            self.path.dir_name(),
            self.root.version
        )
    }
}

fn call(wire: &Wire, conn: &ServerConn, msg: CallMsg) -> Result<ReplyMsg, RoClientError> {
    let bytes = wire.call(msg.to_xdr(), |b| conn.handle_bytes(&b))?;
    ReplyMsg::from_xdr(&bytes).map_err(|e| RoClientError::Protocol(e.to_string()))
}
