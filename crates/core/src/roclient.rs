//! The read-only client (§2.4, §3.2).
//!
//! "Implementing the read-only client and server required no changes to
//! existing SFS code; only configuration files had to be changed." This
//! module is that subordinate client daemon: it speaks the read-only
//! dialect (cleartext fetches of a signed root and content-addressed
//! blocks), verifies everything against the self-certifying pathname's
//! key, and caches verified blocks — replicas may be arbitrarily
//! malicious, so nothing unverified is ever returned.
//!
//! Because every block is verified against the digest that named it, the
//! mount can fail over between replicas freely: when a call fails (dead
//! replica) or a block fails verification (lying replica), the mount
//! redials through an optional [`RoMount::set_redial`] hook, re-certifies
//! the new server against the same HostID, and retries. The signed root's
//! version is monotone across failovers, so a malicious replica cannot
//! roll the mount back to an older snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use sfs_crypto::rabin::RabinPublicKey;
use sfs_crypto::sha1::sha1;
use sfs_proto::keyneg::{KeyNegRequest, KeyNegServerReply};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_proto::readonly::{Digest, RoNode, SignedRoot};
use sfs_sim::{Wire, WireError};
use sfs_telemetry::sync::Mutex;
use sfs_xdr::Xdr;

use crate::server::RoConnection;
use crate::wire::{CallMsg, Dialect, ReplyMsg, Service};

/// How many replicas one operation will try before giving up.
const MAX_FAILOVERS: u32 = 4;

/// Errors from the read-only client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoClientError {
    /// Network failure.
    Net(WireError),
    /// The server's key does not match the pathname (self-certification
    /// failed).
    HostIdMismatch,
    /// The signed root failed verification.
    BadRootSignature,
    /// The replica served an older snapshot than one already verified
    /// (rollback attempt).
    Rollback,
    /// A served block did not hash to its digest (lying replica).
    DigestMismatch,
    /// The replica refused service (down for maintenance, mid-crash).
    Unavailable(String),
    /// The replica does not hold a block the verified hash tree names.
    /// Replica-specific by construction — a correct replica of the
    /// current snapshot holds every reachable block — so it is grounds
    /// for failover, not an authoritative absence. Seen mid-rolling-
    /// republish, when a replica has swapped to a snapshot the client's
    /// root (older *or* newer) does not describe.
    MissingBlock,
    /// Path not present. Authoritative: proven absent by a verified
    /// directory listing, not inferred from a replica's block store.
    NotFound,
    /// Unexpected protocol reply.
    Protocol(String),
}

impl std::fmt::Display for RoClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoClientError::Net(e) => write!(f, "network: {e}"),
            RoClientError::HostIdMismatch => write!(f, "server key does not match HostID"),
            RoClientError::BadRootSignature => write!(f, "signed root failed verification"),
            RoClientError::Rollback => write!(f, "replica served an older snapshot"),
            RoClientError::DigestMismatch => write!(f, "block does not match digest"),
            RoClientError::Unavailable(e) => write!(f, "replica unavailable: {e}"),
            RoClientError::MissingBlock => write!(f, "replica lacks a block the hash tree names"),
            RoClientError::NotFound => write!(f, "no such file"),
            RoClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for RoClientError {}

impl From<WireError> for RoClientError {
    fn from(e: WireError) -> Self {
        RoClientError::Net(e)
    }
}

impl RoClientError {
    /// Whether trying another replica could help. Verification failures
    /// and dead machines are replica-specific; a verified NotFound is
    /// authoritative — the hash tree proves the name is absent.
    fn failover_worthy(&self) -> bool {
        matches!(
            self,
            RoClientError::Net(_)
                | RoClientError::Unavailable(_)
                | RoClientError::MissingBlock
                | RoClientError::DigestMismatch
                | RoClientError::BadRootSignature
                | RoClientError::Rollback
                | RoClientError::Protocol(_)
        )
    }
}

/// The wire and server-side connection currently backing a mount.
struct RoLink {
    wire: Wire,
    conn: Box<dyn RoConnection>,
}

/// Produces a fresh link to some replica of the mounted HostID; a routing
/// tier supplies this so the mount can survive replica deaths.
pub type RoRedial = Box<dyn Fn() -> Option<(Wire, Box<dyn RoConnection>)> + Send + Sync>;

/// A mounted read-only file system.
pub struct RoMount {
    path: SelfCertifyingPath,
    /// The certified public key. Fixed at mount time: every replica must
    /// present a key hashing to the same HostID, so the key can never
    /// change across failovers.
    key: RabinPublicKey,
    link: Mutex<RoLink>,
    root: Mutex<SignedRoot>,
    /// Verified blocks, by digest. Content addressing makes this cache
    /// trivially shareable between mutually distrustful users — a digest
    /// names exactly one value — and keeps it valid across failovers.
    cache: Mutex<HashMap<Digest, RoNode>>,
    redial: Mutex<Option<RoRedial>>,
    /// Round trips accumulated on links already torn down by failover.
    prior_round_trips: AtomicU64,
    failovers: AtomicU64,
}

/// Runs the read-only handshake on a fresh link: hello, certify the key
/// against the HostID, fetch and verify the signed root.
fn handshake(
    path: &SelfCertifyingPath,
    wire: &Wire,
    conn: &dyn RoConnection,
) -> Result<(RabinPublicKey, SignedRoot), RoClientError> {
    let hello = CallMsg::Hello {
        req: KeyNegRequest {
            location: path.location.clone(),
            host_id: path.host_id,
        },
        service: Service::File,
        dialect: Dialect::ReadOnly,
        version: 1,
        extensions: String::new(),
    };
    let key = match call(wire, conn, hello)? {
        ReplyMsg::ServerReply(KeyNegServerReply::ServerKey(k)) => {
            RabinPublicKey::from_bytes(&k).map_err(|_| RoClientError::HostIdMismatch)?
        }
        other => return Err(RoClientError::Protocol(format!("{other:?}"))),
    };
    if !path.certifies(&key) {
        return Err(RoClientError::HostIdMismatch);
    }
    let root = match call(wire, conn, CallMsg::RoGetRoot)? {
        ReplyMsg::RoRoot(root) => root,
        other => return Err(RoClientError::Protocol(format!("{other:?}"))),
    };
    if !root.verify(&key) {
        return Err(RoClientError::BadRootSignature);
    }
    Ok((key, root))
}

impl RoMount {
    /// Connects to `path` over `wire`/`conn` using the read-only dialect,
    /// certifying the server key against the HostID and verifying the
    /// signed root.
    pub fn connect(
        path: SelfCertifyingPath,
        wire: Wire,
        conn: Box<dyn RoConnection>,
    ) -> Result<RoMount, RoClientError> {
        let (key, root) = handshake(&path, &wire, conn.as_ref())?;
        Ok(RoMount {
            path,
            key,
            link: Mutex::new(RoLink { wire, conn }),
            root: Mutex::new(root),
            cache: Mutex::new(HashMap::new()),
            redial: Mutex::new(None),
            prior_round_trips: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
        })
    }

    /// Installs the failover hook. Without one, the first replica is the
    /// only replica and errors surface directly.
    pub fn set_redial(&self, redial: RoRedial) {
        *self.redial.lock() = Some(redial);
    }

    /// The mounted pathname.
    pub fn path(&self) -> &SelfCertifyingPath {
        &self.path
    }

    /// The verified snapshot version (monotone across failovers).
    pub fn version(&self) -> u64 {
        self.root.lock().version
    }

    /// Network round trips so far, across every link this mount has used.
    pub fn round_trips(&self) -> u64 {
        self.prior_round_trips.load(Ordering::SeqCst) + self.link.lock().wire.round_trips()
    }

    /// How many times the mount has moved to another replica.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::SeqCst)
    }

    /// Abandons the current link and re-runs the handshake against
    /// whatever replica the redial hook supplies, enforcing the same
    /// HostID and a non-decreasing snapshot version.
    fn failover(&self) -> Result<(), RoClientError> {
        let Some((wire, conn)) = self.redial.lock().as_ref().and_then(|redial| redial()) else {
            return Err(RoClientError::Unavailable(
                "no replica to fail over to".into(),
            ));
        };
        let (key, root) = handshake(&self.path, &wire, conn.as_ref())?;
        // Both keys certify the same HostID, which is collision-resistant,
        // so they must be the same key; keep the original regardless.
        debug_assert_eq!(key.to_bytes(), self.key.to_bytes());
        let mut current = self.root.lock();
        if root.version < current.version {
            return Err(RoClientError::Rollback);
        }
        *current = root;
        drop(current);
        let mut link = self.link.lock();
        self.prior_round_trips
            .fetch_add(link.wire.round_trips(), Ordering::SeqCst);
        *link = RoLink { wire, conn };
        self.failovers.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Issues one call on the current link.
    fn call_current(&self, msg: CallMsg) -> Result<ReplyMsg, RoClientError> {
        let link = self.link.lock();
        call(&link.wire, link.conn.as_ref(), msg)
    }

    /// Fetches and verifies the block named by `digest`, failing over to
    /// other replicas on replica-specific errors.
    fn fetch(&self, digest: Digest) -> Result<RoNode, RoClientError> {
        if let Some(node) = self.cache.lock().get(&digest) {
            return Ok(node.clone());
        }
        let mut attempts = 0u32;
        loop {
            match self.fetch_once(digest) {
                Ok(node) => return Ok(node),
                Err(e) if e.failover_worthy() && attempts < MAX_FAILOVERS => {
                    attempts += 1;
                    // A failed failover can itself be replica-specific —
                    // the redial landed on a dead machine, or (mid
                    // rolling republish) on a replica still presenting
                    // an older root, which the monotone-version check
                    // rejects as Rollback. Keep moving through the
                    // budget; only non-failover-worthy handshake errors
                    // surface immediately.
                    match self.failover() {
                        Ok(()) => {}
                        Err(fe) if fe.failover_worthy() && attempts < MAX_FAILOVERS => {
                            attempts += 1;
                        }
                        Err(fe) => return Err(fe),
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn fetch_once(&self, digest: Digest) -> Result<RoNode, RoClientError> {
        let block = match self.call_current(CallMsg::RoGetBlock(digest))? {
            ReplyMsg::RoBlock(b) => b,
            ReplyMsg::Error(e) if e.contains("unavailable") => {
                return Err(RoClientError::Unavailable(e))
            }
            // The hash tree named this digest, so on a correct replica
            // of the right snapshot it exists; a replica without it is
            // wrong or mid-republish, never proof of absence.
            ReplyMsg::Error(e) if e.contains("no such block") => {
                return Err(RoClientError::MissingBlock)
            }
            ReplyMsg::Error(_) => return Err(RoClientError::NotFound),
            other => return Err(RoClientError::Protocol(format!("{other:?}"))),
        };
        // The integrity check: the block must hash to the digest that
        // named it, no matter who served it.
        if sha1(&block) != digest {
            return Err(RoClientError::DigestMismatch);
        }
        let node = RoNode::from_xdr(&block).map_err(|e| RoClientError::Protocol(e.to_string()))?;
        self.cache.lock().insert(digest, node.clone());
        Ok(node)
    }

    /// Resolves a `/`-separated path to a node.
    ///
    /// A rolling republish can swap the snapshot mid-walk: blocks of
    /// the root this walk started from vanish from upgraded replicas.
    /// When that happens, the fetch-level failover has already pulled a
    /// newer (version-monotone) signed root, so the walk restarts from
    /// it instead of surfacing the transient hole.
    pub fn resolve(&self, path: &str) -> Result<RoNode, RoClientError> {
        for _ in 0..3 {
            let start_version = self.root.lock().version;
            match self.resolve_walk(path) {
                Err(RoClientError::MissingBlock) if self.version() > start_version => continue,
                out => return out,
            }
        }
        self.resolve_walk(path)
    }

    fn resolve_walk(&self, path: &str) -> Result<RoNode, RoClientError> {
        let root_digest = self.root.lock().root_digest;
        let mut node = self.fetch(root_digest)?;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let RoNode::Dir(entries) = &node else {
                return Err(RoClientError::NotFound);
            };
            let (_, _, digest) = entries
                .iter()
                .find(|(name, _, _)| name == comp)
                .ok_or(RoClientError::NotFound)?;
            node = self.fetch(*digest)?;
        }
        Ok(node)
    }

    /// Reads a whole file.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, RoClientError> {
        match self.resolve(path)? {
            RoNode::File(data) => Ok(data),
            _ => Err(RoClientError::NotFound),
        }
    }

    /// Reads a symlink target (the certification-authority primitive:
    /// CAs are "ordinary file systems serving symbolic links").
    pub fn readlink(&self, path: &str) -> Result<String, RoClientError> {
        match self.resolve(path)? {
            RoNode::Symlink(target) => Ok(target),
            _ => Err(RoClientError::NotFound),
        }
    }

    /// Lists a directory.
    pub fn readdir(&self, path: &str) -> Result<Vec<String>, RoClientError> {
        match self.resolve(path)? {
            RoNode::Dir(entries) => Ok(entries.into_iter().map(|(n, _, _)| n).collect()),
            _ => Err(RoClientError::NotFound),
        }
    }
}

impl std::fmt::Debug for RoMount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RoMount({} v{})",
            self.path.dir_name(),
            self.root.lock().version
        )
    }
}

fn call(wire: &Wire, conn: &dyn RoConnection, msg: CallMsg) -> Result<ReplyMsg, RoClientError> {
    let bytes = wire.call(msg.to_xdr(), |b| conn.handle_ro_bytes(&b))?;
    ReplyMsg::from_xdr(&bytes).map_err(|e| RoClientError::Protocol(e.to_string()))
}
