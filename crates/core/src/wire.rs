//! SFS wire messages.
//!
//! A connection has two stages. The cleartext stage carries the key
//! negotiation of Figure 3 (and lets `sfssd` dispatch on service, dialect,
//! and an extensions string, §3.2). Once session keys exist, everything
//! travels as sealed secure-channel frames whose plaintext is an
//! [`InnerCall`]/[`InnerReply`].
//!
//! The read-only dialect never establishes a channel: its replies are
//! self-certifying (signed root, content-addressed blocks), so its calls
//! stay cleartext.

use sfs_nfs3::proto::FileHandle;
use sfs_proto::channel::FRAME_HEADER_LEN;
use sfs_proto::keyneg::{
    KeyNegClientKeys, KeyNegRequest, KeyNegServerHalves, KeyNegServerReply, RESUME_NONCE_LEN,
};
use sfs_proto::readonly::SignedRoot;
use sfs_proto::userauth::AuthMsg;
use sfs_xdr::enc::MAX_VAR_LEN;
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

/// Offset of the secure-channel frame inside a sealed wire envelope.
///
/// `CallMsg::Sealed` and `ReplyMsg::Sealed` both marshal as
/// `discriminant(4) ‖ opaque-length(4) ‖ frame ‖ zero pad to 4`, so the
/// frame always starts at byte 8. The zero-copy hot path exploits this
/// fixed layout to seal and open frames in place inside the envelope
/// buffer instead of marshaling through intermediate `Vec`s.
pub const SEALED_ENV_FRAME_START: usize = 8;

/// Sealed-message discriminant, identical for calls and replies.
const SEALED_DISCRIMINANT: u32 = 2;

/// Starts a sealed envelope in `buf`: discriminant, a length word to be
/// patched by [`sealed_env_finish`], and the reserved secure-channel
/// frame header. The caller appends plaintext, calls
/// `SecureChannelEnd::seal_into(buf, SEALED_ENV_FRAME_START)`, then
/// [`sealed_env_finish`]. The result is byte-identical to
/// `CallMsg::Sealed(frame).to_xdr()` (or the `ReplyMsg` equivalent).
pub fn sealed_env_begin(buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&SEALED_DISCRIMINANT.to_be_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
}

/// Completes a sealed envelope after `seal_into`: patches the opaque
/// length word and appends the XDR zero pad.
pub fn sealed_env_finish(buf: &mut Vec<u8>) {
    let frame_len = buf.len() - SEALED_ENV_FRAME_START;
    buf[4..SEALED_ENV_FRAME_START].copy_from_slice(&(frame_len as u32).to_be_bytes());
    let pad = (4 - frame_len % 4) % 4;
    buf.extend_from_slice(&[0u8; 3][..pad]);
}

/// If `bytes` is exactly a well-formed sealed envelope — the same
/// messages `CallMsg::from_xdr`/`ReplyMsg::from_xdr` would parse as
/// `Sealed` — returns the frame's range within `bytes`. Any deviation
/// (wrong discriminant, bad length, nonzero pad, trailing bytes)
/// returns `None` and the caller falls back to the general decoder.
pub fn sealed_envelope_frame(bytes: &[u8]) -> Option<std::ops::Range<usize>> {
    if bytes.len() < SEALED_ENV_FRAME_START || bytes[..4] != SEALED_DISCRIMINANT.to_be_bytes() {
        return None;
    }
    let len = u32::from_be_bytes(
        bytes[4..SEALED_ENV_FRAME_START]
            .try_into()
            .expect("4 bytes"),
    );
    if len > MAX_VAR_LEN {
        return None;
    }
    let len = len as usize;
    let end = SEALED_ENV_FRAME_START.checked_add(len)?;
    let pad = (4 - len % 4) % 4;
    if bytes.len() != end.checked_add(pad)? || bytes[end..].iter().any(|&b| b != 0) {
        return None;
    }
    Some(SEALED_ENV_FRAME_START..end)
}

/// Offset of the secure-channel frame inside a *sequenced* sealed
/// envelope ([`CallMsg::SealedSeq`]/[`ReplyMsg::SealedSeq`]).
///
/// Those marshal as `discriminant(4) ‖ chanseq(8) ‖ xid(4) ‖
/// opaque-length(4) ‖ frame ‖ zero pad to 4`, so the frame always starts
/// at byte 20. The cleartext `chanseq`/`xid` header is what lets the
/// pipelined path reorder envelopes on the wire while the secure
/// channel's position-sensitive cipher stream is still applied strictly
/// in `chanseq` order (see `sfs_proto::channel::FrameSequencer`).
pub const SEALED_SEQ_ENV_FRAME_START: usize = 20;

/// Sequenced sealed-message discriminant for calls.
const SEALED_SEQ_CALL_DISCRIMINANT: u32 = 7;

/// Sequenced sealed-message discriminant for replies.
const SEALED_SEQ_REPLY_DISCRIMINANT: u32 = 8;

/// Starts a sequenced sealed envelope in `buf` (call direction when
/// `call` is true): discriminant, channel sequence, xid, a length word
/// patched by [`seq_env_finish`], and the reserved secure-channel frame
/// header. The caller appends plaintext, calls
/// `SecureChannelEnd::seal_into(buf, SEALED_SEQ_ENV_FRAME_START)`, then
/// [`seq_env_finish`]. The result is byte-identical to
/// `CallMsg::SealedSeq{..}.to_xdr()` (or the `ReplyMsg` equivalent).
pub fn seq_env_begin(buf: &mut Vec<u8>, call: bool, chanseq: u64, xid: u32) {
    buf.clear();
    let disc = if call {
        SEALED_SEQ_CALL_DISCRIMINANT
    } else {
        SEALED_SEQ_REPLY_DISCRIMINANT
    };
    buf.extend_from_slice(&disc.to_be_bytes());
    buf.extend_from_slice(&chanseq.to_be_bytes());
    buf.extend_from_slice(&xid.to_be_bytes());
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
}

/// Completes a sequenced sealed envelope after `seal_into`: patches the
/// opaque length word and appends the XDR zero pad.
pub fn seq_env_finish(buf: &mut Vec<u8>) {
    let frame_len = buf.len() - SEALED_SEQ_ENV_FRAME_START;
    buf[16..SEALED_SEQ_ENV_FRAME_START].copy_from_slice(&(frame_len as u32).to_be_bytes());
    let pad = (4 - frame_len % 4) % 4;
    buf.extend_from_slice(&[0u8; 3][..pad]);
}

fn seq_envelope(bytes: &[u8], disc: u32) -> Option<(u64, u32, std::ops::Range<usize>)> {
    if bytes.len() < SEALED_SEQ_ENV_FRAME_START || bytes[..4] != disc.to_be_bytes() {
        return None;
    }
    let chanseq = u64::from_be_bytes(bytes[4..12].try_into().expect("8 bytes"));
    let xid = u32::from_be_bytes(bytes[12..16].try_into().expect("4 bytes"));
    let len = u32::from_be_bytes(
        bytes[16..SEALED_SEQ_ENV_FRAME_START]
            .try_into()
            .expect("4 bytes"),
    );
    if len > MAX_VAR_LEN {
        return None;
    }
    let len = len as usize;
    let end = SEALED_SEQ_ENV_FRAME_START.checked_add(len)?;
    let pad = (4 - len % 4) % 4;
    if bytes.len() != end.checked_add(pad)? || bytes[end..].iter().any(|&b| b != 0) {
        return None;
    }
    Some((chanseq, xid, SEALED_SEQ_ENV_FRAME_START..end))
}

/// If `bytes` is exactly a well-formed [`CallMsg::SealedSeq`] envelope,
/// returns `(chanseq, xid, frame range)`; otherwise `None` and the
/// caller falls back to the general decoder.
pub fn seq_call_envelope(bytes: &[u8]) -> Option<(u64, u32, std::ops::Range<usize>)> {
    seq_envelope(bytes, SEALED_SEQ_CALL_DISCRIMINANT)
}

/// [`seq_call_envelope`] for [`ReplyMsg::SealedSeq`] envelopes.
pub fn seq_reply_envelope(bytes: &[u8]) -> Option<(u64, u32, std::ops::Range<usize>)> {
    seq_envelope(bytes, SEALED_SEQ_REPLY_DISCRIMINANT)
}

/// Service selectors in the hello message ("the service it requests
/// (currently fileserver or authserver)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// The file server.
    File,
    /// The authserver (reached through the file server host).
    Auth,
}

/// Protocol dialects ("one can add new file system protocols to SFS
/// without changing any of the existing software").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// The read-write protocol (secure channel + NFS3 relay).
    ReadWrite,
    /// The public read-only protocol (presigned data).
    ReadOnly,
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallMsg {
    /// Stage-1 hello: what file system, which service/dialect, plus the
    /// currently-unused extensions string from §3.2.
    Hello {
        /// Key-negotiation request (Location + HostID).
        req: KeyNegRequest,
        /// Requested service.
        service: Service,
        /// Requested dialect.
        dialect: Dialect,
        /// Protocol version (dispatched on by `sfssd`, §3.2).
        version: u32,
        /// Extensions string (dispatched on by `sfssd`; "currently
        /// unused" in the paper's deployment).
        extensions: String,
    },
    /// Stage-3 of key negotiation.
    ClientKeys(KeyNegClientKeys),
    /// A sealed secure-channel frame containing an [`InnerCall`].
    Sealed(Vec<u8>),
    /// Read-only dialect: fetch the signed root.
    RoGetRoot,
    /// Read-only dialect: fetch a block by digest.
    RoGetBlock([u8; 20]),
    /// `sfskey`→authserver: begin an SRP handshake (§2.4).
    SrpStart {
        /// Login name.
        user: String,
        /// The client's SRP public value A (big-endian).
        a_pub: Vec<u8>,
    },
    /// `sfskey`→authserver: the client's SRP evidence M1.
    SrpFinish {
        /// Evidence message.
        m1: Vec<u8>,
    },
    /// A sealed secure-channel frame carried by the pipelined (windowed)
    /// path. `chanseq` is the frame's position in the per-direction
    /// cipher stream (the channel's messages-sent count at seal time) so
    /// the receiver can restore stream order before decrypting; `xid`
    /// matches the reply to its in-flight call.
    SealedSeq {
        /// Cipher-stream position of this frame (client→server).
        chanseq: u64,
        /// Client-chosen transaction id.
        xid: u32,
        /// The sealed frame.
        frame: Vec<u8>,
    },
    /// Session resumption: present a server-issued ticket instead of
    /// re-running stages 1–4. One round trip, no public-key operations.
    Resume {
        /// The opaque ticket from a previous negotiation or resume.
        ticket: Vec<u8>,
        /// Fresh client nonce mixed into the resumed session keys.
        nonce: [u8; RESUME_NONCE_LEN],
    },
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyMsg {
    /// Stage-2: the server's public key, or a revocation certificate.
    ServerReply(KeyNegServerReply),
    /// Stage-4: the encrypted server key halves, suite choice, and
    /// resumption ticket.
    ServerKeys(KeyNegServerHalves),
    /// A sealed secure-channel frame containing an [`InnerReply`].
    Sealed(Vec<u8>),
    /// Read-only dialect: the signed root.
    RoRoot(SignedRoot),
    /// Read-only dialect: a raw block (client verifies the digest).
    RoBlock(Vec<u8>),
    /// Authserver→`sfskey`: the SRP challenge — salt, B, and the
    /// eksblowfish parameters the client needs to harden its password.
    SrpChallenge {
        /// SRP salt.
        salt: Vec<u8>,
        /// The server's SRP public value B (big-endian).
        b_pub: Vec<u8>,
        /// eksblowfish salt.
        ekb_salt: Vec<u8>,
        /// eksblowfish cost parameter.
        cost: u32,
    },
    /// Authserver→`sfskey`: the server evidence M2 plus a payload sealed
    /// under the negotiated session key — the server's self-certifying
    /// pathname and the user's encrypted private key, if registered.
    SrpDone {
        /// Server evidence message.
        m2: Vec<u8>,
        /// Sealed `(Option<SelfCertifyingPath>, Option<key blob>)`.
        sealed_payload: Vec<u8>,
    },
    /// Protocol-level failure (unknown service, bad state, missing
    /// block).
    Error(String),
    /// A sealed secure-channel frame on the pipelined path; see
    /// [`CallMsg::SealedSeq`]. `chanseq` is the server→client stream
    /// position, `xid` echoes the call being answered.
    SealedSeq {
        /// Cipher-stream position of this frame (server→client).
        chanseq: u64,
        /// Echoed transaction id.
        xid: u32,
        /// The sealed frame.
        frame: Vec<u8>,
    },
    /// Resumption accepted: the server's nonce, its proof it could
    /// unseal the ticket, and a rotated ticket for the *next* resume.
    ResumeOk {
        /// Fresh server nonce mixed into the resumed session keys.
        nonce: [u8; RESUME_NONCE_LEN],
        /// SHA-1 proof of possession over the resumed keys.
        confirm: [u8; 20],
        /// Replacement ticket sealing the new session's secret.
        ticket: Vec<u8>,
    },
    /// Resumption declined (expired, unreadable, or revoked ticket);
    /// the client falls back to a full negotiation.
    ResumeReject(String),
}

/// The plaintext of a sealed client frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InnerCall {
    /// A user-authentication attempt (Figure 4, step 3).
    Auth {
        /// Client-chosen sequence number.
        seq_no: u32,
        /// The agent's opaque signed message.
        msg: AuthMsg,
    },
    /// Fetch the file system's root handle (the MOUNT-protocol
    /// equivalent, carried over the secure channel so it is authentic).
    Mount,
    /// An NFS3 call tagged with an authentication number.
    Nfs {
        /// Authentication number from a prior Auth (0 = anonymous).
        authno: u32,
        /// NFS3 procedure number.
        proc: u32,
        /// Marshaled NFS3 arguments.
        args: Vec<u8>,
    },
}

/// The plaintext of a sealed server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InnerReply {
    /// Authentication accepted: the assigned authentication number.
    AuthGranted {
        /// Echoed sequence number.
        seq_no: u32,
        /// The authentication number for tagging subsequent calls.
        authno: u32,
    },
    /// Authentication rejected ("the agent can try again using different
    /// credentials or a different protocol").
    AuthDenied {
        /// Echoed sequence number.
        seq_no: u32,
    },
    /// The root file handle (SFS/encrypted form).
    MountReply {
        /// Root handle of the export.
        root: FileHandle,
    },
    /// NFS3 results, plus any pending lease-invalidation callbacks
    /// (piggybacked; "the server does not wait for invalidations to be
    /// acknowledged", §3.3).
    Nfs {
        /// Marshaled NFS3 results.
        results: Vec<u8>,
        /// File handles whose cached attributes must be dropped.
        invalidations: Vec<FileHandle>,
    },
}

impl CallMsg {
    /// One-line human-readable rendering (the §3.2 pretty-printing story:
    /// "making it easy to understand any problems by tracing exactly how
    /// processes interact").
    pub fn describe(&self) -> String {
        match self {
            CallMsg::Hello {
                req,
                service,
                dialect,
                version,
                extensions,
            } => format!(
                "HELLO {}:{} service={service:?} dialect={dialect:?} v{version}{}",
                req.location,
                req.host_id,
                if extensions.is_empty() {
                    String::new()
                } else {
                    format!(" ext={extensions:?}")
                }
            ),
            CallMsg::ClientKeys(k) => format!(
                "CLIENT-KEYS ephemeral={}B encrypted-halves={}B",
                k.client_key.len(),
                k.encrypted_halves.len()
            ),
            CallMsg::Sealed(frame) => format!("SEALED [{} bytes]", frame.len()),
            CallMsg::RoGetRoot => "RO-GETROOT".into(),
            CallMsg::RoGetBlock(d) => format!(
                "RO-GETBLOCK {}",
                d.iter()
                    .take(6)
                    .map(|b| format!("{b:02x}"))
                    .collect::<String>()
            ),
            CallMsg::SrpStart { user, a_pub } => {
                format!("SRP-START user={user} A={}B", a_pub.len())
            }
            CallMsg::SrpFinish { .. } => "SRP-FINISH".into(),
            CallMsg::SealedSeq {
                chanseq,
                xid,
                frame,
            } => {
                format!("SEALED-SEQ seq={chanseq} xid={xid} [{} bytes]", frame.len())
            }
            CallMsg::Resume { ticket, .. } => {
                format!("RESUME ticket={}B", ticket.len())
            }
        }
    }
}

impl ReplyMsg {
    /// One-line human-readable rendering.
    pub fn describe(&self) -> String {
        match self {
            ReplyMsg::ServerReply(KeyNegServerReply::ServerKey(k)) => {
                format!("SERVER-KEY [{} bytes]", k.len())
            }
            ReplyMsg::ServerReply(KeyNegServerReply::Revoked(c)) => {
                format!("REVOKED {}", c.location)
            }
            ReplyMsg::ServerKeys(h) => format!(
                "SERVER-KEYS halves={}B suite={} ticket={}B",
                h.encrypted_halves.len(),
                h.chosen,
                h.ticket.len()
            ),
            ReplyMsg::Sealed(frame) => format!("SEALED [{} bytes]", frame.len()),
            ReplyMsg::RoRoot(root) => format!("RO-ROOT v{}", root.version),
            ReplyMsg::RoBlock(b) => format!("RO-BLOCK [{} bytes]", b.len()),
            ReplyMsg::SrpChallenge { cost, .. } => format!("SRP-CHALLENGE cost={cost}"),
            ReplyMsg::SrpDone { .. } => "SRP-DONE".into(),
            ReplyMsg::Error(e) => format!("ERROR {e:?}"),
            ReplyMsg::SealedSeq {
                chanseq,
                xid,
                frame,
            } => {
                format!("SEALED-SEQ seq={chanseq} xid={xid} [{} bytes]", frame.len())
            }
            ReplyMsg::ResumeOk { ticket, .. } => {
                format!("RESUME-OK ticket={}B", ticket.len())
            }
            ReplyMsg::ResumeReject(why) => format!("RESUME-REJECT {why:?}"),
        }
    }
}

fn service_to_u32(s: Service) -> u32 {
    match s {
        Service::File => 1,
        Service::Auth => 2,
    }
}

fn service_from_u32(v: u32) -> Result<Service, XdrError> {
    match v {
        1 => Ok(Service::File),
        2 => Ok(Service::Auth),
        other => Err(XdrError::BadDiscriminant(other)),
    }
}

fn dialect_to_u32(d: Dialect) -> u32 {
    match d {
        Dialect::ReadWrite => 1,
        Dialect::ReadOnly => 2,
    }
}

fn dialect_from_u32(v: u32) -> Result<Dialect, XdrError> {
    match v {
        1 => Ok(Dialect::ReadWrite),
        2 => Ok(Dialect::ReadOnly),
        other => Err(XdrError::BadDiscriminant(other)),
    }
}

impl Xdr for CallMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            CallMsg::Hello {
                req,
                service,
                dialect,
                version,
                extensions,
            } => {
                enc.put_u32(0);
                req.encode(enc);
                enc.put_u32(service_to_u32(*service));
                enc.put_u32(dialect_to_u32(*dialect));
                enc.put_u32(*version);
                enc.put_string(extensions);
            }
            CallMsg::ClientKeys(k) => {
                enc.put_u32(1);
                k.encode(enc);
            }
            CallMsg::Sealed(frame) => {
                enc.put_u32(2);
                enc.put_opaque(frame);
            }
            CallMsg::RoGetRoot => {
                enc.put_u32(3);
            }
            CallMsg::RoGetBlock(digest) => {
                enc.put_u32(4);
                enc.put_opaque_fixed(digest);
            }
            CallMsg::SrpStart { user, a_pub } => {
                enc.put_u32(5);
                enc.put_string(user);
                enc.put_opaque(a_pub);
            }
            CallMsg::SrpFinish { m1 } => {
                enc.put_u32(6);
                enc.put_opaque(m1);
            }
            CallMsg::SealedSeq {
                chanseq,
                xid,
                frame,
            } => {
                enc.put_u32(SEALED_SEQ_CALL_DISCRIMINANT);
                enc.put_u64(*chanseq);
                enc.put_u32(*xid);
                enc.put_opaque(frame);
            }
            CallMsg::Resume { ticket, nonce } => {
                enc.put_u32(8);
                enc.put_opaque(ticket);
                enc.put_opaque_fixed(nonce);
            }
        }
    }

    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(CallMsg::Hello {
                req: KeyNegRequest::decode(dec)?,
                service: service_from_u32(dec.get_u32()?)?,
                dialect: dialect_from_u32(dec.get_u32()?)?,
                version: dec.get_u32()?,
                extensions: dec.get_string()?,
            }),
            1 => Ok(CallMsg::ClientKeys(KeyNegClientKeys::decode(dec)?)),
            2 => Ok(CallMsg::Sealed(dec.get_opaque()?)),
            3 => Ok(CallMsg::RoGetRoot),
            4 => Ok(CallMsg::RoGetBlock(
                dec.get_opaque_fixed(20)?
                    .try_into()
                    .expect("length checked"),
            )),
            5 => Ok(CallMsg::SrpStart {
                user: dec.get_string()?,
                a_pub: dec.get_opaque()?,
            }),
            6 => Ok(CallMsg::SrpFinish {
                m1: dec.get_opaque()?,
            }),
            SEALED_SEQ_CALL_DISCRIMINANT => Ok(CallMsg::SealedSeq {
                chanseq: dec.get_u64()?,
                xid: dec.get_u32()?,
                frame: dec.get_opaque()?,
            }),
            8 => Ok(CallMsg::Resume {
                ticket: dec.get_opaque()?,
                nonce: dec
                    .get_opaque_fixed(RESUME_NONCE_LEN)?
                    .try_into()
                    .expect("length checked"),
            }),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

impl Xdr for ReplyMsg {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            ReplyMsg::ServerReply(r) => {
                enc.put_u32(0);
                r.encode(enc);
            }
            ReplyMsg::ServerKeys(h) => {
                enc.put_u32(1);
                h.encode(enc);
            }
            ReplyMsg::Sealed(frame) => {
                enc.put_u32(2);
                enc.put_opaque(frame);
            }
            ReplyMsg::RoRoot(root) => {
                enc.put_u32(3);
                root.encode(enc);
            }
            ReplyMsg::RoBlock(data) => {
                enc.put_u32(4);
                enc.put_opaque(data);
            }
            ReplyMsg::Error(e) => {
                enc.put_u32(5);
                enc.put_string(e);
            }
            ReplyMsg::SrpChallenge {
                salt,
                b_pub,
                ekb_salt,
                cost,
            } => {
                enc.put_u32(6);
                enc.put_opaque(salt);
                enc.put_opaque(b_pub);
                enc.put_opaque(ekb_salt);
                enc.put_u32(*cost);
            }
            ReplyMsg::SrpDone { m2, sealed_payload } => {
                enc.put_u32(7);
                enc.put_opaque(m2);
                enc.put_opaque(sealed_payload);
            }
            ReplyMsg::SealedSeq {
                chanseq,
                xid,
                frame,
            } => {
                enc.put_u32(SEALED_SEQ_REPLY_DISCRIMINANT);
                enc.put_u64(*chanseq);
                enc.put_u32(*xid);
                enc.put_opaque(frame);
            }
            ReplyMsg::ResumeOk {
                nonce,
                confirm,
                ticket,
            } => {
                enc.put_u32(9);
                enc.put_opaque_fixed(nonce);
                enc.put_opaque_fixed(confirm);
                enc.put_opaque(ticket);
            }
            ReplyMsg::ResumeReject(why) => {
                enc.put_u32(10);
                enc.put_string(why);
            }
        }
    }

    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(ReplyMsg::ServerReply(KeyNegServerReply::decode(dec)?)),
            1 => Ok(ReplyMsg::ServerKeys(KeyNegServerHalves::decode(dec)?)),
            2 => Ok(ReplyMsg::Sealed(dec.get_opaque()?)),
            3 => Ok(ReplyMsg::RoRoot(SignedRoot::decode(dec)?)),
            4 => Ok(ReplyMsg::RoBlock(dec.get_opaque()?)),
            5 => Ok(ReplyMsg::Error(dec.get_string()?)),
            6 => Ok(ReplyMsg::SrpChallenge {
                salt: dec.get_opaque()?,
                b_pub: dec.get_opaque()?,
                ekb_salt: dec.get_opaque()?,
                cost: dec.get_u32()?,
            }),
            7 => Ok(ReplyMsg::SrpDone {
                m2: dec.get_opaque()?,
                sealed_payload: dec.get_opaque()?,
            }),
            SEALED_SEQ_REPLY_DISCRIMINANT => Ok(ReplyMsg::SealedSeq {
                chanseq: dec.get_u64()?,
                xid: dec.get_u32()?,
                frame: dec.get_opaque()?,
            }),
            9 => Ok(ReplyMsg::ResumeOk {
                nonce: dec
                    .get_opaque_fixed(RESUME_NONCE_LEN)?
                    .try_into()
                    .expect("length checked"),
                confirm: dec
                    .get_opaque_fixed(20)?
                    .try_into()
                    .expect("length checked"),
                ticket: dec.get_opaque()?,
            }),
            10 => Ok(ReplyMsg::ResumeReject(dec.get_string()?)),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

impl Xdr for InnerCall {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            InnerCall::Auth { seq_no, msg } => {
                enc.put_u32(0);
                enc.put_u32(*seq_no);
                msg.encode(enc);
            }
            InnerCall::Nfs { authno, proc, args } => {
                enc.put_u32(1);
                enc.put_u32(*authno);
                enc.put_u32(*proc);
                enc.put_opaque(args);
            }
            InnerCall::Mount => {
                enc.put_u32(2);
            }
        }
    }

    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(InnerCall::Auth {
                seq_no: dec.get_u32()?,
                msg: AuthMsg::decode(dec)?,
            }),
            1 => Ok(InnerCall::Nfs {
                authno: dec.get_u32()?,
                proc: dec.get_u32()?,
                args: dec.get_opaque()?,
            }),
            2 => Ok(InnerCall::Mount),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

impl Xdr for InnerReply {
    fn encode(&self, enc: &mut XdrEncoder) {
        match self {
            InnerReply::AuthGranted { seq_no, authno } => {
                enc.put_u32(0);
                enc.put_u32(*seq_no);
                enc.put_u32(*authno);
            }
            InnerReply::AuthDenied { seq_no } => {
                enc.put_u32(1);
                enc.put_u32(*seq_no);
            }
            InnerReply::Nfs {
                results,
                invalidations,
            } => {
                enc.put_u32(2);
                enc.put_opaque(results);
                enc.put_u32(invalidations.len() as u32);
                for fh in invalidations {
                    fh.encode(enc);
                }
            }
            InnerReply::MountReply { root } => {
                enc.put_u32(3);
                root.encode(enc);
            }
        }
    }

    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(InnerReply::AuthGranted {
                seq_no: dec.get_u32()?,
                authno: dec.get_u32()?,
            }),
            1 => Ok(InnerReply::AuthDenied {
                seq_no: dec.get_u32()?,
            }),
            2 => {
                let results = dec.get_opaque()?;
                let n = dec.get_u32()?;
                let mut invalidations = Vec::new();
                for _ in 0..n {
                    invalidations.push(FileHandle::decode(dec)?);
                }
                Ok(InnerReply::Nfs {
                    results,
                    invalidations,
                })
            }
            3 => Ok(InnerReply::MountReply {
                root: FileHandle::decode(dec)?,
            }),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_proto::pathname::HostId;

    #[test]
    fn call_msgs_roundtrip() {
        let msgs = vec![
            CallMsg::Hello {
                req: KeyNegRequest {
                    location: "sfs.lcs.mit.edu".into(),
                    host_id: HostId([7u8; 20]),
                },
                service: Service::File,
                dialect: Dialect::ReadWrite,
                version: 1,
                extensions: String::new(),
            },
            CallMsg::ClientKeys(KeyNegClientKeys {
                client_key: vec![1, 2],
                encrypted_halves: vec![3, 4, 5],
            }),
            CallMsg::Sealed(vec![9; 40]),
            CallMsg::RoGetRoot,
            CallMsg::RoGetBlock([5u8; 20]),
            CallMsg::Resume {
                ticket: vec![8; 52],
                nonce: [3u8; RESUME_NONCE_LEN],
            },
        ];
        for m in msgs {
            assert_eq!(CallMsg::from_xdr(&m.to_xdr()).unwrap(), m);
        }
    }

    #[test]
    fn reply_msgs_roundtrip() {
        let msgs = vec![
            ReplyMsg::ServerReply(KeyNegServerReply::ServerKey(vec![1, 2, 3])),
            ReplyMsg::ServerKeys(KeyNegServerHalves {
                encrypted_halves: vec![4, 5],
                chosen: 2,
                confirm: [6u8; 20],
                ticket: vec![7; 44],
            }),
            ReplyMsg::ResumeOk {
                nonce: [1u8; RESUME_NONCE_LEN],
                confirm: [2u8; 20],
                ticket: vec![3; 44],
            },
            ReplyMsg::ResumeReject("ticket expired".into()),
            ReplyMsg::Sealed(vec![6; 30]),
            ReplyMsg::RoRoot(SignedRoot {
                root_digest: [1u8; 20],
                version: 9,
                signature: vec![2, 3],
            }),
            ReplyMsg::RoBlock(vec![7; 10]),
            ReplyMsg::Error("no such service".into()),
        ];
        for m in msgs {
            assert_eq!(ReplyMsg::from_xdr(&m.to_xdr()).unwrap(), m);
        }
    }

    #[test]
    fn inner_msgs_roundtrip() {
        let calls = vec![
            InnerCall::Auth {
                seq_no: 3,
                msg: AuthMsg {
                    user_key: vec![1],
                    signature: vec![2],
                },
            },
            InnerCall::Nfs {
                authno: 7,
                proc: 1,
                args: vec![1, 2, 3, 4],
            },
        ];
        for c in calls {
            assert_eq!(InnerCall::from_xdr(&c.to_xdr()).unwrap(), c);
        }
        let replies = vec![
            InnerReply::AuthGranted {
                seq_no: 3,
                authno: 1,
            },
            InnerReply::AuthDenied { seq_no: 4 },
            InnerReply::Nfs {
                results: vec![1, 2],
                invalidations: vec![FileHandle(vec![9; 16])],
            },
        ];
        for r in replies {
            assert_eq!(InnerReply::from_xdr(&r.to_xdr()).unwrap(), r);
        }
    }

    #[test]
    fn describe_renders_all_variants() {
        let hello = CallMsg::Hello {
            req: KeyNegRequest {
                location: "h.example".into(),
                host_id: HostId([2u8; 20]),
            },
            service: Service::File,
            dialect: Dialect::ReadWrite,
            version: 1,
            extensions: "newcache".into(),
        };
        let d = hello.describe();
        assert!(d.contains("HELLO h.example"));
        assert!(d.contains("ext=\"newcache\""));
        assert!(CallMsg::RoGetRoot.describe().contains("RO-GETROOT"));
        assert!(CallMsg::Sealed(vec![0; 9]).describe().contains("9 bytes"));
        assert!(ReplyMsg::Error("nope".into()).describe().contains("nope"));
        assert!(ReplyMsg::SrpChallenge {
            salt: vec![],
            b_pub: vec![],
            ekb_salt: vec![],
            cost: 8
        }
        .describe()
        .contains("cost=8"));
    }

    #[test]
    fn envelope_helpers_match_the_general_encoder() {
        for n in [0usize, 1, 3, 24, 4096] {
            let frame: Vec<u8> = (0..n + FRAME_HEADER_LEN)
                .map(|i| (i * 7 + 3) as u8)
                .collect();
            let mut buf = Vec::new();
            sealed_env_begin(&mut buf);
            assert_eq!(buf.len(), SEALED_ENV_FRAME_START + FRAME_HEADER_LEN);
            // Stand in for `seal_into`: place the finished frame bytes.
            buf.truncate(SEALED_ENV_FRAME_START);
            buf.extend_from_slice(&frame);
            sealed_env_finish(&mut buf);
            assert_eq!(buf, CallMsg::Sealed(frame.clone()).to_xdr());
            assert_eq!(buf, ReplyMsg::Sealed(frame.clone()).to_xdr());
            assert_eq!(
                sealed_envelope_frame(&buf),
                Some(SEALED_ENV_FRAME_START..SEALED_ENV_FRAME_START + frame.len())
            );
        }
    }

    #[test]
    fn envelope_parse_rejects_what_from_xdr_would_reject() {
        let good = CallMsg::Sealed(vec![7u8; 26]).to_xdr();
        assert!(sealed_envelope_frame(&good).is_some());

        let mut wrong_disc = good.clone();
        wrong_disc[3] = 1;
        assert_eq!(sealed_envelope_frame(&wrong_disc), None);

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(sealed_envelope_frame(&trailing), None);

        let mut bad_pad = good.clone();
        *bad_pad.last_mut().unwrap() = 1;
        assert_eq!(sealed_envelope_frame(&bad_pad), None);
        assert!(CallMsg::from_xdr(&bad_pad).is_err());

        assert_eq!(sealed_envelope_frame(&good[..6]), None);

        let mut huge = good.clone();
        huge[4..8].copy_from_slice(&(MAX_VAR_LEN + 1).to_be_bytes());
        assert_eq!(sealed_envelope_frame(&huge), None);
    }

    #[test]
    fn seq_msgs_roundtrip() {
        let c = CallMsg::SealedSeq {
            chanseq: 0x1_0000_0007,
            xid: 42,
            frame: vec![9; 33],
        };
        assert_eq!(CallMsg::from_xdr(&c.to_xdr()).unwrap(), c);
        let r = ReplyMsg::SealedSeq {
            chanseq: 3,
            xid: 42,
            frame: vec![5; 8],
        };
        assert_eq!(ReplyMsg::from_xdr(&r.to_xdr()).unwrap(), r);
        assert!(c.describe().contains("xid=42"));
        assert!(r.describe().contains("seq=3"));
    }

    #[test]
    fn seq_envelope_helpers_match_the_general_encoder() {
        for n in [0usize, 1, 3, 24, 4096] {
            let frame: Vec<u8> = (0..n + FRAME_HEADER_LEN)
                .map(|i| (i * 7 + 3) as u8)
                .collect();
            for call in [true, false] {
                let mut buf = Vec::new();
                seq_env_begin(&mut buf, call, 0xdead_beef_0012_3456, 77);
                assert_eq!(buf.len(), SEALED_SEQ_ENV_FRAME_START + FRAME_HEADER_LEN);
                // Stand in for `seal_into`: place the finished frame bytes.
                buf.truncate(SEALED_SEQ_ENV_FRAME_START);
                buf.extend_from_slice(&frame);
                seq_env_finish(&mut buf);
                let expect = if call {
                    CallMsg::SealedSeq {
                        chanseq: 0xdead_beef_0012_3456,
                        xid: 77,
                        frame: frame.clone(),
                    }
                    .to_xdr()
                } else {
                    ReplyMsg::SealedSeq {
                        chanseq: 0xdead_beef_0012_3456,
                        xid: 77,
                        frame: frame.clone(),
                    }
                    .to_xdr()
                };
                assert_eq!(buf, expect);
                let parse = if call {
                    seq_call_envelope(&buf)
                } else {
                    seq_reply_envelope(&buf)
                };
                assert_eq!(
                    parse,
                    Some((
                        0xdead_beef_0012_3456,
                        77,
                        SEALED_SEQ_ENV_FRAME_START..SEALED_SEQ_ENV_FRAME_START + frame.len()
                    ))
                );
                // Direction confusion is rejected.
                let cross = if call {
                    seq_reply_envelope(&buf)
                } else {
                    seq_call_envelope(&buf)
                };
                assert_eq!(cross, None);
            }
        }
    }

    #[test]
    fn seq_envelope_parse_rejects_what_from_xdr_would_reject() {
        let good = CallMsg::SealedSeq {
            chanseq: 9,
            xid: 1,
            frame: vec![7u8; 26],
        }
        .to_xdr();
        assert!(seq_call_envelope(&good).is_some());

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(seq_call_envelope(&trailing), None);

        let mut bad_pad = good.clone();
        *bad_pad.last_mut().unwrap() = 1;
        assert_eq!(seq_call_envelope(&bad_pad), None);
        assert!(CallMsg::from_xdr(&bad_pad).is_err());

        assert_eq!(seq_call_envelope(&good[..10]), None);

        let mut huge = good.clone();
        huge[16..20].copy_from_slice(&(MAX_VAR_LEN + 1).to_be_bytes());
        assert_eq!(seq_call_envelope(&huge), None);
    }

    #[test]
    fn bad_discriminants_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_u32(99);
        assert!(CallMsg::from_xdr(enc.bytes()).is_err());
        assert!(ReplyMsg::from_xdr(enc.bytes()).is_err());
        assert!(InnerCall::from_xdr(enc.bytes()).is_err());
        assert!(InnerReply::from_xdr(enc.bytes()).is_err());
    }
}
