//! `sfscd`/`sfssd` dispatch configuration (§3.2).
//!
//! "A configuration file controls how client and server masters hand off
//! connections. Thus, one can add new file system protocols to SFS
//! without changing any of the existing software. Old and new versions of
//! the same protocols can run alongside each other, even when the
//! corresponding subsidiary daemons have no special support for backwards
//! compatibility."
//!
//! A [`DispatchTable`] maps a connection's announced (service, dialect,
//! version, extensions) to a subsidiary daemon name; `sfssd` consults it
//! on the first message of every connection. The same table drives
//! `sfscd`'s choice of subordinate client daemon.

use crate::wire::{Dialect, Service};

/// One dispatch rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchRule {
    /// Service the rule matches.
    pub service: Service,
    /// Dialect the rule matches.
    pub dialect: Dialect,
    /// Inclusive protocol version range.
    pub versions: (u32, u32),
    /// Extension string this rule requires (empty = no extension).
    pub extension: String,
    /// Name of the subsidiary daemon to hand the connection to.
    pub daemon: String,
}

impl DispatchRule {
    fn matches(&self, service: Service, dialect: Dialect, version: u32, extension: &str) -> bool {
        self.service == service
            && self.dialect == dialect
            && (self.versions.0..=self.versions.1).contains(&version)
            && self.extension == extension
    }
}

/// The dispatch table (the parsed "configuration file").
#[derive(Debug, Clone, Default)]
pub struct DispatchTable {
    rules: Vec<DispatchRule>,
}

impl DispatchTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stock configuration shipped with this reproduction: the
    /// read-write file server, the read-only server, and the authserver.
    pub fn standard() -> Self {
        let mut t = Self::new();
        t.add(DispatchRule {
            service: Service::File,
            dialect: Dialect::ReadWrite,
            versions: (1, 1),
            extension: String::new(),
            daemon: "sfsrwsd".into(),
        });
        t.add(DispatchRule {
            service: Service::File,
            dialect: Dialect::ReadOnly,
            versions: (1, 1),
            extension: String::new(),
            daemon: "sfsrosd".into(),
        });
        t.add(DispatchRule {
            service: Service::Auth,
            dialect: Dialect::ReadWrite,
            versions: (1, 1),
            extension: String::new(),
            daemon: "sfsauthd".into(),
        });
        t
    }

    /// Appends a rule (later rules do not shadow earlier ones; first
    /// match wins, so site configuration can prepend overrides).
    pub fn add(&mut self, rule: DispatchRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Resolves a connection announcement to a daemon name.
    pub fn dispatch(
        &self,
        service: Service,
        dialect: Dialect,
        version: u32,
        extension: &str,
    ) -> Option<&str> {
        self.rules
            .iter()
            .find(|r| r.matches(service, dialect, version, extension))
            .map(|r| r.daemon.as_str())
    }

    /// Parses the tiny configuration-file format:
    ///
    /// ```text
    /// # service dialect versions daemon [extension]
    /// file  rw  1-2  sfsrwsd
    /// file  ro  1-1  sfsrosd
    /// auth  rw  1-1  sfsauthd
    /// file  rw  3-3  sfsrwsd-v3  newcache
    /// ```
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut table = Self::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() < 4 || fields.len() > 5 {
                return Err(format!("line {}: expected 4-5 fields", lineno + 1));
            }
            let service = match fields[0] {
                "file" => Service::File,
                "auth" => Service::Auth,
                other => return Err(format!("line {}: unknown service {other}", lineno + 1)),
            };
            let dialect = match fields[1] {
                "rw" => Dialect::ReadWrite,
                "ro" => Dialect::ReadOnly,
                other => return Err(format!("line {}: unknown dialect {other}", lineno + 1)),
            };
            let versions = match fields[2].split_once('-') {
                Some((lo, hi)) => {
                    let lo: u32 = lo
                        .parse()
                        .map_err(|_| format!("line {}: bad version", lineno + 1))?;
                    let hi: u32 = hi
                        .parse()
                        .map_err(|_| format!("line {}: bad version", lineno + 1))?;
                    if lo > hi {
                        return Err(format!("line {}: empty version range", lineno + 1));
                    }
                    (lo, hi)
                }
                None => {
                    let v: u32 = fields[2]
                        .parse()
                        .map_err(|_| format!("line {}: bad version", lineno + 1))?;
                    (v, v)
                }
            };
            table.add(DispatchRule {
                service,
                dialect,
                versions,
                extension: fields.get(4).unwrap_or(&"").to_string(),
                daemon: fields[3].to_string(),
            });
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_routes_all_services() {
        let t = DispatchTable::standard();
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadWrite, 1, ""),
            Some("sfsrwsd")
        );
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadOnly, 1, ""),
            Some("sfsrosd")
        );
        assert_eq!(
            t.dispatch(Service::Auth, Dialect::ReadWrite, 1, ""),
            Some("sfsauthd")
        );
        assert_eq!(t.dispatch(Service::File, Dialect::ReadWrite, 9, ""), None);
    }

    #[test]
    fn old_and_new_versions_coexist() {
        // "Old and new versions of the same protocols can run alongside
        // each other."
        let mut t = DispatchTable::standard();
        t.add(DispatchRule {
            service: Service::File,
            dialect: Dialect::ReadWrite,
            versions: (2, 3),
            daemon: "sfsrwsd-next".into(),
            extension: String::new(),
        });
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadWrite, 1, ""),
            Some("sfsrwsd")
        );
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadWrite, 2, ""),
            Some("sfsrwsd-next")
        );
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadWrite, 3, ""),
            Some("sfsrwsd-next")
        );
    }

    #[test]
    fn extensions_select_experimental_daemons() {
        let mut t = DispatchTable::standard();
        t.add(DispatchRule {
            service: Service::File,
            dialect: Dialect::ReadWrite,
            versions: (1, 1),
            daemon: "sfsrwsd-newcache".into(),
            extension: "newcache".into(),
        });
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadWrite, 1, "newcache"),
            Some("sfsrwsd-newcache")
        );
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadWrite, 1, ""),
            Some("sfsrwsd")
        );
    }

    #[test]
    fn first_match_wins_for_overrides() {
        let mut t = DispatchTable::new();
        t.add(DispatchRule {
            service: Service::File,
            dialect: Dialect::ReadWrite,
            versions: (1, 1),
            daemon: "site-override".into(),
            extension: String::new(),
        });
        for r in DispatchTable::standard().rules {
            t.add(r);
        }
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadWrite, 1, ""),
            Some("site-override")
        );
    }

    #[test]
    fn config_file_parses() {
        let text = "\
# sfssd configuration
file  rw  1-2  sfsrwsd
file  ro  1    sfsrosd
auth  rw  1-1  sfsauthd
file  rw  3-3  sfsrwsd-v3  newcache
";
        let t = DispatchTable::parse(text).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadWrite, 2, ""),
            Some("sfsrwsd")
        );
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadOnly, 1, ""),
            Some("sfsrosd")
        );
        assert_eq!(
            t.dispatch(Service::File, Dialect::ReadWrite, 3, "newcache"),
            Some("sfsrwsd-v3")
        );
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(DispatchTable::parse("file rw").is_err());
        assert!(DispatchTable::parse("mail rw 1 x").is_err());
        assert!(DispatchTable::parse("file xx 1 x").is_err());
        assert!(DispatchTable::parse("file rw 2-1 x").is_err());
        assert!(DispatchTable::parse("file rw one x").is_err());
    }
}
