//! The SFS server: `sfssd` dispatch plus the read-write and read-only
//! servers (§3, §3.2, §3.3).
//!
//! A [`SfsServer`] owns the long-lived key, the exported file system (via
//! an embedded NFS3 engine — "the server acts as an NFS client, passing
//! the request to an NFS server on the same machine"), and the
//! authserver. Each client TCP connection becomes a [`ServerConn`] state
//! machine: `sfssd` inspects the first message and routes it to the
//! read-write protocol, the read-only dialect, or the authserver's SRP
//! service, exactly as §3.2's connection hand-off describes.
//!
//! NFS file handles never cross the wire raw: "SFS servers … make their
//! file handles publicly available to anonymous clients. SFS therefore
//! generates its file handles by adding redundancy to NFS handles and
//! encrypting them in CBC mode with a 20-byte Blowfish key" (§3.3).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use sfs_bignum::{Nat, RandomSource};
use sfs_crypto::blowfish::Blowfish;
use sfs_crypto::chachapoly;
use sfs_crypto::rabin::{RabinPrivateKey, RabinPublicKey};
use sfs_crypto::sha1::{sha1_concat, DIGEST_LEN};
use sfs_crypto::srp::SrpServer;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{FileHandle, Nfs3Reply, Nfs3Request, Proc, Status};
use sfs_nfs3::Nfs3Server;
use sfs_proto::channel::{FrameSequencer, SecureChannelEnd, SeqPush, SuiteId};
use sfs_proto::keyneg::{
    resume_confirm, resume_secret, resume_session, server_process_client_keys, strip_suites_ext,
    KeyNegServerReply, RESUME_NONCE_LEN,
};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_proto::readonly::{RoDatabase, RoError};
use sfs_proto::revoke::{ForwardingPointer, RevocationCert};
use sfs_proto::userauth::{AuthInfo, SeqWindow, AUTHNO_ANONYMOUS};
use sfs_sim::{FaultPlan, ServerCost, ServerLoad};
use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;
use sfs_vfs::{Credentials, Vfs};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder};

use crate::authserver::AuthServer;
use crate::bufpool::BufPool;
use crate::config::DispatchTable;
use crate::sealbox;
use crate::shard::{ShardEngine, ShardedReplyCache};
use crate::wire::{
    sealed_env_begin, sealed_env_finish, sealed_envelope_frame, seq_call_envelope, seq_env_begin,
    seq_env_finish, CallMsg, Dialect, InnerCall, InnerReply, ReplyMsg, Service,
    SEALED_ENV_FRAME_START, SEALED_SEQ_ENV_FRAME_START,
};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// DNS name or IP address of this server.
    pub location: String,
    /// Lease duration for the enhanced caching extension, ns.
    pub lease_ns: u64,
    /// `sfssd`'s connection-dispatch table (§3.2).
    pub dispatch: DispatchTable,
}

impl ServerConfig {
    /// A config with the paper's defaults (leases on, standard dispatch
    /// table).
    pub fn new(location: &str) -> Self {
        ServerConfig {
            location: location.to_string(),
            lease_ns: 30_000_000_000,
            dispatch: DispatchTable::standard(),
        }
    }
}

/// Applies `f` to every file handle in an NFS3 request.
fn map_request_handles(
    req: Nfs3Request,
    f: &mut dyn FnMut(FileHandle) -> Result<FileHandle, Status>,
) -> Result<Nfs3Request, Status> {
    use Nfs3Request as R;
    Ok(match req {
        R::Null => R::Null,
        R::GetAttr { fh } => R::GetAttr { fh: f(fh)? },
        R::SetAttr { fh, attrs } => R::SetAttr { fh: f(fh)?, attrs },
        R::Lookup { dir, name } => R::Lookup { dir: f(dir)?, name },
        R::Access { fh, mask } => R::Access { fh: f(fh)?, mask },
        R::ReadLink { fh } => R::ReadLink { fh: f(fh)? },
        R::Read { fh, offset, count } => R::Read {
            fh: f(fh)?,
            offset,
            count,
        },
        R::Write {
            fh,
            offset,
            stable,
            data,
        } => R::Write {
            fh: f(fh)?,
            offset,
            stable,
            data,
        },
        R::Create { dir, name, attrs } => R::Create {
            dir: f(dir)?,
            name,
            attrs,
        },
        R::Mkdir { dir, name, attrs } => R::Mkdir {
            dir: f(dir)?,
            name,
            attrs,
        },
        R::Symlink { dir, name, target } => R::Symlink {
            dir: f(dir)?,
            name,
            target,
        },
        R::Remove { dir, name } => R::Remove { dir: f(dir)?, name },
        R::Rmdir { dir, name } => R::Rmdir { dir: f(dir)?, name },
        R::Rename {
            from_dir,
            from_name,
            to_dir,
            to_name,
        } => R::Rename {
            from_dir: f(from_dir)?,
            from_name,
            to_dir: f(to_dir)?,
            to_name,
        },
        R::Link { fh, dir, name } => R::Link {
            fh: f(fh)?,
            dir: f(dir)?,
            name,
        },
        R::ReadDir {
            dir,
            cookie,
            count,
            plus,
        } => R::ReadDir {
            dir: f(dir)?,
            cookie,
            count,
            plus,
        },
        R::FsStat { root } => R::FsStat { root: f(root)? },
        R::FsInfo { root } => R::FsInfo { root: f(root)? },
        R::PathConf { fh } => R::PathConf { fh: f(fh)? },
        R::Commit { fh, offset, count } => R::Commit {
            fh: f(fh)?,
            offset,
            count,
        },
    })
}

/// Applies `f` to every file handle in an NFS3 reply.
fn map_reply_handles(reply: Nfs3Reply, f: &mut dyn FnMut(FileHandle) -> FileHandle) -> Nfs3Reply {
    use Nfs3Reply as P;
    match reply {
        P::Lookup { fh, attr, dir_attr } => P::Lookup {
            fh: f(fh),
            attr,
            dir_attr,
        },
        P::Create { fh, attr, dir_attr } => P::Create {
            fh: f(fh),
            attr,
            dir_attr,
        },
        P::Mkdir { fh, attr, dir_attr } => P::Mkdir {
            fh: f(fh),
            attr,
            dir_attr,
        },
        P::Symlink { fh, attr, dir_attr } => P::Symlink {
            fh: f(fh),
            attr,
            dir_attr,
        },
        P::ReadDir {
            entries,
            eof,
            dir_attr,
        } => P::ReadDir {
            entries: entries
                .into_iter()
                .map(|mut e| {
                    e.plus = e.plus.map(|(fh, a)| (f(fh), a));
                    e
                })
                .collect(),
            eof,
            dir_attr,
        },
        other => other,
    }
}

/// Fan-out point for lease invalidation callbacks: every live
/// connection gets its own pending queue, so a callback reaches *all*
/// clients holding leases, not just whichever connection drains a reply
/// first. Queues are held weakly — a dropped [`ServerConn`] prunes
/// itself on the next broadcast. A crash-restart clears every queue:
/// pending callbacks die with the instance (stale connections are
/// rejected anyway, which forces the cache flush on reconnect).
struct InvalidationHub {
    queues: Mutex<Vec<Weak<Mutex<Vec<FileHandle>>>>>,
}

impl InvalidationHub {
    fn new() -> Arc<Self> {
        Arc::new(InvalidationHub {
            queues: Mutex::new(Vec::new()),
        })
    }

    /// Registers a fresh per-connection queue.
    fn register(&self) -> Arc<Mutex<Vec<FileHandle>>> {
        let q = Arc::new(Mutex::new(Vec::new()));
        self.queues.lock().push(Arc::downgrade(&q));
        q
    }

    /// Pushes one invalidation onto every live queue.
    fn broadcast(&self, fh: FileHandle) {
        self.queues.lock().retain(|w| match w.upgrade() {
            Some(q) => {
                q.lock().push(fh.clone());
                true
            }
            None => false,
        });
    }

    /// Drops all pending invalidations (crash-restart side effect).
    fn clear_all(&self) {
        self.queues.lock().retain(|w| match w.upgrade() {
            Some(q) => {
                q.lock().clear();
                true
            }
            None => false,
        });
    }
}

/// The SFS server.
pub struct SfsServer {
    config: ServerConfig,
    key: RabinPrivateKey,
    path: SelfCertifyingPath,
    nfs: Nfs3Server,
    auth: Arc<AuthServer>,
    fh_cipher: Blowfish,
    /// AEAD key sealing session-resumption tickets. Derived from the
    /// server key (like the file-handle cipher) so tickets minted before
    /// a crash-restart still unseal afterwards — resumption is exactly
    /// the recovery path that must survive a reboot.
    ticket_key: [u8; 32],
    rng: Mutex<SfsPrg>,
    /// When set, served in response to hellos for the revoked HostID.
    revocation: Mutex<Option<RevocationCert>>,
    /// Published read-only database, when this server exports the
    /// read-only dialect.
    ro_db: Mutex<Option<Arc<RoDatabase>>>,
    /// Lease invalidations pending delivery, fanned out per connection
    /// (piggybacked on replies).
    invalidations: Arc<InvalidationHub>,
    /// Boot epoch from crashes triggered by hand ([`Self::crash_restart`]).
    manual_epoch: AtomicU64,
    /// Highest fault-plan-scheduled crash epoch already applied.
    seen_plan_epoch: AtomicU64,
    /// Optional fault plan supplying a crash-restart schedule.
    fault: Mutex<Option<FaultPlan>>,
    /// Contention tracker for this server machine; wires attached by a
    /// relay count as concurrent streams sharing its link and CPU.
    load: ServerLoad,
    /// When this server is the primary of a replica group, the hook that
    /// ships each executed mutating op to the backups before the reply
    /// is released (acknowledged-commit).
    replicator: Mutex<Option<Arc<dyn Replicator>>>,
    /// Multi-core dispatch scheduler; `None` keeps the classic
    /// single-server discipline byte-for-byte.
    shards: Mutex<Option<Arc<ShardEngine>>>,
    tel: Mutex<Telemetry>,
}

/// Ships executed mutating operations to a replica group.
///
/// Installed on a primary via [`SfsServer::set_replicator`] and invoked
/// *inside* NFS dispatch, after the local execution succeeds but before
/// the reply is encoded — so the client's acknowledgement inherently
/// waits for the group's quorum-durability barrier. `req` is the
/// NFS-form request (plaintext handles) with the caller's resolved
/// credentials; backups holding the same group key re-derive identical
/// wire handles.
pub trait Replicator: Send + Sync {
    fn replicate(&self, creds: &Credentials, req: &Nfs3Request);
}

/// Whether an NFSv3 procedure mutates the file system (and therefore
/// must be shipped to backups before its reply is released).
pub fn proc_is_mutating(proc: Proc) -> bool {
    matches!(
        proc,
        Proc::SetAttr
            | Proc::Write
            | Proc::Create
            | Proc::Mkdir
            | Proc::Symlink
            | Proc::Remove
            | Proc::Rmdir
            | Proc::Rename
            | Proc::Link
    )
}

/// Domain separator authenticated into every resumption ticket.
const TICKET_AAD: &[u8] = b"SFS-resume-ticket";

/// How long a resumption ticket stays honored after minting (virtual
/// time). Long enough to cover any realistic reconnect storm, short
/// enough that a stolen ticket ages out.
const TICKET_LIFETIME_NS: u64 = 3_600_000_000_000;

impl SfsServer {
    /// Creates a server exporting `vfs`.
    pub fn new(
        config: ServerConfig,
        key: RabinPrivateKey,
        vfs: Vfs,
        auth: Arc<AuthServer>,
        rng: SfsPrg,
    ) -> Arc<Self> {
        let path = SelfCertifyingPath::for_server(&config.location, key.public());
        auth.set_server_path(path.clone());
        let nfs = Nfs3Server::new(vfs).with_leases(config.lease_ns);
        // The file-handle key is derived from the server key, so handles
        // stay stable across restarts.
        let fh_key = sha1_concat(&[b"SFS-fh-key", &key.to_bytes()]);
        let fh_cipher = Blowfish::new(&fh_key);
        let t1 = sha1_concat(&[b"SFS-ticket-key/1", &key.to_bytes()]);
        let t2 = sha1_concat(&[b"SFS-ticket-key/2", &key.to_bytes()]);
        let mut ticket_key = [0u8; 32];
        ticket_key[..DIGEST_LEN].copy_from_slice(&t1);
        ticket_key[DIGEST_LEN..].copy_from_slice(&t2[..32 - DIGEST_LEN]);
        let invalidations = InvalidationHub::new();
        let sink = invalidations.clone();
        nfs.set_invalidation_sink(Arc::new(move |fh| sink.broadcast(fh)));
        Arc::new(SfsServer {
            config,
            key,
            path,
            nfs,
            auth,
            fh_cipher,
            ticket_key,
            rng: Mutex::new(rng),
            revocation: Mutex::new(None),
            ro_db: Mutex::new(None),
            invalidations,
            manual_epoch: AtomicU64::new(0),
            seen_plan_epoch: AtomicU64::new(0),
            fault: Mutex::new(None),
            load: ServerLoad::new(),
            replicator: Mutex::new(None),
            shards: Mutex::new(None),
            tel: Mutex::new(Telemetry::disabled()),
        })
    }

    /// Installs an `n`-core [`ShardEngine`]: pipelined frames are
    /// scheduled across `n` simulated cores (crypto on any core, disk
    /// work on the owning handle shard with group commit) instead of
    /// queueing on one logical server. Unset (the default), dispatch
    /// timing is byte-for-byte the classic single-server discipline.
    pub fn set_cores(&self, n: usize) {
        *self.shards.lock() = Some(ShardEngine::new(n));
    }

    /// The installed multi-core scheduler, if any.
    pub fn shard_engine(&self) -> Option<Arc<ShardEngine>> {
        self.shards.lock().clone()
    }

    /// This machine's contention tracker. A routing tier attaches each
    /// wire it hands out to the chosen replica's load, so fan-out across
    /// replicas shows up as reduced per-machine contention.
    pub fn load(&self) -> ServerLoad {
        self.load.clone()
    }

    /// Attaches a tracing sink. Dispatch spans and seqno-window events
    /// are stamped with the server's own simulated clock; the embedded
    /// NFS3 engine is instrumented through the same sink.
    pub fn set_telemetry(&self, tel: &Telemetry) {
        *self.tel.lock() = tel.clone().with_clock(self.nfs.vfs().clock().clone());
        self.nfs.set_telemetry(tel);
    }

    /// The server's self-certifying pathname.
    pub fn path(&self) -> &SelfCertifyingPath {
        &self.path
    }

    /// The server's private key (owner operations: revocation,
    /// forwarding, read-only publication).
    pub fn private_key(&self) -> &RabinPrivateKey {
        &self.key
    }

    /// The exported file system.
    pub fn vfs(&self) -> &Vfs {
        self.nfs.vfs()
    }

    /// The attached authserver.
    pub fn authserver(&self) -> &Arc<AuthServer> {
        &self.auth
    }

    /// The root file handle in SFS (encrypted) form.
    pub fn root_handle(&self) -> FileHandle {
        self.encrypt_handle(self.nfs.root_handle())
    }

    /// Revokes this server's pathname: subsequent hellos for the old
    /// HostID receive the certificate.
    pub fn install_revocation(&self, cert: RevocationCert) {
        *self.revocation.lock() = Some(cert);
    }

    /// Installs a forwarding pointer (§2.4): signs a pointer from this
    /// server's pathname to `new_path` and serves it as the well-known
    /// `/.forward` file, so clients can follow the move. (If the key was
    /// *compromised* rather than moved, use [`Self::install_revocation`]
    /// instead — "a revocation certificate always overrules a forwarding
    /// pointer".)
    pub fn install_forwarding(&self, new_path: SelfCertifyingPath) -> ForwardingPointer {
        let ptr = ForwardingPointer::issue(&self.key, &self.config.location, new_path);
        let vfs = self.nfs.vfs();
        let root_creds = Credentials::root();
        let root = vfs.root();
        vfs.write_file(&root_creds, root, ".forward", &ptr.to_xdr())
            .expect("forwarding file");
        ptr
    }

    /// Publishes (or refreshes) the read-only export by snapshotting the
    /// current file system. The signature happens here, once — connecting
    /// clients cost no further private-key operations.
    pub fn publish_read_only(&self, version: u64) -> Arc<RoDatabase> {
        let db = Arc::new(RoDatabase::publish(self.nfs.vfs(), &self.key, version));
        *self.ro_db.lock() = Some(db.clone());
        db
    }

    /// The current read-only database (for replication onto untrusted
    /// hosts).
    pub fn read_only_db(&self) -> Option<Arc<RoDatabase>> {
        self.ro_db.lock().clone()
    }

    /// Encrypts an NFS handle into its public SFS form.
    pub fn encrypt_handle(&self, fh: FileHandle) -> FileHandle {
        let mut buf = fh.0;
        let red = sha1_concat(&[b"SFS-fh-redundancy", &buf]);
        buf.extend_from_slice(&red[..8]);
        // 16 + 8 = 24 bytes = 3 Blowfish blocks.
        self.fh_cipher.cbc_encrypt(&mut buf);
        FileHandle(buf)
    }

    /// Decrypts and validates an SFS handle back to NFS form. Works in a
    /// stack buffer (wire handles are exactly 24 bytes) so the hot relay
    /// path pays one allocation — the returned handle — not three.
    pub fn decrypt_handle(&self, fh: &FileHandle) -> Result<FileHandle, Status> {
        if fh.0.len() != 24 {
            return Err(Status::BadHandle);
        }
        let mut buf = [0u8; 24];
        buf.copy_from_slice(&fh.0);
        self.fh_cipher.cbc_decrypt(&mut buf);
        let (inner, red) = buf.split_at(16);
        let expect = sha1_concat(&[b"SFS-fh-redundancy", inner]);
        if red != &expect[..8] {
            return Err(Status::BadHandle);
        }
        Ok(FileHandle(inner.to_vec()))
    }

    /// Seals a session-resumption ticket: an opaque blob only this
    /// server (or a restarted instance holding the same key) can read.
    /// Layout: `nonce[12] ‖ AEAD(secret ‖ suite ‖ issued_ns) ‖ tag`.
    fn mint_ticket(&self, secret: &[u8; DIGEST_LEN], suite: SuiteId, issued_ns: u64) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        enc.put_opaque_fixed(secret);
        enc.put_u32(suite.wire_id());
        enc.put_u64(issued_ns);
        let mut nonce = [0u8; chachapoly::NONCE_LEN];
        self.rng.lock().fill(&mut nonce);
        let mut ticket = nonce.to_vec();
        ticket.extend_from_slice(&chachapoly::seal(
            &self.ticket_key,
            &nonce,
            TICKET_AAD,
            enc.bytes(),
        ));
        ticket
    }

    /// Unseals and validates a resumption ticket. Only authenticity and
    /// well-formedness are checked here; freshness (expiry) is the
    /// caller's policy.
    fn unseal_ticket(&self, ticket: &[u8]) -> Result<([u8; DIGEST_LEN], SuiteId, u64), String> {
        if ticket.len() < chachapoly::NONCE_LEN + chachapoly::TAG_LEN {
            return Err("ticket too short".into());
        }
        let (nonce, sealed) = ticket.split_at(chachapoly::NONCE_LEN);
        let nonce: [u8; chachapoly::NONCE_LEN] = nonce.try_into().expect("split length");
        let payload = chachapoly::open(&self.ticket_key, &nonce, TICKET_AAD, sealed)
            .map_err(|_| "ticket authentication failed".to_string())?;
        let mut dec = XdrDecoder::new(&payload);
        let bad = |e: sfs_xdr::XdrError| format!("malformed ticket payload: {e}");
        let secret: [u8; DIGEST_LEN] = dec
            .get_opaque_fixed(DIGEST_LEN)
            .map_err(bad)?
            .try_into()
            .expect("fixed length");
        let suite_wire = dec.get_u32().map_err(bad)?;
        let issued_ns = dec.get_u64().map_err(bad)?;
        dec.finish().map_err(bad)?;
        let suite = SuiteId::from_wire(suite_wire)
            .ok_or_else(|| format!("ticket names unknown suite {suite_wire}"))?;
        Ok((secret, suite, issued_ns))
    }

    /// Attaches a seeded fault plan; its crash schedule takes effect
    /// lazily as the virtual clock passes each scheduled instant.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault.lock() = Some(plan);
    }

    /// Installs (or clears) the log-shipping hook run for every mutating
    /// NFS operation this server executes as a replica-group primary.
    pub fn set_replicator(&self, repl: Option<Arc<dyn Replicator>>) {
        *self.replicator.lock() = repl;
    }

    /// Applies one logged NFS-form operation to this server's file
    /// system — the backup side of log shipping, and log replay at
    /// promotion. Runs the same relay path a live dispatch uses, but
    /// without handle translation (logged ops are already NFS-form) and
    /// without re-entering the replicator.
    pub fn apply_logged(&self, creds: &Credentials, req: &Nfs3Request) -> Nfs3Reply {
        self.nfs.handle(creds, req)
    }

    /// Crash-restarts the server by hand: every live connection's state
    /// (secure channels, authentication numbers, seqno windows) is gone,
    /// as are pending lease invalidations. Long-lived state — the server
    /// key, the file system, the file-handle cipher derived from the key
    /// — survives, which is exactly what lets clients reconnect and
    /// renegotiate against the *same* self-certifying pathname.
    pub fn crash_restart(&self) {
        self.manual_epoch.fetch_add(1, Ordering::SeqCst);
        self.invalidations.clear_all();
        let tel = self.tel.lock().clone();
        tel.count("server", "restarts", 1);
        tel.instant("server", "core.server", "restart");
        if let Some(plan) = &*self.fault.lock() {
            plan.note_server_crash(self.nfs.vfs().clock().now());
        }
    }

    /// The current boot epoch: manual crash-restarts plus any fault-plan
    /// crashes the virtual clock has passed. Connections opened in an
    /// older epoch are permanently rejected — their session state died
    /// with the crashed instance.
    pub fn current_epoch(&self) -> u64 {
        let plan_epoch = self
            .fault
            .lock()
            .as_ref()
            .map(|p| p.server_epoch(self.nfs.vfs().clock().now()))
            .unwrap_or(0);
        let seen = self.seen_plan_epoch.load(Ordering::SeqCst);
        if plan_epoch > seen
            && self
                .seen_plan_epoch
                .compare_exchange(seen, plan_epoch, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        {
            // First observation of a scheduled crash: apply the restart's
            // side effects once.
            self.invalidations.clear_all();
            let tel = self.tel.lock().clone();
            tel.count("server", "restarts", plan_epoch - seen);
            tel.instant("server", "core.server", "restart");
            if let Some(plan) = &*self.fault.lock() {
                for _ in seen..plan_epoch {
                    plan.note_server_crash(self.nfs.vfs().clock().now());
                }
            }
        }
        self.manual_epoch.load(Ordering::SeqCst) + plan_epoch
    }

    /// Opens a new connection (one per client TCP connection).
    pub fn accept(self: &Arc<Self>) -> ServerConn {
        let pool = BufPool::new("server");
        pool.set_telemetry(self.tel.lock().clone());
        ServerConn {
            epoch: self.current_epoch(),
            pending: self.invalidations.register(),
            server: self.clone(),
            state: Mutex::new(ConnState::Idle),
            pool,
            last_shard: Mutex::new(None),
        }
    }
}

impl std::fmt::Debug for SfsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SfsServer")
            .field("location", &self.config.location)
            .field("path", &self.path.dir_name())
            .finish()
    }
}

/// How many out-of-order pipelined frames the server will buffer ahead
/// of a reorder gap before declaring the channel broken.
const SEQ_BUF_CAPACITY: usize = 64;

/// How many sealed pipelined replies are kept for byte-identical
/// retransmission. A replay older than this cannot be answered (the
/// ciphers have long moved on) and kills the session.
const REPLY_CACHE_CAPACITY: usize = 256;

struct Established {
    channel: SecureChannelEnd,
    session_id: [u8; 20],
    authnos: HashMap<u32, (String, Credentials)>,
    next_authno: u32,
    seqwin: SeqWindow,
    /// Reorder buffer for pipelined frames that arrived ahead of a gap
    /// in the channel sequence.
    seq_buf: FrameSequencer,
    /// Sealed replies keyed by the request's channel sequence number,
    /// resent verbatim on retransmission (the send cipher must not
    /// advance for a frame the client may already have). Sharded by
    /// chanseq so each dispatch worker owns its slice.
    reply_cache: ShardedReplyCache,
}

enum ConnState {
    /// Nothing received yet; `sfssd` will route on the first message.
    Idle,
    /// Read-write hello done, awaiting the client's key-negotiation
    /// message. Carries the hello's raw cipher-suite offer so key
    /// derivation can bind it (downgrade protection).
    AwaitClientKeys { offer: String },
    /// Secure channel up.
    Established(Box<Established>),
    /// Read-only dialect selected.
    ReadOnly,
    /// SRP handshake in progress.
    SrpAwaitFinish {
        user: String,
        a_pub: Nat,
        srp: Option<Box<SrpServer>>,
    },
}

/// One client connection's server-side state machine.
pub struct ServerConn {
    server: Arc<SfsServer>,
    /// The server boot epoch this connection was accepted in; a crash
    /// restart invalidates it and every message afterwards is refused.
    epoch: u64,
    /// This connection's share of the invalidation broadcast.
    pending: Arc<Mutex<Vec<FileHandle>>>,
    state: Mutex<ConnState>,
    /// Freelist shared with the client end of this (loopback) connection
    /// so steady-state sealed RPCs recycle the same few buffers.
    pool: Arc<BufPool>,
    /// The handle shard touched by the most recent dispatched request,
    /// recorded by `dispatch_nfs_into` for the multi-core scheduler
    /// (first file handle of the request wins).
    last_shard: Mutex<Option<u32>>,
}

impl ServerConn {
    /// The server behind this connection.
    pub fn server(&self) -> &Arc<SfsServer> {
        &self.server
    }

    /// Fresh per-session state around a newly keyed channel — shared by
    /// full key negotiation and ticket resumption (a resumed session is
    /// a *new* session: empty authnos, fresh seqno window, empty caches).
    fn establish(
        &self,
        channel: SecureChannelEnd,
        session_id: [u8; DIGEST_LEN],
    ) -> Box<Established> {
        Box::new(Established {
            channel,
            session_id,
            authnos: HashMap::new(),
            next_authno: 1,
            seqwin: SeqWindow::new(32),
            seq_buf: FrameSequencer::new(SEQ_BUF_CAPACITY),
            reply_cache: ShardedReplyCache::new(
                REPLY_CACHE_CAPACITY,
                self.server.shard_engine().map_or(1, |e| e.cores()),
            ),
        })
    }

    /// This connection's buffer freelist. The client side of the
    /// simulated loopback adopts it so request and reply buffers
    /// circulate instead of being reallocated per RPC.
    pub fn buf_pool(&self) -> &Arc<BufPool> {
        &self.pool
    }

    /// Processes one wire message (the raw-bytes entry point used by the
    /// simulated network).
    pub fn handle_bytes(&self, bytes: &[u8]) -> Vec<u8> {
        // Sealed frames — every steady-state NFS3 RPC — take the pooled,
        // in-place path. Anything else (key negotiation, SRP, read-only,
        // malformed input) is rare and goes through the general decoder.
        if let Some(frame) = sealed_envelope_frame(bytes) {
            return self.handle_sealed_bytes(&bytes[frame]);
        }
        let reply = match CallMsg::from_xdr(bytes) {
            Ok(msg) => self.handle(msg),
            Err(e) => ReplyMsg::Error(format!("unparseable message: {e}")),
        };
        reply.to_xdr()
    }

    /// The zero-copy service path for one sealed frame: open in place in
    /// a pooled buffer, dispatch, and build the sealed reply envelope in
    /// a single pooled buffer. Behaviour (keystream consumption, error
    /// strings, telemetry) is identical to routing the frame through
    /// [`Self::handle`]; only the allocations differ.
    fn handle_sealed_bytes(&self, frame: &[u8]) -> Vec<u8> {
        let tel = self.server.tel.lock().clone();
        let _span = tel.span("server", "core.server", "sealed");
        tel.count("server", "dispatch.calls", 1);
        if self.server.current_epoch() != self.epoch {
            tel.count("server", "stale_conns.rejected", 1);
            return ReplyMsg::Error("connection reset: server restarted".into()).to_xdr();
        }
        let mut state = self.state.lock();
        let ConnState::Established(est) = &mut *state else {
            return ReplyMsg::Error("no secure channel".into()).to_xdr();
        };
        let mut fbuf = self.pool.get();
        fbuf.extend_from_slice(frame);
        let plaintext = match est.channel.open_in_place(&mut fbuf) {
            Ok(p) => p,
            Err(e) => return ReplyMsg::Error(format!("channel failure: {e}")).to_xdr(),
        };
        let mut out = self.pool.get();
        sealed_env_begin(&mut out);
        if let Err(e) = self.service_plaintext_into(est, plaintext, &mut out) {
            self.pool.put(fbuf);
            self.pool.put(out);
            return ReplyMsg::Error(e).to_xdr();
        }
        self.pool.put(fbuf);
        match est.channel.seal_into(&mut out, SEALED_ENV_FRAME_START) {
            Ok(()) => {
                sealed_env_finish(&mut out);
                out
            }
            Err(e) => ReplyMsg::Error(format!("channel failure: {e}")).to_xdr(),
        }
    }

    /// Dispatches one opened plaintext call, appending the *plaintext*
    /// inner-reply encoding to `out` (which already holds the caller's
    /// envelope prefix; the caller seals afterwards). The hot NFS3 path
    /// encodes its results straight into `out` without copying the
    /// argument bytes; rare inner calls (Auth, Mount) fall back to the
    /// general dispatcher. The channel was already advanced by the open,
    /// so nothing here may re-open the frame.
    fn service_plaintext_into(
        &self,
        est: &mut Established,
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), String> {
        let mut dec = XdrDecoder::new(plaintext);
        let nfs = match dec.get_u32() {
            Ok(1) => {
                match (
                    dec.get_u32(),
                    dec.get_u32(),
                    dec.get_opaque_ref(),
                    dec.finish(),
                ) {
                    (Ok(authno), Ok(proc), Ok(args), Ok(())) => Some((authno, proc, args)),
                    _ => None,
                }
            }
            _ => None,
        };
        let Some((authno, proc, args)) = nfs else {
            let call =
                InnerCall::from_xdr(plaintext).map_err(|e| format!("bad inner call: {e}"))?;
            let reply = self.handle_inner(est, call);
            out.extend_from_slice(&reply.to_xdr());
            return Ok(());
        };
        // Borrow the session's credentials in place: the dispatch below
        // never touches `est`, and skipping the clone keeps the per-RPC
        // allocation count down (gids is a Vec).
        let anon;
        let creds = if authno == AUTHNO_ANONYMOUS {
            anon = Credentials::anonymous();
            &anon
        } else {
            match est.authnos.get(&authno) {
                Some((_, creds)) => creds,
                None => {
                    anon = Credentials::anonymous();
                    &anon
                }
            }
        };
        // Encode the `InnerReply::Nfs` plaintext directly into the reply
        // envelope: tag, an opaque results field (length word patched
        // after encoding in place), then the piggybacked invalidations.
        out.extend_from_slice(&2u32.to_be_bytes());
        let len_pos = out.len();
        out.extend_from_slice(&[0u8; 4]);
        let results_start = out.len();
        let mut enc = XdrEncoder::from_vec(std::mem::take(out));
        self.dispatch_nfs_into(creds, proc, args, &mut enc);
        *out = enc.into_bytes();
        let results_len = out.len() - results_start;
        out[len_pos..len_pos + 4].copy_from_slice(&(results_len as u32).to_be_bytes());
        out.extend_from_slice(&[0u8; 3][..(4 - results_len % 4) % 4]);
        let pending: Vec<FileHandle> = self
            .pending
            .lock()
            .drain(..)
            .map(|fh| self.server.encrypt_handle(fh))
            .collect();
        out.extend_from_slice(&(pending.len() as u32).to_be_bytes());
        if !pending.is_empty() {
            let mut enc = XdrEncoder::from_vec(std::mem::take(out));
            for fh in &pending {
                fh.encode(&mut enc);
            }
            *out = enc.into_bytes();
        }
        Ok(())
    }

    /// The windowed entry point used by the pipelined wire: one incoming
    /// frame may produce zero replies (buffered ahead of a reorder gap),
    /// one, or several (a frame that fills a gap releases every buffered
    /// successor at once). Non-sequenced messages take the blocking path
    /// and always produce exactly one reply.
    pub fn handle_frames(&self, bytes: &[u8]) -> Vec<Vec<u8>> {
        match seq_call_envelope(bytes) {
            Some((chanseq, xid, frame)) => self.handle_seq_frame(chanseq, xid, &bytes[frame]),
            None => vec![self.handle_bytes(bytes)],
        }
    }

    /// [`Self::handle_frames`] under multi-core dispatch: the scheduling
    /// entry point used by [`sfs_sim::Wire::exchange_on`].
    ///
    /// Without a [`ShardEngine`] installed this is exactly
    /// `handle_frames` with the classic serial cost — byte-for-byte the
    /// single-server discipline. With one, the frame's analytic CPU cost
    /// (`frame_cost_ns`, the seal/open + dispatch work) is placed on the
    /// earliest-free simulated core starting at `arrival_ns`, and any
    /// disk work the dispatch performed is captured via the disk's tally
    /// mode and placed on the owning handle shard's commit queue (where
    /// back-to-back commits batch). The returned [`ServerCost`] carries
    /// the absolute completion instant.
    ///
    /// Ordering: cipher state still advances strictly in channel-
    /// sequence order — the `FrameSequencer` drain inside
    /// `handle_frames` runs before any scheduling decision, so the
    /// engine only chooses *when* the work completes, never in what
    /// order the channel is touched. Completion instants may therefore
    /// be out of order across frames (different cores), which the
    /// client's own reorder buffer absorbs.
    pub fn handle_frames_on(
        &self,
        arrival_ns: u64,
        frame_cost_ns: u64,
        bytes: &[u8],
    ) -> (Vec<Vec<u8>>, ServerCost) {
        let Some(engine) = self.server.shard_engine() else {
            return (self.handle_frames(bytes), ServerCost::Serial(frame_cost_ns));
        };
        let disk = self.server.vfs().disk().cloned();
        if let Some(d) = &disk {
            d.tally_begin();
        }
        *self.last_shard.lock() = None;
        let replies = self.handle_frames(bytes);
        let tally = disk.as_ref().map(|d| d.tally_end()).unwrap_or_default();
        let shard = self.last_shard.lock().take();
        let tel = self.server.tel.lock().clone();
        let done = engine.schedule(arrival_ns, frame_cost_ns, tally, shard, &tel);
        (replies, ServerCost::Scheduled(done))
    }

    /// Services one sequenced pipelined frame. Frames are decrypted
    /// strictly in channel-sequence order regardless of arrival order:
    /// early frames buffer, retransmissions of already-consumed frames
    /// are answered from the reply cache byte-for-byte (neither cipher
    /// advances), and anything past the reorder window kills the
    /// session.
    fn handle_seq_frame(&self, chanseq: u64, xid: u32, frame: &[u8]) -> Vec<Vec<u8>> {
        let tel = self.server.tel.lock().clone();
        let _span = tel.span("server", "core.server", "sealed_seq");
        tel.count("server", "dispatch.calls", 1);
        if self.server.current_epoch() != self.epoch {
            tel.count("server", "stale_conns.rejected", 1);
            return vec![ReplyMsg::Error("connection reset: server restarted".into()).to_xdr()];
        }
        let mut state = self.state.lock();
        let ConnState::Established(est) = &mut *state else {
            return vec![ReplyMsg::Error("no secure channel".into()).to_xdr()];
        };
        let expected = est.channel.messages_received();
        match est.seq_buf.push(chanseq, xid, frame.to_vec(), expected) {
            SeqPush::Duplicate if chanseq >= expected => {
                // Double delivery of a still-buffered frame; the copy
                // already queued answers once the gap fills.
                Vec::new()
            }
            SeqPush::Duplicate => {
                tel.count("server", "pipeline.retransmits", 1);
                match est.reply_cache.get(chanseq) {
                    Some(cached) => vec![cached.clone()],
                    None => vec![
                        ReplyMsg::Error("channel failure: replay beyond cache".into()).to_xdr(),
                    ],
                }
            }
            SeqPush::Overflow => {
                vec![ReplyMsg::Error("channel failure: pipeline window overflow".into()).to_xdr()]
            }
            SeqPush::Buffered => {
                let mut replies = Vec::new();
                while let Some((xid, frame)) = est.seq_buf.take(est.channel.messages_received()) {
                    replies.push(self.serve_seq_frame(est, &tel, xid, &frame));
                }
                tel.gauge_set("server", "pipeline.queue_depth", est.seq_buf.len() as u64);
                replies
            }
        }
    }

    /// Opens one in-order sequenced frame, dispatches it, and seals the
    /// sequenced reply, caching it under the request's channel sequence
    /// number for byte-identical retransmission.
    fn serve_seq_frame(
        &self,
        est: &mut Established,
        tel: &Telemetry,
        xid: u32,
        frame: &[u8],
    ) -> Vec<u8> {
        let req_seq = est.channel.messages_received();
        let mut fbuf = self.pool.get();
        fbuf.extend_from_slice(frame);
        let plaintext = match est.channel.open_in_place(&mut fbuf) {
            Ok(p) => p,
            Err(e) => {
                self.pool.put(fbuf);
                return ReplyMsg::Error(format!("channel failure: {e}")).to_xdr();
            }
        };
        let mut out = self.pool.get();
        seq_env_begin(&mut out, false, est.channel.messages_sent(), xid);
        if let Err(e) = self.service_plaintext_into(est, plaintext, &mut out) {
            self.pool.put(fbuf);
            self.pool.put(out);
            return ReplyMsg::Error(e).to_xdr();
        }
        self.pool.put(fbuf);
        let bytes = match est.channel.seal_into(&mut out, SEALED_SEQ_ENV_FRAME_START) {
            Ok(()) => {
                seq_env_finish(&mut out);
                out
            }
            Err(e) => ReplyMsg::Error(format!("channel failure: {e}")).to_xdr(),
        };
        // Oldest-first eviction (inside the sharded cache): a
        // retransmission can only ask for a recent sequence number (the
        // client's window bounds how far back it retries), so dropping
        // the globally lowest keys preserves exactly-once for every
        // answerable replay.
        let evicted = est.reply_cache.insert(req_seq, bytes.clone());
        if evicted > 0 {
            tel.count("server", "replycache.evictions", evicted);
        }
        tel.gauge_set("server", "replycache.size", est.reply_cache.len() as u64);
        bytes
    }

    /// Processes one decoded wire message.
    pub fn handle(&self, msg: CallMsg) -> ReplyMsg {
        let tel = self.server.tel.lock().clone();
        let name = match &msg {
            CallMsg::Hello { .. } => "hello",
            CallMsg::ClientKeys(_) => "client_keys",
            CallMsg::Sealed(_) => "sealed",
            CallMsg::RoGetRoot => "ro_get_root",
            CallMsg::RoGetBlock(_) => "ro_get_block",
            CallMsg::SrpStart { .. } => "srp_start",
            CallMsg::SrpFinish { .. } => "srp_finish",
            CallMsg::SealedSeq { .. } => "sealed_seq",
            CallMsg::Resume { .. } => "resume",
        };
        let _span = tel.span("server", "core.server", name);
        tel.count("server", "dispatch.calls", 1);
        // A connection from before a crash-restart is dead: the instance
        // holding its channel keys and seqno window no longer exists, so
        // the client must redial and force a full rekey. Stale *sessions*
        // can never be resumed — that is the recovery invariant.
        if self.server.current_epoch() != self.epoch {
            tel.count("server", "stale_conns.rejected", 1);
            return ReplyMsg::Error("connection reset: server restarted".into());
        }
        let mut state = self.state.lock();
        match msg {
            CallMsg::Hello {
                req,
                service,
                dialect,
                version,
                extensions,
            } => {
                // `sfssd` hands the connection to a subsidiary daemon per
                // the configured dispatch table (§3.2). The cipher-suite
                // offer rides the extensions string but is negotiation
                // input, not a dispatch key — strip it before matching.
                let dispatch_ext = strip_suites_ext(&extensions);
                let Some(_daemon) =
                    self.server
                        .config
                        .dispatch
                        .dispatch(service, dialect, version, &dispatch_ext)
                else {
                    return ReplyMsg::Error(format!(
                        "no daemon configured for service {service:?} dialect {dialect:?}                          version {version} extensions {extensions:?}"
                    ));
                };
                if service != Service::File {
                    return ReplyMsg::Error("authserver is reached via SRP messages".into());
                }
                // Serve a revocation certificate when one matches the
                // requested HostID (§2.6: "not a reliable means of
                // distributing revocation certificates, but it may help
                // get the word out fast").
                if let Some(cert) = &*self.server.revocation.lock() {
                    if cert.host_id().map(|h| h == req.host_id).unwrap_or(false) {
                        return ReplyMsg::ServerReply(KeyNegServerReply::Revoked(cert.clone()));
                    }
                }
                match dialect {
                    Dialect::ReadWrite => {
                        *state = ConnState::AwaitClientKeys { offer: extensions };
                    }
                    Dialect::ReadOnly => {
                        *state = ConnState::ReadOnly;
                    }
                }
                ReplyMsg::ServerReply(KeyNegServerReply::ServerKey(
                    self.server.key.public().to_bytes(),
                ))
            }
            CallMsg::ClientKeys(ck) => {
                let ConnState::AwaitClientKeys { offer } = &*state else {
                    return ReplyMsg::Error("key negotiation out of order".into());
                };
                let offer = offer.clone();
                let result = {
                    let mut rng = self.server.rng.lock();
                    server_process_client_keys(&self.server.key, &ck, &offer, &mut *rng)
                };
                match result {
                    Ok((keys, suite, mut msg4)) => {
                        let mut channel = SecureChannelEnd::server_with_suite(&keys, suite);
                        channel.set_telemetry(tel.clone());
                        tel.count("server", "keyneg.completed", 1);
                        // Hand the client a resumption ticket alongside
                        // the key halves: a later reconnect can skip the
                        // Rabin decryption entirely.
                        msg4.ticket = self.server.mint_ticket(
                            &resume_secret(&keys),
                            suite,
                            self.server.nfs.vfs().clock().now().as_nanos(),
                        );
                        let session_id = keys.session_id;
                        *state = ConnState::Established(self.establish(channel, session_id));
                        ReplyMsg::ServerKeys(msg4)
                    }
                    Err(e) => ReplyMsg::Error(format!("key negotiation failed: {e}")),
                }
            }
            CallMsg::Resume { ticket, nonce } => {
                if !matches!(*state, ConnState::Idle) {
                    return ReplyMsg::Error("resume out of order".into());
                }
                // A revoked server must not shortcut clients back onto a
                // channel its compromised key once blessed.
                if self.server.revocation.lock().is_some() {
                    tel.count("server", "resume.rejected", 1);
                    return ReplyMsg::ResumeReject("server key revoked".into());
                }
                let (secret, suite, issued_ns) = match self.server.unseal_ticket(&ticket) {
                    Ok(t) => t,
                    Err(why) => {
                        tel.count("server", "resume.rejected", 1);
                        return ReplyMsg::ResumeReject(why);
                    }
                };
                let now = self.server.nfs.vfs().clock().now().as_nanos();
                if now.saturating_sub(issued_ns) > TICKET_LIFETIME_NS {
                    tel.count("server", "resume.rejected", 1);
                    return ReplyMsg::ResumeReject("ticket expired".into());
                }
                let mut server_nonce = [0u8; RESUME_NONCE_LEN];
                self.server.rng.lock().fill(&mut server_nonce);
                let keys = resume_session(&secret, suite, &nonce, &server_nonce);
                let confirm = resume_confirm(&keys);
                // Single-use rotation: the reply carries a fresh ticket
                // bound to the *new* session's secret.
                let new_ticket = self.server.mint_ticket(&resume_secret(&keys), suite, now);
                let mut channel = SecureChannelEnd::server_with_suite(&keys, suite);
                channel.set_telemetry(tel.clone());
                tel.count("server", "resume.accepted", 1);
                let session_id = keys.session_id;
                *state = ConnState::Established(self.establish(channel, session_id));
                ReplyMsg::ResumeOk {
                    nonce: server_nonce,
                    confirm,
                    ticket: new_ticket,
                }
            }
            CallMsg::Sealed(frame) => {
                let ConnState::Established(est) = &mut *state else {
                    return ReplyMsg::Error("no secure channel".into());
                };
                let plaintext = match est.channel.open(&frame) {
                    Ok(p) => p,
                    Err(e) => return ReplyMsg::Error(format!("channel failure: {e}")),
                };
                let call = match InnerCall::from_xdr(&plaintext) {
                    Ok(c) => c,
                    Err(e) => return ReplyMsg::Error(format!("bad inner call: {e}")),
                };
                let reply = self.handle_inner(est, call);
                match est.channel.seal(&reply.to_xdr()) {
                    Ok(sealed) => ReplyMsg::Sealed(sealed),
                    Err(e) => ReplyMsg::Error(format!("channel failure: {e}")),
                }
            }
            CallMsg::RoGetRoot => {
                if !matches!(*state, ConnState::ReadOnly) {
                    return ReplyMsg::Error("not a read-only connection".into());
                }
                match self.server.ro_db.lock().as_ref() {
                    Some(db) => ReplyMsg::RoRoot(db.root.clone()),
                    None => ReplyMsg::Error("no read-only export".into()),
                }
            }
            CallMsg::RoGetBlock(digest) => {
                if !matches!(*state, ConnState::ReadOnly) {
                    return ReplyMsg::Error("not a read-only connection".into());
                }
                let db = self.server.ro_db.lock().clone();
                match db.as_ref().and_then(|db| db.fetch_raw(&digest).ok()) {
                    Some(block) => ReplyMsg::RoBlock(block.to_vec()),
                    None => ReplyMsg::Error("no such block".into()),
                }
            }
            CallMsg::SrpStart { user, a_pub } => {
                let mut rng = self.server.rng.lock();
                match self.server.auth.srp_start(&user, &mut *rng) {
                    Some((srp, salt, b_pub)) => {
                        let (ekb_salt, cost) = self
                            .server
                            .auth
                            .password_params(&user)
                            .expect("srp_start implies params");
                        *state = ConnState::SrpAwaitFinish {
                            user,
                            a_pub: Nat::from_bytes_be(&a_pub),
                            srp: Some(Box::new(srp)),
                        };
                        ReplyMsg::SrpChallenge {
                            salt,
                            b_pub: b_pub.to_bytes_be(),
                            ekb_salt: ekb_salt.to_vec(),
                            cost,
                        }
                    }
                    // A real deployment would fake a challenge to avoid
                    // leaking which accounts exist; we keep the error
                    // explicit for debuggability.
                    None => ReplyMsg::Error("unknown user".into()),
                }
            }
            CallMsg::SrpFinish { m1 } => {
                let ConnState::SrpAwaitFinish { user, a_pub, srp } = &mut *state else {
                    return ReplyMsg::Error("no SRP handshake in progress".into());
                };
                let Some(srp_server) = srp.take() else {
                    return ReplyMsg::Error("SRP handshake already consumed".into());
                };
                match (*srp_server).process(a_pub, &m1) {
                    Ok(session) => {
                        let (path, blob) = self.server.auth.srp_payload(user);
                        let mut enc = XdrEncoder::new();
                        path.encode(&mut enc);
                        blob.encode(&mut enc);
                        let sealed = sealbox::seal(&session.key, enc.bytes());
                        ReplyMsg::SrpDone {
                            m2: session.m2.to_vec(),
                            sealed_payload: sealed,
                        }
                    }
                    Err(e) => ReplyMsg::Error(format!("SRP failed: {e}")),
                }
            }
            // Sequenced frames only make sense through the windowed
            // entry point (`handle_frames`), which may release several
            // buffered frames at once; a lone one here is a protocol
            // error.
            CallMsg::SealedSeq { .. } => {
                ReplyMsg::Error("pipelined frame outside windowed path".into())
            }
        }
    }

    fn handle_inner(&self, est: &mut Established, call: InnerCall) -> InnerReply {
        match call {
            InnerCall::Auth { seq_no, msg } => {
                // The server recomputes the expected AuthID for *this*
                // session; a request signed for another session cannot
                // match.
                let info = AuthInfo::for_fs(
                    &self.server.config.location,
                    self.server.path.host_id,
                    est.session_id,
                );
                let tel = self.server.tel.lock().clone();
                if !est.seqwin.accept(seq_no) {
                    // Replay / out-of-window: the gate fires before any
                    // signature check (§3.1.3's freshness guarantee).
                    tel.count("server", "seqwin.rejected", 1);
                    tel.instant("server", "core.server", "seqwin_reject");
                    return InnerReply::AuthDenied { seq_no };
                }
                tel.count("server", "seqwin.accepted", 1);
                match self.server.auth.validate(&msg, &info.auth_id(), seq_no) {
                    Ok((user, creds)) => {
                        let authno = est.next_authno;
                        est.next_authno += 1;
                        est.authnos.insert(authno, (user, creds));
                        InnerReply::AuthGranted { seq_no, authno }
                    }
                    Err(_) => InnerReply::AuthDenied { seq_no },
                }
            }
            InnerCall::Mount => InnerReply::MountReply {
                root: self.server.root_handle(),
            },
            InnerCall::Nfs { authno, proc, args } => {
                let creds = if authno == AUTHNO_ANONYMOUS {
                    Credentials::anonymous()
                } else {
                    match est.authnos.get(&authno) {
                        Some((_, creds)) => creds.clone(),
                        None => Credentials::anonymous(),
                    }
                };
                let results = self.dispatch_nfs(&creds, proc, &args);
                // Piggyback this connection's pending invalidation
                // callbacks, in SFS handle form.
                let pending: Vec<FileHandle> = self
                    .pending
                    .lock()
                    .drain(..)
                    .map(|fh| self.server.encrypt_handle(fh))
                    .collect();
                InnerReply::Nfs {
                    results,
                    invalidations: pending,
                }
            }
        }
    }

    fn dispatch_nfs(&self, creds: &Credentials, proc: u32, args: &[u8]) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        self.dispatch_nfs_into(creds, proc, args, &mut enc);
        enc.into_bytes()
    }

    /// [`Self::dispatch_nfs`] marshaling the results into a caller-owned
    /// encoder (the hot path appends them straight into the reply
    /// envelope).
    fn dispatch_nfs_into(&self, creds: &Credentials, proc: u32, args: &[u8], enc: &mut XdrEncoder) {
        let err = |status: Status, enc: &mut XdrEncoder| {
            Nfs3Reply::Error {
                status,
                dir_attr: Default::default(),
            }
            .encode_results_into(enc)
        };
        let Some(proc) = Proc::from_u32(proc) else {
            return err(Status::NotSupp, enc);
        };
        let Ok(req) = Nfs3Request::decode_args(proc, args) else {
            return err(Status::Inval, enc);
        };
        // Translate public SFS handles to private NFS handles, noting
        // which worker shard owns the request's first handle so the
        // multi-core scheduler can route its disk work.
        let mut first_fh: Option<u32> = None;
        let engine = self.server.shard_engine();
        let req = match map_request_handles(req, &mut |fh| {
            let nfs = self.server.decrypt_handle(&fh)?;
            if first_fh.is_none() {
                if let Some(e) = &engine {
                    first_fh = Some(e.shard_of(&nfs.0));
                }
            }
            Ok(nfs)
        }) {
            Ok(r) => r,
            Err(status) => return err(status, enc),
        };
        if let Some(shard) = first_fh {
            let mut hint = self.last_shard.lock();
            if hint.is_none() {
                *hint = Some(shard);
            }
        }
        let reply = self.nfs_relay(creds, &req);
        // Acknowledged commit: a successful mutation is shipped to the
        // replica group's quorum *before* the reply is encoded, so the
        // client's ack implies quorum durability. Failed ops and replays
        // answered from the reply cache never reach this point twice.
        if proc_is_mutating(req.proc()) && !matches!(reply, Nfs3Reply::Error { .. }) {
            let repl = self.server.replicator.lock().clone();
            if let Some(repl) = repl {
                repl.replicate(creds, &req);
            }
        }
        // Translate handles in the reply back to SFS form.
        let reply = map_reply_handles(reply, &mut |fh| self.server.encrypt_handle(fh));
        reply.encode_results_into(enc)
    }

    /// The NFS loopback hop: "the server modifies requests slightly and
    /// tags them with appropriate credentials. Finally, the server acts as
    /// an NFS client, passing the request to an NFS server on the same
    /// machine."
    fn nfs_relay(&self, creds: &Credentials, req: &Nfs3Request) -> Nfs3Reply {
        self.server.nfs.handle(creds, req)
    }
}

impl std::fmt::Debug for ServerConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerConn({})", self.server.config.location)
    }
}

/// A server-side endpoint that can answer read-only dialect messages.
///
/// Both connection kinds serving one `Location:HostID` implement it: the
/// full [`ServerConn`] (a read-write server also exporting the dialect)
/// and the keyless [`RoReplicaConn`]. Clients and routing tiers hold
/// `Box<dyn RoConnection>` so a mount can be handed from one replica to
/// another without caring which kind is behind it.
pub trait RoConnection: Send + Sync {
    /// Processes one wire message, returning the reply bytes.
    fn handle_ro_bytes(&self, bytes: &[u8]) -> Vec<u8>;
}

impl RoConnection for ServerConn {
    fn handle_ro_bytes(&self, bytes: &[u8]) -> Vec<u8> {
        self.handle_bytes(bytes)
    }
}

/// A keyless read-only replica (§2.4): a machine holding nothing but the
/// published distribution bundle — the signed root and the
/// content-addressed blocks. It can prove the file system's contents to
/// any client yet "read-only servers \[are freed\] from the need to keep
/// any on-line copies of their private keys, which in turn allows
/// read-only file systems to be replicated on untrusted machines."
///
/// There is deliberately no [`RabinPrivateKey`] anywhere in this type.
pub struct RoReplicaServer {
    path: SelfCertifyingPath,
    /// The publisher's *public* key, served in hello replies for the
    /// client to certify against the HostID.
    public_key_bytes: Vec<u8>,
    db: Mutex<Arc<RoDatabase>>,
    load: ServerLoad,
    /// Operator switch standing in for a dead machine; a down replica
    /// answers every message with an unavailability error.
    down: AtomicBool,
    tel: Mutex<Telemetry>,
}

impl RoReplicaServer {
    /// Stands up a replica at `location` serving `db`, announcing the
    /// publisher's public key.
    pub fn new(location: &str, public_key: &RabinPublicKey, db: Arc<RoDatabase>) -> Arc<Self> {
        Arc::new(RoReplicaServer {
            path: SelfCertifyingPath::for_server(location, public_key),
            public_key_bytes: public_key.to_bytes(),
            db: Mutex::new(db),
            load: ServerLoad::new(),
            down: AtomicBool::new(false),
            tel: Mutex::new(Telemetry::disabled()),
        })
    }

    /// Stands up a replica from a distribution bundle
    /// ([`RoDatabase::export`]), verifying every block digest on import.
    pub fn from_bundle(
        location: &str,
        public_key: &RabinPublicKey,
        bundle: &[u8],
    ) -> Result<Arc<Self>, RoError> {
        let db = RoDatabase::import(bundle)?;
        Ok(Self::new(location, public_key, Arc::new(db)))
    }

    /// The replica's self-certifying pathname (same HostID as the
    /// publisher — the pathname names a key, not a machine).
    pub fn path(&self) -> &SelfCertifyingPath {
        &self.path
    }

    /// This machine's contention tracker.
    pub fn load(&self) -> ServerLoad {
        self.load.clone()
    }

    /// Installs a newer snapshot (the publisher pushed a fresh bundle).
    pub fn install(&self, db: Arc<RoDatabase>) {
        *self.db.lock() = db;
    }

    /// Takes the replica down (or back up).
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Whether the replica currently refuses service.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    /// Attaches a tracing sink.
    pub fn set_telemetry(&self, tel: &Telemetry) {
        *self.tel.lock() = tel.clone();
    }

    /// Opens a new connection.
    pub fn accept(self: &Arc<Self>) -> RoReplicaConn {
        RoReplicaConn {
            replica: self.clone(),
            hello_done: AtomicBool::new(false),
        }
    }
}

impl std::fmt::Debug for RoReplicaServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoReplicaServer")
            .field("path", &self.path.dir_name())
            .field("down", &self.is_down())
            .finish()
    }
}

/// One client connection to a keyless read-only replica. The state
/// machine is two steps — hello, then block service — and involves no
/// cryptography at all on the server side.
pub struct RoReplicaConn {
    replica: Arc<RoReplicaServer>,
    hello_done: AtomicBool,
}

impl RoReplicaConn {
    /// The replica behind this connection.
    pub fn replica(&self) -> &Arc<RoReplicaServer> {
        &self.replica
    }
}

impl RoConnection for RoReplicaConn {
    fn handle_ro_bytes(&self, bytes: &[u8]) -> Vec<u8> {
        let tel = self.replica.tel.lock().clone();
        tel.count("ro-replica", "dispatch.calls", 1);
        if self.replica.is_down() {
            return ReplyMsg::Error("replica unavailable".into()).to_xdr();
        }
        let reply = match CallMsg::from_xdr(bytes) {
            Ok(CallMsg::Hello {
                service, dialect, ..
            }) => {
                if service != Service::File {
                    ReplyMsg::Error("read-only replica serves only the file service".into())
                } else if dialect != Dialect::ReadOnly {
                    // The §2.4 trust split made concrete: this machine
                    // cannot negotiate a read-write session because it
                    // holds no private key to prove with.
                    ReplyMsg::Error("read-only replica holds no private key".into())
                } else {
                    self.hello_done.store(true, Ordering::SeqCst);
                    ReplyMsg::ServerReply(KeyNegServerReply::ServerKey(
                        self.replica.public_key_bytes.clone(),
                    ))
                }
            }
            Ok(CallMsg::RoGetRoot) => {
                if !self.hello_done.load(Ordering::SeqCst) {
                    ReplyMsg::Error("not a read-only connection".into())
                } else {
                    ReplyMsg::RoRoot(self.replica.db.lock().root.clone())
                }
            }
            Ok(CallMsg::RoGetBlock(digest)) => {
                if !self.hello_done.load(Ordering::SeqCst) {
                    ReplyMsg::Error("not a read-only connection".into())
                } else {
                    tel.count("ro-replica", "ro.blocks_served", 1);
                    let db = self.replica.db.lock().clone();
                    match db.fetch_raw(&digest) {
                        Ok(block) => ReplyMsg::RoBlock(block.to_vec()),
                        Err(_) => ReplyMsg::Error("no such block".into()),
                    }
                }
            }
            Ok(_) => ReplyMsg::Error("read-only replica: unsupported message".into()),
            Err(e) => ReplyMsg::Error(format!("unparseable message: {e}")),
        };
        reply.to_xdr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_crypto::srp::SrpGroup;
    use sfs_sim::SimClock;
    use std::sync::OnceLock;

    fn test_key() -> RabinPrivateKey {
        static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = sfs_bignum::XorShiftSource::new(0xF00D);
            sfs_crypto::rabin::generate_keypair(768, &mut rng)
        })
        .clone()
    }

    fn srp_group() -> SrpGroup {
        static G: OnceLock<SrpGroup> = OnceLock::new();
        G.get_or_init(|| {
            let mut rng = sfs_bignum::XorShiftSource::new(0x64);
            SrpGroup::generate(128, &mut rng)
        })
        .clone()
    }

    fn make_server() -> Arc<SfsServer> {
        let clock = SimClock::new();
        let vfs = Vfs::new(42, clock);
        let auth = Arc::new(AuthServer::new(srp_group(), 2));
        SfsServer::new(
            ServerConfig::new("server.example.com"),
            test_key(),
            vfs,
            auth,
            SfsPrg::from_entropy(b"server-test"),
        )
    }

    #[test]
    fn handle_encryption_roundtrip() {
        let s = make_server();
        let nfs_handle = FileHandle(vec![7u8; 16]);
        let sfs_handle = s.encrypt_handle(nfs_handle.clone());
        assert_ne!(sfs_handle.0[..16], nfs_handle.0[..]);
        assert_eq!(sfs_handle.0.len(), 24);
        assert_eq!(s.decrypt_handle(&sfs_handle).unwrap(), nfs_handle);
    }

    #[test]
    fn forged_handle_rejected() {
        let s = make_server();
        // Guessing a handle fails the redundancy check.
        assert_eq!(
            s.decrypt_handle(&FileHandle(vec![1u8; 24])).unwrap_err(),
            Status::BadHandle
        );
        // Truncated handles are rejected outright.
        assert_eq!(
            s.decrypt_handle(&FileHandle(vec![1u8; 16])).unwrap_err(),
            Status::BadHandle
        );
        // Flipping one bit of a valid handle breaks it.
        let mut h = s.encrypt_handle(FileHandle(vec![7u8; 16]));
        h.0[3] ^= 1;
        assert_eq!(s.decrypt_handle(&h).unwrap_err(), Status::BadHandle);
    }

    #[test]
    fn hello_returns_server_key() {
        let s = make_server();
        let conn = s.accept();
        let reply = conn.handle(CallMsg::Hello {
            req: sfs_proto::keyneg::KeyNegRequest {
                location: "server.example.com".into(),
                host_id: s.path().host_id,
            },
            service: Service::File,
            dialect: Dialect::ReadWrite,
            version: 1,
            extensions: String::new(),
        });
        match reply {
            ReplyMsg::ServerReply(KeyNegServerReply::ServerKey(k)) => {
                assert_eq!(k, test_key().public().to_bytes());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn revoked_hello_returns_certificate() {
        let s = make_server();
        let cert = RevocationCert::issue(&test_key(), "server.example.com");
        s.install_revocation(cert.clone());
        let conn = s.accept();
        let reply = conn.handle(CallMsg::Hello {
            req: sfs_proto::keyneg::KeyNegRequest {
                location: "server.example.com".into(),
                host_id: s.path().host_id,
            },
            service: Service::File,
            dialect: Dialect::ReadWrite,
            version: 1,
            extensions: String::new(),
        });
        match reply {
            ReplyMsg::ServerReply(KeyNegServerReply::Revoked(c)) => assert_eq!(c, cert),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sealed_without_channel_rejected() {
        let s = make_server();
        let conn = s.accept();
        let reply = conn.handle(CallMsg::Sealed(vec![0; 64]));
        assert!(matches!(reply, ReplyMsg::Error(_)));
    }

    #[test]
    fn keyneg_out_of_order_rejected() {
        let s = make_server();
        let conn = s.accept();
        let reply = conn.handle(CallMsg::ClientKeys(sfs_proto::keyneg::KeyNegClientKeys {
            client_key: vec![1],
            encrypted_halves: vec![2],
        }));
        assert!(matches!(reply, ReplyMsg::Error(_)));
    }

    #[test]
    fn read_only_requires_dialect() {
        let s = make_server();
        s.publish_read_only(1);
        let conn = s.accept();
        // Without a hello selecting the read-only dialect, blocks are not
        // served.
        assert!(matches!(
            conn.handle(CallMsg::RoGetRoot),
            ReplyMsg::Error(_)
        ));
        let _ = conn.handle(CallMsg::Hello {
            req: sfs_proto::keyneg::KeyNegRequest {
                location: "server.example.com".into(),
                host_id: s.path().host_id,
            },
            service: Service::File,
            dialect: Dialect::ReadOnly,
            version: 1,
            extensions: String::new(),
        });
        match conn.handle(CallMsg::RoGetRoot) {
            ReplyMsg::RoRoot(root) => assert!(root.verify(test_key().public())),
            other => panic!("{other:?}"),
        }
    }
}
