//! The NFS mounter, `nfsmounter` (§3.3).
//!
//! "All NFS mounting in the client is performed by a separate program
//! called nfsmounter. The NFS mounter is the only part of the client
//! software to run as root. It considers the rest of the system untrusted
//! software. If the other client processes ever crash, the NFS mounter
//! takes over their sockets, acts like an NFS server, and serves enough of
//! the defunct file systems to unmount them all."
//!
//! In this reproduction the mounter tracks mount points created by the
//! (unprivileged) client master and, on a simulated crash, answers the
//! minimal set of NFS operations needed for `umount` to succeed — every
//! lookup returns stale, every directory reads empty — so no mount point
//! can wedge the machine.

use std::collections::BTreeMap;

use sfs_nfs3::proto::{Fattr3, FileHandle, Nfs3Reply, Nfs3Request, PostOpAttr, Status};
use sfs_telemetry::sync::Mutex;
use sfs_vfs::FileType;

/// State of one mount point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MountState {
    /// Served by a live subsidiary daemon.
    Active,
    /// The daemon died; the mounter is serving stubs until unmount.
    TakenOver,
    /// Unmounted.
    Unmounted,
}

/// The privileged mounter process.
#[derive(Debug, Default)]
pub struct NfsMounter {
    mounts: Mutex<BTreeMap<String, MountState>>,
}

impl NfsMounter {
    /// Creates a mounter with no mounts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a new mount point (called by the client master via its
    /// privileged channel).
    pub fn register_mount(&self, dir_name: &str) {
        self.mounts
            .lock()
            .insert(dir_name.to_string(), MountState::Active);
    }

    /// State of a mount point.
    pub fn state(&self, dir_name: &str) -> Option<MountState> {
        self.mounts.lock().get(dir_name).copied()
    }

    /// All mount points and their states.
    pub fn mounts(&self) -> Vec<(String, MountState)> {
        self.mounts
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// The crash path: every active mount flips to taken-over stub
    /// service.
    pub fn take_over_all(&self) {
        for state in self.mounts.lock().values_mut() {
            if *state == MountState::Active {
                *state = MountState::TakenOver;
            }
        }
    }

    /// Serves an NFS request for a taken-over mount: just enough for
    /// unmounting (root attributes and empty directory listings), stale
    /// for everything else.
    pub fn serve_stub(&self, dir_name: &str, req: &Nfs3Request) -> Nfs3Reply {
        let taken_over = self.state(dir_name) == Some(MountState::TakenOver);
        if !taken_over {
            return Nfs3Reply::Error {
                status: Status::Stale,
                dir_attr: PostOpAttr::none(),
            };
        }
        let stub_attr = Fattr3 {
            ftype: FileType::Directory,
            mode: 0o755,
            nlink: 2,
            uid: 0,
            gid: 0,
            size: 0,
            fsid: 0,
            fileid: 1,
            atime: 0,
            mtime: 0,
            ctime: 0,
        };
        match req {
            Nfs3Request::Null => Nfs3Reply::Null,
            Nfs3Request::GetAttr { .. } => Nfs3Reply::GetAttr {
                attr: stub_attr,
                lease_ns: 0,
            },
            Nfs3Request::Access { mask, .. } => Nfs3Reply::Access {
                granted: *mask,
                attr: PostOpAttr::plain(stub_attr),
            },
            Nfs3Request::ReadDir { .. } => Nfs3Reply::ReadDir {
                entries: Vec::new(),
                eof: true,
                dir_attr: PostOpAttr::plain(stub_attr),
            },
            Nfs3Request::FsStat { .. } => Nfs3Reply::FsStat {
                total_bytes: 0,
                free_bytes: 0,
                total_files: 0,
            },
            Nfs3Request::Commit { .. } => Nfs3Reply::Commit {
                attr: PostOpAttr::plain(stub_attr),
            },
            _ => Nfs3Reply::Error {
                status: Status::Stale,
                dir_attr: PostOpAttr::none(),
            },
        }
    }

    /// Completes an unmount; the mount point disappears.
    pub fn unmount(&self, dir_name: &str) -> bool {
        match self.mounts.lock().get_mut(dir_name) {
            Some(state) => {
                *state = MountState::Unmounted;
                true
            }
            None => false,
        }
    }

    /// Whether every taken-over mount has been unmounted (the recovery
    /// goal).
    pub fn fully_recovered(&self) -> bool {
        self.mounts
            .lock()
            .values()
            .all(|s| *s != MountState::TakenOver)
    }
}

/// A stub file handle the mounter hands out while serving defunct mounts.
pub fn stub_root_handle() -> FileHandle {
    FileHandle(vec![0u8; 16])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_mounts_not_stub_served() {
        let m = NfsMounter::new();
        m.register_mount("host:aaaa");
        let reply = m.serve_stub("host:aaaa", &Nfs3Request::Null);
        assert_eq!(
            reply.status(),
            Status::Stale,
            "active mounts served by daemons"
        );
    }

    #[test]
    fn takeover_serves_unmount_path() {
        let m = NfsMounter::new();
        m.register_mount("host:aaaa");
        m.register_mount("host:bbbb");
        m.take_over_all();
        assert_eq!(m.state("host:aaaa"), Some(MountState::TakenOver));
        // The unmount sequence: GETATTR, ACCESS, READDIR all answer.
        let fh = stub_root_handle();
        assert!(matches!(
            m.serve_stub("host:aaaa", &Nfs3Request::GetAttr { fh: fh.clone() }),
            Nfs3Reply::GetAttr { .. }
        ));
        assert!(matches!(
            m.serve_stub(
                "host:aaaa",
                &Nfs3Request::Access {
                    fh: fh.clone(),
                    mask: 0x3f
                }
            ),
            Nfs3Reply::Access { .. }
        ));
        match m.serve_stub(
            "host:aaaa",
            &Nfs3Request::ReadDir {
                dir: fh.clone(),
                cookie: 0,
                count: 100,
                plus: false,
            },
        ) {
            Nfs3Reply::ReadDir { entries, eof, .. } => {
                assert!(entries.is_empty());
                assert!(eof);
            }
            other => panic!("{other:?}"),
        }
        // Writes fail stale — nothing can wedge.
        assert_eq!(
            m.serve_stub(
                "host:aaaa",
                &Nfs3Request::Remove {
                    dir: fh,
                    name: "x".into()
                }
            )
            .status(),
            Status::Stale
        );
    }

    #[test]
    fn recovery_completes_after_unmounts() {
        let m = NfsMounter::new();
        m.register_mount("a:1");
        m.register_mount("b:2");
        m.take_over_all();
        assert!(!m.fully_recovered());
        assert!(m.unmount("a:1"));
        assert!(!m.fully_recovered());
        assert!(m.unmount("b:2"));
        assert!(m.fully_recovered());
        assert!(!m.unmount("c:3"), "unknown mount");
    }
}
