//! The client-state journal: what `sfscd` persists so it can survive
//! its own death.
//!
//! The paper's client keeps everything in memory; a crashed client
//! forgets its mounts, its agents' keys, and its authentication seqnos.
//! The journal persists exactly the state whose loss would be either a
//! usability regression (mounts, agent keys and links) or a security
//! regression (seqno high-water marks — reusing a seqno after restart
//! would void the §3.1.3 freshness guarantee). Everything else — lease
//! caches, authentication numbers, secure-channel keys — is deliberately
//! *not* persisted: leases may have been invalidated while the client
//! was dead and session state died with the server-side connection, so a
//! recovered client must come up with cold caches and renegotiate from
//! scratch.
//!
//! Recovery re-runs key negotiation against each recorded HostID; the
//! journal's recorded server key is advisory. Self-certification is the
//! actual check: a server whose current key no longer hashes to the
//! recorded HostID is refused, journal or no journal.

use std::collections::BTreeMap;

use sfs_proto::pathname::HostId;
use sfs_sim::JournalDisk;
use sfs_xdr::{XdrDecoder, XdrEncoder};

/// One durable record in the client journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// A mount was established: the self-certifying pathname pieces plus
    /// the server key that verified against the HostID at mount time.
    Mount {
        /// Location (DNS name) of the server.
        location: String,
        /// HostID the location was certified against.
        host_id: HostId,
        /// The server public key that hashed to `host_id` when the mount
        /// was journaled (advisory; recovery re-verifies live).
        server_key: Vec<u8>,
    },
    /// Authentication-seqno high-water mark for one mount. Journaled
    /// *before* any seqno up to `hwm` is used, so a restarted client
    /// resuming at `hwm` can never reuse a signed seqno.
    SeqHwm {
        /// `Location:HostID` directory name of the mount.
        dir_name: String,
        /// First seqno the restarted client may use.
        hwm: u32,
    },
    /// A private key was installed into the agent for `uid`.
    AgentKey {
        /// The agent's uid.
        uid: u32,
        /// Serialized [`sfs_crypto::rabin::RabinPrivateKey`].
        key: Vec<u8>,
    },
    /// A dynamic `/sfs` symlink was created in the agent for `uid`.
    AgentLink {
        /// The agent's uid.
        uid: u32,
        /// Link name in `/sfs`.
        name: String,
        /// Link target.
        target: String,
    },
    /// A compaction checkpoint: the folded state of every record before
    /// it. Replay discards whatever it has accumulated and restarts from
    /// this state, so all earlier records are dead weight that
    /// [`ClientJournal::compact`] can truncate away.
    Checkpoint(Box<RecoveredState>),
}

impl JournalRecord {
    /// Encodes the record as XDR.
    pub fn to_xdr(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        match self {
            JournalRecord::Mount {
                location,
                host_id,
                server_key,
            } => {
                enc.put_u32(0)
                    .put_string(location)
                    .put_opaque_fixed(&host_id.0)
                    .put_opaque(server_key);
            }
            JournalRecord::SeqHwm { dir_name, hwm } => {
                enc.put_u32(1).put_string(dir_name).put_u32(*hwm);
            }
            JournalRecord::AgentKey { uid, key } => {
                enc.put_u32(2).put_u32(*uid).put_opaque(key);
            }
            JournalRecord::AgentLink { uid, name, target } => {
                enc.put_u32(3)
                    .put_u32(*uid)
                    .put_string(name)
                    .put_string(target);
            }
            JournalRecord::Checkpoint(state) => {
                enc.put_u32(4);
                enc.put_u32(state.mounts.len() as u32);
                for m in &state.mounts {
                    enc.put_string(&m.location)
                        .put_opaque_fixed(&m.host_id.0)
                        .put_opaque(&m.server_key);
                }
                enc.put_u32(state.seq_hwm.len() as u32);
                for (dir, hwm) in &state.seq_hwm {
                    enc.put_string(dir).put_u32(*hwm);
                }
                enc.put_u32(state.agent_keys.len() as u32);
                for (uid, keys) in &state.agent_keys {
                    enc.put_u32(*uid).put_u32(keys.len() as u32);
                    for key in keys {
                        enc.put_opaque(key);
                    }
                }
                enc.put_u32(state.agent_links.len() as u32);
                for (uid, links) in &state.agent_links {
                    enc.put_u32(*uid).put_u32(links.len() as u32);
                    for (name, target) in links {
                        enc.put_string(name).put_string(target);
                    }
                }
            }
        }
        enc.into_bytes()
    }

    /// Decodes one record.
    pub fn from_xdr(bytes: &[u8]) -> Result<Self, String> {
        let mut dec = XdrDecoder::new(bytes);
        let tag = dec.get_u32().map_err(|e| e.to_string())?;
        let rec = match tag {
            0 => {
                let location = dec.get_string().map_err(|e| e.to_string())?;
                let hid = dec.get_opaque_fixed(20).map_err(|e| e.to_string())?;
                let mut host_id = [0u8; 20];
                host_id.copy_from_slice(&hid);
                let server_key = dec.get_opaque().map_err(|e| e.to_string())?;
                JournalRecord::Mount {
                    location,
                    host_id: HostId(host_id),
                    server_key,
                }
            }
            1 => JournalRecord::SeqHwm {
                dir_name: dec.get_string().map_err(|e| e.to_string())?,
                hwm: dec.get_u32().map_err(|e| e.to_string())?,
            },
            2 => JournalRecord::AgentKey {
                uid: dec.get_u32().map_err(|e| e.to_string())?,
                key: dec.get_opaque().map_err(|e| e.to_string())?,
            },
            3 => JournalRecord::AgentLink {
                uid: dec.get_u32().map_err(|e| e.to_string())?,
                name: dec.get_string().map_err(|e| e.to_string())?,
                target: dec.get_string().map_err(|e| e.to_string())?,
            },
            4 => {
                let e = |e: sfs_xdr::XdrError| e.to_string();
                let mut state = RecoveredState::default();
                for _ in 0..dec.get_u32().map_err(e)? {
                    let location = dec.get_string().map_err(e)?;
                    let hid = dec.get_opaque_fixed(20).map_err(e)?;
                    let mut host_id = [0u8; 20];
                    host_id.copy_from_slice(&hid);
                    state.mounts.push(RecoveredMount {
                        location,
                        host_id: HostId(host_id),
                        server_key: dec.get_opaque().map_err(e)?,
                    });
                }
                for _ in 0..dec.get_u32().map_err(e)? {
                    let dir = dec.get_string().map_err(e)?;
                    let hwm = dec.get_u32().map_err(e)?;
                    state.seq_hwm.insert(dir, hwm);
                }
                for _ in 0..dec.get_u32().map_err(e)? {
                    let uid = dec.get_u32().map_err(e)?;
                    let n = dec.get_u32().map_err(e)?;
                    let keys = state.agent_keys.entry(uid).or_default();
                    for _ in 0..n {
                        keys.push(dec.get_opaque().map_err(e)?);
                    }
                }
                for _ in 0..dec.get_u32().map_err(e)? {
                    let uid = dec.get_u32().map_err(e)?;
                    let n = dec.get_u32().map_err(e)?;
                    let links = state.agent_links.entry(uid).or_default();
                    for _ in 0..n {
                        let name = dec.get_string().map_err(e)?;
                        let target = dec.get_string().map_err(e)?;
                        links.insert(name, target);
                    }
                }
                JournalRecord::Checkpoint(Box::new(state))
            }
            other => return Err(format!("unknown journal record tag {other}")),
        };
        Ok(rec)
    }
}

/// One mount to re-establish during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredMount {
    /// Server location.
    pub location: String,
    /// HostID recorded at mount time.
    pub host_id: HostId,
    /// Server key recorded at mount time (advisory).
    pub server_key: Vec<u8>,
}

/// The folded view of a replayed journal: later records override
/// earlier ones, duplicate agent keys collapse.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredState {
    /// Mounts in first-mount order, one entry per `Location:HostID`.
    pub mounts: Vec<RecoveredMount>,
    /// Seqno high-water mark per mount directory name.
    pub seq_hwm: BTreeMap<String, u32>,
    /// Serialized agent private keys per uid, in install order.
    pub agent_keys: BTreeMap<u32, Vec<Vec<u8>>>,
    /// Agent dynamic links per uid.
    pub agent_links: BTreeMap<u32, BTreeMap<String, String>>,
    /// Total records replayed (before folding).
    pub records: u64,
}

/// Records at which [`ClientJournal::append`] folds the log into a
/// checkpoint. Large enough that compaction cost (a full replay plus one
/// sync write) amortises over hundreds of appends; small enough that a
/// journal never holds more than a few KiB of dead records.
pub const AUTO_COMPACT_THRESHOLD: usize = 256;

/// The client journal: [`JournalRecord`]s on a crash-surviving
/// [`JournalDisk`]. Clones share state, mirroring a journal file that
/// outlives its writer.
#[derive(Clone, Debug)]
pub struct ClientJournal {
    disk: JournalDisk,
}

impl ClientJournal {
    /// Wraps a journal disk.
    pub fn new(disk: JournalDisk) -> Self {
        ClientJournal { disk }
    }

    /// Appends one record (synchronous: durable before return). Once the
    /// log passes [`AUTO_COMPACT_THRESHOLD`] records it is folded into a
    /// single checkpoint so steady-state clients no longer grow their
    /// journal without bound. Compaction is best-effort: an undecodable
    /// log (possible only under corruption faults) leaves the raw records
    /// in place for recovery to report.
    pub fn append(&self, rec: &JournalRecord) {
        self.disk.append(&rec.to_xdr());
        if self.disk.len() >= AUTO_COMPACT_THRESHOLD {
            let _ = self.compact();
        }
    }

    /// Replays the journal into a folded [`RecoveredState`], charging
    /// disk reads. Frames are CRC-verified: a torn tail (crash
    /// mid-append) is truncated and tolerated, while mid-log corruption
    /// of a once-durable record is fatal — folding around a hole would
    /// silently resurrect pre-hole state.
    pub fn replay(&self) -> Result<RecoveredState, String> {
        let checked = self.disk.replay_checked().map_err(|e| e.to_string())?;
        let mut out = RecoveredState::default();
        for bytes in checked.records {
            out.records += 1;
            match JournalRecord::from_xdr(&bytes)? {
                JournalRecord::Mount {
                    location,
                    host_id,
                    server_key,
                } => {
                    if let Some(m) = out
                        .mounts
                        .iter_mut()
                        .find(|m| m.location == location && m.host_id == host_id)
                    {
                        m.server_key = server_key;
                    } else {
                        out.mounts.push(RecoveredMount {
                            location,
                            host_id,
                            server_key,
                        });
                    }
                }
                JournalRecord::SeqHwm { dir_name, hwm } => {
                    let e = out.seq_hwm.entry(dir_name).or_insert(0);
                    *e = (*e).max(hwm);
                }
                JournalRecord::AgentKey { uid, key } => {
                    let keys = out.agent_keys.entry(uid).or_default();
                    if !keys.contains(&key) {
                        keys.push(key);
                    }
                }
                JournalRecord::AgentLink { uid, name, target } => {
                    out.agent_links.entry(uid).or_default().insert(name, target);
                }
                JournalRecord::Checkpoint(state) => {
                    // The checkpoint IS the folded state of everything
                    // before it; discard what we accumulated but keep the
                    // cumulative record count honest.
                    let records = out.records;
                    out = *state;
                    out.records = records;
                }
            }
        }
        Ok(out)
    }

    /// Rewrites the journal as a single [`JournalRecord::Checkpoint`]
    /// holding its folded state. Replay after compaction yields the same
    /// [`RecoveredState`] (modulo the cumulative `records` counter, which
    /// restarts at the checkpoint). Charges the replay reads plus one
    /// synchronous write.
    pub fn compact(&self) -> Result<(), String> {
        let mut state = self.replay()?;
        state.records = 0;
        let checkpoint = JournalRecord::Checkpoint(Box::new(state));
        self.disk.replace(&[checkpoint.to_xdr()]);
        Ok(())
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.disk.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.disk.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_sim::{DiskParams, SimClock, SimDisk};

    fn journal() -> (SimClock, ClientJournal) {
        let clock = SimClock::new();
        let disk = SimDisk::new(clock.clone(), DiskParams::ibm_18es());
        (clock, ClientJournal::new(JournalDisk::new(disk, 0)))
    }

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Mount {
                location: "a.example.com".into(),
                host_id: HostId([1; 20]),
                server_key: vec![9; 33],
            },
            JournalRecord::SeqHwm {
                dir_name: "a.example.com:xyz".into(),
                hwm: 64,
            },
            JournalRecord::AgentKey {
                uid: 1000,
                key: vec![7; 48],
            },
            JournalRecord::AgentLink {
                uid: 1000,
                name: "work".into(),
                target: "/sfs/a.example.com:xyz".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_xdr() {
        for rec in sample_records() {
            assert_eq!(JournalRecord::from_xdr(&rec.to_xdr()).unwrap(), rec);
        }
    }

    #[test]
    fn replay_is_deterministic_in_bytes_and_time() {
        // Tier-1 determinism: two journals fed the same sequence produce
        // byte-identical raw records, identical folded state, and an
        // identical virtual-time bill.
        let run = || {
            let (clock, j) = journal();
            for rec in sample_records() {
                j.append(&rec);
            }
            let state = j.replay().unwrap();
            (state, clock.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn replay_folds_later_records_over_earlier() {
        let (_clock, j) = journal();
        for rec in sample_records() {
            j.append(&rec);
        }
        // Same mount journaled again (a remount) with a fresher key, a
        // higher seq HWM, a duplicate agent key, and an updated link.
        j.append(&JournalRecord::Mount {
            location: "a.example.com".into(),
            host_id: HostId([1; 20]),
            server_key: vec![8; 33],
        });
        j.append(&JournalRecord::SeqHwm {
            dir_name: "a.example.com:xyz".into(),
            hwm: 128,
        });
        j.append(&JournalRecord::AgentKey {
            uid: 1000,
            key: vec![7; 48],
        });
        j.append(&JournalRecord::AgentLink {
            uid: 1000,
            name: "work".into(),
            target: "/sfs/b.example.com:pqr".into(),
        });
        let state = j.replay().unwrap();
        assert_eq!(state.records, 8);
        assert_eq!(state.mounts.len(), 1, "remount folds into one entry");
        assert_eq!(state.mounts[0].server_key, vec![8; 33]);
        assert_eq!(state.seq_hwm["a.example.com:xyz"], 128);
        assert_eq!(state.agent_keys[&1000].len(), 1, "duplicate key folded");
        assert_eq!(
            state.agent_links[&1000]["work"], "/sfs/b.example.com:pqr",
            "later link wins"
        );
    }

    #[test]
    fn seq_hwm_never_regresses() {
        let (_clock, j) = journal();
        j.append(&JournalRecord::SeqHwm {
            dir_name: "m".into(),
            hwm: 100,
        });
        // An out-of-order lower HWM (e.g. from interleaved writers) must
        // not pull the recovered watermark backwards.
        j.append(&JournalRecord::SeqHwm {
            dir_name: "m".into(),
            hwm: 50,
        });
        assert_eq!(j.replay().unwrap().seq_hwm["m"], 100);
    }

    #[test]
    fn corrupt_record_is_an_error_not_a_panic() {
        assert!(JournalRecord::from_xdr(&[0xff, 0xff]).is_err());
        assert!(JournalRecord::from_xdr(XdrEncoder::new().put_u32(9).bytes()).is_err());
    }

    #[test]
    fn checkpoint_round_trips_through_xdr() {
        let (_clock, j) = journal();
        for rec in sample_records() {
            j.append(&rec);
        }
        let mut state = j.replay().unwrap();
        state.records = 0; // the counter is not serialized
        let rec = JournalRecord::Checkpoint(Box::new(state));
        assert_eq!(JournalRecord::from_xdr(&rec.to_xdr()).unwrap(), rec);
    }

    #[test]
    fn compaction_preserves_folded_state() {
        let (_clock, j) = journal();
        for rec in sample_records() {
            j.append(&rec);
        }
        let before = j.replay().unwrap();
        j.compact().unwrap();
        assert_eq!(j.len(), 1, "compaction truncates to one checkpoint");
        let after = j.replay().unwrap();
        assert_eq!(after.mounts, before.mounts);
        assert_eq!(after.seq_hwm, before.seq_hwm);
        assert_eq!(after.agent_keys, before.agent_keys);
        assert_eq!(after.agent_links, before.agent_links);
        assert_eq!(after.records, 1, "counter restarts at the checkpoint");
    }

    #[test]
    fn records_after_a_checkpoint_fold_on_top_of_it() {
        let (_clock, j) = journal();
        for rec in sample_records() {
            j.append(&rec);
        }
        j.compact().unwrap();
        j.append(&JournalRecord::SeqHwm {
            dir_name: "a.example.com:xyz".into(),
            hwm: 999,
        });
        j.append(&JournalRecord::AgentLink {
            uid: 1000,
            name: "work".into(),
            target: "/sfs/after.example.com:k".into(),
        });
        let state = j.replay().unwrap();
        assert_eq!(state.mounts.len(), 1, "checkpointed mount survives");
        assert_eq!(state.seq_hwm["a.example.com:xyz"], 999);
        assert_eq!(state.agent_links[&1000]["work"], "/sfs/after.example.com:k");
        assert_eq!(state.agent_keys[&1000].len(), 1);
        assert_eq!(state.records, 3);
    }

    #[test]
    fn append_auto_compacts_past_the_threshold() {
        let (_clock, j) = journal();
        j.append(&JournalRecord::Mount {
            location: "a.example.com".into(),
            host_id: HostId([1; 20]),
            server_key: vec![9; 33],
        });
        for i in 0..(2 * AUTO_COMPACT_THRESHOLD as u32) {
            j.append(&JournalRecord::SeqHwm {
                dir_name: "a.example.com:xyz".into(),
                hwm: i,
            });
        }
        assert!(
            j.len() <= AUTO_COMPACT_THRESHOLD,
            "journal must not grow without bound (len {})",
            j.len()
        );
        let state = j.replay().unwrap();
        assert_eq!(state.mounts.len(), 1, "compaction keeps the mount");
        assert_eq!(
            state.seq_hwm["a.example.com:xyz"],
            2 * AUTO_COMPACT_THRESHOLD as u32 - 1
        );
    }
}
