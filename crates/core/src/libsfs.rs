//! `libsfs`: user/group name mapping (§3.3).
//!
//! "The NFS protocol uses numeric user and group IDs … These numbers have
//! no meaning outside of the local administrative realm. A small C
//! library, libsfs, allows programs to query file servers (through the
//! client) for mappings of numeric IDs to and from human-readable names.
//! We adopt the convention that user and group names prefixed with `%` are
//! relative to the remote file server. When both the ID and name of a user
//! or group are the same on the client and server …, libsfs detects this
//! situation and omits the percent sign."

use std::collections::BTreeMap;

/// A uid/gid ↔ name table for one realm (client machine or file server).
#[derive(Debug, Clone, Default)]
pub struct IdTable {
    users: BTreeMap<u32, String>,
    groups: BTreeMap<u32, String>,
}

impl IdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a user mapping.
    pub fn add_user(&mut self, uid: u32, name: &str) -> &mut Self {
        self.users.insert(uid, name.to_string());
        self
    }

    /// Adds a group mapping.
    pub fn add_group(&mut self, gid: u32, name: &str) -> &mut Self {
        self.groups.insert(gid, name.to_string());
        self
    }

    /// Looks up a user name.
    pub fn user_name(&self, uid: u32) -> Option<&str> {
        self.users.get(&uid).map(|s| s.as_str())
    }

    /// Looks up a group name.
    pub fn group_name(&self, gid: u32) -> Option<&str> {
        self.groups.get(&gid).map(|s| s.as_str())
    }

    /// Reverse-maps a user name to a uid.
    pub fn user_id(&self, name: &str) -> Option<u32> {
        self.users
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .map(|(id, _)| *id)
    }
}

/// Formats a remote file's owner for display on this client: `%name` when
/// the remote realm's mapping differs from the local one, plain `name`
/// when both the ID and the name agree, and the bare number when the
/// remote server has no mapping.
pub fn display_user(local: &IdTable, remote: &IdTable, uid: u32) -> String {
    match remote.user_name(uid) {
        None => uid.to_string(),
        Some(remote_name) => {
            if local.user_name(uid) == Some(remote_name) {
                remote_name.to_string()
            } else {
                format!("%{remote_name}")
            }
        }
    }
}

/// Group analogue of [`display_user`].
pub fn display_group(local: &IdTable, remote: &IdTable, gid: u32) -> String {
    match remote.group_name(gid) {
        None => gid.to_string(),
        Some(remote_name) => {
            if local.group_name(gid) == Some(remote_name) {
                remote_name.to_string()
            } else {
                format!("%{remote_name}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local() -> IdTable {
        let mut t = IdTable::new();
        t.add_user(1000, "alice").add_user(1001, "bob");
        t.add_group(100, "staff");
        t
    }

    #[test]
    fn same_realm_omits_percent() {
        // "SFS running on a LAN": ids and names agree.
        let l = local();
        let r = local();
        assert_eq!(display_user(&l, &r, 1000), "alice");
        assert_eq!(display_group(&l, &r, 100), "staff");
    }

    #[test]
    fn remote_realm_gets_percent() {
        let l = local();
        let mut r = IdTable::new();
        r.add_user(1000, "dm"); // Same uid, different person remotely.
        assert_eq!(display_user(&l, &r, 1000), "%dm");
    }

    #[test]
    fn unmapped_id_prints_number() {
        let l = local();
        let r = IdTable::new();
        assert_eq!(display_user(&l, &r, 4242), "4242");
        assert_eq!(display_group(&l, &r, 4242), "4242");
    }

    #[test]
    fn same_name_different_uid_still_percent() {
        // The *pair* must match: remote "alice" under a different uid is
        // a different principal as far as the wire protocol goes.
        let l = local();
        let mut r = IdTable::new();
        r.add_user(2000, "alice");
        assert_eq!(display_user(&l, &r, 2000), "%alice");
    }

    #[test]
    fn reverse_lookup() {
        let l = local();
        assert_eq!(l.user_id("bob"), Some(1001));
        assert_eq!(l.user_id("carol"), None);
    }
}
