//! The `sfskey` utility (§2.4 "Password authentication", §2.5.2).
//!
//! The paper's walkthrough: a traveling user runs
//! `sfskey add user@server`, types one password, and transparently gets
//! (a) the server's self-certifying pathname over an SRP-negotiated secure
//! channel, and (b) his own private key, downloaded in encrypted form and
//! decrypted locally with the same password — "The process involves no
//! system administrators, no certification authorities, and no need for
//! this user to have to think about anything like public keys or
//! self-certifying pathnames."

use sfs_bignum::{Nat, RandomSource};
use sfs_crypto::eksblowfish::{password_kdf, SALT_LEN};
use sfs_crypto::rabin::RabinPrivateKey;
use sfs_crypto::srp::{SrpClient, SrpGroup};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_xdr::{Xdr, XdrDecoder};

use crate::agent::Agent;
use crate::authserver::{client_srp_registration, AuthServer};
use crate::sealbox;
use crate::server::ServerConn;
use crate::wire::{CallMsg, ReplyMsg};

/// Errors from `sfskey` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SfskeyError {
    /// The server rejected the handshake (unknown user or wrong
    /// password).
    Rejected(String),
    /// The server's evidence failed — it does not actually know the
    /// verifier (a fake server).
    ServerNotAuthentic,
    /// A reply failed to parse or decrypt.
    BadReply,
}

impl std::fmt::Display for SfskeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SfskeyError::Rejected(e) => write!(f, "server rejected handshake: {e}"),
            SfskeyError::ServerNotAuthentic => write!(f, "server failed SRP evidence check"),
            SfskeyError::BadReply => write!(f, "malformed sfskey reply"),
        }
    }
}

impl std::error::Error for SfskeyError {}

/// What `sfskey add` brings home.
#[derive(Debug)]
pub struct SfskeyResult {
    /// The server's self-certifying pathname, learned securely from a
    /// password alone.
    pub server_path: Option<SelfCertifyingPath>,
    /// The user's private key, decrypted locally.
    pub private_key: Option<RabinPrivateKey>,
}

/// One share of a split private key (§2.5.1: "to protect private keys
/// from compromise … one could split them between an agent and a trusted
/// authserver … An attacker would need to compromise both the agent and
/// authserver to steal a split secret key").
///
/// This is an XOR secret-sharing of the serialized key: each share alone
/// is information-theoretically independent of the key. (The paper
/// *envisages* proactive two-party signing without reconstruction; as
/// there, that refinement is future work — here the key is reconstructed
/// transiently at use.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyShare {
    /// Share bytes (same length as the serialized key).
    pub bytes: Vec<u8>,
}

/// Splits a private key into two shares.
pub fn split_private_key<R: RandomSource>(
    key: &RabinPrivateKey,
    rng: &mut R,
) -> (KeyShare, KeyShare) {
    let blob = key.to_bytes();
    let mut pad = vec![0u8; blob.len()];
    rng.fill(&mut pad);
    let masked: Vec<u8> = blob.iter().zip(pad.iter()).map(|(a, b)| a ^ b).collect();
    (KeyShare { bytes: pad }, KeyShare { bytes: masked })
}

/// Recombines two shares into the private key.
pub fn combine_key_shares(a: &KeyShare, b: &KeyShare) -> Option<RabinPrivateKey> {
    if a.bytes.len() != b.bytes.len() {
        return None;
    }
    let blob: Vec<u8> = a
        .bytes
        .iter()
        .zip(b.bytes.iter())
        .map(|(x, y)| x ^ y)
        .collect();
    RabinPrivateKey::from_bytes(&blob).ok()
}

/// Registers a user with an authserver the way `sfskey register` does:
/// computes SRP data client-side (the password never leaves this
/// function), registers it, and uploads an eksblowfish-encrypted copy of
/// the private key.
pub fn register<R: RandomSource>(
    auth: &AuthServer,
    user: &str,
    password: &[u8],
    private_key: &RabinPrivateKey,
    rng: &mut R,
) {
    let (srp_salt, verifier, ekb_salt) =
        client_srp_registration(auth.group(), auth.cost(), user, password, rng);
    auth.srp_register(user, srp_salt, verifier, ekb_salt);
    // Encrypt the private key under a password-derived key. The same
    // eksblowfish salt doubles for both uses, like the paper's single
    // password: "the password that encrypts the private key is typically
    // also the password used in SRP — a safe design because the server
    // never sees any password-equivalent data."
    let kek = key_encryption_key(auth.cost(), &ekb_salt, password);
    let blob = sealbox::seal(&kek, &private_key.to_bytes());
    auth.register_encrypted_private_key(user, blob);
}

/// Derives the private-key encryption key from the password.
fn key_encryption_key(cost: u32, salt: &[u8; SALT_LEN], password: &[u8]) -> [u8; 20] {
    let bytes = password_kdf(cost, salt, password, 20);
    let mut out = [0u8; 20];
    // Domain-separate from the SRP hardening (which uses 32 bytes).
    let h = sfs_crypto::sha1::sha1_concat(&[b"SFS-kek", &bytes]);
    out.copy_from_slice(&h);
    out
}

/// Runs `sfskey add user@server` against an (unauthenticated!) connection
/// to the server: SRP mutual authentication from the password, then the
/// sealed payload. Installs the key in `agent` and records the
/// self-certifying pathname as a dynamic link named after the location.
pub fn add<R: RandomSource>(
    conn: &ServerConn,
    group: &SrpGroup,
    agent: &mut Agent,
    user: &str,
    password: &[u8],
    rng: &mut R,
) -> Result<SfskeyResult, SfskeyError> {
    // Step 1: A = g^a. The password is not needed yet.
    let dummy_a = SrpClient::start(group, user, b"", rng);
    // We must send A before knowing the eksblowfish parameters, so start
    // with a throwaway client to generate `a`… actually SRP needs the
    // password only in `process`, so start with the real (empty) password
    // and patch after the challenge. Instead, restart the client with the
    // hardened password and the *same* A by re-running start with a fresh
    // rng would change A. Simplest correct flow: ask for parameters via
    // the challenge, then run a fresh handshake. The server supports
    // repeated SrpStart on one connection.
    let (probe_client, probe_a) = dummy_a;
    let reply = conn.handle(CallMsg::SrpStart {
        user: user.into(),
        a_pub: probe_a.to_bytes_be(),
    });
    let (salt, _b, ekb_salt, cost) = match reply {
        ReplyMsg::SrpChallenge {
            salt,
            b_pub,
            ekb_salt,
            cost,
        } => (salt, b_pub, ekb_salt, cost),
        ReplyMsg::Error(e) => return Err(SfskeyError::Rejected(e)),
        _ => return Err(SfskeyError::BadReply),
    };
    drop(probe_client);
    let ekb_salt_arr: [u8; SALT_LEN] = ekb_salt
        .clone()
        .try_into()
        .map_err(|_| SfskeyError::BadReply)?;
    // Harden the password (the expensive eksblowfish step, §2.5.2).
    let hardened = AuthServer::harden_password(cost, &ekb_salt_arr, password);
    // Fresh, real handshake with the hardened password.
    let (client, a_pub) = SrpClient::start(group, user, &hardened, rng);
    let reply = conn.handle(CallMsg::SrpStart {
        user: user.into(),
        a_pub: a_pub.to_bytes_be(),
    });
    let (salt2, b_pub) = match reply {
        ReplyMsg::SrpChallenge { salt, b_pub, .. } => (salt, b_pub),
        ReplyMsg::Error(e) => return Err(SfskeyError::Rejected(e)),
        _ => return Err(SfskeyError::BadReply),
    };
    debug_assert_eq!(salt, salt2);
    let session = client
        .process(&salt2, &Nat::from_bytes_be(&b_pub))
        .map_err(|e| SfskeyError::Rejected(e.to_string()))?;
    let reply = conn.handle(CallMsg::SrpFinish {
        m1: session.m1.to_vec(),
    });
    let (m2, sealed) = match reply {
        ReplyMsg::SrpDone { m2, sealed_payload } => (m2, sealed_payload),
        ReplyMsg::Error(e) => return Err(SfskeyError::Rejected(e)),
        _ => return Err(SfskeyError::BadReply),
    };
    session
        .verify_server(&m2)
        .map_err(|_| SfskeyError::ServerNotAuthentic)?;
    // Open the payload sealed under the SRP session key.
    let payload = sealbox::open(&session.key, &sealed).map_err(|_| SfskeyError::BadReply)?;
    let mut dec = XdrDecoder::new(&payload);
    let server_path =
        Option::<SelfCertifyingPath>::decode(&mut dec).map_err(|_| SfskeyError::BadReply)?;
    let blob = Option::<Vec<u8>>::decode(&mut dec).map_err(|_| SfskeyError::BadReply)?;

    // Decrypt the private key locally with the password.
    let private_key = match blob {
        Some(blob) => {
            let kek = key_encryption_key(cost, &ekb_salt_arr, password);
            let raw = sealbox::open(&kek, &blob).map_err(|_| SfskeyError::BadReply)?;
            Some(RabinPrivateKey::from_bytes(&raw).map_err(|_| SfskeyError::BadReply)?)
        }
        None => None,
    };

    // Install: the agent gets the key and a link
    // `Location -> /sfs/Location:HostID` (§2.4's walkthrough).
    if let Some(key) = &private_key {
        agent.add_key(key.clone());
    }
    if let Some(path) = &server_path {
        agent.create_link(&path.location.clone(), &path.full_path());
    }
    Ok(SfskeyResult {
        server_path,
        private_key,
    })
}
