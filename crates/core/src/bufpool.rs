//! A per-connection buffer pool for the sealed-RPC hot path.
//!
//! Every sealed RPC used to allocate fresh `Vec<u8>`s for the XDR
//! encode, the sealed frame, the wire envelope, and the opened reply.
//! The paper's performance argument (§4) is that security overhead is
//! small enough to leave on by default; gratuitous per-RPC allocation
//! works against that. A [`BufPool`] is a small freelist of `Vec<u8>`s
//! shared by both ends of a connection so steady-state traffic recycles
//! the same handful of buffers instead of hitting the allocator.
//!
//! Pool discipline: buffers are handed out empty (`len == 0`) with
//! whatever capacity they accumulated, and returned with contents
//! intact (the pool clears them on reuse, not on return, so a caller
//! may keep reading a buffer up to the moment it re-enters circulation).
//! Hits and misses are telemetry-counted (`bufpool.hits` /
//! `bufpool.misses`) so benchmarks and tests can pin reuse rates.
//!
//! **Ownership under multi-core dispatch.** Each pool is created by
//! [`crate::SfsServer::accept`] (or the client link setup) for exactly
//! one connection, and both ends of that simulated loopback share it;
//! no pool is ever reachable from two connections. The multi-core
//! `ShardEngine` schedules *time*, not buffers — worker shards never
//! exchange `Vec<u8>`s — so a buffer recycled on one shard cannot alias
//! an in-flight frame on another: the only path back into circulation
//! is `put` on the same connection's pool, and a buffer only re-enters
//! a *different* pool by deep copy. Every pool carries a process-unique
//! [`BufPool::id`] so tests can pin this single-owner discipline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

/// Buffers retained per pool. Connections have at most a few frames in
/// flight (request, envelope, reply), so a small cap bounds memory
/// while keeping the steady state allocation-free.
const MAX_POOLED: usize = 8;

/// Buffers above this capacity are dropped rather than pooled, so one
/// huge READ/WRITE burst does not pin megabytes forever.
const MAX_RETAINED_CAPACITY: usize = 1 << 20;

/// Process-unique pool identities, so ownership can be asserted.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

/// A freelist of reusable `Vec<u8>`s shared by a connection's two ends.
pub struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
    tel: Mutex<Telemetry>,
    host: &'static str,
    id: u64,
}

impl BufPool {
    /// Creates an empty pool tagged with a telemetry process dimension.
    pub fn new(host: &'static str) -> Arc<Self> {
        Arc::new(BufPool {
            free: Mutex::new(Vec::new()),
            tel: Mutex::new(Telemetry::disabled()),
            host,
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
        })
    }

    /// This pool's process-unique identity. Two connections must never
    /// report the same id — that would mean a shared freelist, and with
    /// it the possibility of one shard recycling a buffer that aliases
    /// another connection's in-flight frame.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Routes hit/miss counters to `tel`.
    pub fn set_telemetry(&self, tel: Telemetry) {
        *self.tel.lock() = tel;
    }

    /// Takes a cleared buffer from the freelist, or allocates one.
    pub fn get(&self) -> Vec<u8> {
        let buf = self.free.lock().pop();
        match buf {
            Some(mut b) => {
                b.clear();
                self.tel.lock().count(self.host, "bufpool.hits", 1);
                b
            }
            None => {
                self.tel.lock().count(self.host, "bufpool.misses", 1);
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the freelist. Oversized buffers and overflow
    /// beyond the retention cap are dropped.
    pub fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_RETAINED_CAPACITY {
            return;
        }
        let mut free = self.free.lock();
        if free.len() < MAX_POOLED {
            free.push(buf);
        }
    }

    /// Takes a buffer wrapped in a guard that returns it on drop.
    pub fn get_guard(self: &Arc<Self>) -> PooledBuf {
        PooledBuf {
            buf: Some(self.get()),
            pool: Arc::clone(self),
        }
    }

    /// Buffers currently idle in the freelist (for tests).
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }
}

impl std::fmt::Debug for BufPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufPool")
            .field("host", &self.host)
            .field("idle", &self.idle())
            .finish()
    }
}

/// RAII guard for a pooled buffer: derefs to `Vec<u8>`, returns the
/// buffer to its pool on drop unless [`PooledBuf::take`]n.
pub struct PooledBuf {
    buf: Option<Vec<u8>>,
    pool: Arc<BufPool>,
}

impl PooledBuf {
    /// Detaches the buffer from the guard; it will not be pooled.
    pub fn take(mut self) -> Vec<u8> {
        self.buf.take().expect("buffer present until take/drop")
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.buf.as_ref().expect("buffer present until take/drop")
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.buf.as_mut().expect("buffer present until take/drop")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_buffers_and_counts_hits() {
        let pool = BufPool::new("client");
        let tel = Telemetry::counters();
        pool.set_telemetry(tel.clone());

        let mut a = pool.get();
        a.extend_from_slice(b"hello");
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);

        let b = pool.get();
        assert!(b.is_empty(), "reused buffers come back cleared");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        assert_eq!(tel.counter("client", "bufpool.hits"), 1);
        assert_eq!(tel.counter("client", "bufpool.misses"), 1);
    }

    #[test]
    fn retention_is_capped() {
        let pool = BufPool::new("client");
        for _ in 0..MAX_POOLED + 4 {
            pool.put(Vec::with_capacity(64));
        }
        assert_eq!(pool.idle(), MAX_POOLED);
        // Zero-capacity and oversized buffers are never retained.
        let before = pool.idle();
        pool.put(Vec::new());
        pool.put(Vec::with_capacity(MAX_RETAINED_CAPACITY + 1));
        assert_eq!(pool.idle(), before);
    }

    #[test]
    fn pools_are_single_owner_never_cross_recycled() {
        // The cross-shard aliasing regression: a buffer returned to one
        // connection's pool must never surface from another's freelist.
        let a = BufPool::new("server");
        let b = BufPool::new("server");
        assert_ne!(a.id(), b.id(), "pool identities must be unique");
        let mut buf = Vec::with_capacity(128);
        buf.extend_from_slice(b"frame-in-flight");
        let marker = buf.as_ptr();
        a.put(buf);
        assert_eq!(a.idle(), 1);
        assert_eq!(b.idle(), 0, "pool B must not see pool A's buffer");
        // Drain B: everything it hands out is freshly allocated, so no
        // pointer from A's freelist can alias it.
        let from_b = b.get();
        assert_eq!(from_b.capacity(), 0, "B had nothing pooled to reuse");
        let from_a = a.get();
        assert_eq!(from_a.as_ptr(), marker, "A recycles its own buffer");
    }

    #[test]
    fn guard_returns_on_drop_and_take_detaches() {
        let pool = BufPool::new("client");
        {
            let mut g = pool.get_guard();
            g.extend_from_slice(b"xyz");
        }
        assert_eq!(pool.idle(), 1);
        let g = pool.get_guard();
        let v = g.take();
        drop(v);
        assert_eq!(pool.idle(), 0, "taken buffers are not pooled");
    }
}
