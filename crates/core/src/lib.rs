//! The SFS system: client, server, agent, and authserver daemons.
//!
//! Figure 2 of the paper shows the component layout this crate reproduces:
//!
//! ```text
//!   user program → kernel NFS3 → sfscd (client master) ┐
//!                                agents (per user) ────┤  MACed, encrypted
//!                                                      ├── TCP ──┐
//!   nfsmounter (root)                                  ┘         │
//!                                                                ▼
//!   sfssd (server master) → read-write server → NFS3 server → disk
//!                         → read-only server
//!                         → authserver
//! ```
//!
//! - [`wire`]: the SFS wire messages exchanged between client and server —
//!   the cleartext key-negotiation stage and the sealed RPC stage;
//! - [`authserver`]: `authserv` — public-key→credential databases (public
//!   and private halves), SRP registration, encrypted private-key storage,
//!   Unix-password bootstrap (§2.5);
//! - [`agent`]: `sfsagent` — per-user key management, on-the-fly symlinks,
//!   certification paths, revocation checking, HostID blocking, audit
//!   trail (§2.3, §2.5.1);
//! - [`server`]: `sfssd` and the read-write/read-only servers — connection
//!   dispatch, credential tagging, Blowfish-encrypted NFS handles (§3.2,
//!   §3.3);
//! - [`client`]: `sfscd` — the automounter under `/sfs`, secure-channel
//!   management, per-agent namespace views, enhanced attribute/access
//!   caching with leases and invalidation callbacks (§2.3, §3.3);
//! - [`sfskey`]: the `sfskey` utility — SRP password login, key download,
//!   agent installation (§2.4);
//! - [`libsfs`]: uid/gid ↔ name mapping with the `%` remote-realm
//!   convention (§3.3);
//! - [`nfsmounter`]: the crash-takeover mounter (§3.3).

pub mod agent;
pub mod authserver;
pub mod bufpool;
pub mod client;
pub mod config;
pub mod journal;
pub mod libsfs;
pub mod nfsmounter;
pub mod roclient;
pub mod sealbox;
pub mod server;
pub mod sfskey;
pub mod shard;
pub mod wire;

pub use agent::Agent;
pub use authserver::{AuthServer, UserRecord};
pub use bufpool::{BufPool, PooledBuf};
pub use client::{ClientError, RecoveryReport, RoutedRo, RoutedRw, Router, SfsClient, SfsNetwork};
pub use journal::{ClientJournal, JournalRecord, RecoveredState};
pub use roclient::{RoClientError, RoMount};
pub use server::{RoConnection, RoReplicaServer, ServerConfig, SfsServer};
pub use shard::{ShardEngine, ShardedReplyCache};
