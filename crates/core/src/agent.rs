//! The user agent, `sfsagent` (§2.3, §2.5.1).
//!
//! "Every user on an SFS client runs an unprivileged agent program of his
//! choice … The agent handles authentication of the user to remote
//! servers, prevents the user from accessing revoked HostIDs, and controls
//! the user's view of the `/sfs` directory."
//!
//! Agents hold the user's private keys and sign authentication requests
//! (keeping "a full audit trail of every private key operation"); they
//! create symbolic links in `/sfs` on the fly to implement certification
//! paths, bookmarks, and arbitrary key-management policy; and they decide
//! — per user — whether to honor revocations and HostID blocks.

use std::collections::{BTreeMap, BTreeSet};

use sfs_crypto::rabin::RabinPrivateKey;
use sfs_proto::pathname::{HostId, SelfCertifyingPath};
use sfs_proto::revoke::RevocationCert;
use sfs_proto::userauth::{AuthInfo, AuthMsg};

/// One private-key operation recorded in the audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditEntry {
    /// Location of the server the signature was for.
    pub location: String,
    /// HostID of that server.
    pub host_id: HostId,
    /// Sequence number signed.
    pub seq_no: u32,
    /// Which of the agent's keys signed (index).
    pub key_index: usize,
    /// "The path of processes and machines through which the request
    /// arrived at the agent" (§2.5.1) — empty for local requests, one
    /// entry per proxy hop otherwise.
    pub via: Vec<String>,
}

/// A per-user agent.
pub struct Agent {
    /// The user's private keys, tried in succession ("a single agent can
    /// support several protocols by simply trying them each in
    /// succession").
    keys: Vec<RabinPrivateKey>,
    /// Dynamic symlinks in `/sfs`, visible only to this agent's processes.
    links: BTreeMap<String, String>,
    /// Certification path: directories searched, in order, for symlinks
    /// matching non-self-certifying names in `/sfs` (§2.4).
    cert_paths: Vec<String>,
    /// Directories to consult for revocation certificates, e.g.
    /// `/verisign/revocations` (§2.6).
    revocation_dirs: Vec<String>,
    /// Verified revocation certificates, by HostID.
    revoked: BTreeMap<[u8; 20], RevocationCert>,
    /// HostIDs blocked for this user only ("does not affect any other
    /// users").
    blocked: BTreeSet<[u8; 20]>,
    /// The audit trail.
    audit: Vec<AuditEntry>,
    /// Give up after this many failed authentication attempts, after
    /// which the user proceeds with anonymous permissions (§2.5).
    max_attempts: usize,
    /// Upstream agent for proxying (§2.5.1: "Proxy agents could forward
    /// authentication requests to other SFS agents" — the remote-login
    /// scenario). When set and this agent holds no keys of its own,
    /// authentication requests are forwarded there.
    upstream: Option<(std::sync::Arc<sfs_telemetry::sync::Mutex<Agent>>, String)>,
    /// External key-management hook (§2.4 "Existing public key
    /// infrastructures"): given a non-self-certifying name, may produce a
    /// self-certifying pathname (e.g. from an SSL certificate store).
    /// Consulted after dynamic links and the certification path.
    name_hook: Option<NameHook>,
}

/// Maps a non-self-certifying name to a self-certifying pathname.
pub type NameHook = Box<dyn Fn(&str) -> Option<String> + Send>;

impl Default for Agent {
    fn default() -> Self {
        Self::new()
    }
}

impl Agent {
    /// Creates an empty agent.
    pub fn new() -> Self {
        Agent {
            keys: Vec::new(),
            links: BTreeMap::new(),
            cert_paths: Vec::new(),
            revocation_dirs: Vec::new(),
            revoked: BTreeMap::new(),
            blocked: BTreeSet::new(),
            audit: Vec::new(),
            max_attempts: 4,
            upstream: None,
            name_hook: None,
        }
    }

    /// Adds a private key (e.g. downloaded by `sfskey`).
    pub fn add_key(&mut self, key: RabinPrivateKey) {
        self.keys.push(key);
    }

    /// Replaces the key at `index` with `key` — the agent half of a §2.5
    /// key rollover: after `sfskey` registers a new public key with the
    /// authserver, the agent swaps in the matching private key so future
    /// authentications use it. Returns false if `index` is out of range
    /// (the old key is then untouched).
    pub fn replace_key(&mut self, index: usize, key: RabinPrivateKey) -> bool {
        match self.keys.get_mut(index) {
            Some(slot) => {
                *slot = key;
                true
            }
            None => false,
        }
    }

    /// Drops the key at `index` (e.g. after rollover, once no server
    /// session still depends on it). Returns false if out of range.
    pub fn remove_key(&mut self, index: usize) -> bool {
        if index < self.keys.len() {
            self.keys.remove(index);
            true
        } else {
            false
        }
    }

    /// Number of keys held.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Serialized snapshot of every private key, in install order — the
    /// form the client journal persists so a restarted client can
    /// restore agent state without re-running SRP retrieval.
    pub fn export_keys(&self) -> Vec<Vec<u8>> {
        self.keys.iter().map(RabinPrivateKey::to_bytes).collect()
    }

    /// Maximum authentication attempts before falling back to anonymous.
    pub fn max_attempts(&self) -> usize {
        self.max_attempts.min(self.keys.len())
    }

    /// Signs an authentication request with key number `attempt`
    /// (0-based), recording the operation in the audit trail. Returns
    /// `None` once attempts are exhausted — the caller then proceeds
    /// anonymously. With an upstream configured and no local keys, the
    /// request is proxied.
    pub fn authenticate(
        &mut self,
        info: &AuthInfo,
        seq_no: u32,
        attempt: usize,
    ) -> Option<AuthMsg> {
        self.authenticate_via(info, seq_no, attempt, Vec::new())
    }

    /// [`Self::authenticate`] carrying the proxy hop path.
    pub fn authenticate_via(
        &mut self,
        info: &AuthInfo,
        seq_no: u32,
        attempt: usize,
        mut via: Vec<String>,
    ) -> Option<AuthMsg> {
        // Refuse to authenticate to hosts this agent knows are revoked or
        // has blocked — a proxy enforces its own policy too.
        if self.blocked.contains(&info.host_id.0) || self.revoked.contains_key(&info.host_id.0) {
            return None;
        }
        if self.keys.is_empty() {
            // Proxy path: forward to the upstream (home) agent, recording
            // the hop.
            let (upstream, hop) = self.upstream.clone()?;
            via.push(hop);
            return upstream.lock().authenticate_via(info, seq_no, attempt, via);
        }
        if attempt >= self.max_attempts() {
            return None;
        }
        let key = &self.keys[attempt];
        let msg = AuthMsg::sign(key, info, seq_no);
        self.audit.push(AuditEntry {
            location: info.location.clone(),
            host_id: info.host_id,
            seq_no,
            key_index: attempt,
            via,
        });
        Some(msg)
    }

    /// Configures this agent as a proxy forwarding to `upstream`, tagging
    /// forwarded requests with `hop` (e.g. "lab-machine.example.org").
    pub fn set_upstream(
        &mut self,
        upstream: std::sync::Arc<sfs_telemetry::sync::Mutex<Agent>>,
        hop: &str,
    ) {
        self.upstream = Some((upstream, hop.to_string()));
    }

    /// Installs an external name hook (§2.4): a closure that maps
    /// non-self-certifying names to self-certifying pathnames, e.g. by
    /// consulting SSL certificates. Consulted after dynamic links and the
    /// certification path.
    pub fn set_name_hook(&mut self, hook: NameHook) {
        self.name_hook = Some(hook);
    }

    /// Runs the external name hook, if any.
    pub fn run_name_hook(&self, name: &str) -> Option<String> {
        self.name_hook.as_ref()?(name)
    }

    /// The audit trail of private-key operations.
    pub fn audit_trail(&self) -> &[AuditEntry] {
        &self.audit
    }

    /// Creates a dynamic symlink in this agent's view of `/sfs`.
    pub fn create_link(&mut self, name: &str, target: &str) {
        self.links.insert(name.to_string(), target.to_string());
    }

    /// Removes a dynamic symlink.
    pub fn remove_link(&mut self, name: &str) -> bool {
        self.links.remove(name).is_some()
    }

    /// Current dynamic links (for `/sfs` directory listings).
    pub fn links(&self) -> impl Iterator<Item = (&str, &str)> {
        self.links.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Appends a directory to the certification path.
    pub fn add_cert_path(&mut self, dir: &str) {
        self.cert_paths.push(dir.to_string());
    }

    /// The certification-path directories, in search order.
    pub fn cert_paths(&self) -> &[String] {
        &self.cert_paths
    }

    /// Resolves a dynamic link without consulting the certification path
    /// (no I/O).
    pub fn resolve_link(&self, name: &str) -> Option<String> {
        self.links.get(name).cloned()
    }

    /// Appends a revocation-checking directory.
    pub fn add_revocation_dir(&mut self, dir: &str) {
        self.revocation_dirs.push(dir.to_string());
    }

    /// Resolves a non-self-certifying name in `/sfs` (§2.3: "the client
    /// software notifies the appropriate agent of the event. The agent can
    /// then create a symbolic link on-the-fly").
    ///
    /// `lookup(dir, name)` reads a symlink target from the (SFS-mounted)
    /// file system; the agent supplies the policy, the client supplies the
    /// I/O.
    pub fn map_name(
        &mut self,
        name: &str,
        lookup: &mut dyn FnMut(&str, &str) -> Option<String>,
    ) -> Option<String> {
        if let Some(target) = self.links.get(name) {
            return Some(target.clone());
        }
        let dirs = self.cert_paths.clone();
        for dir in &dirs {
            if let Some(target) = lookup(dir, name) {
                // Cache as an on-the-fly link for subsequent accesses.
                self.create_link(name, &target);
                return Some(target.clone());
            }
        }
        if let Some(target) = self.run_name_hook(name) {
            self.create_link(name, &target);
            return Some(target);
        }
        None
    }

    /// Checks whether `path` is revoked, consulting the local cache and
    /// then each revocation directory via `fetch(dir, hostid_base32)`.
    /// Valid certificates are cached; invalid ones are ignored ("even
    /// someone without permission … could still submit revocation
    /// certificates" — they are self-authenticating, so fakes are
    /// harmless).
    pub fn check_revoked(
        &mut self,
        path: &SelfCertifyingPath,
        fetch: &mut dyn FnMut(&str, &str) -> Option<RevocationCert>,
    ) -> Option<RevocationCert> {
        if let Some(cert) = self.revoked.get(&path.host_id.0) {
            return Some(cert.clone());
        }
        let dirs = self.revocation_dirs.clone();
        for dir in &dirs {
            if let Some(cert) = fetch(dir, &path.host_id.encoded()) {
                if cert.revokes(path) {
                    self.revoked.insert(path.host_id.0, cert.clone());
                    return Some(cert);
                }
            }
        }
        None
    }

    /// Accepts a revocation certificate pushed from elsewhere (e.g. a
    /// server's hello response); returns whether it was valid for some
    /// path and stored.
    pub fn submit_revocation(&mut self, cert: RevocationCert) -> bool {
        if !cert.verify() {
            return false;
        }
        match cert.host_id() {
            Some(hid) => {
                self.revoked.insert(hid.0, cert);
                true
            }
            None => false,
        }
    }

    /// Blocks a HostID for this user only (§2.6 HostID blocking: the agent
    /// may decide a path is bad "even without finding a signed revocation
    /// certificate", e.g. an external PKI revoked a related certificate).
    pub fn block_host(&mut self, host_id: HostId) {
        self.blocked.insert(host_id.0);
    }

    /// Whether this agent refuses `host_id` (revoked or blocked).
    pub fn refuses(&self, host_id: HostId) -> bool {
        self.blocked.contains(&host_id.0) || self.revoked.contains_key(&host_id.0)
    }

    /// Records a secure bookmark: "by simply typing `cd Location`, they
    /// can subsequently return securely to any file system they have
    /// bookmarked". The bookmark is a dynamic link named after the
    /// Location.
    pub fn add_bookmark(&mut self, path: &SelfCertifyingPath) {
        self.create_link(&path.location.clone(), &path.full_path());
    }
}

impl std::fmt::Debug for Agent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Agent")
            .field("keys", &self.keys.len())
            .field("links", &self.links.len())
            .field("cert_paths", &self.cert_paths)
            .field("revoked", &self.revoked.len())
            .field("blocked", &self.blocked.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;
    use sfs_crypto::rabin::generate_keypair;
    use std::sync::OnceLock;

    fn key(seed: u64) -> RabinPrivateKey {
        static K1: OnceLock<RabinPrivateKey> = OnceLock::new();
        static K2: OnceLock<RabinPrivateKey> = OnceLock::new();
        let cell = if seed == 1 { &K1 } else { &K2 };
        cell.get_or_init(|| {
            let mut rng = XorShiftSource::new(seed);
            generate_keypair(512, &mut rng)
        })
        .clone()
    }

    fn info() -> AuthInfo {
        AuthInfo::for_fs("host.example.com", HostId([5u8; 20]), [6u8; 20])
    }

    #[test]
    fn authenticate_tries_keys_in_succession() {
        let mut agent = Agent::new();
        agent.add_key(key(1));
        agent.add_key(key(2));
        let m0 = agent.authenticate(&info(), 1, 0).unwrap();
        let m1 = agent.authenticate(&info(), 2, 1).unwrap();
        assert_ne!(m0.user_key, m1.user_key);
        assert!(
            agent.authenticate(&info(), 3, 2).is_none(),
            "attempts exhausted"
        );
    }

    #[test]
    fn audit_trail_records_operations() {
        let mut agent = Agent::new();
        agent.add_key(key(1));
        agent.authenticate(&info(), 7, 0).unwrap();
        let trail = agent.audit_trail();
        assert_eq!(trail.len(), 1);
        assert_eq!(trail[0].seq_no, 7);
        assert_eq!(trail[0].location, "host.example.com");
        assert_eq!(trail[0].key_index, 0);
    }

    #[test]
    fn no_keys_means_anonymous() {
        let mut agent = Agent::new();
        assert!(agent.authenticate(&info(), 1, 0).is_none());
    }

    #[test]
    fn dynamic_links_and_map_name() {
        let mut agent = Agent::new();
        agent.create_link("mit", "/sfs/sfs.lcs.mit.edu:abc");
        let mut lookup = |_d: &str, _n: &str| -> Option<String> { panic!("must not hit disk") };
        assert_eq!(
            agent.map_name("mit", &mut lookup).unwrap(),
            "/sfs/sfs.lcs.mit.edu:abc"
        );
    }

    #[test]
    fn cert_path_searched_in_order() {
        let mut agent = Agent::new();
        agent.add_cert_path("/home/user/.sfs/known_hosts");
        agent.add_cert_path("/verisign");
        let mut calls = Vec::new();
        let mut lookup = |dir: &str, name: &str| -> Option<String> {
            calls.push(dir.to_string());
            if dir == "/verisign" && name == "mit" {
                Some("/sfs/mit:xyz".into())
            } else {
                None
            }
        };
        assert_eq!(agent.map_name("mit", &mut lookup).unwrap(), "/sfs/mit:xyz");
        assert_eq!(calls, vec!["/home/user/.sfs/known_hosts", "/verisign"]);
        // Second access is served from the cached on-the-fly link.
        let mut lookup2 = |_d: &str, _n: &str| -> Option<String> { panic!("cached") };
        assert_eq!(agent.map_name("mit", &mut lookup2).unwrap(), "/sfs/mit:xyz");
    }

    #[test]
    fn unresolvable_name_returns_none() {
        let mut agent = Agent::new();
        agent.add_cert_path("/verisign");
        let mut lookup = |_d: &str, _n: &str| -> Option<String> { None };
        assert!(agent.map_name("nowhere", &mut lookup).is_none());
    }

    #[test]
    fn revocation_check_caches_valid_certs() {
        let k = key(1);
        let path = SelfCertifyingPath::for_server("host.example.com", k.public());
        let cert = RevocationCert::issue(&k, "host.example.com");
        let mut agent = Agent::new();
        agent.add_revocation_dir("/verisign/revocations");
        let mut fetches = 0;
        let mut fetch = |_d: &str, _h: &str| -> Option<RevocationCert> {
            fetches += 1;
            Some(cert.clone())
        };
        assert!(agent.check_revoked(&path, &mut fetch).is_some());
        assert!(agent.check_revoked(&path, &mut fetch).is_some());
        assert_eq!(fetches, 1, "second check served from cache");
        assert!(agent.refuses(path.host_id));
    }

    #[test]
    fn invalid_revocation_ignored() {
        let k = key(1);
        let other = key(2);
        let path = SelfCertifyingPath::for_server("host.example.com", k.public());
        // A certificate for a different key does not revoke this path.
        let cert = RevocationCert::issue(&other, "host.example.com");
        let mut agent = Agent::new();
        agent.add_revocation_dir("/verisign/revocations");
        let mut fetch = |_d: &str, _h: &str| -> Option<RevocationCert> { Some(cert.clone()) };
        assert!(agent.check_revoked(&path, &mut fetch).is_none());
        assert!(!agent.refuses(path.host_id));
    }

    #[test]
    fn submitted_revocations_must_verify() {
        let k = key(1);
        let mut agent = Agent::new();
        let mut cert = RevocationCert::issue(&k, "host.example.com");
        cert.location = "tampered.example.com".into();
        assert!(!agent.submit_revocation(cert));
        let good = RevocationCert::issue(&k, "host.example.com");
        assert!(agent.submit_revocation(good));
    }

    #[test]
    fn blocking_is_local_policy() {
        let mut a1 = Agent::new();
        let a2 = Agent::new();
        let hid = HostId([8u8; 20]);
        a1.block_host(hid);
        assert!(a1.refuses(hid));
        assert!(!a2.refuses(hid), "blocking affects only the blocking agent");
    }

    #[test]
    fn blocked_host_refuses_authentication() {
        let mut agent = Agent::new();
        agent.add_key(key(1));
        let i = info();
        agent.block_host(i.host_id);
        assert!(agent.authenticate(&i, 1, 0).is_none());
    }

    #[test]
    fn bookmark_creates_location_link() {
        let k = key(1);
        let path = SelfCertifyingPath::for_server("sfs.lcs.mit.edu", k.public());
        let mut agent = Agent::new();
        agent.add_bookmark(&path);
        let mut lookup = |_d: &str, _n: &str| -> Option<String> { None };
        assert_eq!(
            agent.map_name("sfs.lcs.mit.edu", &mut lookup).unwrap(),
            path.full_path()
        );
    }
}
