//! The SFS client, `sfscd` (§2.3, §3, §3.3).
//!
//! The client master automounts remote file systems under
//! `/sfs/Location:HostID`, negotiates secure channels, relays NFS3 traffic
//! over them, and maintains the enhanced attribute/access caches: "The SFS
//! read-write protocol, while virtually identical to NFS 3, adds enhanced
//! attribute and access caching to reduce the number of NFS GETATTR and
//! ACCESS RPCs sent over the wire. … every file attribute structure
//! returned by the server has a timeout field or lease \[and\] the server
//! can call back to the client to invalidate entries before the lease
//! expires."
//!
//! Per-user agents interpose on the namespace: non-self-certifying names
//! in `/sfs` are sent to the user's agent, which may answer with an
//! on-the-fly symbolic link (§2.3); directory listings of `/sfs` only show
//! pathnames the requesting agent has actually referenced.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use sfs_bignum::RandomSource;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey, RabinPublicKey};
use sfs_crypto::sha1::DIGEST_LEN;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{
    Fattr3, FileHandle, Nfs3Reply, Nfs3Request, PostOpAttr, Sattr3, StableHow, Status,
};
use sfs_proto::channel::{
    ChannelError, FrameSequencer, SecureChannelEnd, SeqPush, SuiteId, FRAME_HEADER_LEN,
};
use sfs_proto::keyneg::{
    resume_confirm, resume_secret, resume_session, KeyNegClient, KeyNegError, KeyNegServerReply,
    RESUME_NONCE_LEN,
};
use sfs_proto::pathname::{HostId, PathError, SelfCertifyingPath};
use sfs_proto::userauth::{AuthInfo, AUTHNO_ANONYMOUS};
use sfs_sim::ipc::{LocalEndpoint, LocalHandler, LocalIdentity};
use sfs_sim::{
    CpuCosts, FaultPlan, Interceptor, NetParams, PacketLog, ServerLoad, SimClock, SimTime, Wire,
    WireError,
};
use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;
use sfs_vfs::FileType;
use sfs_xdr::{Xdr, XdrEncoder};

use crate::agent::Agent;
use crate::bufpool::BufPool;
use crate::journal::{ClientJournal, JournalRecord};
use crate::server::{RoConnection, ServerConn, SfsServer};
use crate::wire::{
    sealed_env_begin, sealed_env_finish, sealed_envelope_frame, seq_env_begin, seq_env_finish,
    seq_reply_envelope, CallMsg, Dialect, InnerCall, InnerReply, ReplyMsg, Service,
    SEALED_ENV_FRAME_START, SEALED_SEQ_ENV_FRAME_START,
};

/// Default ephemeral-key size. The paper's servers used 1280-bit keys;
/// 768 keeps deterministic test runs fast while exercising identical code
/// paths.
pub const EPHEMERAL_KEY_BITS: usize = 768;

/// Maximum symlink traversals during path resolution.
const MAX_SYMLINK_DEPTH: usize = 16;

/// The read-write protocol version this client speaks (dispatched on by
/// `sfssd`, §3.2).
pub const PROTOCOL_VERSION: u32 = 1;

/// Seqno head-room journaled above the last used value. A restarted
/// client resumes at the journaled high-water mark; the slack means one
/// journal write covers the next `SEQ_HWM_SLACK` authentications instead
/// of one synchronous disk write per signed seqno.
const SEQ_HWM_SLACK: u32 = 64;

/// Default pipeline window: sealed calls allowed in flight per channel.
pub const DEFAULT_PIPELINE_WINDOW: usize = 8;

/// Block size used by streaming reads and write-behind chunking.
const STREAM_CHUNK: usize = 32_768;

/// A sequential run at least this long promotes a file to a read-ahead
/// stream (two adjacent reads establish the access pattern).
const READ_AHEAD_TRIGGER: u32 = 2;

/// Client-side reply reorder buffer capacity (frames parked waiting for
/// a cipher-order gap to fill). Must exceed any usable window.
const REORDER_BUF_CAPACITY: usize = 64;

/// Agent control-socket reply status: success.
pub const AGENT_OK: u32 = 0;
/// Agent control-socket reply status: recognised command, malformed
/// arguments. Followed by the echoed command code and a message.
pub const AGENT_ERR_BAD_ARGS: u32 = 1;
/// Agent control-socket reply status: unknown command. Followed by the
/// echoed command code (`u32::MAX` when the header itself was
/// unreadable) and a message.
pub const AGENT_ERR_UNKNOWN_CMD: u32 = 2;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Not a valid (self-certifying) pathname.
    Path(PathError),
    /// No server answers at this Location.
    NoSuchHost(String),
    /// Network failure/timeout.
    Net(WireError),
    /// Secure-channel failure (tampering detected).
    Channel(ChannelError),
    /// Key negotiation failed (wrong key, revoked, …).
    KeyNeg(String),
    /// The server's claimed key does not hash to the pathname's HostID —
    /// self-certification failed. Retried like other negotiation errors
    /// (one corrupted hello reply must not hard-fail a mount), but a
    /// *persistent* mismatch across the retry budget means the key
    /// really was swapped.
    KeyMismatch,
    /// The pathname is revoked.
    Revoked,
    /// The user's agent has blocked this HostID.
    Blocked,
    /// The routing tier refused the dial under admission control (a
    /// cold-start reconnect storm is being metered). Transient by
    /// definition: retried with the normal reconnect backoff.
    Busy,
    /// NFS-level error.
    Nfs(Status),
    /// Too many levels of symbolic links.
    SymlinkLoop,
    /// Unexpected protocol reply.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Path(e) => write!(f, "bad pathname: {e}"),
            ClientError::NoSuchHost(l) => write!(f, "no SFS server at {l}"),
            ClientError::Net(e) => write!(f, "network: {e}"),
            ClientError::Channel(e) => write!(f, "secure channel: {e}"),
            ClientError::KeyNeg(e) => write!(f, "key negotiation: {e}"),
            ClientError::KeyMismatch => {
                write!(f, "server key fails self-certification (HostID mismatch)")
            }
            ClientError::Revoked => write!(f, "pathname revoked"),
            ClientError::Blocked => write!(f, "HostID blocked by agent"),
            ClientError::Busy => write!(f, "server busy: dial throttled by admission control"),
            ClientError::Nfs(s) => write!(f, "file system error: {s:?}"),
            ClientError::SymlinkLoop => write!(f, "too many symbolic links"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<PathError> for ClientError {
    fn from(e: PathError) -> Self {
        ClientError::Path(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Net(e)
    }
}

impl From<ChannelError> for ClientError {
    fn from(e: ChannelError) -> Self {
        ClientError::Channel(e)
    }
}

/// One routed read-write connection handed out by a [`Router`].
pub struct RoutedRw {
    /// The server-side connection to the chosen replica.
    pub conn: ServerConn,
    /// The chosen machine's contention tracker, attached to the client's
    /// wire so concurrent streams share that machine's resources.
    pub load: Option<ServerLoad>,
}

/// One routed read-only connection handed out by a [`Router`].
pub struct RoutedRo {
    /// The server-side connection to the chosen replica (a full server
    /// or a keyless one).
    pub conn: Box<dyn RoConnection>,
    /// The chosen machine's contention tracker.
    pub load: Option<ServerLoad>,
}

/// Outcome of a metered read-write routing decision.
pub enum RwRoute {
    /// A replica was chosen; proceed with the handshake.
    Routed(RoutedRw),
    /// The group is alive but admission control is metering reconnects;
    /// back off and redial.
    Busy,
    /// No live replica can take the connection.
    Unavailable,
}

/// A routing tier fronting a replica group for one `Location:HostID`.
///
/// The network consults it on every dial, which is the single seam the
/// client's recovery machinery already funnels through: a reconnect after
/// a crash redials, so the router can hand the session to a surviving
/// replica and the rekey makes the handoff invisible above the mount.
pub trait Router: Send + Sync {
    /// Picks a live read-write replica for a new connection.
    fn route_rw(&self) -> Option<RoutedRw>;
    /// Picks a replica able to serve the read-only dialect.
    fn route_ro(&self) -> Option<RoutedRo>;
    /// [`Self::route_rw`] with admission control surfaced: routers that
    /// meter cold-start stampedes return [`RwRoute::Busy`] instead of
    /// conflating "throttled" with "nobody home". The default adapter
    /// keeps plain routers working unchanged.
    fn route_rw_metered(&self) -> RwRoute {
        match self.route_rw() {
            Some(r) => RwRoute::Routed(r),
            None => RwRoute::Unavailable,
        }
    }
}

/// What a Location resolves to: a single machine, or a routing tier
/// fronting many.
#[derive(Clone)]
enum Endpoint {
    Server(Arc<SfsServer>),
    Relay(Arc<dyn Router>),
}

/// The simulated internet: Location → endpoint, with per-link parameters
/// and optional adversary hooks (applied to newly dialed connections).
pub struct SfsNetwork {
    clock: SimClock,
    params: NetParams,
    servers: Mutex<HashMap<String, Endpoint>>,
    interceptor: Mutex<Option<Arc<Mutex<dyn Interceptor>>>>,
    fault: Mutex<Option<FaultPlan>>,
    log: Mutex<Option<PacketLog>>,
    tel: Mutex<Telemetry>,
}

impl SfsNetwork {
    /// Creates a network.
    pub fn new(clock: SimClock, params: NetParams) -> Arc<Self> {
        Arc::new(SfsNetwork {
            clock,
            params,
            servers: Mutex::new(HashMap::new()),
            interceptor: Mutex::new(None),
            fault: Mutex::new(None),
            log: Mutex::new(None),
            tel: Mutex::new(Telemetry::disabled()),
        })
    }

    /// Attaches a tracing sink to all future connections (the wire layer
    /// of every subsequently dialed mount reports into it).
    pub fn set_telemetry(&self, tel: &Telemetry) {
        *self.tel.lock() = tel.clone();
    }

    /// Registers a server under its Location.
    pub fn register(&self, server: Arc<SfsServer>) {
        self.servers
            .lock()
            .insert(server.path().location.clone(), Endpoint::Server(server));
    }

    /// Registers a routing tier under a Location: dials resolve through
    /// the router instead of a fixed machine.
    pub fn register_relay(&self, location: &str, router: Arc<dyn Router>) {
        self.servers
            .lock()
            .insert(location.to_string(), Endpoint::Relay(router));
    }

    /// Looks up the server at `location` (single-machine endpoints only;
    /// a relayed Location has no one server to return).
    pub fn server_at(&self, location: &str) -> Option<Arc<SfsServer>> {
        match self.servers.lock().get(location) {
            Some(Endpoint::Server(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// Attaches an adversary to all future connections.
    pub fn set_interceptor(&self, i: Arc<Mutex<dyn Interceptor>>) {
        *self.interceptor.lock() = Some(i);
    }

    /// Attaches a seeded fault plan to all future connections.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.fault.lock() = Some(plan);
    }

    /// Attaches a packet recorder to all future connections.
    pub fn set_log(&self, log: PacketLog) {
        *self.log.lock() = Some(log);
    }

    /// A fresh wire carrying this network's adversary hooks and sink.
    fn fresh_wire(&self) -> Wire {
        let mut wire = Wire::new(self.clock.clone(), self.params);
        if let Some(i) = &*self.interceptor.lock() {
            wire.set_interceptor(i.clone());
        }
        if let Some(f) = &*self.fault.lock() {
            wire.set_fault_plan(f.clone());
        }
        if let Some(l) = &*self.log.lock() {
            wire.set_log(l.clone());
        }
        wire.set_telemetry(&self.tel.lock().clone());
        wire
    }

    /// Dials a location: a fresh wire plus a fresh server-side connection.
    /// Behind a relay, each dial is routed anew — which is exactly how a
    /// reconnecting client lands on a surviving replica.
    pub fn dial(&self, location: &str) -> Option<(Wire, ServerConn)> {
        self.dial_checked(location).ok()
    }

    /// [`Self::dial`] distinguishing *why* a dial yielded no connection:
    /// an unknown/empty Location is [`ClientError::NoSuchHost`] (fatal to
    /// the caller's retry loop), while a router metering a reconnect
    /// storm is [`ClientError::Busy`] (retried with backoff).
    pub fn dial_checked(&self, location: &str) -> Result<(Wire, ServerConn), ClientError> {
        let endpoint = self
            .servers
            .lock()
            .get(location)
            .cloned()
            .ok_or_else(|| ClientError::NoSuchHost(location.to_string()))?;
        let (conn, load) = match endpoint {
            Endpoint::Server(s) => (s.accept(), None),
            Endpoint::Relay(r) => match r.route_rw_metered() {
                RwRoute::Routed(routed) => (routed.conn, routed.load),
                RwRoute::Busy => return Err(ClientError::Busy),
                RwRoute::Unavailable => return Err(ClientError::NoSuchHost(location.to_string())),
            },
        };
        let mut wire = self.fresh_wire();
        if let Some(load) = load {
            wire.set_server_load(load);
        }
        Ok((wire, conn))
    }

    /// Dials a location for the read-only dialect. Behind a relay this
    /// reaches the keyless replica fleet; a single-machine endpoint
    /// serves the dialect itself.
    pub fn dial_ro(&self, location: &str) -> Option<(Wire, Box<dyn RoConnection>)> {
        let endpoint = self.servers.lock().get(location).cloned()?;
        let (conn, load): (Box<dyn RoConnection>, Option<ServerLoad>) = match endpoint {
            Endpoint::Server(s) => (Box::new(s.accept()), None),
            Endpoint::Relay(r) => {
                let routed = r.route_ro()?;
                (routed.conn, routed.load)
            }
        };
        let mut wire = self.fresh_wire();
        if let Some(load) = load {
            wire.set_server_load(load);
        }
        Some((wire, conn))
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

impl std::fmt::Debug for SfsNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SfsNetwork({} servers)", self.servers.lock().len())
    }
}

#[derive(Clone)]
struct CachedAttr {
    attr: Fattr3,
    expires: SimTime,
}

/// Per-file sequential-stream detector plus read-ahead buffer. A run of
/// adjacent reads turns the file into a stream: the client batches a
/// whole window of READs, serves the first, and parks the rest here for
/// the accesses it predicts are coming.
struct StreamState {
    /// Where the next sequential read is expected to land.
    next_offset: u64,
    /// Consecutive sequential reads observed so far.
    run: u32,
    /// Prefetched blocks by offset, with the server's eof flag.
    prefetch: BTreeMap<u64, (Vec<u8>, bool)>,
}

/// One negotiated connection to a server: the wire, the server-side
/// connection object, the secure channel, and that session's identity.
/// Replaced wholesale when the client reconnects after a channel death
/// or server restart.
struct Link {
    wire: Wire,
    conn: ServerConn,
    channel: SecureChannelEnd,
    /// Buffer freelist shared with `conn` (the loopback server end), so
    /// sealed request/reply buffers circulate between the two sides.
    pool: Arc<BufPool>,
    session_id: [u8; 20],
    /// The server public key that passed self-certification for this
    /// link (journaled with the mount so recovery can cross-check).
    server_key: Vec<u8>,
    /// Bumped on every reconnect; lets concurrent callers detect that a
    /// renegotiation already happened.
    generation: u64,
}

/// Client-held half of a session-resumption ticket: the server's opaque
/// sealed blob plus the resumption secret it certifies (derived from the
/// session that minted it — the client cannot read the blob itself) and
/// the cipher suite that session negotiated. Single-use: taken from the
/// cache on a resume attempt, replaced by the rotated ticket on success.
struct ResumeState {
    ticket: Vec<u8>,
    secret: [u8; DIGEST_LEN],
    suite: SuiteId,
}

/// One mounted remote file system.
pub struct Mount {
    /// The self-certifying pathname this mount serves.
    pub path: SelfCertifyingPath,
    link: Mutex<Link>,
    root_fh: Mutex<FileHandle>,
    /// Per-uid authentication numbers (valid for the current link only).
    authnos: Mutex<HashMap<u32, u32>>,
    /// Monotonic across reconnects: the server's fresh seqno window
    /// accepts any forward jump, and never reusing a seqno keeps the
    /// §3.1.3 freshness guarantee intact through renegotiations.
    next_seq: AtomicU32,
    /// Journaled seqno ceiling: every seqno below it is covered by a
    /// durable [`JournalRecord::SeqHwm`], so a restarted client resuming
    /// at the mark can never reuse one.
    seq_hwm: AtomicU32,
    attr_cache: Mutex<HashMap<Vec<u8>, CachedAttr>>,
    access_cache: Mutex<HashMap<AccessKey, CachedAttr>>,
    /// Round trips accumulated on wires discarded by reconnects.
    prior_round_trips: AtomicU64,
    reconnects: AtomicU64,
    /// Read-ahead state per file handle (bytes).
    streams: Mutex<HashMap<Vec<u8>, StreamState>>,
    /// Write-behind queue: writes accepted locally but not yet issued,
    /// flushed as one pipelined window at the next barrier.
    wb_queue: Mutex<Vec<(u32, Nfs3Request)>>,
}

/// Access-cache key: (file handle bytes, uid, requested mask).
type AccessKey = (Vec<u8>, u32, u32);

impl Mount {
    /// The root file handle.
    pub fn root(&self) -> FileHandle {
        self.root_fh.lock().clone()
    }

    /// Network round trips taken through this mount (across all
    /// connections, including ones torn down by reconnects).
    pub fn round_trips(&self) -> u64 {
        self.prior_round_trips.load(Ordering::SeqCst) + self.link.lock().wire.round_trips()
    }

    /// The current session ID (changes on every rekey).
    pub fn session_id(&self) -> [u8; 20] {
        self.link.lock().session_id
    }

    /// The next authentication seqno this mount will sign. Monotone
    /// across reconnects and failovers by construction; exposed so tests
    /// can assert it never moves backwards.
    pub fn seqno(&self) -> u32 {
        self.next_seq.load(Ordering::SeqCst)
    }

    /// How many times this mount has reconnected and renegotiated keys.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::SeqCst)
    }

    /// The next authentication seqno this mount will use. Strictly
    /// monotonic across reconnects *and* — via the journal — across
    /// client crash-restarts.
    pub fn seq_watermark(&self) -> u32 {
        self.next_seq.load(Ordering::SeqCst)
    }

    fn generation(&self) -> u64 {
        self.link.lock().generation
    }

    /// Replaces the live link with `link`, folding the retired wire's
    /// round-trip count into the running total. This is the *only* place
    /// that touches `prior_round_trips`, so an aborted exchange whose
    /// wire is torn down mid-window is counted exactly once.
    fn install_link(&self, guard: &mut Link, link: Link) {
        self.prior_round_trips
            .fetch_add(guard.wire.round_trips(), Ordering::SeqCst);
        *guard = link;
    }
}

impl std::fmt::Debug for Mount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Mount({})", self.path.dir_name())
    }
}

/// How the client paces retransmissions and reconnects (all in virtual
/// time). Retransmission resends the *identical* sealed frame — the
/// ARC4 streams mean a fresh seal would never line up with the server's
/// cipher position — so only request-direction losses are recoverable
/// in place; anything that desynchronises the streams escalates to a
/// full reconnect with key renegotiation.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Identical-frame retransmissions per RPC before escalating to a
    /// reconnect.
    pub max_retransmits: u32,
    /// Reconnect-and-reissue rounds per RPC before giving up.
    pub max_reconnects: u32,
    /// First backoff, ns (doubles per attempt).
    pub base_backoff_ns: u64,
    /// Backoff ceiling, ns.
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retransmits: 5,
            max_reconnects: 8,
            base_backoff_ns: 100_000_000,
            max_backoff_ns: 10_000_000_000,
        }
    }
}

/// What [`SfsClient::recover`] restored from the journal after a
/// crash-restart.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Raw journal records replayed (before folding).
    pub records_replayed: u64,
    /// Mount directory names successfully re-established (server key
    /// re-verified against the journaled HostID).
    pub remounted: Vec<String>,
    /// Mounts refused, with the reason. Self-certification is the
    /// recovery check: a HostID whose server no longer proves the
    /// journaled identity stays unmounted.
    pub refused: Vec<(String, String)>,
    /// How many refusals were specifically key-mismatch refusals.
    pub key_mismatch_refusals: u64,
    /// Agent private keys reinstalled from the journal.
    pub agent_keys_restored: u64,
    /// Agent dynamic links recreated from the journal.
    pub agent_links_restored: u64,
}

/// The SFS client (one per client machine).
pub struct SfsClient {
    clock: SimClock,
    net: Arc<SfsNetwork>,
    cpu: Option<CpuCosts>,
    ephemeral: Mutex<RabinPrivateKey>,
    rng: Mutex<SfsPrg>,
    retry: Mutex<RetryPolicy>,
    /// xorshift64* state for deterministic backoff jitter (seeded from
    /// the client's entropy, independent of the crypto generator so
    /// retry timing never perturbs key material).
    jitter: AtomicU64,
    agents: Mutex<HashMap<u32, Arc<Mutex<Agent>>>>,
    mounts: Mutex<HashMap<String, Arc<Mount>>>,
    /// Which self-certifying names each agent (uid) has referenced — the
    /// `/sfs` listing filter of §2.3.
    referenced: Mutex<HashMap<u32, BTreeSet<String>>>,
    caching: AtomicBool,
    charge_crypto: AtomicBool,
    /// How many sealed calls may be in flight at once on a mount's
    /// channel. 1 degenerates to the blocking request/reply protocol.
    pipeline_window: AtomicUsize,
    attr_hits: AtomicU64,
    attr_misses: AtomicU64,
    /// Cipher suites offered in every hello, in preference order. The
    /// default offers only the paper's ARC4+SHA-1 baseline, keeping the
    /// handshake byte-identical to the original protocol.
    suite_offer: Mutex<Vec<SuiteId>>,
    /// Whether reconnects may shortcut the handshake with a resumption
    /// ticket. Off forces the full Figure-3 negotiation every time (the
    /// benchmark control arm).
    resumption: AtomicBool,
    /// Live resumption tickets, one per server HostID.
    tickets: Mutex<HashMap<HostId, ResumeState>>,
    resume_hits: AtomicU64,
    resume_misses: AtomicU64,
    resume_rejected: AtomicU64,
    /// Crash-surviving state journal (None: diskless client, nothing
    /// persisted — the paper's original behaviour).
    journal: Mutex<Option<ClientJournal>>,
    /// Test hook: when set, piggybacked invalidations are dropped on the
    /// floor instead of applied. Exists so the coherence oracle can prove
    /// it detects the stale reads this bug causes.
    ignore_invalidations: AtomicBool,
    tel: Mutex<Telemetry>,
}

impl SfsClient {
    /// Creates a client on `net`, seeding its generator and ephemeral key
    /// from `entropy`.
    pub fn new(net: Arc<SfsNetwork>, entropy: &[u8]) -> Arc<Self> {
        let mut rng = SfsPrg::from_entropy(entropy);
        let ephemeral = generate_keypair(EPHEMERAL_KEY_BITS, &mut rng);
        Self::with_ephemeral_rng(net, entropy, ephemeral, rng)
    }

    /// Creates a client with a caller-supplied ephemeral key (tests use a
    /// precomputed key to skip the prime search; the code paths exercised
    /// afterwards are identical).
    pub fn with_ephemeral(
        net: Arc<SfsNetwork>,
        entropy: &[u8],
        ephemeral: RabinPrivateKey,
    ) -> Arc<Self> {
        let rng = SfsPrg::from_entropy(entropy);
        Self::with_ephemeral_rng(net, entropy, ephemeral, rng)
    }

    fn with_ephemeral_rng(
        net: Arc<SfsNetwork>,
        entropy: &[u8],
        ephemeral: RabinPrivateKey,
        rng: SfsPrg,
    ) -> Arc<Self> {
        // Fold the entropy into a nonzero jitter seed.
        let seed = entropy.iter().fold(0x9E37_79B9u64, |acc, &b| {
            acc.rotate_left(8) ^ u64::from(b).wrapping_mul(0x100_0193)
        }) | 1;
        Arc::new(SfsClient {
            clock: net.clock().clone(),
            net,
            cpu: None,
            ephemeral: Mutex::new(ephemeral),
            rng: Mutex::new(rng),
            retry: Mutex::new(RetryPolicy::default()),
            jitter: AtomicU64::new(seed),
            agents: Mutex::new(HashMap::new()),
            mounts: Mutex::new(HashMap::new()),
            referenced: Mutex::new(HashMap::new()),
            caching: AtomicBool::new(true),
            charge_crypto: AtomicBool::new(true),
            pipeline_window: AtomicUsize::new(DEFAULT_PIPELINE_WINDOW),
            attr_hits: AtomicU64::new(0),
            attr_misses: AtomicU64::new(0),
            suite_offer: Mutex::new(vec![SuiteId::Arc4Sha1]),
            resumption: AtomicBool::new(true),
            tickets: Mutex::new(HashMap::new()),
            resume_hits: AtomicU64::new(0),
            resume_misses: AtomicU64::new(0),
            resume_rejected: AtomicU64::new(0),
            journal: Mutex::new(None),
            ignore_invalidations: AtomicBool::new(false),
            tel: Mutex::new(Telemetry::disabled()),
        })
    }

    /// Attaches a tracing sink: client-side spans (mounts, key
    /// negotiation, sealed calls), cache counters, and CPU-charge
    /// counters report into it, stamped with the client's virtual clock.
    /// Also propagates to the network so newly dialed wires trace.
    pub fn set_telemetry(&self, tel: &Telemetry) {
        *self.tel.lock() = tel.clone().with_clock(self.clock.clone());
        self.net.set_telemetry(tel);
    }

    fn tel(&self) -> Telemetry {
        self.tel.lock().clone()
    }

    /// Creates a client that charges CPU costs to the virtual clock (the
    /// benchmark configuration).
    pub fn with_costs(net: Arc<SfsNetwork>, entropy: &[u8], cpu: CpuCosts) -> Arc<Self> {
        let client = Self::new(net, entropy);
        // Safe: sole owner at this point.
        let mut c = Arc::try_unwrap(client).unwrap_or_else(|_| unreachable!("sole owner"));
        c.cpu = Some(cpu);
        Arc::new(c)
    }

    /// Replaces the retransmission/reconnect pacing policy.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// Sets the cipher suites offered in hellos, in preference order.
    /// The paper-parity baseline (ARC4+SHA-1) is always offered last
    /// even if absent from `suites`, so negotiation cannot dead-end.
    pub fn set_suite_offer(&self, suites: &[SuiteId]) {
        let mut offer = suites.to_vec();
        if !offer.contains(&SuiteId::Arc4Sha1) {
            offer.push(SuiteId::Arc4Sha1);
        }
        *self.suite_offer.lock() = offer;
    }

    /// Enables or disables ticket resumption on reconnect. Disabled,
    /// every reconnect pays the full Figure-3 handshake (two round trips
    /// plus a Rabin decryption on the server).
    pub fn set_resumption(&self, on: bool) {
        self.resumption.store(on, Ordering::SeqCst);
    }

    /// Resumption outcomes so far: `(hits, misses, rejected)` — resumes
    /// that succeeded, reconnects with no ticket in hand, and tickets
    /// the server turned down (each of those fell back to a full
    /// handshake).
    pub fn resume_stats(&self) -> (u64, u64, u64) {
        (
            self.resume_hits.load(Ordering::SeqCst),
            self.resume_misses.load(Ordering::SeqCst),
            self.resume_rejected.load(Ordering::SeqCst),
        )
    }

    fn retry_policy(&self) -> RetryPolicy {
        *self.retry.lock()
    }

    /// Waits out one exponential-backoff interval with ±25% deterministic
    /// jitter, charged to the virtual clock.
    fn backoff(&self, attempt: u32) {
        let policy = self.retry_policy();
        let exp = policy
            .base_backoff_ns
            .saturating_mul(1u64 << attempt.min(16))
            .min(policy.max_backoff_ns);
        let spread = exp / 4;
        // xorshift64* step on the shared jitter state.
        let mut x = self.jitter.load(Ordering::SeqCst);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter.store(x, Ordering::SeqCst);
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let ns = exp - spread + r % (2 * spread + 1).max(1);
        let tel = self.tel();
        tel.count("client", "retry.backoffs", 1);
        tel.instant_kv("client", "core.client", "backoff", "ns", ns);
        self.clock.advance_ns(ns);
    }

    /// Enables or disables the enhanced attribute/access caching (the
    /// §4.3 ablation: "without enhanced caching, MAB takes a total of 6.6
    /// seconds").
    pub fn set_caching(&self, on: bool) {
        self.caching.store(on, Ordering::SeqCst);
    }

    /// Enables or disables charging software-encryption CPU cost (the
    /// "SFS w/o encryption" rows of Figures 5–9). The cryptography still
    /// runs — only its simulated cost toggles.
    pub fn set_charge_crypto(&self, on: bool) {
        self.charge_crypto.store(on, Ordering::SeqCst);
    }

    /// Sets the pipeline window: how many sealed calls may be in flight
    /// on a channel at once. "Multiple outstanding requests can overlap
    /// the latency of NFS RPCs" (§4.2) — read-ahead, write-behind, and
    /// batched calls all issue up to this many frames before waiting.
    /// 1 restores the strict blocking request/reply protocol.
    pub fn set_pipeline_window(&self, window: usize) {
        self.pipeline_window.store(window.max(1), Ordering::SeqCst);
    }

    /// The current pipeline window.
    pub fn pipeline_window(&self) -> usize {
        self.pipeline_window.load(Ordering::SeqCst).max(1)
    }

    /// (attribute-cache hits, misses) so far.
    pub fn attr_cache_stats(&self) -> (u64, u64) {
        (
            self.attr_hits.load(Ordering::SeqCst),
            self.attr_misses.load(Ordering::SeqCst),
        )
    }

    /// Total network round trips across all mounts.
    pub fn network_rpcs(&self) -> u64 {
        self.mounts.lock().values().map(|m| m.round_trips()).sum()
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Returns (creating if necessary) the agent for `uid`. "Every user on
    /// an SFS client runs an unprivileged agent program of his choice."
    pub fn agent(&self, uid: u32) -> Arc<Mutex<Agent>> {
        self.agents
            .lock()
            .entry(uid)
            .or_insert_with(|| Arc::new(Mutex::new(Agent::new())))
            .clone()
    }

    /// Installs a caller-built agent for `uid` ("users can replace their
    /// agents at will").
    pub fn set_agent(&self, uid: u32, agent: Arc<Mutex<Agent>>) {
        self.agents.lock().insert(uid, agent);
    }

    /// The `ssu` utility (§2.3 footnote): maps operations performed in a
    /// super-user shell (uid 0) to `user`'s own agent, so `su` does not
    /// orphan the session from its keys.
    pub fn ssu(&self, user: u32) {
        let agent = self.agent(user);
        self.agents.lock().insert(0, agent);
    }

    /// The client master's protected local socket (§3.2): agent programs
    /// connect through the `suidconnect` equivalent, which attests the
    /// caller's uid. Each request operates on *that* uid's agent state —
    /// "the agent program connects to the client master through this
    /// mechanism, and thus needs no special privileges; users can replace
    /// it at will."
    ///
    /// Wire format (XDR): command 0 = create link (name, target);
    /// command 1 = list this agent's `/sfs` view. Replies are XDR too:
    /// [`AGENT_OK`] followed by the result, or an error status
    /// ([`AGENT_ERR_BAD_ARGS`] / [`AGENT_ERR_UNKNOWN_CMD`]) followed by
    /// the echoed command code (`u32::MAX` when the header itself was
    /// unreadable) and a human-readable message — a structured code a
    /// replacement agent can dispatch on, not just a string.
    pub fn agent_socket(self: &Arc<Self>) -> LocalEndpoint {
        struct Handler {
            client: Arc<SfsClient>,
        }
        fn agent_error(status: u32, cmd: u32, msg: &str) -> Vec<u8> {
            let mut enc = sfs_xdr::XdrEncoder::new();
            enc.put_u32(status).put_u32(cmd).put_string(msg);
            enc.into_bytes()
        }
        impl LocalHandler for Handler {
            fn handle(&mut self, from: LocalIdentity, payload: &[u8]) -> Vec<u8> {
                let mut dec = sfs_xdr::XdrDecoder::new(payload);
                let mut enc = sfs_xdr::XdrEncoder::new();
                match dec.get_u32() {
                    Ok(0) => {
                        let (name, target) = match (dec.get_string(), dec.get_string()) {
                            (Ok(n), Ok(t)) => (n, t),
                            _ => return agent_error(AGENT_ERR_BAD_ARGS, 0, "bad link request"),
                        };
                        self.client.create_agent_link(from.uid(), &name, &target);
                        enc.put_u32(AGENT_OK);
                    }
                    Ok(1) => {
                        let names = self.client.list_sfs(from.uid());
                        enc.put_u32(AGENT_OK);
                        enc.put_u32(names.len() as u32);
                        for n in &names {
                            enc.put_string(n);
                        }
                    }
                    Ok(cmd) => {
                        return agent_error(AGENT_ERR_UNKNOWN_CMD, cmd, "unknown agent command");
                    }
                    Err(_) => {
                        return agent_error(
                            AGENT_ERR_UNKNOWN_CMD,
                            u32::MAX,
                            "unreadable command header",
                        );
                    }
                }
                enc.into_bytes()
            }
        }
        LocalEndpoint::new(Arc::new(Mutex::new(Handler {
            client: self.clone(),
        })))
    }

    /// Discards and regenerates the ephemeral key K_C ("clients discard
    /// and regenerate K_C at regular intervals (every hour by default)").
    /// Existing sessions are unaffected; new mounts use the fresh key.
    pub fn rotate_ephemeral(&self) {
        let mut rng = self.rng.lock();
        let fresh = generate_keypair(EPHEMERAL_KEY_BITS, &mut *rng);
        *self.ephemeral.lock() = fresh;
    }

    /// Drops all mounts (used by tests simulating reconnects).
    pub fn unmount_all(&self) {
        self.mounts.lock().clear();
    }

    /// Mounts a file system via the read-only dialect (§2.4): the server
    /// proves contents with precomputed signatures, so this works against
    /// untrusted replicas and costs the server no private-key operations.
    pub fn mount_read_only(
        &self,
        path: &SelfCertifyingPath,
    ) -> Result<crate::roclient::RoMount, ClientError> {
        // A routed dial may land on a down replica; retry a few times so
        // the router can work through the group before we give up.
        let mut last = ClientError::NoSuchHost(path.location.clone());
        for _ in 0..4 {
            let Some((wire, conn)) = self.net.dial_ro(&path.location) else {
                return Err(ClientError::NoSuchHost(path.location.clone()));
            };
            match crate::roclient::RoMount::connect(path.clone(), wire, conn) {
                Ok(mount) => {
                    let net = self.net.clone();
                    let location = path.location.clone();
                    mount.set_redial(Box::new(move || net.dial_ro(&location)));
                    return Ok(mount);
                }
                Err(e) => last = ClientError::Protocol(e.to_string()),
            }
        }
        Err(last)
    }

    /// Drops one cached mount and establishes a fresh connection (the
    /// recovery path after a poisoned channel: tampering aborts a session,
    /// and a new key negotiation starts over).
    pub fn remount(&self, uid: u32, path: &SelfCertifyingPath) -> Result<Arc<Mount>, ClientError> {
        self.mounts.lock().remove(&path.dir_name());
        self.mount(uid, path)
    }

    /// Appends a record if a journal is attached (diskless clients
    /// journal nothing).
    fn journal_record(&self, rec: &JournalRecord) {
        if let Some(j) = &*self.journal.lock() {
            j.append(rec);
        }
    }

    /// Journals a seqno high-water mark *before* `seq` is used, whenever
    /// `seq` crosses the durable ceiling. The [`SEQ_HWM_SLACK`] head-room
    /// amortizes the synchronous write over many authentications.
    fn note_seq(&self, mount: &Mount, seq: u32) {
        if self.journal.lock().is_none() {
            return;
        }
        if seq >= mount.seq_hwm.load(Ordering::SeqCst) {
            let hwm = seq.saturating_add(SEQ_HWM_SLACK);
            self.journal_record(&JournalRecord::SeqHwm {
                dir_name: mount.path.dir_name(),
                hwm,
            });
            mount.seq_hwm.store(hwm, Ordering::SeqCst);
        }
    }

    /// Attaches a crash-surviving state journal. Current state — agent
    /// keys and links, established mounts, seqno watermarks — is
    /// snapshotted into it immediately (in deterministic uid/dir-name
    /// order), so attaching mid-life loses nothing; subsequent mounts,
    /// key installs, link creations, and seqno crossings append
    /// incrementally.
    pub fn attach_journal(&self, journal: ClientJournal) {
        {
            let agents = self.agents.lock();
            let mut uids: Vec<u32> = agents.keys().copied().collect();
            uids.sort_unstable();
            for uid in uids {
                let agent = agents[&uid].lock();
                for key in agent.export_keys() {
                    journal.append(&JournalRecord::AgentKey { uid, key });
                }
                let mut links: Vec<(String, String)> = agent
                    .links()
                    .map(|(n, t)| (n.to_string(), t.to_string()))
                    .collect();
                links.sort();
                for (name, target) in links {
                    journal.append(&JournalRecord::AgentLink { uid, name, target });
                }
            }
        }
        {
            let mounts = self.mounts.lock();
            let mut names: Vec<String> = mounts.keys().cloned().collect();
            names.sort();
            for name in names {
                let m = &mounts[&name];
                journal.append(&JournalRecord::Mount {
                    location: m.path.location.clone(),
                    host_id: m.path.host_id,
                    server_key: m.link.lock().server_key.clone(),
                });
                let hwm = m
                    .next_seq
                    .load(Ordering::SeqCst)
                    .saturating_add(SEQ_HWM_SLACK);
                journal.append(&JournalRecord::SeqHwm {
                    dir_name: name,
                    hwm,
                });
                m.seq_hwm.store(hwm, Ordering::SeqCst);
            }
        }
        *self.journal.lock() = Some(journal);
    }

    /// Installs a private key into `uid`'s agent *and* journals it, so a
    /// restarted client restores the key without re-running SRP.
    pub fn install_agent_key(&self, uid: u32, key: RabinPrivateKey) {
        self.journal_record(&JournalRecord::AgentKey {
            uid,
            key: key.to_bytes(),
        });
        self.agent(uid).lock().add_key(key);
    }

    /// Creates a dynamic `/sfs` link in `uid`'s agent and journals it.
    pub fn create_agent_link(&self, uid: u32, name: &str, target: &str) {
        self.journal_record(&JournalRecord::AgentLink {
            uid,
            name: name.to_string(),
            target: target.to_string(),
        });
        self.agent(uid).lock().create_link(name, target);
    }

    /// Test hook for the coherence oracle's self-test: drop piggybacked
    /// invalidations instead of applying them, simulating the stale-read
    /// bug the oracle must be able to detect.
    #[doc(hidden)]
    pub fn set_ignore_invalidations(&self, ignore: bool) {
        self.ignore_invalidations.store(ignore, Ordering::SeqCst);
    }

    /// Recovers client state after a crash-restart from the attached
    /// journal: restores agent keys and links first (remounts may need
    /// them), then re-establishes each journaled mount by re-running the
    /// full key negotiation against the recorded HostID. Mounts whose
    /// server no longer proves the journaled identity are refused —
    /// self-certification, not the journal, is the trust decision. Seqno
    /// counters resume at the journaled high-water mark so no signed
    /// seqno is ever reused; caches start cold by construction (nothing
    /// lease-related is journaled).
    pub fn recover(&self, uid: u32) -> Result<RecoveryReport, ClientError> {
        let tel = self.tel();
        let _span = tel.span("client", "core.client", "recover");
        let journal = self.journal.lock().clone();
        let Some(journal) = journal else {
            return Err(ClientError::Protocol("recover: no journal attached".into()));
        };
        let state = journal.replay().map_err(ClientError::Protocol)?;
        tel.count("client", "client.recovery.journal_replays", 1);
        let mut report = RecoveryReport {
            records_replayed: state.records,
            ..RecoveryReport::default()
        };
        // Agent state first: the remounts below may need the restored
        // keys to re-authenticate.
        for (agent_uid, keys) in &state.agent_keys {
            let agent = self.agent(*agent_uid);
            let mut agent = agent.lock();
            for key in keys {
                if let Ok(k) = RabinPrivateKey::from_bytes(key) {
                    agent.add_key(k);
                    report.agent_keys_restored += 1;
                }
            }
        }
        for (agent_uid, links) in &state.agent_links {
            let agent = self.agent(*agent_uid);
            let mut agent = agent.lock();
            for (name, target) in links {
                agent.create_link(name, target);
                report.agent_links_restored += 1;
            }
        }
        tel.count(
            "client",
            "client.recovery.agent_keys",
            report.agent_keys_restored,
        );
        tel.count(
            "client",
            "client.recovery.agent_links",
            report.agent_links_restored,
        );
        for rm in &state.mounts {
            let path = SelfCertifyingPath {
                location: rm.location.clone(),
                host_id: rm.host_id,
            };
            // A journal whose recorded key does not even hash to its own
            // recorded HostID is corrupt: fail closed without dialing.
            let journal_consistent = RabinPublicKey::from_bytes(&rm.server_key)
                .map(|k| path.certifies(&k))
                .unwrap_or(false);
            if !journal_consistent {
                report.key_mismatch_refusals += 1;
                report.refused.push((
                    path.dir_name(),
                    "journaled key fails self-certification".to_string(),
                ));
                continue;
            }
            match self.mount(uid, &path) {
                Ok(mount) => {
                    if let Some(&hwm) = state.seq_hwm.get(&path.dir_name()) {
                        mount.next_seq.store(hwm.max(1), Ordering::SeqCst);
                        mount.seq_hwm.store(hwm, Ordering::SeqCst);
                    }
                    report.remounted.push(path.dir_name());
                }
                Err(ClientError::KeyMismatch) => {
                    report.key_mismatch_refusals += 1;
                    report
                        .refused
                        .push((path.dir_name(), ClientError::KeyMismatch.to_string()));
                }
                Err(e @ (ClientError::Revoked | ClientError::Blocked)) => {
                    report.refused.push((path.dir_name(), e.to_string()));
                }
                Err(e) => return Err(e),
            }
        }
        tel.count(
            "client",
            "client.recovery.remounts",
            report.remounted.len() as u64,
        );
        tel.count(
            "client",
            "client.recovery.key_mismatch_refusals",
            report.key_mismatch_refusals,
        );
        Ok(report)
    }

    fn charge_crossing(&self) {
        if let Some(cpu) = &self.cpu {
            self.tel.lock().count("client", "cpu.crossings", 1);
            cpu.charge_user_crossing(&self.clock);
        }
    }

    fn charge_user_copy(&self, len: usize) {
        if let Some(cpu) = &self.cpu {
            self.tel
                .lock()
                .count("client", "cpu.user_copy_bytes", len as u64);
            cpu.charge_user_copy(&self.clock, len);
        }
    }

    fn charge_rpc(&self) {
        if let Some(cpu) = &self.cpu {
            self.tel.lock().count("client", "cpu.rpc_charges", 1);
            cpu.charge_rpc(&self.clock);
        }
    }

    fn charge_server_copy(&self, len: usize) {
        if let Some(cpu) = &self.cpu {
            self.tel
                .lock()
                .count("server", "cpu.server_copy_bytes", len as u64);
            cpu.charge_server_copy(&self.clock, len);
        }
    }

    fn charge_crypto_cost(&self, suite: SuiteId, len: usize) {
        if let Some(cpu) = &self.cpu {
            if self.charge_crypto.load(Ordering::SeqCst) {
                self.tel
                    .lock()
                    .count("client", "cpu.crypto_bytes", len as u64);
                let (num, den) = suite.cost_ratio();
                cpu.charge_crypto_scaled(&self.clock, len, num, den);
            }
        }
    }

    /// Mounts (or returns the cached mount of) a self-certifying
    /// pathname, running the full key negotiation on first access.
    pub fn mount(&self, uid: u32, path: &SelfCertifyingPath) -> Result<Arc<Mount>, ClientError> {
        // Per-agent policy first: revoked or blocked HostIDs never mount.
        let agent = self.agent(uid);
        if agent.lock().refuses(path.host_id) {
            return Err(ClientError::Blocked);
        }
        self.referenced
            .lock()
            .entry(uid)
            .or_default()
            .insert(path.dir_name());
        if let Some(m) = self.mounts.lock().get(&path.dir_name()) {
            return Ok(m.clone());
        }

        let tel = self.tel();
        let _mount_span = tel.span("client", "core.client", "mount");
        let link = self.negotiate_with_retry(path, &agent, 0)?;
        let mount = Arc::new(Mount {
            path: path.clone(),
            link: Mutex::new(link),
            root_fh: Mutex::new(FileHandle(Vec::new())),
            authnos: Mutex::new(HashMap::new()),
            next_seq: AtomicU32::new(1),
            seq_hwm: AtomicU32::new(0),
            attr_cache: Mutex::new(HashMap::new()),
            access_cache: Mutex::new(HashMap::new()),
            prior_round_trips: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            streams: Mutex::new(HashMap::new()),
            wb_queue: Mutex::new(Vec::new()),
        });
        // Fetch the root handle over the authenticated channel (the
        // sealed-call retry machinery already protects this first RPC).
        let root = match self.sealed_call(&mount, InnerCall::Mount)? {
            InnerReply::MountReply { root } => root,
            other => return Err(ClientError::Protocol(format!("bad mount reply: {other:?}"))),
        };
        *mount.root_fh.lock() = root;
        self.mounts.lock().insert(path.dir_name(), mount.clone());
        self.journal_record(&JournalRecord::Mount {
            location: path.location.clone(),
            host_id: path.host_id,
            server_key: mount.link.lock().server_key.clone(),
        });
        Ok(mount)
    }

    /// Runs the full Figure-3 key negotiation on a freshly dialed
    /// connection, producing a ready [`Link`].
    fn negotiate_once(
        &self,
        path: &SelfCertifyingPath,
        agent: &Arc<Mutex<Agent>>,
        generation: u64,
    ) -> Result<Link, ClientError> {
        let tel = self.tel();
        let (wire, conn) = self.net.dial_checked(&path.location)?;

        // Key negotiation (Figure 3), one span per phase.
        let keyneg_span = tel.span("client", "proto.keyneg", "negotiate");
        let ephemeral = self.ephemeral.lock().clone();
        let offer = self.suite_offer.lock().clone();
        let neg = KeyNegClient::with_suites(path.clone(), ephemeral, &offer);
        let hello = CallMsg::Hello {
            req: neg.hello(),
            service: Service::File,
            dialect: Dialect::ReadWrite,
            version: PROTOCOL_VERSION,
            extensions: neg.offer_extensions(),
        };
        let phase = tel.span("client", "proto.keyneg", "hello");
        let reply = self.raw_call(&wire, &conn, hello)?;
        drop(phase);
        let ReplyMsg::ServerReply(server_reply) = reply else {
            return Err(ClientError::Protocol("expected server key".into()));
        };
        let server_key = match &server_reply {
            KeyNegServerReply::ServerKey(k) => k.clone(),
            _ => Vec::new(),
        };
        let phase = tel.span("client", "proto.keyneg", "verify_server_key");
        let mut rng = self.rng.lock();
        let (awaiting, msg3) = neg.on_server_reply(&server_reply, &mut *rng).map_err(|e| {
            if let KeyNegError::Revoked(cert) = &e {
                // Remember the revocation in the agent so future accesses
                // fail fast, and so it shows as a `:REVOKED:` link.
                agent.lock().submit_revocation(*cert.clone());
            }
            match e {
                KeyNegError::Revoked(_) => ClientError::Revoked,
                KeyNegError::HostIdMismatch => ClientError::KeyMismatch,
                other => ClientError::KeyNeg(other.to_string()),
            }
        })?;
        drop(rng);
        drop(phase);
        let phase = tel.span("client", "proto.keyneg", "client_keys");
        let reply = self.raw_call(&wire, &conn, CallMsg::ClientKeys(msg3))?;
        drop(phase);
        let ReplyMsg::ServerKeys(msg4) = reply else {
            return Err(ClientError::Protocol("expected server key halves".into()));
        };
        let phase = tel.span("client", "proto.keyneg", "session_keys");
        let (keys, suite) = awaiting
            .on_server_halves(&msg4)
            .map_err(|e| ClientError::KeyNeg(e.to_string()))?;
        drop(phase);
        drop(keyneg_span);
        tel.count("client", "keyneg.completed", 1);
        // Bank the server's resumption ticket for later reconnects.
        if !msg4.ticket.is_empty() && self.resumption.load(Ordering::SeqCst) {
            self.tickets.lock().insert(
                path.host_id,
                ResumeState {
                    ticket: msg4.ticket,
                    secret: resume_secret(&keys),
                    suite,
                },
            );
        }
        let mut channel = SecureChannelEnd::client_with_suite(&keys, suite);
        channel.set_telemetry(tel.clone());
        let pool = conn.buf_pool().clone();
        pool.set_telemetry(tel.clone());
        Ok(Link {
            wire,
            conn,
            channel,
            pool,
            session_id: keys.session_id,
            server_key,
            generation,
        })
    }

    /// Attempts a one-round-trip session resumption on a freshly dialed
    /// connection using `rs` (a banked ticket). Any failure — transport,
    /// server rejection, or a bad confirmation — simply reports an error;
    /// the caller falls back to the full handshake. The ticket was
    /// already taken from the cache, so a failed attempt cannot loop.
    fn resume_once(
        &self,
        path: &SelfCertifyingPath,
        rs: &ResumeState,
        server_key: Vec<u8>,
        generation: u64,
    ) -> Result<Link, ClientError> {
        let tel = self.tel();
        let _span = tel.span("client", "proto.keyneg", "resume");
        let (wire, conn) = self.net.dial_checked(&path.location)?;
        let mut client_nonce = [0u8; RESUME_NONCE_LEN];
        self.rng.lock().fill(&mut client_nonce);
        let reply = self.raw_call(
            &wire,
            &conn,
            CallMsg::Resume {
                ticket: rs.ticket.clone(),
                nonce: client_nonce,
            },
        )?;
        let (server_nonce, confirm, new_ticket) = match reply {
            ReplyMsg::ResumeOk {
                nonce,
                confirm,
                ticket,
            } => (nonce, confirm, ticket),
            ReplyMsg::ResumeReject(why) => {
                return Err(ClientError::KeyNeg(format!("resume rejected: {why}")))
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected reply to resume: {}",
                    other.describe()
                )))
            }
        };
        let keys = resume_session(&rs.secret, rs.suite, &client_nonce, &server_nonce);
        if confirm != resume_confirm(&keys) {
            // The peer does not actually hold the ticket's secret.
            return Err(ClientError::KeyNeg("resume confirmation mismatch".into()));
        }
        if !new_ticket.is_empty() {
            self.tickets.lock().insert(
                path.host_id,
                ResumeState {
                    ticket: new_ticket,
                    secret: resume_secret(&keys),
                    suite: rs.suite,
                },
            );
        }
        let mut channel = SecureChannelEnd::client_with_suite(&keys, rs.suite);
        channel.set_telemetry(tel.clone());
        let pool = conn.buf_pool().clone();
        pool.set_telemetry(tel.clone());
        Ok(Link {
            wire,
            conn,
            channel,
            pool,
            session_id: keys.session_id,
            server_key,
            generation,
        })
    }

    /// Builds a reconnect link: ticket resumption when enabled and a
    /// ticket is banked for this host, the full handshake otherwise (or
    /// as the fallback when the resume attempt fails).
    fn resume_or_negotiate(
        &self,
        path: &SelfCertifyingPath,
        agent: &Arc<Mutex<Agent>>,
        server_key: &[u8],
        generation: u64,
    ) -> Result<Link, ClientError> {
        let tel = self.tel();
        if self.resumption.load(Ordering::SeqCst) {
            // Take (not peek): tickets are single-use, and a failed
            // attempt must not retry the same ticket forever.
            let banked = self.tickets.lock().remove(&path.host_id);
            match banked {
                Some(rs) => match self.resume_once(path, &rs, server_key.to_vec(), generation) {
                    Ok(link) => {
                        self.resume_hits.fetch_add(1, Ordering::SeqCst);
                        tel.count("client", "resume.hit", 1);
                        return Ok(link);
                    }
                    Err(e) => {
                        self.resume_rejected.fetch_add(1, Ordering::SeqCst);
                        tel.count("client", "resume.rejected", 1);
                        tel.instant("client", "core.client", "resume_fallback");
                        let _ = e; // fall through to the full handshake
                    }
                },
                None => {
                    self.resume_misses.fetch_add(1, Ordering::SeqCst);
                    tel.count("client", "resume.miss", 1);
                }
            }
        }
        self.negotiate_with_retry(path, agent, generation)
    }

    /// Negotiates with backoff-paced retries. Transient failures (lost or
    /// mangled key-negotiation packets, a server that just restarted) are
    /// retried on a fresh connection; definitive answers (revoked,
    /// blocked, no such host) are not.
    fn negotiate_with_retry(
        &self,
        path: &SelfCertifyingPath,
        agent: &Arc<Mutex<Agent>>,
        generation: u64,
    ) -> Result<Link, ClientError> {
        let max = self.retry_policy().max_reconnects;
        let mut attempt = 0;
        loop {
            match self.negotiate_once(path, agent, generation) {
                Ok(link) => return Ok(link),
                Err(
                    e @ (ClientError::Revoked
                    | ClientError::Blocked
                    | ClientError::NoSuchHost(_)
                    | ClientError::Path(_)),
                ) => return Err(e),
                Err(e) => {
                    if attempt >= max {
                        return Err(e);
                    }
                    self.backoff(attempt);
                    attempt += 1;
                }
            }
        }
    }

    /// Whether an error means the secure channel (or the server behind
    /// it) is gone and only a reconnect with full key renegotiation can
    /// make progress.
    fn session_dead(e: &ClientError) -> bool {
        match e {
            // Local MAC/decrypt failure poisons the channel permanently.
            ClientError::Channel(_) => true,
            // Retransmissions exhausted (e.g. a partition): escalate.
            ClientError::Net(WireError::Timeout) => true,
            // The server lost or refused our session state.
            ClientError::Protocol(msg) => {
                msg.contains("channel failure")
                    || msg.contains("no secure channel")
                    || msg.contains("restarted")
                    || msg.contains("key negotiation out of order")
                    // A mangled wire envelope (either side failed to even
                    // parse the frame): the cipher streams may have
                    // desynchronised, so only a rekey is safe.
                    || msg.contains("reply framing corrupted")
                    || msg.contains("unexpected reply")
                    || msg.contains("unparseable message")
            }
            _ => false,
        }
    }

    /// Tears down a mount's link and negotiates a fresh session. Skips
    /// the work if another caller already reconnected past
    /// `observed_generation`. Per-session client state — authentication
    /// numbers and both lease caches — is invalidated: leases were
    /// granted by a server instance that may have restarted, and authnos
    /// only exist inside the old session.
    fn reconnect(&self, mount: &Mount, observed_generation: u64) -> Result<(), ClientError> {
        let tel = self.tel();
        let _span = tel.span("client", "core.client", "reconnect");
        let agent_any = self.agents.lock().values().next().cloned();
        let agent = agent_any.unwrap_or_else(|| Arc::new(Mutex::new(Agent::new())));
        let mut guard = mount.link.lock();
        if guard.generation != observed_generation {
            return Ok(()); // someone else already renegotiated
        }
        tel.count("client", "reconnect.attempts", 1);
        tel.instant("client", "core.client", "reconnect");
        // Try the one-round-trip ticket resumption first; fall back to
        // the full handshake, which itself runs over the faulty network
        // and is retried with backoff rather than letting one lost
        // keyneg packet turn into a hard error.
        let server_key = guard.server_key.clone();
        let link =
            self.resume_or_negotiate(&mount.path, &agent, &server_key, observed_generation + 1)?;
        mount.install_link(&mut guard, link);
        drop(guard);
        mount.authnos.lock().clear();
        mount.attr_cache.lock().clear();
        mount.access_cache.lock().clear();
        // Read-ahead data was fetched under leases the old server
        // instance granted; drop it with the caches.
        mount.streams.lock().clear();
        mount.reconnects.fetch_add(1, Ordering::SeqCst);
        tel.count("client", "reconnect.completed", 1);
        Ok(())
    }

    /// One cleartext wire round trip.
    fn raw_call(
        &self,
        wire: &Wire,
        conn: &ServerConn,
        msg: CallMsg,
    ) -> Result<ReplyMsg, ClientError> {
        self.charge_rpc();
        let bytes = msg.to_xdr();
        let reply_bytes = wire.call(bytes, |b| conn.handle_bytes(&b))?;
        ReplyMsg::from_xdr(&reply_bytes).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// One sealed RPC over a mount's secure channel, surviving faults:
    /// request-direction losses are retried by resending the identical
    /// sealed frame (backoff-paced); anything that kills the session —
    /// a desynchronised cipher stream, a poisoned channel, a restarted
    /// server, an exhausted retransmission budget — triggers a full
    /// reconnect with key renegotiation, after which the call is
    /// re-sealed on the new channel and reissued.
    fn sealed_call(&self, mount: &Mount, call: InnerCall) -> Result<InnerReply, ClientError> {
        // The plaintext outlives any reconnect (it is re-sealed on the
        // fresh channel), so it lives in its own pooled buffer rather
        // than the envelope built per link.
        let pool = mount.link.lock().pool.clone();
        let mut plaintext = pool.get_guard();
        call.encode_into(&mut plaintext);
        self.sealed_exchange(mount, &plaintext)
    }

    /// [`Self::sealed_call`] for the hot NFS path: the `InnerCall::Nfs`
    /// wire form is encoded straight into the pooled plaintext buffer,
    /// skipping the per-RPC argument `Vec` that building the enum first
    /// would allocate.
    fn sealed_call_nfs(
        &self,
        mount: &Mount,
        authno: u32,
        req: &Nfs3Request,
    ) -> Result<InnerReply, ClientError> {
        let pool = mount.link.lock().pool.clone();
        let mut plaintext = pool.get_guard();
        let buf: &mut Vec<u8> = &mut plaintext;
        buf.clear();
        let mut enc = XdrEncoder::from_vec(std::mem::take(buf));
        enc.put_u32(1); // InnerCall::Nfs discriminant
        enc.put_u32(authno);
        enc.put_u32(req.proc() as u32);
        // Opaque args field, length word patched after encoding in
        // place. Marshaled NFS3 arguments are always 4-aligned, so the
        // field needs no padding.
        let len_pos = enc.bytes().len();
        enc.put_u32(0);
        let args_start = enc.bytes().len();
        req.encode_args_into(&mut enc);
        let args_len = enc.bytes().len() - args_start;
        *buf = enc.into_bytes();
        buf[len_pos..len_pos + 4].copy_from_slice(&(args_len as u32).to_be_bytes());
        self.sealed_exchange(mount, &plaintext)
    }

    /// The reconnect-surviving exchange loop shared by the sealed-call
    /// entry points: the pre-encoded plaintext is re-sealed on whatever
    /// channel is current each round.
    fn sealed_exchange(&self, mount: &Mount, plaintext: &[u8]) -> Result<InnerReply, ClientError> {
        let max = self.retry_policy().max_reconnects;
        let mut round = 0;
        loop {
            let generation = mount.generation();
            match self.sealed_call_once(mount, plaintext) {
                Ok(inner) => return Ok(inner),
                Err(e) if Self::session_dead(&e) => {
                    if round >= max {
                        return Err(e);
                    }
                    self.backoff(round);
                    self.reconnect(mount, generation)?;
                    round += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One sealed round trip on the mount's *current* link. Holds the
    /// link for the whole exchange (the stream ciphers serialize sealed
    /// traffic anyway) and releases it before any reconnect, so the
    /// retry driver can replace the link without deadlocking.
    fn sealed_call_once(&self, mount: &Mount, plaintext: &[u8]) -> Result<InnerReply, ClientError> {
        let _span = self.tel().span("client", "core.client", "sealed_call");
        // Cost model: one user-level crossing into sfscd, a data copy
        // through the daemon, crypto over the outgoing bytes.
        self.charge_crossing();
        self.charge_rpc();
        self.charge_user_copy(plaintext.len());
        let mut guard = mount.link.lock();
        let link = &mut *guard;
        self.charge_crypto_cost(link.channel.suite(), plaintext.len());
        let pool = link.pool.clone();
        // Build the sealed wire envelope in place in one pooled buffer:
        // byte-identical to `CallMsg::Sealed(channel.seal(..)).to_xdr()`
        // without the intermediate frame and envelope allocations.
        let mut env = pool.get_guard();
        sealed_env_begin(&mut env);
        env.extend_from_slice(plaintext);
        link.channel.seal_into(&mut env, SEALED_ENV_FRAME_START)?;
        sealed_env_finish(&mut env);
        // Retransmission loop: the frame was sealed once; every resend
        // puts the same bytes on the wire, so a request that was lost
        // in flight still decrypts at the server's cipher position.
        // Each attempt copies the envelope into a pooled buffer that the
        // wire consumes and the server-side closure recycles.
        let policy = self.retry_policy();
        let mut attempt = 0;
        let mut reply_bytes = loop {
            let mut msg = pool.get();
            msg.extend_from_slice(&env);
            let sent = link.wire.call(msg, |b| {
                // Server side: one crossing into sfssd, the data copy
                // through it, plus the NFS loopback hop.
                self.charge_crossing();
                self.charge_rpc();
                self.charge_server_copy(b.len());
                let reply = link.conn.handle_bytes(&b);
                pool.put(b);
                reply
            });
            match sent {
                Ok(b) => break b,
                Err(WireError::Timeout) => {
                    if attempt >= policy.max_retransmits {
                        return Err(ClientError::Net(WireError::Timeout));
                    }
                    let tel = self.tel();
                    tel.count("client", "retry.retransmits", 1);
                    tel.instant("client", "core.client", "retransmit");
                    self.backoff(attempt);
                    attempt += 1;
                }
            }
        };
        // Well-formed sealed replies — the steady state — open in place
        // inside the reply buffer, which then goes back to the pool.
        // Anything else falls through to the general decoder below so
        // error classification is unchanged.
        if let Some(frame) = sealed_envelope_frame(&reply_bytes) {
            self.charge_user_copy(frame.len());
            self.charge_crypto_cost(link.channel.suite(), frame.len());
            let plain = link.channel.open_in_place(&mut reply_bytes[frame])?;
            let inner =
                InnerReply::from_xdr(plain).map_err(|e| ClientError::Protocol(e.to_string()))?;
            drop(guard);
            pool.put(reply_bytes);
            self.apply_invalidations(mount, &inner);
            return Ok(inner);
        }
        // An unparseable envelope means the reply was mangled in flight
        // before the MAC could vouch for anything; classified as a
        // session death so the retry driver renegotiates.
        let reply = ReplyMsg::from_xdr(&reply_bytes)
            .map_err(|e| ClientError::Protocol(format!("reply framing corrupted: {e}")))?;
        let ReplyMsg::Sealed(sealed) = reply else {
            return match reply {
                ReplyMsg::Error(e) => Err(ClientError::Protocol(e)),
                other => Err(ClientError::Protocol(format!(
                    "unexpected reply: {other:?}"
                ))),
            };
        };
        self.charge_user_copy(sealed.len());
        self.charge_crypto_cost(link.channel.suite(), sealed.len());
        let plain = link.channel.open(&sealed)?;
        drop(guard);
        let inner =
            InnerReply::from_xdr(&plain).map_err(|e| ClientError::Protocol(e.to_string()))?;
        self.apply_invalidations(mount, &inner);
        Ok(inner)
    }

    /// Applies a reply's piggybacked invalidation callbacks to the
    /// mount's caches.
    fn apply_invalidations(&self, mount: &Mount, inner: &InnerReply) {
        if let InnerReply::Nfs { invalidations, .. } = inner {
            if !invalidations.is_empty() && !self.ignore_invalidations.load(Ordering::SeqCst) {
                self.tel
                    .lock()
                    .count("client", "cache.invalidations", invalidations.len() as u64);
                let mut cache = mount.attr_cache.lock();
                for fh in invalidations {
                    cache.remove(&fh.0);
                }
                let mut access = mount.access_cache.lock();
                access.retain(|(fh, _, _), _| !invalidations.iter().any(|i| &i.0 == fh));
                // Read-ahead data for an invalidated file was speculated
                // under a lease another client just broke.
                let mut streams = mount.streams.lock();
                for fh in invalidations {
                    streams.remove(&fh.0);
                }
            }
        }
    }

    /// Ensures `uid` is authenticated on `mount`; returns the
    /// authentication number (0 = anonymous).
    pub fn ensure_auth(&self, mount: &Mount, uid: u32) -> Result<u32, ClientError> {
        if let Some(&authno) = mount.authnos.lock().get(&uid) {
            return Ok(authno);
        }
        let tel = self.tel();
        let _auth_span = tel.span("client", "core.client", "ensure_auth");
        let agent = self.agent(uid);
        let mut attempt = 0;
        let authno = loop {
            // The AuthID binds the signature to the *current* session: a
            // reconnect mid-loop changes the session ID, so recompute it
            // every iteration rather than burning key attempts on
            // signatures the server can no longer match.
            let session_id = mount.session_id();
            let info = AuthInfo::for_fs(&mount.path.location, mount.path.host_id, session_id);
            let seq = mount.next_seq.fetch_add(1, Ordering::SeqCst);
            self.note_seq(mount, seq);
            let sign_span = tel.span("agent", "core.client", "authenticate");
            let msg = agent.lock().authenticate(&info, seq, attempt);
            drop(sign_span);
            let Some(msg) = msg else {
                // "At that point, the user will access the file system
                // with anonymous permissions."
                break AUTHNO_ANONYMOUS;
            };
            match self.sealed_call(mount, InnerCall::Auth { seq_no: seq, msg })? {
                InnerReply::AuthGranted { authno, .. } => break authno,
                InnerReply::AuthDenied { .. } => {
                    if mount.session_id() == session_id {
                        attempt += 1;
                    }
                    // Otherwise the session was renegotiated under us and
                    // the denial just means "signed for the old session":
                    // retry the same key against the new session.
                }
                other => return Err(ClientError::Protocol(format!("bad auth reply: {other:?}"))),
            }
        };
        mount.authnos.lock().insert(uid, authno);
        Ok(authno)
    }

    /// Issues one NFS3 call for `uid` over `mount`. Queued write-behind
    /// data is flushed first: a synchronous RPC is an ordering point, so
    /// nothing may observe the server before writes the caller already
    /// issued reach it. If the session is renegotiated mid-call, the
    /// authentication number sent with the request belonged to the dead
    /// session — re-authenticate on the new one and reissue.
    pub fn call_nfs(
        &self,
        mount: &Mount,
        uid: u32,
        req: &Nfs3Request,
    ) -> Result<Nfs3Reply, ClientError> {
        self.refuse_if_revoked(mount, uid)?;
        self.barrier(mount)?;
        self.call_nfs_unqueued(mount, uid, req)
    }

    /// Re-checks agent revocation/blocking policy on an already-mounted
    /// server. `mount()` refuses revoked HostIDs at mount time, but a
    /// §2.5 revocation broadcast must also cut off clients holding live
    /// mounts — a cached [`Mount`] is exactly the capability a
    /// revocation exists to invalidate, so every NFS call re-consults
    /// the agent before touching the wire.
    fn refuse_if_revoked(&self, mount: &Mount, uid: u32) -> Result<(), ClientError> {
        if self.agent(uid).lock().refuses(mount.path.host_id) {
            return Err(ClientError::Blocked);
        }
        Ok(())
    }

    /// [`Self::call_nfs`] without the write-behind barrier (the flush
    /// path itself must not recurse into the barrier).
    fn call_nfs_unqueued(
        &self,
        mount: &Mount,
        uid: u32,
        req: &Nfs3Request,
    ) -> Result<Nfs3Reply, ClientError> {
        let proc = req.proc();
        let reissue_cap = self.retry_policy().max_reconnects;
        let mut rounds = 0;
        loop {
            let authno = self.ensure_auth(mount, uid)?;
            let generation = mount.generation();
            let reply = self.sealed_call_nfs(mount, authno, req)?;
            if mount.generation() != generation && rounds < reissue_cap {
                // Reconnected while this call was in flight: the server
                // executed it (if at all) with stale credentials.
                rounds += 1;
                continue;
            }
            return match reply {
                InnerReply::Nfs { results, .. } => {
                    let reply = Nfs3Reply::decode_results(proc, &results)
                        .map_err(|e| ClientError::Protocol(e.to_string()))?;
                    self.harvest_attrs(mount, req, &reply);
                    Ok(reply)
                }
                other => Err(ClientError::Protocol(format!("bad NFS reply: {other:?}"))),
            };
        }
    }

    /// Issues a batch of NFS3 calls for `uid` with up to
    /// [`Self::pipeline_window`] sealed frames in flight at once,
    /// returning the replies in request order. Queued write-behind data
    /// is flushed first. With window 1 this degenerates to the blocking
    /// request/reply protocol, call for call.
    pub fn call_nfs_window(
        &self,
        mount: &Mount,
        uid: u32,
        reqs: &[Nfs3Request],
    ) -> Result<Vec<Nfs3Reply>, ClientError> {
        self.refuse_if_revoked(mount, uid)?;
        self.barrier(mount)?;
        self.call_nfs_window_unqueued(mount, uid, reqs)
    }

    /// [`Self::call_nfs_window`] without the write-behind barrier.
    fn call_nfs_window_unqueued(
        &self,
        mount: &Mount,
        uid: u32,
        reqs: &[Nfs3Request],
    ) -> Result<Vec<Nfs3Reply>, ClientError> {
        let window = self.pipeline_window();
        if window <= 1 || reqs.len() <= 1 {
            return reqs
                .iter()
                .map(|req| self.call_nfs_unqueued(mount, uid, req))
                .collect();
        }
        let mut out = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(window) {
            out.extend(self.window_call_batch(mount, uid, chunk)?);
        }
        Ok(out)
    }

    /// One window-sized batch: authenticate, seal, exchange, decode.
    /// Mirrors [`Self::call_nfs_unqueued`]'s reissue rule — a session
    /// renegotiated mid-batch invalidates the credentials every frame
    /// was sealed with, so the whole batch is reissued.
    fn window_call_batch(
        &self,
        mount: &Mount,
        uid: u32,
        reqs: &[Nfs3Request],
    ) -> Result<Vec<Nfs3Reply>, ClientError> {
        let reissue_cap = self.retry_policy().max_reconnects;
        let mut rounds = 0;
        loop {
            let authno = self.ensure_auth(mount, uid)?;
            let generation = mount.generation();
            let calls: Vec<InnerCall> = reqs
                .iter()
                .map(|req| InnerCall::Nfs {
                    authno,
                    proc: req.proc() as u32,
                    args: req.encode_args(),
                })
                .collect();
            let inners = self.window_sealed_batch(mount, &calls)?;
            if mount.generation() != generation && rounds < reissue_cap {
                rounds += 1;
                continue;
            }
            let mut out = Vec::with_capacity(reqs.len());
            for (req, inner) in reqs.iter().zip(inners) {
                match inner {
                    InnerReply::Nfs { results, .. } => {
                        let reply = Nfs3Reply::decode_results(req.proc(), &results)
                            .map_err(|e| ClientError::Protocol(e.to_string()))?;
                        self.harvest_attrs(mount, req, &reply);
                        out.push(reply);
                    }
                    other => {
                        return Err(ClientError::Protocol(format!("bad NFS reply: {other:?}")))
                    }
                }
            }
            return Ok(out);
        }
    }

    /// Retry driver for one windowed exchange: session deaths trigger a
    /// reconnect, after which every call is re-sealed on the fresh
    /// channel (the old frames are useless — their cipher positions
    /// belong to the dead session).
    fn window_sealed_batch(
        &self,
        mount: &Mount,
        calls: &[InnerCall],
    ) -> Result<Vec<InnerReply>, ClientError> {
        let max = self.retry_policy().max_reconnects;
        let mut round = 0;
        loop {
            let generation = mount.generation();
            match self.window_exchange_once(mount, calls) {
                Ok(inners) => return Ok(inners),
                Err(e) if Self::session_dead(&e) => {
                    if round >= max {
                        return Err(e);
                    }
                    self.backoff(round);
                    self.reconnect(mount, generation)?;
                    round += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Analytic server-side cost of servicing one frame: the crossing
    /// into sfssd, RPC processing, and the copy through the daemon.
    /// Windowed exchanges fold this into the frame's service time on the
    /// wire's timeline instead of charging the shared clock, so sealing
    /// later frames genuinely overlaps the server working earlier ones.
    fn server_frame_cost_ns(&self, len: usize) -> u64 {
        let Some(cpu) = &self.cpu else { return 0 };
        let tel = self.tel.lock();
        tel.count("client", "cpu.crossings", 1);
        tel.count("client", "cpu.rpc_charges", 1);
        tel.count("server", "cpu.server_copy_bytes", len as u64);
        cpu.user_crossing_ns + cpu.rpc_processing_ns + len as u64 * cpu.server_copy_per_byte_ns
    }

    /// Analytic client-side cost of opening one sealed reply frame: the
    /// copy out of the daemon plus decryption. Like
    /// [`Self::server_frame_cost_ns`] this is not charged to the clock
    /// directly — the windowed engine runs these costs on a CPU
    /// timeline seeded by each reply's arrival, so decrypting one reply
    /// overlaps later replies still in transit.
    fn client_open_cost_ns(&self, suite: SuiteId, len: usize) -> u64 {
        let Some(cpu) = &self.cpu else { return 0 };
        let tel = self.tel.lock();
        tel.count("client", "cpu.user_copy_bytes", len as u64);
        let mut ns = len as u64 * cpu.user_copy_per_byte_ns;
        if self.charge_crypto.load(Ordering::SeqCst) {
            tel.count("client", "cpu.crypto_bytes", len as u64);
            let (num, den) = suite.cost_ratio();
            ns += cpu.crypto_per_message_ns + len as u64 * cpu.crypto_per_byte_ns * num / den;
        }
        ns
    }

    /// One windowed exchange on the mount's current link: seals every
    /// call as a sequenced frame, puts them all in flight, and matches
    /// replies back by xid. Lost frames are retransmitted byte-for-byte
    /// (the server replays already-serviced ones from its reply cache),
    /// so both cipher streams stay aligned no matter how the network
    /// reorders, duplicates, or drops frames.
    fn window_exchange_once(
        &self,
        mount: &Mount,
        calls: &[InnerCall],
    ) -> Result<Vec<InnerReply>, ClientError> {
        let tel = self.tel();
        let _span = tel
            .span("client", "core.client", "window_exchange")
            .with_attr("frames", calls.len() as u64);
        // One kernel→daemon crossing hands sfscd the whole queued window
        // (§4.2): the fixed crossing cost is paid once per window, not
        // per request.
        self.charge_crossing();
        let mut guard = mount.link.lock();
        let link = &mut *guard;
        let pool = link.pool.clone();
        // Seal every frame up front, tagged with its xid and the channel
        // seqno it was sealed at, stamping each frame's virtual send
        // time as sealing completes. The sealed bytes are kept verbatim
        // for retransmission.
        let mut envs: Vec<Vec<u8>> = Vec::with_capacity(calls.len());
        let mut sent_at: Vec<SimTime> = Vec::with_capacity(calls.len());
        for (xid, call) in calls.iter().enumerate() {
            let chanseq = link.channel.messages_sent();
            let mut env = pool.get();
            seq_env_begin(&mut env, true, chanseq, xid as u32);
            let mut enc = XdrEncoder::from_vec(std::mem::take(&mut env));
            call.encode(&mut enc);
            env = enc.into_bytes();
            let plain_len = env.len() - SEALED_SEQ_ENV_FRAME_START - FRAME_HEADER_LEN;
            self.charge_rpc();
            self.charge_user_copy(plain_len);
            self.charge_crypto_cost(link.channel.suite(), plain_len);
            link.channel
                .seal_into(&mut env, SEALED_SEQ_ENV_FRAME_START)?;
            seq_env_finish(&mut env);
            envs.push(env);
            sent_at.push(self.clock.now());
        }
        let policy = self.retry_policy();
        let mut results: Vec<Option<InnerReply>> = calls.iter().map(|_| None).collect();
        // Replies can arrive in any order; the stream cipher only opens
        // them in the order the server sealed them, so out-of-order
        // arrivals park here until the gap fills.
        let mut reorder = FrameSequencer::new(REORDER_BUF_CAPACITY);
        // Arrival time per buffered reply chanseq, feeding the analytic
        // CPU timeline below.
        let mut arrivals: BTreeMap<u64, u64> = BTreeMap::new();
        // When the client CPU finishes opening the replies processed so
        // far: each open starts at max(its reply's arrival, cpu_free),
        // so decryption overlaps replies still on the wire instead of
        // stacking after the last arrival.
        let mut cpu_free: u64 = 0;
        let mut attempt = 0;
        loop {
            let outstanding: Vec<usize> =
                (0..envs.len()).filter(|&i| results[i].is_none()).collect();
            if outstanding.is_empty() {
                break;
            }
            tel.gauge_set("client", "pipeline.inflight_hwm", outstanding.len() as u64);
            let sends: Vec<(SimTime, Vec<u8>)> = outstanding
                .iter()
                .map(|&i| {
                    let mut msg = pool.get();
                    msg.extend_from_slice(&envs[i]);
                    (sent_at[i], msg)
                })
                .collect();
            // Each frame's server cost is either the classic serial
            // discipline or, when the server has a multi-core
            // `ShardEngine` installed, an absolute completion instant
            // scheduled across its simulated cores and disk shards.
            let replies = link.wire.exchange_on(sends, |arrival_ns, b| {
                let extra_ns = self.server_frame_cost_ns(b.len());
                link.conn.handle_frames_on(arrival_ns, extra_ns, b)
            });
            for reply in replies {
                let bytes = reply.bytes;
                let Some((chanseq, xid, frame)) = seq_reply_envelope(&bytes) else {
                    // An unsequenced reply mid-window: a server Error is
                    // the session refusing our state — honour it and let
                    // the caller reconnect. Anything else is a stray the
                    // wire held over from an earlier phase (or mangled
                    // noise); it never touches the cipher, so drop it and
                    // let retransmission cover any real loss.
                    if let Ok(ReplyMsg::Error(e)) = ReplyMsg::from_xdr(&bytes) {
                        return Err(ClientError::Protocol(e));
                    }
                    tel.count("client", "pipeline.stale_frames", 1);
                    pool.put(bytes);
                    continue;
                };
                if xid as usize >= results.len() {
                    // Sequenced, but not one of ours: a frame from an
                    // earlier window or a dead session replayed by the
                    // wire. Feeding it to the stream cipher would burn
                    // keystream and poison the channel, so discard it
                    // here on the cleartext header alone.
                    tel.count("client", "pipeline.stale_frames", 1);
                    pool.put(bytes);
                    continue;
                }
                let expected = link.channel.messages_received();
                match reorder.push(chanseq, xid, bytes[frame].to_vec(), expected) {
                    // A replayed reply we already opened (its retransmit
                    // raced the original): the cipher consumed it once.
                    SeqPush::Duplicate => {}
                    SeqPush::Overflow => {
                        return Err(ClientError::Protocol(
                            "channel failure: reply reorder buffer overflow".into(),
                        ))
                    }
                    SeqPush::Buffered => {
                        arrivals.insert(chanseq, reply.arrival.as_nanos());
                    }
                }
                pool.put(bytes);
                // Open every frame that is now in cipher order.
                loop {
                    let pos = link.channel.messages_received();
                    let Some((xid, mut frame)) = reorder.take(pos) else {
                        break;
                    };
                    let arrival = arrivals.remove(&pos).unwrap_or(0);
                    cpu_free = cpu_free.max(arrival)
                        + self.client_open_cost_ns(link.channel.suite(), frame.len());
                    let plain = link.channel.open_in_place(&mut frame)?;
                    let inner = InnerReply::from_xdr(plain)
                        .map_err(|e| ClientError::Protocol(e.to_string()))?;
                    let slot = results.get_mut(xid as usize).ok_or_else(|| {
                        ClientError::Protocol(format!("unexpected reply: unknown xid {xid}"))
                    })?;
                    *slot = Some(inner);
                }
            }
            if results.iter().any(|r| r.is_none()) {
                if attempt >= policy.max_retransmits {
                    return Err(ClientError::Net(WireError::Timeout));
                }
                // Same pacing as the blocking path: wait out the
                // timeout, then back off before the identical frames go
                // back on the wire. Retransmission charges no CPU — the
                // frames were already built and sealed.
                link.wire.timeout_wait();
                tel.count("client", "retry.retransmits", 1);
                tel.instant("client", "core.client", "retransmit");
                self.backoff(attempt);
                attempt += 1;
                sent_at.fill(self.clock.now());
            }
        }
        // Land the clock on the moment the client CPU finished opening
        // the final reply (a no-op if the timeline already passed it).
        self.clock.advance_to(SimTime(cpu_free));
        drop(guard);
        for env in envs {
            pool.put(env);
        }
        let inners: Vec<InnerReply> = results
            .into_iter()
            .map(|r| r.expect("loop exits only when every slot is filled"))
            .collect();
        for inner in &inners {
            self.apply_invalidations(mount, inner);
        }
        Ok(inners)
    }

    /// Reads up to `count` bytes of `fh` at `offset`, returning
    /// `(data, eof)`. Two adjacent reads promote the file to a
    /// sequential stream: the client then keeps a whole pipeline window
    /// of READs outstanding, answering the caller from the first and
    /// parking the rest as read-ahead for the accesses it predicts.
    pub fn read(
        &self,
        mount: &Mount,
        uid: u32,
        fh: &FileHandle,
        offset: u64,
        count: u32,
    ) -> Result<(Vec<u8>, bool), ClientError> {
        self.barrier(mount)?;
        // Read-ahead hit: the block is already here, no RPC at all.
        {
            let mut streams = mount.streams.lock();
            if let Some(st) = streams.get_mut(&fh.0) {
                if let Some((data, eof)) = st.prefetch.remove(&offset) {
                    if data.len() <= count as usize {
                        self.tel().count("client", "pipeline.readahead_hits", 1);
                        st.next_offset = offset + data.len() as u64;
                        return Ok((data, eof));
                    }
                    // Speculated with a different block size than the
                    // caller now wants: the speculation is useless.
                    st.prefetch.clear();
                }
            }
        }
        let window = self.pipeline_window();
        let run = {
            let mut streams = mount.streams.lock();
            let st = streams.entry(fh.0.clone()).or_insert_with(|| StreamState {
                next_offset: offset,
                run: 0,
                prefetch: BTreeMap::new(),
            });
            if offset == st.next_offset {
                st.run += 1;
            } else {
                st.run = 1;
                st.prefetch.clear();
            }
            st.run
        };
        if window > 1 && run >= READ_AHEAD_TRIGGER {
            // Sequential stream: issue a whole window of READs at once.
            let reqs: Vec<Nfs3Request> = (0..window as u64)
                .map(|i| Nfs3Request::Read {
                    fh: fh.clone(),
                    offset: offset + i * u64::from(count),
                    count,
                })
                .collect();
            let mut replies = self
                .call_nfs_window_unqueued(mount, uid, &reqs)?
                .into_iter();
            let (data, eof) = match replies.next().expect("one reply per request") {
                Nfs3Reply::Read { data, eof, .. } => (data, eof),
                Nfs3Reply::Error { status, .. } => return Err(ClientError::Nfs(status)),
                other => return Err(ClientError::Protocol(format!("{other:?}"))),
            };
            let mut streams = mount.streams.lock();
            let st = streams.entry(fh.0.clone()).or_insert_with(|| StreamState {
                next_offset: offset,
                run: READ_AHEAD_TRIGGER,
                prefetch: BTreeMap::new(),
            });
            if !eof {
                let mut o = offset + u64::from(count);
                for reply in replies {
                    match reply {
                        Nfs3Reply::Read {
                            data: ahead,
                            eof: ahead_eof,
                            ..
                        } => {
                            let done = ahead_eof || (ahead.len() as u32) < count;
                            st.prefetch.insert(o, (ahead, ahead_eof));
                            o += u64::from(count);
                            if done {
                                break;
                            }
                        }
                        // Errors on speculative reads are not the
                        // caller's problem; the access that reaches this
                        // offset will reissue and see them for real.
                        _ => break,
                    }
                }
            }
            st.next_offset = offset + data.len() as u64;
            return Ok((data, eof));
        }
        match self.call_nfs_unqueued(
            mount,
            uid,
            &Nfs3Request::Read {
                fh: fh.clone(),
                offset,
                count,
            },
        )? {
            Nfs3Reply::Read { data, eof, .. } => {
                if let Some(st) = mount.streams.lock().get_mut(&fh.0) {
                    st.next_offset = offset + data.len() as u64;
                }
                Ok((data, eof))
            }
            Nfs3Reply::Error { status, .. } => Err(ClientError::Nfs(status)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Queues a WRITE of `data` at `offset` without waiting for the
    /// reply. The write reaches the server no later than the next
    /// commit barrier — an explicit [`Self::barrier`] (close/fsync) or
    /// any synchronous RPC on the mount — where the queue drains as
    /// pipelined windows and every reply is checked. With window 1 the
    /// write is issued synchronously instead.
    pub fn write_behind(
        &self,
        mount: &Mount,
        uid: u32,
        fh: &FileHandle,
        offset: u64,
        data: Vec<u8>,
    ) -> Result<(), ClientError> {
        // A write invalidates read-ahead speculation on the same file.
        mount.streams.lock().remove(&fh.0);
        let req = Nfs3Request::Write {
            fh: fh.clone(),
            offset,
            stable: StableHow::Unstable,
            data,
        };
        if self.pipeline_window() <= 1 {
            return match self.call_nfs_unqueued(mount, uid, &req)? {
                Nfs3Reply::Write { .. } => Ok(()),
                Nfs3Reply::Error { status, .. } => Err(ClientError::Nfs(status)),
                other => Err(ClientError::Protocol(format!("{other:?}"))),
            };
        }
        let full = {
            let mut queue = mount.wb_queue.lock();
            queue.push((uid, req));
            queue.len() >= self.pipeline_window()
        };
        if full {
            self.flush_write_behind(mount)?;
        }
        Ok(())
    }

    /// The write-behind commit barrier: drains the queue and checks
    /// every reply. When it returns `Ok`, every previously queued write
    /// has executed on the server.
    pub fn barrier(&self, mount: &Mount) -> Result<(), ClientError> {
        if mount.wb_queue.lock().is_empty() {
            return Ok(());
        }
        self.flush_write_behind(mount)
    }

    fn flush_write_behind(&self, mount: &Mount) -> Result<(), ClientError> {
        loop {
            let batch: Vec<(u32, Nfs3Request)> = std::mem::take(&mut *mount.wb_queue.lock());
            if batch.is_empty() {
                return Ok(());
            }
            // Issue runs of same-uid writes as windowed batches, so each
            // window goes out under a single set of credentials.
            let mut i = 0;
            while i < batch.len() {
                let uid = batch[i].0;
                let mut j = i + 1;
                while j < batch.len() && batch[j].0 == uid {
                    j += 1;
                }
                let reqs: Vec<Nfs3Request> =
                    batch[i..j].iter().map(|(_, req)| req.clone()).collect();
                for reply in self.call_nfs_window_unqueued(mount, uid, &reqs)? {
                    match reply {
                        Nfs3Reply::Write { .. } => {}
                        Nfs3Reply::Error { status, .. } => return Err(ClientError::Nfs(status)),
                        other => return Err(ClientError::Protocol(format!("{other:?}"))),
                    }
                }
                i = j;
            }
        }
    }

    /// Feeds leased attributes from a reply into the cache.
    fn harvest_attrs(&self, mount: &Mount, req: &Nfs3Request, reply: &Nfs3Reply) {
        if !self.caching.load(Ordering::SeqCst) {
            return;
        }
        let now = self.clock.now();
        let store = |fh: &FileHandle, post: &PostOpAttr| {
            if let Some(attr) = post.attr {
                if post.lease_ns > 0 {
                    mount.attr_cache.lock().insert(
                        fh.0.clone(),
                        CachedAttr {
                            attr,
                            expires: SimTime(now.0 + post.lease_ns),
                        },
                    );
                }
            }
        };
        match (req, reply) {
            (_, Nfs3Reply::Lookup { fh, attr, .. })
            | (_, Nfs3Reply::Create { fh, attr, .. })
            | (_, Nfs3Reply::Mkdir { fh, attr, .. })
            | (_, Nfs3Reply::Symlink { fh, attr, .. }) => store(fh, attr),
            (Nfs3Request::GetAttr { fh }, Nfs3Reply::GetAttr { attr, lease_ns }) => {
                store(fh, &PostOpAttr::leased(*attr, *lease_ns))
            }
            (Nfs3Request::Read { fh, .. }, Nfs3Reply::Read { attr, .. })
            | (Nfs3Request::Write { fh, .. }, Nfs3Reply::Write { attr, .. })
            | (Nfs3Request::SetAttr { fh, .. }, Nfs3Reply::SetAttr { attr }) => store(fh, attr),
            (_, Nfs3Reply::ReadDir { entries, .. }) => {
                for e in entries {
                    if let Some((fh, attr)) = &e.plus {
                        store(fh, attr);
                    }
                }
            }
            _ => {}
        }
    }

    /// GETATTR with the enhanced cache: served locally while the lease is
    /// valid.
    pub fn getattr(&self, mount: &Mount, uid: u32, fh: &FileHandle) -> Result<Fattr3, ClientError> {
        // A revoked HostID is refused even on a lease-held cache hit:
        // §2.5 revocation blocks *access*, not just wire traffic.
        self.refuse_if_revoked(mount, uid)?;
        if self.caching.load(Ordering::SeqCst) {
            if let Some(c) = mount.attr_cache.lock().get(&fh.0) {
                if self.clock.now() < c.expires {
                    self.attr_hits.fetch_add(1, Ordering::SeqCst);
                    self.tel.lock().count("client", "cache.attr_hits", 1);
                    return Ok(c.attr);
                }
            }
        }
        self.attr_misses.fetch_add(1, Ordering::SeqCst);
        self.tel.lock().count("client", "cache.attr_misses", 1);
        match self.call_nfs(mount, uid, &Nfs3Request::GetAttr { fh: fh.clone() })? {
            Nfs3Reply::GetAttr { attr, .. } => Ok(attr),
            Nfs3Reply::Error { status, .. } => Err(ClientError::Nfs(status)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// ACCESS with the enhanced cache.
    pub fn access(
        &self,
        mount: &Mount,
        uid: u32,
        fh: &FileHandle,
        mask: u32,
    ) -> Result<u32, ClientError> {
        self.refuse_if_revoked(mount, uid)?;
        let key = (fh.0.clone(), uid, mask);
        if self.caching.load(Ordering::SeqCst) {
            if let Some(c) = mount.access_cache.lock().get(&key) {
                if self.clock.now() < c.expires {
                    self.attr_hits.fetch_add(1, Ordering::SeqCst);
                    self.tel.lock().count("client", "cache.access_hits", 1);
                    // The granted mask is stashed in the attr's mode field.
                    return Ok(c.attr.mode);
                }
            }
        }
        self.attr_misses.fetch_add(1, Ordering::SeqCst);
        self.tel.lock().count("client", "cache.access_misses", 1);
        match self.call_nfs(
            mount,
            uid,
            &Nfs3Request::Access {
                fh: fh.clone(),
                mask,
            },
        )? {
            Nfs3Reply::Access { granted, attr } => {
                if self.caching.load(Ordering::SeqCst) && attr.lease_ns > 0 {
                    if let Some(mut a) = attr.attr {
                        a.mode = granted;
                        mount.access_cache.lock().insert(
                            key,
                            CachedAttr {
                                attr: a,
                                expires: SimTime(self.clock.now().0 + attr.lease_ns),
                            },
                        );
                    }
                }
                Ok(granted)
            }
            Nfs3Reply::Error { status, .. } => Err(ClientError::Nfs(status)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Resolves an absolute `/sfs/...` path for `uid`, automounting and
    /// following symlinks (with agent interposition for
    /// non-self-certifying names). Returns the mount, handle, and
    /// attributes.
    pub fn resolve(
        &self,
        uid: u32,
        path: &str,
    ) -> Result<(Arc<Mount>, FileHandle, Fattr3), ClientError> {
        self.resolve_depth(uid, path.to_string(), 0)
    }

    fn resolve_depth(
        &self,
        uid: u32,
        path: String,
        depth: usize,
    ) -> Result<(Arc<Mount>, FileHandle, Fattr3), ClientError> {
        if depth > MAX_SYMLINK_DEPTH {
            return Err(ClientError::SymlinkLoop);
        }
        let rest = path
            .strip_prefix("/sfs/")
            .ok_or(ClientError::Path(PathError::BadFormat))?;
        let (first, remainder) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, ""),
        };
        // Self-certifying component, or a name the agent must map?
        let sc_path = match SelfCertifyingPath::parse_dir_name(first) {
            Ok(p) => p,
            Err(_) => {
                // Consult the agent (§2.3). The agent lock must not be
                // held while we do file I/O on its behalf — resolving a
                // certification-path directory may recursively mount.
                let agent = self.agent(uid);
                let mut target = agent.lock().resolve_link(first);
                if target.is_none() {
                    let dirs = agent.lock().cert_paths().to_vec();
                    for dir in dirs {
                        let full = format!("{}/{}", dir.trim_end_matches('/'), first);
                        if let Ok(t) = self.readlink_abs(uid, &full, depth + 1) {
                            // Cache as an on-the-fly link (§2.3).
                            agent.lock().create_link(first, &t);
                            target = Some(t);
                            break;
                        }
                    }
                }
                if target.is_none() {
                    // Last resort: the external-PKI name hook (§2.4).
                    // (Bind the result first: an `if let` scrutinee's
                    // lock guard would otherwise live through the body
                    // and deadlock on the re-lock.)
                    let hook_target = agent.lock().run_name_hook(first);
                    if let Some(t) = hook_target {
                        agent.lock().create_link(first, &t);
                        target = Some(t);
                    }
                }
                let Some(target) = target else {
                    return Err(ClientError::Nfs(Status::NoEnt));
                };
                return self.resolve_depth(uid, format!("{target}{remainder}"), depth + 1);
            }
        };
        let mount = self.mount(uid, &sc_path)?;
        let mut cur_fh = mount.root();
        let mut cur_attr = self.getattr(&mount, uid, &cur_fh)?;
        let components: Vec<&str> = remainder.split('/').filter(|c| !c.is_empty()).collect();
        for (i, comp) in components.iter().enumerate() {
            let reply = self.call_nfs(
                &mount,
                uid,
                &Nfs3Request::Lookup {
                    dir: cur_fh.clone(),
                    name: comp.to_string(),
                },
            )?;
            let (fh, attr) = match reply {
                Nfs3Reply::Lookup { fh, attr, .. } => {
                    let a = match attr.attr {
                        Some(a) => a,
                        None => self.getattr(&mount, uid, &fh)?,
                    };
                    (fh, a)
                }
                Nfs3Reply::Error { status, .. } => return Err(ClientError::Nfs(status)),
                other => return Err(ClientError::Protocol(format!("{other:?}"))),
            };
            if attr.ftype == FileType::Symlink {
                let target = self.readlink_fh(&mount, uid, &fh)?;
                let tail = components[i + 1..].join("/");
                let next = if target.starts_with('/') {
                    if tail.is_empty() {
                        target
                    } else {
                        format!("{target}/{tail}")
                    }
                } else {
                    // Relative symlink: resolve against the current
                    // directory by rebuilding the remaining path.
                    let prefix: String = components[..i].join("/");
                    let base = format!("/sfs/{}/{}", sc_path.dir_name(), prefix);
                    if tail.is_empty() {
                        format!("{base}/{target}")
                    } else {
                        format!("{base}/{target}/{tail}")
                    }
                };
                return self.resolve_depth(uid, next, depth + 1);
            }
            cur_fh = fh;
            cur_attr = attr;
        }
        Ok((mount, cur_fh, cur_attr))
    }

    fn readlink_fh(&self, mount: &Mount, uid: u32, fh: &FileHandle) -> Result<String, ClientError> {
        match self.call_nfs(mount, uid, &Nfs3Request::ReadLink { fh: fh.clone() })? {
            Nfs3Reply::ReadLink { target, .. } => Ok(target),
            Nfs3Reply::Error { status, .. } => Err(ClientError::Nfs(status)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    fn readlink_abs(&self, uid: u32, path: &str, depth: usize) -> Result<String, ClientError> {
        // Resolve the parent, then LOOKUP + READLINK the leaf without
        // following it.
        let (dir, leaf) = match path.rfind('/') {
            Some(i) => (&path[..i], &path[i + 1..]),
            None => return Err(ClientError::Path(PathError::BadFormat)),
        };
        let (mount, dir_fh, _) = self.resolve_depth(uid, dir.to_string(), depth)?;
        match self.call_nfs(
            &mount,
            uid,
            &Nfs3Request::Lookup {
                dir: dir_fh,
                name: leaf.to_string(),
            },
        )? {
            Nfs3Reply::Lookup { fh, .. } => self.readlink_fh(&mount, uid, &fh),
            Nfs3Reply::Error { status, .. } => Err(ClientError::Nfs(status)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Reads a symlink target at an absolute path (no following).
    pub fn readlink(&self, uid: u32, path: &str) -> Result<String, ClientError> {
        self.readlink_abs(uid, path, 0)
    }

    /// Checks whether a mounted file system has moved (§2.4 forwarding
    /// pointers): reads the well-known `/.forward` file and validates the
    /// signed pointer against the old pathname. Returns the new pathname
    /// when a valid pointer exists. Callers must consult revocation first
    /// — a revocation certificate always overrules a forwarding pointer.
    pub fn check_forwarding(
        &self,
        uid: u32,
        old_path: &SelfCertifyingPath,
    ) -> Result<Option<SelfCertifyingPath>, ClientError> {
        let file = format!("{}/.forward", old_path.full_path());
        let bytes = match self.read_file(uid, &file) {
            Ok(b) => b,
            Err(ClientError::Nfs(Status::NoEnt)) => return Ok(None),
            Err(e) => return Err(e),
        };
        let ptr = sfs_proto::revoke::ForwardingPointer::from_xdr(&bytes)
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        if ptr.forwards(old_path) {
            Ok(Some(ptr.new_path))
        } else {
            Err(ClientError::Protocol("invalid forwarding pointer".into()))
        }
    }

    /// Lists the `/sfs` directory as seen by `uid`'s agent: only
    /// referenced self-certifying names plus the agent's dynamic links
    /// ("the client hides pathnames that have never been accessed under a
    /// particular agent", §2.3).
    pub fn list_sfs(&self, uid: u32) -> Vec<String> {
        let mut names: BTreeSet<String> = self
            .referenced
            .lock()
            .get(&uid)
            .cloned()
            .unwrap_or_default();
        let agent = self.agent(uid);
        for (name, _) in agent.lock().links() {
            names.insert(name.to_string());
        }
        names.into_iter().collect()
    }

    /// `pwd` support (§2.4 secure bookmarks): the full self-certifying
    /// pathname of a mount plus a relative directory.
    pub fn pwd(&self, mount: &Mount, rel: &str) -> String {
        if rel.is_empty() {
            mount.path.full_path()
        } else {
            format!("{}/{}", mount.path.full_path(), rel.trim_matches('/'))
        }
    }

    // ----- Convenience file operations (what the kernel would issue) ----

    /// Creates (or truncates) a file and writes `data`.
    pub fn write_file(&self, uid: u32, path: &str, data: &[u8]) -> Result<(), ClientError> {
        let (dir, leaf) = split_parent(path)?;
        let (mount, dir_fh, _) = self.resolve(uid, dir)?;
        let fh = match self.call_nfs(
            &mount,
            uid,
            &Nfs3Request::Lookup {
                dir: dir_fh.clone(),
                name: leaf.to_string(),
            },
        )? {
            Nfs3Reply::Lookup { fh, .. } => {
                self.call_nfs(
                    &mount,
                    uid,
                    &Nfs3Request::SetAttr {
                        fh: fh.clone(),
                        attrs: Sattr3 {
                            size: Some(0),
                            ..Default::default()
                        },
                    },
                )?;
                fh
            }
            Nfs3Reply::Error {
                status: Status::NoEnt,
                ..
            } => {
                match self.call_nfs(
                    &mount,
                    uid,
                    &Nfs3Request::Create {
                        dir: dir_fh.clone(),
                        name: leaf.to_string(),
                        attrs: Sattr3 {
                            mode: Some(0o644),
                            ..Default::default()
                        },
                    },
                )? {
                    Nfs3Reply::Create { fh, .. } => fh,
                    // NFS retry semantics: LOOKUP just said NoEnt, so
                    // Exist can only mean an earlier transmission of this
                    // CREATE executed but its reply was lost and the call
                    // reissued after a rekey. The file is there — fetch
                    // its handle and truncate, as if LOOKUP had won.
                    Nfs3Reply::Error {
                        status: Status::Exist,
                        ..
                    } => match self.call_nfs(
                        &mount,
                        uid,
                        &Nfs3Request::Lookup {
                            dir: dir_fh,
                            name: leaf.to_string(),
                        },
                    )? {
                        Nfs3Reply::Lookup { fh, .. } => {
                            self.call_nfs(
                                &mount,
                                uid,
                                &Nfs3Request::SetAttr {
                                    fh: fh.clone(),
                                    attrs: Sattr3 {
                                        size: Some(0),
                                        ..Default::default()
                                    },
                                },
                            )?;
                            fh
                        }
                        Nfs3Reply::Error { status, .. } => return Err(ClientError::Nfs(status)),
                        other => return Err(ClientError::Protocol(format!("{other:?}"))),
                    },
                    Nfs3Reply::Error { status, .. } => return Err(ClientError::Nfs(status)),
                    other => return Err(ClientError::Protocol(format!("{other:?}"))),
                }
            }
            Nfs3Reply::Error { status, .. } => return Err(ClientError::Nfs(status)),
            other => return Err(ClientError::Protocol(format!("{other:?}"))),
        };
        // Stream the data out in write-behind chunks — up to a pipeline
        // window of WRITEs rides the wire at once — then barrier: this
        // is the close(), nothing is outstanding when it returns.
        let mut offset = 0u64;
        for chunk in data.chunks(STREAM_CHUNK) {
            self.write_behind(&mount, uid, &fh, offset, chunk.to_vec())?;
            offset += chunk.len() as u64;
        }
        self.barrier(&mount)
    }

    /// Reads a whole file.
    pub fn read_file(&self, uid: u32, path: &str) -> Result<Vec<u8>, ClientError> {
        let (mount, fh, attr) = self.resolve(uid, path)?;
        let mut out = Vec::with_capacity(attr.size as usize);
        let mut offset = 0u64;
        loop {
            let (data, eof) = self.read(&mount, uid, &fh, offset, STREAM_CHUNK as u32)?;
            offset += data.len() as u64;
            let done = eof || data.is_empty();
            out.extend_from_slice(&data);
            if done {
                return Ok(out);
            }
        }
    }

    /// Creates a directory.
    pub fn mkdir(&self, uid: u32, path: &str) -> Result<(), ClientError> {
        let (dir, leaf) = split_parent(path)?;
        let (mount, dir_fh, _) = self.resolve(uid, dir)?;
        match self.call_nfs(
            &mount,
            uid,
            &Nfs3Request::Mkdir {
                dir: dir_fh,
                name: leaf.to_string(),
                attrs: Sattr3 {
                    mode: Some(0o755),
                    ..Default::default()
                },
            },
        )? {
            Nfs3Reply::Mkdir { .. } => Ok(()),
            Nfs3Reply::Error { status, .. } => Err(ClientError::Nfs(status)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Creates a symlink (the key-management primitive of §2.4).
    pub fn symlink(&self, uid: u32, path: &str, target: &str) -> Result<(), ClientError> {
        let (dir, leaf) = split_parent(path)?;
        let (mount, dir_fh, _) = self.resolve(uid, dir)?;
        match self.call_nfs(
            &mount,
            uid,
            &Nfs3Request::Symlink {
                dir: dir_fh,
                name: leaf.to_string(),
                target: target.to_string(),
            },
        )? {
            Nfs3Reply::Symlink { .. } => Ok(()),
            Nfs3Reply::Error { status, .. } => Err(ClientError::Nfs(status)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Removes a file.
    pub fn remove(&self, uid: u32, path: &str) -> Result<(), ClientError> {
        let (dir, leaf) = split_parent(path)?;
        let (mount, dir_fh, _) = self.resolve(uid, dir)?;
        match self.call_nfs(
            &mount,
            uid,
            &Nfs3Request::Remove {
                dir: dir_fh,
                name: leaf.to_string(),
            },
        )? {
            Nfs3Reply::Remove { .. } => Ok(()),
            Nfs3Reply::Error { status, .. } => Err(ClientError::Nfs(status)),
            other => Err(ClientError::Protocol(format!("{other:?}"))),
        }
    }

    /// Lists a directory (names only).
    pub fn readdir(&self, uid: u32, path: &str) -> Result<Vec<String>, ClientError> {
        let (mount, fh, _) = self.resolve(uid, path)?;
        let mut names = Vec::new();
        let mut cookie = 0;
        loop {
            match self.call_nfs(
                &mount,
                uid,
                &Nfs3Request::ReadDir {
                    dir: fh.clone(),
                    cookie,
                    count: 64,
                    plus: false,
                },
            )? {
                Nfs3Reply::ReadDir { entries, eof, .. } => {
                    for e in entries {
                        cookie = e.cookie;
                        names.push(e.name);
                    }
                    if eof {
                        return Ok(names);
                    }
                }
                Nfs3Reply::Error { status, .. } => return Err(ClientError::Nfs(status)),
                other => return Err(ClientError::Protocol(format!("{other:?}"))),
            }
        }
    }
}

impl std::fmt::Debug for SfsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SfsClient")
            .field("mounts", &self.mounts.lock().len())
            .field("agents", &self.agents.lock().len())
            .finish()
    }
}

fn split_parent(path: &str) -> Result<(&str, &str), ClientError> {
    let path = path.trim_end_matches('/');
    match path.rfind('/') {
        Some(i) if i > 0 => Ok((&path[..i], &path[i + 1..])),
        _ => Err(ClientError::Path(PathError::BadFormat)),
    }
}
