//! Robustness: the NFS3 protocol engine must never panic on hostile
//! input. The paper singles this out (§3.3): "During the course of
//! developing SFS, we found and fixed a number of client and server NFS
//! bugs … perfectly valid NFS messages caused the kernel to overrun
//! buffers or use uninitialized memory. An attacker could exploit such
//! weaknesses." This engine is the part of the reproduction most exposed
//! to attacker-controlled bytes. Inputs come from a seeded SplitMix64
//! generator, so every run fuzzes the same sample deterministically.

use sfs_nfs3::proto::{Nfs3Reply, Nfs3Request, Proc};
use sfs_nfs3::Nfs3Server;
use sfs_sim::SimClock;
use sfs_vfs::{Credentials, Vfs};
use sfs_xdr::rpc::{OpaqueAuth, RpcCall};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn all_procs() -> Vec<Proc> {
    (0u32..22).filter_map(Proc::from_u32).collect()
}

#[test]
fn decode_args_never_panics() {
    let mut rng = Rng(0xDECA);
    let procs = all_procs();
    for _ in 0..512 {
        let proc = procs[rng.below(procs.len() as u64) as usize];
        let len = rng.below(300) as usize;
        let bytes = rng.bytes(len);
        let _ = Nfs3Request::decode_args(proc, &bytes);
    }
}

#[test]
fn decode_results_never_panics() {
    let mut rng = Rng(0xDEC2);
    let procs = all_procs();
    for _ in 0..512 {
        let proc = procs[rng.below(procs.len() as u64) as usize];
        let len = rng.below(300) as usize;
        let bytes = rng.bytes(len);
        let _ = Nfs3Reply::decode_results(proc, &bytes);
    }
}

#[test]
fn server_survives_arbitrary_rpc_bytes() {
    let mut rng = Rng(0x5E4F);
    for _ in 0..256 {
        let server = Nfs3Server::new(Vfs::new(1, SimClock::new()));
        let call = RpcCall {
            xid: 1,
            prog: 100003,
            vers: rng.next() as u32,
            proc: rng.next() as u32,
            cred: OpaqueAuth::none(),
            verf: OpaqueAuth::none(),
            args: {
                let len = rng.below(200) as usize;
                rng.bytes(len)
            },
        };
        // Must return an RPC-level or NFS-level error, never panic.
        let _ = server.dispatch_rpc(&Credentials::anonymous(), &call);
    }
}

#[test]
fn request_decode_encode_decode_is_stable() {
    let mut rng = Rng(0x57AB);
    let procs = all_procs();
    for _ in 0..512 {
        // If hostile bytes *do* decode, re-encoding and re-decoding must
        // yield the same structure (no lossy acceptance).
        let proc = procs[rng.below(procs.len() as u64) as usize];
        let len = rng.below(300) as usize;
        let bytes = rng.bytes(len);
        if let Ok(req) = Nfs3Request::decode_args(proc, &bytes) {
            let reencoded = req.encode_args();
            let again = Nfs3Request::decode_args(req.proc(), &reencoded).unwrap();
            assert_eq!(again, req);
        }
    }
}
