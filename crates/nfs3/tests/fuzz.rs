//! Robustness: the NFS3 protocol engine must never panic on hostile
//! input. The paper singles this out (§3.3): "During the course of
//! developing SFS, we found and fixed a number of client and server NFS
//! bugs … perfectly valid NFS messages caused the kernel to overrun
//! buffers or use uninitialized memory. An attacker could exploit such
//! weaknesses." This engine is the part of the reproduction most exposed
//! to attacker-controlled bytes.

use proptest::prelude::*;
use sfs_nfs3::proto::{Nfs3Reply, Nfs3Request, Proc};
use sfs_nfs3::Nfs3Server;
use sfs_sim::SimClock;
use sfs_vfs::{Credentials, Vfs};
use sfs_xdr::rpc::{OpaqueAuth, RpcCall};

fn all_procs() -> Vec<Proc> {
    (0u32..22).filter_map(Proc::from_u32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn decode_args_never_panics(proc_ix in any::<prop::sample::Index>(),
                                bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let procs = all_procs();
        let proc = procs[proc_ix.index(procs.len())];
        let _ = Nfs3Request::decode_args(proc, &bytes);
    }

    #[test]
    fn decode_results_never_panics(proc_ix in any::<prop::sample::Index>(),
                                   bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let procs = all_procs();
        let proc = procs[proc_ix.index(procs.len())];
        let _ = Nfs3Reply::decode_results(proc, &bytes);
    }

    #[test]
    fn server_survives_arbitrary_rpc_bytes(
        proc in any::<u32>(),
        vers in any::<u32>(),
        args in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let server = Nfs3Server::new(Vfs::new(1, SimClock::new()));
        let call = RpcCall {
            xid: 1,
            prog: 100003,
            vers,
            proc,
            cred: OpaqueAuth::none(),
            verf: OpaqueAuth::none(),
            args,
        };
        // Must return an RPC-level or NFS-level error, never panic.
        let _ = server.dispatch_rpc(&Credentials::anonymous(), &call);
    }

    #[test]
    fn request_decode_encode_decode_is_stable(
        proc_ix in any::<prop::sample::Index>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        // If hostile bytes *do* decode, re-encoding and re-decoding must
        // yield the same structure (no lossy acceptance).
        let procs = all_procs();
        let proc = procs[proc_ix.index(procs.len())];
        if let Ok(req) = Nfs3Request::decode_args(proc, &bytes) {
            let reencoded = req.encode_args();
            let again = Nfs3Request::decode_args(req.proc(), &reencoded).unwrap();
            prop_assert_eq!(again, req);
        }
    }
}
