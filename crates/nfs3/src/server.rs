//! The NFS3 server over a [`Vfs`].
//!
//! This plays the role of the kernel NFS server that the SFS read-write
//! server relays to (§3), and is also used directly as the NFS baseline in
//! the benchmarks. It supports the two SFS extensions from §3.3: attribute
//! leases and server→client invalidation callbacks ("The server does not
//! wait for invalidations to be acknowledged; consistency does not need to
//! be perfect, just better than NFS 3").

use std::collections::HashSet;
use std::sync::Arc;

use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;
use sfs_vfs::{AccessMode, Credentials, FsError, Ino, Vfs};
use sfs_xdr::rpc::{AcceptStat, RpcCall, RpcReply};

use crate::proto::{
    DirEntry, FileHandle, Nfs3Reply, Nfs3Request, PostOpAttr, Proc, StableHow, Status, NFS_PROGRAM,
    NFS_VERSION,
};

/// ACCESS mask bits (RFC 1813).
pub mod access {
    /// Read file data / readdir.
    pub const READ: u32 = 0x01;
    /// Look up names in a directory.
    pub const LOOKUP: u32 = 0x02;
    /// Modify existing data.
    pub const MODIFY: u32 = 0x04;
    /// Append/extend.
    pub const EXTEND: u32 = 0x08;
    /// Delete entries.
    pub const DELETE: u32 = 0x10;
    /// Execute.
    pub const EXECUTE: u32 = 0x20;
}

/// A sink receiving invalidation callbacks for leased file handles.
pub type InvalidationSink = Arc<dyn Fn(FileHandle) + Send + Sync>;

/// The NFS3 server.
#[derive(Clone)]
pub struct Nfs3Server {
    vfs: Vfs,
    /// Lease duration granted on attributes; zero disables the SFS
    /// extension (plain NFS3 behaviour).
    lease_ns: u64,
    /// Inodes whose attributes are out on lease.
    leased: Arc<Mutex<HashSet<Ino>>>,
    /// Where invalidations are delivered.
    sink: Arc<Mutex<Option<InvalidationSink>>>,
    /// Tracing sink, shared across clones so it can be attached after the
    /// server has been embedded (e.g. inside an `SfsServer`).
    tel: Arc<Mutex<Telemetry>>,
}

impl Nfs3Server {
    /// Creates a server exporting `vfs` with no leases (plain NFS3).
    pub fn new(vfs: Vfs) -> Self {
        Nfs3Server {
            vfs,
            lease_ns: 0,
            leased: Arc::new(Mutex::new(HashSet::new())),
            sink: Arc::new(Mutex::new(None)),
            tel: Arc::new(Mutex::new(Telemetry::disabled())),
        }
    }

    /// Attaches a tracing sink; per-procedure spans and latency
    /// histograms are stamped with the exported file system's clock.
    pub fn set_telemetry(&self, tel: &Telemetry) {
        *self.tel.lock() = tel.clone().with_clock(self.vfs.clock().clone());
    }

    /// Enables the SFS lease extension with the given duration.
    pub fn with_leases(mut self, lease_ns: u64) -> Self {
        self.lease_ns = lease_ns;
        self
    }

    /// Registers the callback sink for lease invalidations.
    pub fn set_invalidation_sink(&self, sink: InvalidationSink) {
        *self.sink.lock() = Some(sink);
    }

    /// The exported file system.
    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// The root file handle of the export.
    pub fn root_handle(&self) -> FileHandle {
        self.encode_handle(self.vfs.root())
    }

    /// Encodes an inode as a file handle: fsid ‖ ino (16 bytes).
    pub fn encode_handle(&self, ino: Ino) -> FileHandle {
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&self.vfs.fsid().to_be_bytes());
        bytes.extend_from_slice(&ino.to_be_bytes());
        FileHandle(bytes)
    }

    /// Decodes and validates a file handle.
    pub fn decode_handle(&self, fh: &FileHandle) -> Result<Ino, Status> {
        if fh.0.len() != 16 {
            return Err(Status::BadHandle);
        }
        let fsid = u64::from_be_bytes(fh.0[..8].try_into().unwrap());
        if fsid != self.vfs.fsid() {
            return Err(Status::BadHandle);
        }
        Ok(u64::from_be_bytes(fh.0[8..16].try_into().unwrap()))
    }

    fn post_op(&self, ino: Ino) -> PostOpAttr {
        match self.vfs.getattr(ino) {
            Ok(a) => {
                if self.lease_ns > 0 {
                    self.leased.lock().insert(ino);
                    PostOpAttr::leased(a.into(), self.lease_ns)
                } else {
                    PostOpAttr::plain(a.into())
                }
            }
            Err(_) => PostOpAttr::none(),
        }
    }

    /// Emits an invalidation callback if `ino`'s attributes are out on
    /// lease (fire-and-forget, per §3.3).
    fn invalidate(&self, ino: Ino) {
        if self.lease_ns == 0 {
            return;
        }
        if self.leased.lock().remove(&ino) {
            self.tel.lock().count("server", "nfs3.invalidations", 1);
            if let Some(sink) = &*self.sink.lock() {
                sink(self.encode_handle(ino));
            }
        }
    }

    fn err(&self, status: Status) -> Nfs3Reply {
        Nfs3Reply::Error {
            status,
            dir_attr: PostOpAttr::none(),
        }
    }

    /// Handles one NFS3 request under `creds`, under a per-procedure
    /// span, with per-procedure service-time histograms.
    pub fn handle(&self, creds: &Credentials, req: &Nfs3Request) -> Nfs3Reply {
        let tel = self.tel.lock().clone();
        let name = proc_name(req);
        let start = tel.now_ns();
        let span = tel.span("server", "nfs3", name);
        let reply = match self.try_handle(creds, req) {
            Ok(reply) => reply,
            Err(status) => self.err(status),
        };
        drop(span);
        tel.count("server", "nfs3.calls", 1);
        tel.record("server", name, tel.now_ns().saturating_sub(start));
        reply
    }

    fn try_handle(&self, creds: &Credentials, req: &Nfs3Request) -> Result<Nfs3Reply, Status> {
        let map = |e: FsError| -> Status { e.into() };
        Ok(match req {
            Nfs3Request::Null => Nfs3Reply::Null,
            Nfs3Request::GetAttr { fh } => {
                let ino = self.decode_handle(fh)?;
                let attr = self.vfs.getattr(ino).map_err(map)?;
                if self.lease_ns > 0 {
                    self.leased.lock().insert(ino);
                }
                Nfs3Reply::GetAttr {
                    attr: attr.into(),
                    lease_ns: self.lease_ns,
                }
            }
            Nfs3Request::SetAttr { fh, attrs } => {
                let ino = self.decode_handle(fh)?;
                self.vfs.setattr(creds, ino, (*attrs).into()).map_err(map)?;
                self.invalidate(ino);
                Ok::<_, Status>(Nfs3Reply::SetAttr {
                    attr: self.post_op(ino),
                })?
            }
            Nfs3Request::Lookup { dir, name } => {
                let dino = self.decode_handle(dir)?;
                let (ino, _) = self.vfs.lookup(creds, dino, name).map_err(map)?;
                Nfs3Reply::Lookup {
                    fh: self.encode_handle(ino),
                    attr: self.post_op(ino),
                    dir_attr: self.post_op(dino),
                }
            }
            Nfs3Request::Access { fh, mask } => {
                let ino = self.decode_handle(fh)?;
                let attr = self.vfs.getattr(ino).map_err(map)?;
                let mut granted = 0;
                if attr.permits(creds, AccessMode::Read) {
                    granted |= access::READ;
                }
                if attr.permits(creds, AccessMode::Write) {
                    granted |= access::MODIFY | access::EXTEND | access::DELETE;
                }
                if attr.permits(creds, AccessMode::Execute) {
                    granted |= access::EXECUTE | access::LOOKUP;
                }
                Nfs3Reply::Access {
                    granted: granted & mask,
                    attr: self.post_op(ino),
                }
            }
            Nfs3Request::ReadLink { fh } => {
                let ino = self.decode_handle(fh)?;
                let target = self.vfs.readlink(ino).map_err(map)?;
                Nfs3Reply::ReadLink {
                    target,
                    attr: self.post_op(ino),
                }
            }
            Nfs3Request::Read { fh, offset, count } => {
                let ino = self.decode_handle(fh)?;
                let (data, eof) = self
                    .vfs
                    .read(creds, ino, *offset, *count as usize)
                    .map_err(map)?;
                Nfs3Reply::Read {
                    data,
                    eof,
                    attr: self.post_op(ino),
                }
            }
            Nfs3Request::Write {
                fh,
                offset,
                stable,
                data,
            } => {
                let ino = self.decode_handle(fh)?;
                self.vfs
                    .write(creds, ino, *offset, data, *stable == StableHow::FileSync)
                    .map_err(map)?;
                self.invalidate(ino);
                Nfs3Reply::Write {
                    count: data.len() as u32,
                    committed: *stable,
                    attr: self.post_op(ino),
                }
            }
            Nfs3Request::Create { dir, name, attrs } => {
                let dino = self.decode_handle(dir)?;
                let mode = attrs.mode.unwrap_or(0o644);
                let (ino, _) = self.vfs.create(creds, dino, name, mode).map_err(map)?;
                self.invalidate(dino);
                Nfs3Reply::Create {
                    fh: self.encode_handle(ino),
                    attr: self.post_op(ino),
                    dir_attr: self.post_op(dino),
                }
            }
            Nfs3Request::Mkdir { dir, name, attrs } => {
                let dino = self.decode_handle(dir)?;
                let mode = attrs.mode.unwrap_or(0o755);
                let (ino, _) = self.vfs.mkdir(creds, dino, name, mode).map_err(map)?;
                self.invalidate(dino);
                Nfs3Reply::Mkdir {
                    fh: self.encode_handle(ino),
                    attr: self.post_op(ino),
                    dir_attr: self.post_op(dino),
                }
            }
            Nfs3Request::Symlink { dir, name, target } => {
                let dino = self.decode_handle(dir)?;
                let (ino, _) = self.vfs.symlink(creds, dino, name, target).map_err(map)?;
                self.invalidate(dino);
                Nfs3Reply::Symlink {
                    fh: self.encode_handle(ino),
                    attr: self.post_op(ino),
                    dir_attr: self.post_op(dino),
                }
            }
            Nfs3Request::Remove { dir, name } => {
                let dino = self.decode_handle(dir)?;
                // Invalidate the victim before it goes stale.
                if let Ok((victim, _)) = self.vfs.lookup(creds, dino, name) {
                    self.invalidate(victim);
                }
                self.vfs.remove(creds, dino, name).map_err(map)?;
                self.invalidate(dino);
                Nfs3Reply::Remove {
                    dir_attr: self.post_op(dino),
                }
            }
            Nfs3Request::Rmdir { dir, name } => {
                let dino = self.decode_handle(dir)?;
                if let Ok((victim, _)) = self.vfs.lookup(creds, dino, name) {
                    self.invalidate(victim);
                }
                self.vfs.rmdir(creds, dino, name).map_err(map)?;
                self.invalidate(dino);
                Nfs3Reply::Rmdir {
                    dir_attr: self.post_op(dino),
                }
            }
            Nfs3Request::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            } => {
                let fdino = self.decode_handle(from_dir)?;
                let tdino = self.decode_handle(to_dir)?;
                self.vfs
                    .rename(creds, fdino, from_name, tdino, to_name)
                    .map_err(map)?;
                self.invalidate(fdino);
                self.invalidate(tdino);
                Nfs3Reply::Rename {
                    from_dir_attr: self.post_op(fdino),
                    to_dir_attr: self.post_op(tdino),
                }
            }
            Nfs3Request::Link { fh, dir, name } => {
                let ino = self.decode_handle(fh)?;
                let dino = self.decode_handle(dir)?;
                self.vfs.link(creds, ino, dino, name).map_err(map)?;
                self.invalidate(ino);
                self.invalidate(dino);
                Nfs3Reply::Link {
                    attr: self.post_op(ino),
                    dir_attr: self.post_op(dino),
                }
            }
            Nfs3Request::ReadDir {
                dir,
                cookie,
                count,
                plus,
            } => {
                let dino = self.decode_handle(dir)?;
                // The cookie counts entries already returned.
                let (all, _) = self
                    .vfs
                    .readdir(creds, dino, None, usize::MAX)
                    .map_err(map)?;
                let per_page = (*count as usize).max(1);
                let start = *cookie as usize;
                let page: Vec<DirEntry> = all
                    .iter()
                    .skip(start)
                    .take(per_page)
                    .enumerate()
                    .map(|(i, (name, ino))| DirEntry {
                        fileid: *ino,
                        name: name.clone(),
                        cookie: (start + i + 1) as u64,
                        plus: if *plus {
                            Some((self.encode_handle(*ino), self.post_op(*ino)))
                        } else {
                            None
                        },
                    })
                    .collect();
                let eof = start + page.len() >= all.len();
                Nfs3Reply::ReadDir {
                    entries: page,
                    eof,
                    dir_attr: self.post_op(dino),
                }
            }
            Nfs3Request::FsStat { root } => {
                self.decode_handle(root)?;
                Nfs3Reply::FsStat {
                    total_bytes: 9 * 1024 * 1024 * 1024,
                    free_bytes: 8 * 1024 * 1024 * 1024,
                    total_files: self.vfs.inode_count() as u64,
                }
            }
            Nfs3Request::FsInfo { root } => {
                self.decode_handle(root)?;
                Nfs3Reply::FsInfo {
                    rtmax: 32768,
                    wtmax: 32768,
                    dtpref: 8192,
                }
            }
            Nfs3Request::PathConf { fh } => {
                self.decode_handle(fh)?;
                Nfs3Reply::PathConf {
                    name_max: sfs_vfs::fs::NAME_MAX as u32,
                    linkmax: sfs_vfs::fs::LINK_MAX,
                }
            }
            Nfs3Request::Commit { fh, .. } => {
                let ino = self.decode_handle(fh)?;
                self.vfs.commit();
                Nfs3Reply::Commit {
                    attr: self.post_op(ino),
                }
            }
        })
    }

    /// Full RPC-layer dispatch: unmarshals the call, handles it, and
    /// marshals the reply — the path a wire-connected client exercises.
    pub fn dispatch_rpc(&self, creds: &Credentials, call: &RpcCall) -> RpcReply {
        if call.prog != NFS_PROGRAM {
            return RpcReply::error(call, AcceptStat::ProgUnavail);
        }
        if call.vers != NFS_VERSION {
            return RpcReply::error(call, AcceptStat::ProgMismatch);
        }
        let Some(proc) = Proc::from_u32(call.proc) else {
            return RpcReply::error(call, AcceptStat::ProcUnavail);
        };
        let Ok(req) = Nfs3Request::decode_args(proc, &call.args) else {
            return RpcReply::error(call, AcceptStat::GarbageArgs);
        };
        let reply = self.handle(creds, &req);
        RpcReply::success(call, reply.encode_results())
    }
}

/// RFC 1813 procedure name for a request, used as the span name and the
/// service-time histogram key.
fn proc_name(req: &Nfs3Request) -> &'static str {
    match req {
        Nfs3Request::Null => "NULL",
        Nfs3Request::GetAttr { .. } => "GETATTR",
        Nfs3Request::SetAttr { .. } => "SETATTR",
        Nfs3Request::Lookup { .. } => "LOOKUP",
        Nfs3Request::Access { .. } => "ACCESS",
        Nfs3Request::ReadLink { .. } => "READLINK",
        Nfs3Request::Read { .. } => "READ",
        Nfs3Request::Write { .. } => "WRITE",
        Nfs3Request::Create { .. } => "CREATE",
        Nfs3Request::Mkdir { .. } => "MKDIR",
        Nfs3Request::Symlink { .. } => "SYMLINK",
        Nfs3Request::Remove { .. } => "REMOVE",
        Nfs3Request::Rmdir { .. } => "RMDIR",
        Nfs3Request::Rename { .. } => "RENAME",
        Nfs3Request::Link { .. } => "LINK",
        Nfs3Request::ReadDir { plus: false, .. } => "READDIR",
        Nfs3Request::ReadDir { plus: true, .. } => "READDIRPLUS",
        Nfs3Request::FsStat { .. } => "FSSTAT",
        Nfs3Request::FsInfo { .. } => "FSINFO",
        Nfs3Request::PathConf { .. } => "PATHCONF",
        Nfs3Request::Commit { .. } => "COMMIT",
    }
}

impl std::fmt::Debug for Nfs3Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nfs3Server")
            .field("fsid", &self.vfs.fsid())
            .field("lease_ns", &self.lease_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_sim::SimClock;
    use sfs_xdr::rpc::OpaqueAuth;

    fn server() -> Nfs3Server {
        Nfs3Server::new(Vfs::new(7, SimClock::new()))
    }

    fn root() -> Credentials {
        Credentials::root()
    }

    #[test]
    fn create_write_read_via_protocol() {
        let s = server();
        let creds = root();
        let rh = s.root_handle();
        let reply = s.handle(
            &creds,
            &Nfs3Request::Create {
                dir: rh.clone(),
                name: "f".into(),
                attrs: Default::default(),
            },
        );
        let fh = match reply {
            Nfs3Reply::Create { fh, .. } => fh,
            other => panic!("{other:?}"),
        };
        let reply = s.handle(
            &creds,
            &Nfs3Request::Write {
                fh: fh.clone(),
                offset: 0,
                stable: StableHow::FileSync,
                data: b"hello nfs".to_vec(),
            },
        );
        assert!(matches!(reply, Nfs3Reply::Write { count: 9, .. }));
        let reply = s.handle(
            &creds,
            &Nfs3Request::Read {
                fh,
                offset: 0,
                count: 100,
            },
        );
        match reply {
            Nfs3Reply::Read { data, eof, .. } => {
                assert_eq!(data, b"hello nfs");
                assert!(eof);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lookup_missing_gives_noent() {
        let s = server();
        let reply = s.handle(
            &root(),
            &Nfs3Request::Lookup {
                dir: s.root_handle(),
                name: "ghost".into(),
            },
        );
        assert_eq!(reply.status(), Status::NoEnt);
    }

    #[test]
    fn bad_handle_rejected() {
        let s = server();
        let reply = s.handle(
            &root(),
            &Nfs3Request::GetAttr {
                fh: FileHandle(vec![1, 2, 3]),
            },
        );
        assert_eq!(reply.status(), Status::BadHandle);
        // Wrong fsid.
        let mut fh = s.root_handle();
        fh.0[0] ^= 1;
        let reply = s.handle(&root(), &Nfs3Request::GetAttr { fh });
        assert_eq!(reply.status(), Status::BadHandle);
    }

    #[test]
    fn access_mask_respects_permissions() {
        let s = server();
        let creds = root();
        let alice = Credentials::user(1000, 100);
        let reply = s.handle(
            &creds,
            &Nfs3Request::Create {
                dir: s.root_handle(),
                name: "private".into(),
                attrs: crate::proto::Sattr3 {
                    mode: Some(0o600),
                    ..Default::default()
                },
            },
        );
        let fh = match reply {
            Nfs3Reply::Create { fh, .. } => fh,
            other => panic!("{other:?}"),
        };
        let reply = s.handle(&alice, &Nfs3Request::Access { fh, mask: 0x3f });
        match reply {
            Nfs3Reply::Access { granted, .. } => assert_eq!(granted, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn readdir_paginates_with_cookies() {
        let s = server();
        let creds = root();
        for i in 0..7 {
            s.handle(
                &creds,
                &Nfs3Request::Create {
                    dir: s.root_handle(),
                    name: format!("f{i}"),
                    attrs: Default::default(),
                },
            );
        }
        let mut names = Vec::new();
        let mut cookie = 0;
        loop {
            let reply = s.handle(
                &creds,
                &Nfs3Request::ReadDir {
                    dir: s.root_handle(),
                    cookie,
                    count: 3,
                    plus: false,
                },
            );
            match reply {
                Nfs3Reply::ReadDir { entries, eof, .. } => {
                    for e in &entries {
                        names.push(e.name.clone());
                        cookie = e.cookie;
                    }
                    if eof {
                        break;
                    }
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn leases_granted_and_invalidated() {
        let s = Nfs3Server::new(Vfs::new(7, SimClock::new())).with_leases(1_000_000);
        let invalidated: Arc<Mutex<Vec<FileHandle>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = invalidated.clone();
        s.set_invalidation_sink(Arc::new(move |fh| sink.lock().push(fh)));
        let creds = root();
        let reply = s.handle(
            &creds,
            &Nfs3Request::Create {
                dir: s.root_handle(),
                name: "f".into(),
                attrs: Default::default(),
            },
        );
        let fh = match reply {
            Nfs3Reply::Create { fh, .. } => fh,
            other => panic!("{other:?}"),
        };
        // GetAttr grants a lease.
        match s.handle(&creds, &Nfs3Request::GetAttr { fh: fh.clone() }) {
            Nfs3Reply::GetAttr { lease_ns, .. } => assert_eq!(lease_ns, 1_000_000),
            other => panic!("{other:?}"),
        }
        // A write invalidates it.
        s.handle(
            &creds,
            &Nfs3Request::Write {
                fh: fh.clone(),
                offset: 0,
                stable: StableHow::Unstable,
                data: vec![1],
            },
        );
        assert!(invalidated.lock().contains(&fh));
    }

    #[test]
    fn plain_server_grants_no_lease() {
        let s = server();
        let reply = s.handle(
            &root(),
            &Nfs3Request::GetAttr {
                fh: s.root_handle(),
            },
        );
        match reply {
            Nfs3Reply::GetAttr { lease_ns, .. } => assert_eq!(lease_ns, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rpc_dispatch_full_path() {
        let s = server();
        let req = Nfs3Request::GetAttr {
            fh: s.root_handle(),
        };
        let call = RpcCall {
            xid: 1,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc: req.proc() as u32,
            cred: OpaqueAuth::none(),
            verf: OpaqueAuth::none(),
            args: req.encode_args(),
        };
        let reply = s.dispatch_rpc(&root(), &call);
        assert_eq!(reply.status, Ok(AcceptStat::Success));
        let nfs_reply = Nfs3Reply::decode_results(Proc::GetAttr, &reply.results).unwrap();
        assert!(matches!(nfs_reply, Nfs3Reply::GetAttr { .. }));
    }

    #[test]
    fn rpc_dispatch_rejects_wrong_program() {
        let s = server();
        let call = RpcCall {
            xid: 1,
            prog: 99,
            vers: 3,
            proc: 0,
            cred: OpaqueAuth::none(),
            verf: OpaqueAuth::none(),
            args: vec![],
        };
        assert_eq!(
            s.dispatch_rpc(&root(), &call).status,
            Ok(AcceptStat::ProgUnavail)
        );
        let call = RpcCall {
            prog: NFS_PROGRAM,
            vers: 2,
            ..call
        };
        assert_eq!(
            s.dispatch_rpc(&root(), &call).status,
            Ok(AcceptStat::ProgMismatch)
        );
        let call = RpcCall {
            vers: NFS_VERSION,
            proc: 11,
            ..call
        };
        assert_eq!(
            s.dispatch_rpc(&root(), &call).status,
            Ok(AcceptStat::ProcUnavail)
        );
    }

    #[test]
    fn symlink_and_readlink() {
        let s = server();
        let creds = root();
        let reply = s.handle(
            &creds,
            &Nfs3Request::Symlink {
                dir: s.root_handle(),
                name: "sfslink".into(),
                target: "/sfs/host:2222222222222222222222222222222a".into(),
            },
        );
        let fh = match reply {
            Nfs3Reply::Symlink { fh, .. } => fh,
            other => panic!("{other:?}"),
        };
        match s.handle(&creds, &Nfs3Request::ReadLink { fh }) {
            Nfs3Reply::ReadLink { target, .. } => {
                assert!(target.starts_with("/sfs/host:"));
            }
            other => panic!("{other:?}"),
        }
    }
}
