//! NFS version 3 protocol engine (module list; implementation follows).

pub mod proto;
pub mod server;

pub use proto::*;
pub use server::Nfs3Server;
