//! NFS version 3 wire types (RFC 1813 subset).
//!
//! The paper builds both sides of SFS on NFS 3: "the SFS client software
//! behaves like an NFS version 3 server … the server modifies requests
//! slightly and tags them with appropriate credentials" (§3). This module
//! defines the procedures SFS relays, with XDR encodings, plus the two SFS
//! protocol extensions from §3.3:
//!
//! - "every file attribute structure returned by the server has a timeout
//!   field or lease" — [`PostOpAttr::lease_ns`];
//! - server→client invalidation callbacks are carried out of band by the
//!   server type (`crate::server`).
//!
//! Simplification: RFC 1813's `wcc_data` (pre-operation attributes) is
//! collapsed into post-operation attributes only; SFS's caching layer
//! invalidates on lease/callback rather than reconstructing from wcc.

use sfs_vfs::{Attr, FileType, FsError, SetAttr};
use sfs_xdr::{Xdr, XdrDecoder, XdrEncoder, XdrError};

/// NFS program number.
pub const NFS_PROGRAM: u32 = 100003;

/// NFS version.
pub const NFS_VERSION: u32 = 3;

/// Maximum file-handle size (RFC 1813 NFS3_FHSIZE).
pub const FHSIZE: usize = 64;

/// An opaque NFS file handle.
///
/// "NFS identifies files by server-chosen, opaque file handles … these
/// file handles must remain secret" for a traditional NFS server; SFS
/// instead encrypts them (§3.3), so SFS handles are safe to publish.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileHandle(pub Vec<u8>);

impl Xdr for FileHandle {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_opaque(&self.0);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        let data = dec.get_opaque_max(FHSIZE as u32)?;
        Ok(FileHandle(data))
    }
}

/// NFS3 status codes (RFC 1813 §2.6), restricted to those this server
/// generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// NFS3_OK.
    Ok,
    /// NFS3ERR_PERM.
    Perm,
    /// NFS3ERR_NOENT.
    NoEnt,
    /// NFS3ERR_IO.
    Io,
    /// NFS3ERR_ACCES.
    Acces,
    /// NFS3ERR_EXIST.
    Exist,
    /// NFS3ERR_NOTDIR.
    NotDir,
    /// NFS3ERR_ISDIR.
    IsDir,
    /// NFS3ERR_INVAL.
    Inval,
    /// NFS3ERR_ROFS.
    RoFs,
    /// NFS3ERR_MLINK.
    MLink,
    /// NFS3ERR_NAMETOOLONG.
    NameTooLong,
    /// NFS3ERR_NOTEMPTY.
    NotEmpty,
    /// NFS3ERR_STALE.
    Stale,
    /// NFS3ERR_BADHANDLE.
    BadHandle,
    /// NFS3ERR_NOTSUPP.
    NotSupp,
}

impl Status {
    fn to_u32(self) -> u32 {
        match self {
            Status::Ok => 0,
            Status::Perm => 1,
            Status::NoEnt => 2,
            Status::Io => 5,
            Status::Acces => 13,
            Status::Exist => 17,
            Status::NotDir => 20,
            Status::IsDir => 21,
            Status::Inval => 22,
            Status::RoFs => 30,
            Status::MLink => 31,
            Status::NameTooLong => 63,
            Status::NotEmpty => 66,
            Status::Stale => 70,
            Status::BadHandle => 10001,
            Status::NotSupp => 10004,
        }
    }

    fn from_u32(v: u32) -> Result<Self, XdrError> {
        Ok(match v {
            0 => Status::Ok,
            1 => Status::Perm,
            2 => Status::NoEnt,
            5 => Status::Io,
            13 => Status::Acces,
            17 => Status::Exist,
            20 => Status::NotDir,
            21 => Status::IsDir,
            22 => Status::Inval,
            30 => Status::RoFs,
            31 => Status::MLink,
            63 => Status::NameTooLong,
            66 => Status::NotEmpty,
            70 => Status::Stale,
            10001 => Status::BadHandle,
            10004 => Status::NotSupp,
            other => return Err(XdrError::BadDiscriminant(other)),
        })
    }
}

impl From<FsError> for Status {
    fn from(e: FsError) -> Self {
        match e {
            FsError::NotFound => Status::NoEnt,
            FsError::Exists => Status::Exist,
            FsError::NotDir => Status::NotDir,
            FsError::IsDir => Status::IsDir,
            FsError::NotEmpty => Status::NotEmpty,
            FsError::Access => Status::Acces,
            FsError::Perm => Status::Perm,
            FsError::NameTooLong => Status::NameTooLong,
            FsError::Invalid => Status::Inval,
            FsError::Stale => Status::Stale,
            FsError::ReadOnly => Status::RoFs,
            FsError::TooManyLinks => Status::MLink,
            FsError::NotSymlink => Status::Inval,
        }
    }
}

impl Xdr for Status {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(self.to_u32());
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Status::from_u32(dec.get_u32()?)
    }
}

/// File attributes on the wire (RFC 1813 `fattr3`, with times in
/// nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fattr3 {
    /// File type.
    pub ftype: FileType,
    /// Permission bits.
    pub mode: u32,
    /// Link count.
    pub nlink: u32,
    /// Owner.
    pub uid: u32,
    /// Group.
    pub gid: u32,
    /// Size in bytes.
    pub size: u64,
    /// File system id.
    pub fsid: u64,
    /// File id (inode number).
    pub fileid: u64,
    /// Access time (ns).
    pub atime: u64,
    /// Modification time (ns).
    pub mtime: u64,
    /// Change time (ns).
    pub ctime: u64,
}

impl From<Attr> for Fattr3 {
    fn from(a: Attr) -> Self {
        Fattr3 {
            ftype: a.ftype,
            mode: a.mode,
            nlink: a.nlink,
            uid: a.uid,
            gid: a.gid,
            size: a.size,
            fsid: a.fsid,
            fileid: a.fileid,
            atime: a.atime,
            mtime: a.mtime,
            ctime: a.ctime,
        }
    }
}

fn ftype_to_u32(t: FileType) -> u32 {
    match t {
        FileType::Regular => 1,
        FileType::Directory => 2,
        FileType::Symlink => 5,
    }
}

fn ftype_from_u32(v: u32) -> Result<FileType, XdrError> {
    Ok(match v {
        1 => FileType::Regular,
        2 => FileType::Directory,
        5 => FileType::Symlink,
        other => return Err(XdrError::BadDiscriminant(other)),
    })
}

impl Xdr for Fattr3 {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(ftype_to_u32(self.ftype));
        enc.put_u32(self.mode);
        enc.put_u32(self.nlink);
        enc.put_u32(self.uid);
        enc.put_u32(self.gid);
        enc.put_u64(self.size);
        enc.put_u64(self.fsid);
        enc.put_u64(self.fileid);
        enc.put_u64(self.atime);
        enc.put_u64(self.mtime);
        enc.put_u64(self.ctime);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Fattr3 {
            ftype: ftype_from_u32(dec.get_u32()?)?,
            mode: dec.get_u32()?,
            nlink: dec.get_u32()?,
            uid: dec.get_u32()?,
            gid: dec.get_u32()?,
            size: dec.get_u64()?,
            fsid: dec.get_u64()?,
            fileid: dec.get_u64()?,
            atime: dec.get_u64()?,
            mtime: dec.get_u64()?,
            ctime: dec.get_u64()?,
        })
    }
}

/// Post-operation attributes plus the SFS lease extension.
///
/// `lease_ns == 0` means "no lease" (plain NFS3 semantics: attributes may
/// be cached only heuristically).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PostOpAttr {
    /// Attributes, if the server chose to return them.
    pub attr: Option<Fattr3>,
    /// How long the client may treat these attributes (and the access
    /// rights they imply) as valid without revalidation, in virtual ns.
    pub lease_ns: u64,
}

impl PostOpAttr {
    /// No attributes.
    pub fn none() -> Self {
        PostOpAttr::default()
    }

    /// Attributes without a lease (plain NFS3).
    pub fn plain(attr: Fattr3) -> Self {
        PostOpAttr {
            attr: Some(attr),
            lease_ns: 0,
        }
    }

    /// Attributes with an SFS lease.
    pub fn leased(attr: Fattr3, lease_ns: u64) -> Self {
        PostOpAttr {
            attr: Some(attr),
            lease_ns,
        }
    }
}

impl Xdr for PostOpAttr {
    fn encode(&self, enc: &mut XdrEncoder) {
        match &self.attr {
            None => {
                enc.put_bool(false);
            }
            Some(a) => {
                enc.put_bool(true);
                a.encode(enc);
                enc.put_u64(self.lease_ns);
            }
        }
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        if dec.get_bool()? {
            let attr = Fattr3::decode(dec)?;
            let lease_ns = dec.get_u64()?;
            Ok(PostOpAttr {
                attr: Some(attr),
                lease_ns,
            })
        } else {
            Ok(PostOpAttr::none())
        }
    }
}

/// Settable attributes (RFC 1813 `sattr3`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sattr3 {
    /// Mode to set.
    pub mode: Option<u32>,
    /// Uid to set.
    pub uid: Option<u32>,
    /// Gid to set.
    pub gid: Option<u32>,
    /// New size.
    pub size: Option<u64>,
    /// New atime (ns).
    pub atime: Option<u64>,
    /// New mtime (ns).
    pub mtime: Option<u64>,
}

impl From<Sattr3> for SetAttr {
    fn from(s: Sattr3) -> Self {
        SetAttr {
            mode: s.mode,
            uid: s.uid,
            gid: s.gid,
            size: s.size,
            atime: s.atime,
            mtime: s.mtime,
        }
    }
}

impl Xdr for Sattr3 {
    fn encode(&self, enc: &mut XdrEncoder) {
        self.mode.encode(enc);
        self.uid.encode(enc);
        self.gid.encode(enc);
        self.size.encode(enc);
        self.atime.encode(enc);
        self.mtime.encode(enc);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(Sattr3 {
            mode: Option::decode(dec)?,
            uid: Option::decode(dec)?,
            gid: Option::decode(dec)?,
            size: Option::decode(dec)?,
            atime: Option::decode(dec)?,
            mtime: Option::decode(dec)?,
        })
    }
}

/// Write stability (RFC 1813 `stable_how`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StableHow {
    /// UNSTABLE: may be cached; requires COMMIT.
    Unstable,
    /// DATA_SYNC / FILE_SYNC: on stable storage before reply.
    FileSync,
}

impl Xdr for StableHow {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u32(match self {
            StableHow::Unstable => 0,
            StableHow::FileSync => 2,
        });
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        match dec.get_u32()? {
            0 => Ok(StableHow::Unstable),
            1 | 2 => Ok(StableHow::FileSync),
            other => Err(XdrError::BadDiscriminant(other)),
        }
    }
}

/// A directory entry (READDIR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// File id.
    pub fileid: u64,
    /// Name.
    pub name: String,
    /// Cookie for resuming after this entry.
    pub cookie: u64,
    /// Attributes + handle (READDIRPLUS only).
    pub plus: Option<(FileHandle, PostOpAttr)>,
}

impl Xdr for DirEntry {
    fn encode(&self, enc: &mut XdrEncoder) {
        enc.put_u64(self.fileid);
        enc.put_string(&self.name);
        enc.put_u64(self.cookie);
        self.plus.encode(enc);
    }
    fn decode(dec: &mut XdrDecoder<'_>) -> Result<Self, XdrError> {
        Ok(DirEntry {
            fileid: dec.get_u64()?,
            name: dec.get_string()?,
            cookie: dec.get_u64()?,
            plus: Option::decode(dec)?,
        })
    }
}

/// NFS3 procedure numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Proc {
    Null = 0,
    GetAttr = 1,
    SetAttr = 2,
    Lookup = 3,
    Access = 4,
    ReadLink = 5,
    Read = 6,
    Write = 7,
    Create = 8,
    Mkdir = 9,
    Symlink = 10,
    Remove = 12,
    Rmdir = 13,
    Rename = 14,
    Link = 15,
    ReadDir = 16,
    ReadDirPlus = 17,
    FsStat = 18,
    FsInfo = 19,
    PathConf = 20,
    Commit = 21,
}

impl Proc {
    /// Parses a procedure number.
    pub fn from_u32(v: u32) -> Option<Proc> {
        Some(match v {
            0 => Proc::Null,
            1 => Proc::GetAttr,
            2 => Proc::SetAttr,
            3 => Proc::Lookup,
            4 => Proc::Access,
            5 => Proc::ReadLink,
            6 => Proc::Read,
            7 => Proc::Write,
            8 => Proc::Create,
            9 => Proc::Mkdir,
            10 => Proc::Symlink,
            12 => Proc::Remove,
            13 => Proc::Rmdir,
            14 => Proc::Rename,
            15 => Proc::Link,
            16 => Proc::ReadDir,
            17 => Proc::ReadDirPlus,
            18 => Proc::FsStat,
            19 => Proc::FsInfo,
            20 => Proc::PathConf,
            21 => Proc::Commit,
            _ => return None,
        })
    }
}

/// An NFS3 request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Nfs3Request {
    Null,
    GetAttr {
        fh: FileHandle,
    },
    SetAttr {
        fh: FileHandle,
        attrs: Sattr3,
    },
    Lookup {
        dir: FileHandle,
        name: String,
    },
    Access {
        fh: FileHandle,
        mask: u32,
    },
    ReadLink {
        fh: FileHandle,
    },
    Read {
        fh: FileHandle,
        offset: u64,
        count: u32,
    },
    Write {
        fh: FileHandle,
        offset: u64,
        stable: StableHow,
        data: Vec<u8>,
    },
    Create {
        dir: FileHandle,
        name: String,
        attrs: Sattr3,
    },
    Mkdir {
        dir: FileHandle,
        name: String,
        attrs: Sattr3,
    },
    Symlink {
        dir: FileHandle,
        name: String,
        target: String,
    },
    Remove {
        dir: FileHandle,
        name: String,
    },
    Rmdir {
        dir: FileHandle,
        name: String,
    },
    Rename {
        from_dir: FileHandle,
        from_name: String,
        to_dir: FileHandle,
        to_name: String,
    },
    Link {
        fh: FileHandle,
        dir: FileHandle,
        name: String,
    },
    ReadDir {
        dir: FileHandle,
        cookie: u64,
        count: u32,
        plus: bool,
    },
    FsStat {
        root: FileHandle,
    },
    FsInfo {
        root: FileHandle,
    },
    PathConf {
        fh: FileHandle,
    },
    Commit {
        fh: FileHandle,
        offset: u64,
        count: u32,
    },
}

impl Nfs3Request {
    /// The procedure number carried in the RPC call.
    pub fn proc(&self) -> Proc {
        match self {
            Nfs3Request::Null => Proc::Null,
            Nfs3Request::GetAttr { .. } => Proc::GetAttr,
            Nfs3Request::SetAttr { .. } => Proc::SetAttr,
            Nfs3Request::Lookup { .. } => Proc::Lookup,
            Nfs3Request::Access { .. } => Proc::Access,
            Nfs3Request::ReadLink { .. } => Proc::ReadLink,
            Nfs3Request::Read { .. } => Proc::Read,
            Nfs3Request::Write { .. } => Proc::Write,
            Nfs3Request::Create { .. } => Proc::Create,
            Nfs3Request::Mkdir { .. } => Proc::Mkdir,
            Nfs3Request::Symlink { .. } => Proc::Symlink,
            Nfs3Request::Remove { .. } => Proc::Remove,
            Nfs3Request::Rmdir { .. } => Proc::Rmdir,
            Nfs3Request::Rename { .. } => Proc::Rename,
            Nfs3Request::Link { .. } => Proc::Link,
            Nfs3Request::ReadDir { plus: false, .. } => Proc::ReadDir,
            Nfs3Request::ReadDir { plus: true, .. } => Proc::ReadDirPlus,
            Nfs3Request::FsStat { .. } => Proc::FsStat,
            Nfs3Request::FsInfo { .. } => Proc::FsInfo,
            Nfs3Request::PathConf { .. } => Proc::PathConf,
            Nfs3Request::Commit { .. } => Proc::Commit,
        }
    }

    /// Marshals the procedure arguments (the RPC args body).
    pub fn encode_args(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        self.encode_args_into(&mut enc);
        enc.into_bytes()
    }

    /// Appends the marshaled arguments to `enc` — [`Self::encode_args`]
    /// without the allocation, for buffer-reusing hot paths.
    pub fn encode_args_into(&self, enc: &mut XdrEncoder) {
        match self {
            Nfs3Request::Null => {}
            Nfs3Request::GetAttr { fh }
            | Nfs3Request::ReadLink { fh }
            | Nfs3Request::PathConf { fh } => fh.encode(enc),
            Nfs3Request::FsStat { root } | Nfs3Request::FsInfo { root } => root.encode(enc),
            Nfs3Request::SetAttr { fh, attrs } => {
                fh.encode(enc);
                attrs.encode(enc);
            }
            Nfs3Request::Lookup { dir, name }
            | Nfs3Request::Remove { dir, name }
            | Nfs3Request::Rmdir { dir, name } => {
                dir.encode(enc);
                enc.put_string(name);
            }
            Nfs3Request::Access { fh, mask } => {
                fh.encode(enc);
                enc.put_u32(*mask);
            }
            Nfs3Request::Read { fh, offset, count } => {
                fh.encode(enc);
                enc.put_u64(*offset);
                enc.put_u32(*count);
            }
            Nfs3Request::Write {
                fh,
                offset,
                stable,
                data,
            } => {
                fh.encode(enc);
                enc.put_u64(*offset);
                enc.put_u32(data.len() as u32);
                stable.encode(enc);
                enc.put_opaque(data);
            }
            Nfs3Request::Create { dir, name, attrs } | Nfs3Request::Mkdir { dir, name, attrs } => {
                dir.encode(enc);
                enc.put_string(name);
                attrs.encode(enc);
            }
            Nfs3Request::Symlink { dir, name, target } => {
                dir.encode(enc);
                enc.put_string(name);
                enc.put_string(target);
            }
            Nfs3Request::Rename {
                from_dir,
                from_name,
                to_dir,
                to_name,
            } => {
                from_dir.encode(enc);
                enc.put_string(from_name);
                to_dir.encode(enc);
                enc.put_string(to_name);
            }
            Nfs3Request::Link { fh, dir, name } => {
                fh.encode(enc);
                dir.encode(enc);
                enc.put_string(name);
            }
            Nfs3Request::ReadDir {
                dir, cookie, count, ..
            } => {
                dir.encode(enc);
                enc.put_u64(*cookie);
                enc.put_u32(*count);
            }
            Nfs3Request::Commit { fh, offset, count } => {
                fh.encode(enc);
                enc.put_u64(*offset);
                enc.put_u32(*count);
            }
        }
    }

    /// Unmarshals arguments for procedure `proc`.
    pub fn decode_args(proc: Proc, args: &[u8]) -> Result<Self, XdrError> {
        let mut dec = XdrDecoder::new(args);
        let req = match proc {
            Proc::Null => Nfs3Request::Null,
            Proc::GetAttr => Nfs3Request::GetAttr {
                fh: FileHandle::decode(&mut dec)?,
            },
            Proc::SetAttr => Nfs3Request::SetAttr {
                fh: FileHandle::decode(&mut dec)?,
                attrs: Sattr3::decode(&mut dec)?,
            },
            Proc::Lookup => Nfs3Request::Lookup {
                dir: FileHandle::decode(&mut dec)?,
                name: dec.get_string()?,
            },
            Proc::Access => Nfs3Request::Access {
                fh: FileHandle::decode(&mut dec)?,
                mask: dec.get_u32()?,
            },
            Proc::ReadLink => Nfs3Request::ReadLink {
                fh: FileHandle::decode(&mut dec)?,
            },
            Proc::Read => Nfs3Request::Read {
                fh: FileHandle::decode(&mut dec)?,
                offset: dec.get_u64()?,
                count: dec.get_u32()?,
            },
            Proc::Write => {
                let fh = FileHandle::decode(&mut dec)?;
                let offset = dec.get_u64()?;
                let _count = dec.get_u32()?;
                let stable = StableHow::decode(&mut dec)?;
                let data = dec.get_opaque()?;
                Nfs3Request::Write {
                    fh,
                    offset,
                    stable,
                    data,
                }
            }
            Proc::Create => Nfs3Request::Create {
                dir: FileHandle::decode(&mut dec)?,
                name: dec.get_string()?,
                attrs: Sattr3::decode(&mut dec)?,
            },
            Proc::Mkdir => Nfs3Request::Mkdir {
                dir: FileHandle::decode(&mut dec)?,
                name: dec.get_string()?,
                attrs: Sattr3::decode(&mut dec)?,
            },
            Proc::Symlink => Nfs3Request::Symlink {
                dir: FileHandle::decode(&mut dec)?,
                name: dec.get_string()?,
                target: dec.get_string()?,
            },
            Proc::Remove => Nfs3Request::Remove {
                dir: FileHandle::decode(&mut dec)?,
                name: dec.get_string()?,
            },
            Proc::Rmdir => Nfs3Request::Rmdir {
                dir: FileHandle::decode(&mut dec)?,
                name: dec.get_string()?,
            },
            Proc::Rename => Nfs3Request::Rename {
                from_dir: FileHandle::decode(&mut dec)?,
                from_name: dec.get_string()?,
                to_dir: FileHandle::decode(&mut dec)?,
                to_name: dec.get_string()?,
            },
            Proc::Link => Nfs3Request::Link {
                fh: FileHandle::decode(&mut dec)?,
                dir: FileHandle::decode(&mut dec)?,
                name: dec.get_string()?,
            },
            Proc::ReadDir | Proc::ReadDirPlus => Nfs3Request::ReadDir {
                dir: FileHandle::decode(&mut dec)?,
                cookie: dec.get_u64()?,
                count: dec.get_u32()?,
                plus: proc == Proc::ReadDirPlus,
            },
            Proc::FsStat => Nfs3Request::FsStat {
                root: FileHandle::decode(&mut dec)?,
            },
            Proc::FsInfo => Nfs3Request::FsInfo {
                root: FileHandle::decode(&mut dec)?,
            },
            Proc::PathConf => Nfs3Request::PathConf {
                fh: FileHandle::decode(&mut dec)?,
            },
            Proc::Commit => Nfs3Request::Commit {
                fh: FileHandle::decode(&mut dec)?,
                offset: dec.get_u64()?,
                count: dec.get_u32()?,
            },
        };
        dec.finish()?;
        Ok(req)
    }
}

/// An NFS3 reply.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Nfs3Reply {
    Null,
    /// Error reply for any procedure.
    Error {
        status: Status,
        dir_attr: PostOpAttr,
    },
    GetAttr {
        attr: Fattr3,
        lease_ns: u64,
    },
    SetAttr {
        attr: PostOpAttr,
    },
    Lookup {
        fh: FileHandle,
        attr: PostOpAttr,
        dir_attr: PostOpAttr,
    },
    Access {
        granted: u32,
        attr: PostOpAttr,
    },
    ReadLink {
        target: String,
        attr: PostOpAttr,
    },
    Read {
        data: Vec<u8>,
        eof: bool,
        attr: PostOpAttr,
    },
    Write {
        count: u32,
        committed: StableHow,
        attr: PostOpAttr,
    },
    Create {
        fh: FileHandle,
        attr: PostOpAttr,
        dir_attr: PostOpAttr,
    },
    Mkdir {
        fh: FileHandle,
        attr: PostOpAttr,
        dir_attr: PostOpAttr,
    },
    Symlink {
        fh: FileHandle,
        attr: PostOpAttr,
        dir_attr: PostOpAttr,
    },
    Remove {
        dir_attr: PostOpAttr,
    },
    Rmdir {
        dir_attr: PostOpAttr,
    },
    Rename {
        from_dir_attr: PostOpAttr,
        to_dir_attr: PostOpAttr,
    },
    Link {
        attr: PostOpAttr,
        dir_attr: PostOpAttr,
    },
    ReadDir {
        entries: Vec<DirEntry>,
        eof: bool,
        dir_attr: PostOpAttr,
    },
    FsStat {
        total_bytes: u64,
        free_bytes: u64,
        total_files: u64,
    },
    FsInfo {
        rtmax: u32,
        wtmax: u32,
        dtpref: u32,
    },
    PathConf {
        name_max: u32,
        linkmax: u32,
    },
    Commit {
        attr: PostOpAttr,
    },
}

impl Nfs3Reply {
    /// Status of this reply.
    pub fn status(&self) -> Status {
        match self {
            Nfs3Reply::Error { status, .. } => *status,
            _ => Status::Ok,
        }
    }

    /// Marshals the reply (the RPC results body). The leading status word
    /// discriminates success from error.
    pub fn encode_results(&self) -> Vec<u8> {
        let mut enc = XdrEncoder::new();
        self.encode_results_into(&mut enc);
        enc.into_bytes()
    }

    /// Appends the marshaled reply to `enc` — [`Self::encode_results`]
    /// without the allocation, for buffer-reusing hot paths.
    pub fn encode_results_into(&self, enc: &mut XdrEncoder) {
        if let Nfs3Reply::Error { status, dir_attr } = self {
            status.encode(enc);
            dir_attr.encode(enc);
            return;
        }
        Status::Ok.encode(enc);
        match self {
            Nfs3Reply::Null | Nfs3Reply::Error { .. } => {}
            Nfs3Reply::GetAttr { attr, lease_ns } => {
                attr.encode(enc);
                enc.put_u64(*lease_ns);
            }
            Nfs3Reply::SetAttr { attr } | Nfs3Reply::Commit { attr } => attr.encode(enc),
            Nfs3Reply::Lookup { fh, attr, dir_attr }
            | Nfs3Reply::Create { fh, attr, dir_attr }
            | Nfs3Reply::Mkdir { fh, attr, dir_attr }
            | Nfs3Reply::Symlink { fh, attr, dir_attr } => {
                fh.encode(enc);
                attr.encode(enc);
                dir_attr.encode(enc);
            }
            Nfs3Reply::Access { granted, attr } => {
                enc.put_u32(*granted);
                attr.encode(enc);
            }
            Nfs3Reply::ReadLink { target, attr } => {
                enc.put_string(target);
                attr.encode(enc);
            }
            Nfs3Reply::Read { data, eof, attr } => {
                enc.put_u32(data.len() as u32);
                enc.put_bool(*eof);
                enc.put_opaque(data);
                attr.encode(enc);
            }
            Nfs3Reply::Write {
                count,
                committed,
                attr,
            } => {
                enc.put_u32(*count);
                committed.encode(enc);
                attr.encode(enc);
            }
            Nfs3Reply::Remove { dir_attr } | Nfs3Reply::Rmdir { dir_attr } => dir_attr.encode(enc),
            Nfs3Reply::Rename {
                from_dir_attr,
                to_dir_attr,
            } => {
                from_dir_attr.encode(enc);
                to_dir_attr.encode(enc);
            }
            Nfs3Reply::Link { attr, dir_attr } => {
                attr.encode(enc);
                dir_attr.encode(enc);
            }
            Nfs3Reply::ReadDir {
                entries,
                eof,
                dir_attr,
            } => {
                entries.encode(enc);
                enc.put_bool(*eof);
                dir_attr.encode(enc);
            }
            Nfs3Reply::FsStat {
                total_bytes,
                free_bytes,
                total_files,
            } => {
                enc.put_u64(*total_bytes);
                enc.put_u64(*free_bytes);
                enc.put_u64(*total_files);
            }
            Nfs3Reply::FsInfo {
                rtmax,
                wtmax,
                dtpref,
            } => {
                enc.put_u32(*rtmax);
                enc.put_u32(*wtmax);
                enc.put_u32(*dtpref);
            }
            Nfs3Reply::PathConf { name_max, linkmax } => {
                enc.put_u32(*name_max);
                enc.put_u32(*linkmax);
            }
        }
    }

    /// Unmarshals a reply to procedure `proc`.
    pub fn decode_results(proc: Proc, results: &[u8]) -> Result<Self, XdrError> {
        let mut dec = XdrDecoder::new(results);
        let status = Status::decode(&mut dec)?;
        if status != Status::Ok {
            let dir_attr = PostOpAttr::decode(&mut dec)?;
            dec.finish()?;
            return Ok(Nfs3Reply::Error { status, dir_attr });
        }
        let reply = match proc {
            Proc::Null => Nfs3Reply::Null,
            Proc::GetAttr => Nfs3Reply::GetAttr {
                attr: Fattr3::decode(&mut dec)?,
                lease_ns: dec.get_u64()?,
            },
            Proc::SetAttr => Nfs3Reply::SetAttr {
                attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Lookup => Nfs3Reply::Lookup {
                fh: FileHandle::decode(&mut dec)?,
                attr: PostOpAttr::decode(&mut dec)?,
                dir_attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Access => Nfs3Reply::Access {
                granted: dec.get_u32()?,
                attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::ReadLink => Nfs3Reply::ReadLink {
                target: dec.get_string()?,
                attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Read => {
                let _count = dec.get_u32()?;
                let eof = dec.get_bool()?;
                let data = dec.get_opaque()?;
                let attr = PostOpAttr::decode(&mut dec)?;
                Nfs3Reply::Read { data, eof, attr }
            }
            Proc::Write => Nfs3Reply::Write {
                count: dec.get_u32()?,
                committed: StableHow::decode(&mut dec)?,
                attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Create => Nfs3Reply::Create {
                fh: FileHandle::decode(&mut dec)?,
                attr: PostOpAttr::decode(&mut dec)?,
                dir_attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Mkdir => Nfs3Reply::Mkdir {
                fh: FileHandle::decode(&mut dec)?,
                attr: PostOpAttr::decode(&mut dec)?,
                dir_attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Symlink => Nfs3Reply::Symlink {
                fh: FileHandle::decode(&mut dec)?,
                attr: PostOpAttr::decode(&mut dec)?,
                dir_attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Remove => Nfs3Reply::Remove {
                dir_attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Rmdir => Nfs3Reply::Rmdir {
                dir_attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Rename => Nfs3Reply::Rename {
                from_dir_attr: PostOpAttr::decode(&mut dec)?,
                to_dir_attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::Link => Nfs3Reply::Link {
                attr: PostOpAttr::decode(&mut dec)?,
                dir_attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::ReadDir | Proc::ReadDirPlus => Nfs3Reply::ReadDir {
                entries: Vec::decode(&mut dec)?,
                eof: dec.get_bool()?,
                dir_attr: PostOpAttr::decode(&mut dec)?,
            },
            Proc::FsStat => Nfs3Reply::FsStat {
                total_bytes: dec.get_u64()?,
                free_bytes: dec.get_u64()?,
                total_files: dec.get_u64()?,
            },
            Proc::FsInfo => Nfs3Reply::FsInfo {
                rtmax: dec.get_u32()?,
                wtmax: dec.get_u32()?,
                dtpref: dec.get_u32()?,
            },
            Proc::PathConf => Nfs3Reply::PathConf {
                name_max: dec.get_u32()?,
                linkmax: dec.get_u32()?,
            },
            Proc::Commit => Nfs3Reply::Commit {
                attr: PostOpAttr::decode(&mut dec)?,
            },
        };
        dec.finish()?;
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fh(b: &[u8]) -> FileHandle {
        FileHandle(b.to_vec())
    }

    fn attr() -> Fattr3 {
        Fattr3 {
            ftype: FileType::Regular,
            mode: 0o644,
            nlink: 1,
            uid: 1000,
            gid: 100,
            size: 42,
            fsid: 7,
            fileid: 99,
            atime: 1,
            mtime: 2,
            ctime: 3,
        }
    }

    #[test]
    fn request_args_roundtrip_all_procs() {
        let reqs = vec![
            Nfs3Request::Null,
            Nfs3Request::GetAttr { fh: fh(b"h1") },
            Nfs3Request::SetAttr {
                fh: fh(b"h1"),
                attrs: Sattr3 {
                    mode: Some(0o600),
                    size: Some(10),
                    ..Default::default()
                },
            },
            Nfs3Request::Lookup {
                dir: fh(b"d"),
                name: "file".into(),
            },
            Nfs3Request::Access {
                fh: fh(b"h"),
                mask: 0x3f,
            },
            Nfs3Request::ReadLink { fh: fh(b"h") },
            Nfs3Request::Read {
                fh: fh(b"h"),
                offset: 8192,
                count: 4096,
            },
            Nfs3Request::Write {
                fh: fh(b"h"),
                offset: 0,
                stable: StableHow::FileSync,
                data: vec![1, 2, 3],
            },
            Nfs3Request::Create {
                dir: fh(b"d"),
                name: "new".into(),
                attrs: Sattr3::default(),
            },
            Nfs3Request::Mkdir {
                dir: fh(b"d"),
                name: "sub".into(),
                attrs: Sattr3::default(),
            },
            Nfs3Request::Symlink {
                dir: fh(b"d"),
                name: "ln".into(),
                target: "/sfs/x:y".into(),
            },
            Nfs3Request::Remove {
                dir: fh(b"d"),
                name: "old".into(),
            },
            Nfs3Request::Rmdir {
                dir: fh(b"d"),
                name: "sub".into(),
            },
            Nfs3Request::Rename {
                from_dir: fh(b"d1"),
                from_name: "a".into(),
                to_dir: fh(b"d2"),
                to_name: "b".into(),
            },
            Nfs3Request::Link {
                fh: fh(b"f"),
                dir: fh(b"d"),
                name: "alias".into(),
            },
            Nfs3Request::ReadDir {
                dir: fh(b"d"),
                cookie: 5,
                count: 100,
                plus: false,
            },
            Nfs3Request::ReadDir {
                dir: fh(b"d"),
                cookie: 0,
                count: 100,
                plus: true,
            },
            Nfs3Request::FsStat { root: fh(b"r") },
            Nfs3Request::FsInfo { root: fh(b"r") },
            Nfs3Request::PathConf { fh: fh(b"r") },
            Nfs3Request::Commit {
                fh: fh(b"f"),
                offset: 0,
                count: 0,
            },
        ];
        for req in reqs {
            let args = req.encode_args();
            let back = Nfs3Request::decode_args(req.proc(), &args).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn reply_results_roundtrip() {
        let cases: Vec<(Proc, Nfs3Reply)> = vec![
            (Proc::Null, Nfs3Reply::Null),
            (
                Proc::GetAttr,
                Nfs3Reply::GetAttr {
                    attr: attr(),
                    lease_ns: 5_000_000,
                },
            ),
            (
                Proc::Lookup,
                Nfs3Reply::Lookup {
                    fh: fh(b"child"),
                    attr: PostOpAttr::leased(attr(), 99),
                    dir_attr: PostOpAttr::none(),
                },
            ),
            (
                Proc::Read,
                Nfs3Reply::Read {
                    data: vec![9; 100],
                    eof: true,
                    attr: PostOpAttr::plain(attr()),
                },
            ),
            (
                Proc::Write,
                Nfs3Reply::Write {
                    count: 100,
                    committed: StableHow::FileSync,
                    attr: PostOpAttr::plain(attr()),
                },
            ),
            (
                Proc::ReadDir,
                Nfs3Reply::ReadDir {
                    entries: vec![
                        DirEntry {
                            fileid: 3,
                            name: "a".into(),
                            cookie: 1,
                            plus: None,
                        },
                        DirEntry {
                            fileid: 4,
                            name: "b".into(),
                            cookie: 2,
                            plus: Some((fh(b"b"), PostOpAttr::plain(attr()))),
                        },
                    ],
                    eof: true,
                    dir_attr: PostOpAttr::none(),
                },
            ),
            (
                Proc::FsStat,
                Nfs3Reply::FsStat {
                    total_bytes: 1,
                    free_bytes: 2,
                    total_files: 3,
                },
            ),
            (
                Proc::PathConf,
                Nfs3Reply::PathConf {
                    name_max: 255,
                    linkmax: 32767,
                },
            ),
        ];
        for (proc, reply) in cases {
            let bytes = reply.encode_results();
            let back = Nfs3Reply::decode_results(proc, &bytes).unwrap();
            assert_eq!(back, reply, "proc={proc:?}");
        }
    }

    #[test]
    fn error_reply_roundtrip() {
        let reply = Nfs3Reply::Error {
            status: Status::Acces,
            dir_attr: PostOpAttr::none(),
        };
        let bytes = reply.encode_results();
        // Error decoding is independent of procedure.
        for proc in [Proc::GetAttr, Proc::Read, Proc::Rename] {
            assert_eq!(Nfs3Reply::decode_results(proc, &bytes).unwrap(), reply);
        }
    }

    #[test]
    fn status_mapping_total() {
        // Every FsError maps to a status that round-trips on the wire.
        for e in [
            FsError::NotFound,
            FsError::Exists,
            FsError::NotDir,
            FsError::IsDir,
            FsError::NotEmpty,
            FsError::Access,
            FsError::Perm,
            FsError::NameTooLong,
            FsError::Invalid,
            FsError::Stale,
            FsError::ReadOnly,
            FsError::TooManyLinks,
            FsError::NotSymlink,
        ] {
            let s: Status = e.into();
            let mut enc = XdrEncoder::new();
            s.encode(&mut enc);
            let mut dec = XdrDecoder::new(enc.bytes());
            assert_eq!(Status::decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn oversized_file_handle_rejected() {
        let mut enc = XdrEncoder::new();
        enc.put_opaque(&[0u8; 65]);
        let mut dec = XdrDecoder::new(enc.bytes());
        assert!(matches!(
            FileHandle::decode(&mut dec),
            Err(XdrError::LengthTooLong {
                claimed: 65,
                max: 64
            })
        ));
    }

    #[test]
    fn proc_from_u32_rejects_mknod_and_unknown() {
        assert_eq!(Proc::from_u32(11), None); // MKNOD unsupported
        assert_eq!(Proc::from_u32(22), None);
        assert_eq!(Proc::from_u32(0), Some(Proc::Null));
        assert_eq!(Proc::from_u32(21), Some(Proc::Commit));
    }
}
