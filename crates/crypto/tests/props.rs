//! Property-style tests on the cryptographic primitives, driven by the
//! deterministic [`XorShiftSource`] (48 cases each, matching the old
//! proptest budget for the expensive Rabin properties).

use sfs_bignum::{RandomSource, XorShiftSource};
use sfs_crypto::arc4::Arc4;
use sfs_crypto::blowfish::Blowfish;
use sfs_crypto::mac::SfsMac;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey, RabinSignature};
use sfs_crypto::sha1::{sha1, Sha1};
use std::sync::OnceLock;

const CASES: usize = 48;

fn test_key() -> &'static RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x9A81);
        generate_keypair(768, &mut rng)
    })
}

fn rand_u64(rng: &mut XorShiftSource) -> u64 {
    let mut b = [0u8; 8];
    rng.fill(&mut b);
    u64::from_be_bytes(b)
}

fn bytes(rng: &mut XorShiftSource, len: usize) -> Vec<u8> {
    let mut b = vec![0u8; len];
    rng.fill(&mut b);
    b
}

#[test]
fn sha1_incremental_equals_oneshot() {
    let mut rng = XorShiftSource::new(0x5A1);
    for _ in 0..CASES {
        let len = (rand_u64(&mut rng) % 2000) as usize;
        let data = bytes(&mut rng, len);
        let i = (rand_u64(&mut rng) % (len as u64 + 1)) as usize;
        let mut h = Sha1::new();
        h.update(&data[..i]);
        h.update(&data[i..]);
        assert_eq!(h.finalize(), sha1(&data));
    }
}

#[test]
fn arc4_is_an_involution() {
    let mut rng = XorShiftSource::new(0xA4C4);
    for _ in 0..CASES {
        let key_len = 1 + (rand_u64(&mut rng) % 39) as usize;
        let key = bytes(&mut rng, key_len);
        let data_len = (rand_u64(&mut rng) % 500) as usize;
        let data = bytes(&mut rng, data_len);
        let mut buf = data.clone();
        Arc4::new(&key).process(&mut buf);
        Arc4::new(&key).process(&mut buf);
        assert_eq!(buf, data);
    }
}

#[test]
fn mac_rejects_any_single_bitflip() {
    let mut rng = XorShiftSource::new(0x3AC);
    for _ in 0..CASES {
        let data_len = 1 + (rand_u64(&mut rng) % 199) as usize;
        let data = bytes(&mut rng, data_len);
        let key = [0x42u8; 32];
        let tag = SfsMac::compute(&key, &data);
        let mut tampered = data.clone();
        let i = (rand_u64(&mut rng) % tampered.len() as u64) as usize;
        tampered[i] ^= 1 << (rand_u64(&mut rng) % 8);
        assert!(!SfsMac::verify(&key, &tampered, &tag));
        assert!(SfsMac::verify(&key, &data, &tag));
    }
}

#[test]
fn blowfish_roundtrips_any_block() {
    let mut rng = XorShiftSource::new(0xB10);
    for _ in 0..CASES {
        let key_len = 4 + (rand_u64(&mut rng) % 53) as usize;
        let key = bytes(&mut rng, key_len);
        let mut block = [0u8; 8];
        rng.fill(&mut block);
        let bf = Blowfish::new(&key);
        let mut b = block;
        bf.encrypt_block(&mut b);
        bf.decrypt_block(&mut b);
        assert_eq!(b, block);
    }
}

#[test]
fn blowfish_cbc_roundtrips() {
    let mut rng = XorShiftSource::new(0xCBC);
    for _ in 0..CASES {
        let key_len = 4 + (rand_u64(&mut rng) % 53) as usize;
        let key = bytes(&mut rng, key_len);
        let blocks = 1 + (rand_u64(&mut rng) % 5) as usize;
        let mut data = bytes(&mut rng, blocks * 8);
        let orig = data.clone();
        let bf = Blowfish::new(&key);
        bf.cbc_encrypt(&mut data);
        assert_ne!(&data, &orig);
        bf.cbc_decrypt(&mut data);
        assert_eq!(data, orig);
    }
}

#[test]
fn rabin_encrypt_decrypt_roundtrips() {
    let mut rng = XorShiftSource::new(0x4AB);
    // 768-bit modulus → max plaintext = 96 − 42 = 54 bytes.
    let key = test_key();
    for _ in 0..CASES {
        let msg_len = (rand_u64(&mut rng) % 54) as usize;
        let msg = bytes(&mut rng, msg_len);
        let c = key.public().encrypt(&msg, &mut rng).unwrap();
        assert_eq!(key.decrypt(&c).unwrap(), msg);
    }
}

#[test]
fn rabin_signatures_verify_and_bind_message() {
    let mut rng = XorShiftSource::new(0x519);
    let key = test_key();
    for _ in 0..CASES {
        let msg_len = (rand_u64(&mut rng) % 100) as usize;
        let msg = bytes(&mut rng, msg_len);
        let other_len = (rand_u64(&mut rng) % 100) as usize;
        let other = bytes(&mut rng, other_len);
        let sig = key.sign(&msg);
        assert!(key.public().verify(&msg, &sig));
        if other != msg {
            assert!(!key.public().verify(&other, &sig));
        }
    }
}

#[test]
fn rabin_signature_serialization_total() {
    let mut rng = XorShiftSource::new(0x5E4);
    let key = test_key();
    for _ in 0..CASES {
        let msg_len = (rand_u64(&mut rng) % 60) as usize;
        let msg = bytes(&mut rng, msg_len);
        let sig = key.sign(&msg);
        let b = sig.to_bytes(key.public().len());
        let back = RabinSignature::from_bytes(&b).unwrap();
        assert_eq!(back, sig);
    }
}

#[test]
fn private_key_serialization_roundtrips() {
    // Small keys keep this cheap; exercise the parser's validation.
    for seed in 1..8u64 {
        let mut rng = XorShiftSource::new(seed);
        let key = generate_keypair(256, &mut rng);
        let back = RabinPrivateKey::from_bytes(&key.to_bytes()).unwrap();
        assert_eq!(back.public(), key.public());
    }
}

#[test]
fn garbage_never_parses_as_private_key_silently() {
    let mut rng = XorShiftSource::new(0x9A4);
    for _ in 0..CASES {
        // Must not panic; may parse only if it happens to satisfy the
        // structural and congruence checks.
        let junk_len = (rand_u64(&mut rng) % 60) as usize;
        let junk = bytes(&mut rng, junk_len);
        let _ = RabinPrivateKey::from_bytes(&junk);
    }
}
