//! Property-based tests on the cryptographic primitives.

use proptest::prelude::*;
use sfs_bignum::XorShiftSource;
use sfs_crypto::arc4::Arc4;
use sfs_crypto::blowfish::Blowfish;
use sfs_crypto::mac::SfsMac;
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey, RabinSignature};
use sfs_crypto::sha1::{sha1, Sha1};
use std::sync::OnceLock;

fn test_key() -> &'static RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0x9A81);
        generate_keypair(768, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sha1_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2000),
        split in any::<prop::sample::Index>(),
    ) {
        let i = split.index(data.len() + 1);
        let mut h = Sha1::new();
        h.update(&data[..i]);
        h.update(&data[i..]);
        prop_assert_eq!(h.finalize(), sha1(&data));
    }

    #[test]
    fn arc4_is_an_involution(
        key in proptest::collection::vec(any::<u8>(), 1..40),
        data in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let mut buf = data.clone();
        Arc4::new(&key).process(&mut buf);
        Arc4::new(&key).process(&mut buf);
        prop_assert_eq!(buf, data);
    }

    #[test]
    fn mac_rejects_any_single_bitflip(
        data in proptest::collection::vec(any::<u8>(), 1..200),
        pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let key = [0x42u8; 32];
        let tag = SfsMac::compute(&key, &data);
        let mut tampered = data.clone();
        let i = pos.index(tampered.len());
        tampered[i] ^= 1 << bit;
        prop_assert!(!SfsMac::verify(&key, &tampered, &tag));
        prop_assert!(SfsMac::verify(&key, &data, &tag));
    }

    #[test]
    fn blowfish_roundtrips_any_block(
        key in proptest::collection::vec(any::<u8>(), 4..57),
        block in proptest::array::uniform8(any::<u8>()),
    ) {
        let bf = Blowfish::new(&key);
        let mut b = block;
        bf.encrypt_block(&mut b);
        bf.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    #[test]
    fn blowfish_cbc_roundtrips(
        key in proptest::collection::vec(any::<u8>(), 4..57),
        blocks in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = XorShiftSource::new(seed);
        use sfs_bignum::RandomSource;
        let mut data = vec![0u8; blocks * 8];
        rng.fill(&mut data);
        let orig = data.clone();
        let bf = Blowfish::new(&key);
        bf.cbc_encrypt(&mut data);
        prop_assert_ne!(&data, &orig);
        bf.cbc_decrypt(&mut data);
        prop_assert_eq!(data, orig);
    }

    #[test]
    fn rabin_encrypt_decrypt_roundtrips(
        msg in proptest::collection::vec(any::<u8>(), 0..54),
        seed in any::<u64>(),
    ) {
        // 768-bit modulus → max plaintext = 96 − 42 = 54 bytes.
        let key = test_key();
        let mut rng = XorShiftSource::new(seed);
        let c = key.public().encrypt(&msg, &mut rng).unwrap();
        prop_assert_eq!(key.decrypt(&c).unwrap(), msg);
    }

    #[test]
    fn rabin_signatures_verify_and_bind_message(
        msg in proptest::collection::vec(any::<u8>(), 0..100),
        other in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let key = test_key();
        let sig = key.sign(&msg);
        prop_assert!(key.public().verify(&msg, &sig));
        if other != msg {
            prop_assert!(!key.public().verify(&other, &sig));
        }
    }

    #[test]
    fn rabin_signature_serialization_total(
        msg in proptest::collection::vec(any::<u8>(), 0..60),
    ) {
        let key = test_key();
        let sig = key.sign(&msg);
        let bytes = sig.to_bytes(key.public().len());
        let back = RabinSignature::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, sig);
    }

    #[test]
    fn private_key_serialization_roundtrips(seed in any::<u64>()) {
        // Small keys keep this cheap; exercise the parser's validation.
        let mut rng = XorShiftSource::new(seed);
        let key = generate_keypair(256, &mut rng);
        let back = RabinPrivateKey::from_bytes(&key.to_bytes()).unwrap();
        prop_assert_eq!(back.public(), key.public());
    }

    #[test]
    fn garbage_never_parses_as_private_key_silently(
        junk in proptest::collection::vec(any::<u8>(), 0..60),
    ) {
        // Must not panic; may parse only if it happens to satisfy the
        // structural and congruence checks.
        let _ = RabinPrivateKey::from_bytes(&junk);
    }
}
