//! The SFS per-message MAC.
//!
//! Paper §3.1.3: SFS "re-keys the SHA-1-based MAC for each message using 32
//! bytes of data pulled from the ARC4 stream (and not used for the purposes
//! of encryption). The MAC is computed on the length and plaintext contents
//! of each RPC message."
//!
//! RECONSTRUCTION: the paper does not spell out the keyed construction
//! beyond "SHA-1-based" (citing Bellare–Rogaway's random-oracle paradigm).
//! We use a nested (NMAC-style) construction, which resists length
//! extension:
//!
//! ```text
//! inner = SHA-1(key[0..16] || be64(len) || message)
//! mac   = SHA-1(key[16..32] || inner)
//! ```
//!
//! The paper also notes the MAC "is slower than alternatives such as MD5
//! HMAC" and "could be swapped out... without affecting the main claims";
//! faithfulness to the 32-byte-rekey structure is what matters here.

use crate::sha1::{sha1_concat, Sha1, DIGEST_LEN};

/// MAC key length: 32 bytes pulled from the ARC4 stream per message.
pub const MAC_KEY_LEN: usize = 32;

/// MAC output length (one SHA-1 digest).
pub const MAC_LEN: usize = DIGEST_LEN;

/// Computes the SFS message authentication code over a message with a fresh
/// 32-byte key.
pub struct SfsMac;

impl SfsMac {
    /// Computes the MAC of `message` under `key`.
    pub fn compute(key: &[u8; MAC_KEY_LEN], message: &[u8]) -> [u8; MAC_LEN] {
        let len_bytes = (message.len() as u64).to_be_bytes();
        let inner = {
            let mut h = Sha1::new();
            h.update(&key[..16]);
            h.update(&len_bytes);
            h.update(message);
            h.finalize()
        };
        sha1_concat(&[&key[16..], &inner])
    }

    /// Verifies a MAC in constant time with respect to the tag contents.
    pub fn verify(key: &[u8; MAC_KEY_LEN], message: &[u8], tag: &[u8]) -> bool {
        if tag.len() != MAC_LEN {
            return false;
        }
        let expect = Self::compute(key, message);
        // Constant-time comparison: accumulate differences.
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [7u8; 32];

    #[test]
    fn verify_accepts_valid() {
        let tag = SfsMac::compute(&KEY, b"NFS3_GETATTR reply");
        assert!(SfsMac::verify(&KEY, b"NFS3_GETATTR reply", &tag));
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let tag = SfsMac::compute(&KEY, b"mode=0644");
        assert!(!SfsMac::verify(&KEY, b"mode=4755", &tag));
    }

    #[test]
    fn verify_rejects_tampered_tag() {
        let mut tag = SfsMac::compute(&KEY, b"data");
        tag[0] ^= 1;
        assert!(!SfsMac::verify(&KEY, b"data", &tag));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let tag = SfsMac::compute(&KEY, b"data");
        let other = [8u8; 32];
        assert!(!SfsMac::verify(&other, b"data", &tag));
    }

    #[test]
    fn verify_rejects_truncated_tag() {
        let tag = SfsMac::compute(&KEY, b"data");
        assert!(!SfsMac::verify(&KEY, b"data", &tag[..10]));
    }

    #[test]
    fn length_is_bound() {
        // A message and its extension must not share a MAC prefix trivially:
        // the explicit length field distinguishes them even when the
        // contents collide as prefixes.
        let a = SfsMac::compute(&KEY, b"ab");
        let b = SfsMac::compute(&KEY, b"ab\0");
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_keys_give_distinct_tags() {
        let k1 = [1u8; 32];
        let k2 = [2u8; 32];
        assert_ne!(SfsMac::compute(&k1, b"m"), SfsMac::compute(&k2, b"m"));
    }
}
