//! The Blowfish block cipher (Schneier 1993) and CBC mode.
//!
//! SFS servers "generate file handles by adding redundancy to NFS handles
//! and encrypting them in CBC mode with a 20-byte Blowfish key" (§3.3).
//! Blowfish accepts keys of 4–56 bytes, so the 20-byte key is used directly.
//! The P/S constant tables come from π via [`crate::pi`].

use crate::pi::blowfish_words;

/// Blowfish block size in bytes.
pub const BLOCK_LEN: usize = 8;

/// Number of rounds (fixed by the algorithm).
const ROUNDS: usize = 16;

/// A keyed Blowfish instance.
#[derive(Clone)]
pub struct Blowfish {
    p: [u32; ROUNDS + 2],
    s: [[u32; 256]; 4],
}

impl Blowfish {
    /// Creates an instance with the standard key schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `4 <= key.len() <= 56`.
    pub fn new(key: &[u8]) -> Self {
        assert!(
            (4..=56).contains(&key.len()),
            "Blowfish key must be 4-56 bytes"
        );
        let mut bf = Blowfish::init_state();
        bf.expand_key_words(key);
        bf.mix_subkeys(&[0u8; 16]);
        bf
    }

    /// Returns the unkeyed initial state (π digits). Crate-public so
    /// eksblowfish can run its own expensive key schedule.
    pub(crate) fn init_state() -> Self {
        let words = blowfish_words();
        let mut p = [0u32; ROUNDS + 2];
        p.copy_from_slice(&words[..18]);
        let mut s = [[0u32; 256]; 4];
        for (i, sbox) in s.iter_mut().enumerate() {
            sbox.copy_from_slice(&words[18 + i * 256..18 + (i + 1) * 256]);
        }
        Blowfish { p, s }
    }

    /// XORs the key cyclically into the P-array (first half of the key
    /// schedule; eksblowfish's ExpandKey reuses it).
    pub(crate) fn expand_key_words(&mut self, key: &[u8]) {
        let mut pos = 0;
        for pe in self.p.iter_mut() {
            let mut w: u32 = 0;
            for _ in 0..4 {
                w = (w << 8) | key[pos] as u32;
                pos = (pos + 1) % key.len();
            }
            *pe ^= w;
        }
    }

    /// Re-derives all subkeys by repeated encryption, chaining in the
    /// 128-bit `salt` (all-zero salt gives the standard schedule; a nonzero
    /// salt is eksblowfish's salted ExpandKey).
    pub(crate) fn mix_subkeys(&mut self, salt: &[u8; 16]) {
        let halves = [
            u32::from_be_bytes(salt[0..4].try_into().unwrap()),
            u32::from_be_bytes(salt[4..8].try_into().unwrap()),
            u32::from_be_bytes(salt[8..12].try_into().unwrap()),
            u32::from_be_bytes(salt[12..16].try_into().unwrap()),
        ];
        let (mut l, mut r) = (0u32, 0u32);
        let mut salt_ix = 0;
        for i in (0..ROUNDS + 2).step_by(2) {
            l ^= halves[salt_ix];
            r ^= halves[salt_ix + 1];
            salt_ix = (salt_ix + 2) % 4;
            let (nl, nr) = self.encrypt_words(l, r);
            l = nl;
            r = nr;
            self.p[i] = l;
            self.p[i + 1] = r;
        }
        for sbox in 0..4 {
            for i in (0..256).step_by(2) {
                l ^= halves[salt_ix];
                r ^= halves[salt_ix + 1];
                salt_ix = (salt_ix + 2) % 4;
                let (nl, nr) = self.encrypt_words(l, r);
                l = nl;
                r = nr;
                self.s[sbox][i] = l;
                self.s[sbox][i + 1] = r;
            }
        }
    }

    /// The Blowfish round function: `((S0[a] + S1[b]) ^ S2[c]) + S3[d]`.
    #[inline]
    fn f(&self, x: u32) -> u32 {
        let a = self.s[0][(x >> 24) as usize];
        let b = self.s[1][(x >> 16 & 0xff) as usize];
        let c = self.s[2][(x >> 8 & 0xff) as usize];
        let d = self.s[3][(x & 0xff) as usize];
        (a.wrapping_add(b) ^ c).wrapping_add(d)
    }

    /// Encrypts one 64-bit block given as two 32-bit halves.
    pub fn encrypt_words(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in 0..ROUNDS {
            l ^= self.p[i];
            r ^= self.f(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[ROUNDS];
        l ^= self.p[ROUNDS + 1];
        (l, r)
    }

    /// Decrypts one 64-bit block given as two 32-bit halves.
    pub fn decrypt_words(&self, mut l: u32, mut r: u32) -> (u32, u32) {
        for i in (2..ROUNDS + 2).rev() {
            l ^= self.p[i];
            r ^= self.f(l);
            std::mem::swap(&mut l, &mut r);
        }
        std::mem::swap(&mut l, &mut r);
        r ^= self.p[1];
        l ^= self.p[0];
        (l, r)
    }

    /// Encrypts one 8-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let l = u32::from_be_bytes(block[0..4].try_into().unwrap());
        let r = u32::from_be_bytes(block[4..8].try_into().unwrap());
        let (l, r) = self.encrypt_words(l, r);
        block[0..4].copy_from_slice(&l.to_be_bytes());
        block[4..8].copy_from_slice(&r.to_be_bytes());
    }

    /// Decrypts one 8-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let l = u32::from_be_bytes(block[0..4].try_into().unwrap());
        let r = u32::from_be_bytes(block[4..8].try_into().unwrap());
        let (l, r) = self.decrypt_words(l, r);
        block[0..4].copy_from_slice(&l.to_be_bytes());
        block[4..8].copy_from_slice(&r.to_be_bytes());
    }

    /// CBC-encrypts `data` in place with a zero IV.
    ///
    /// SFS uses CBC over the fixed-size, redundancy-padded NFS file handle
    /// with a per-server key; handles are unique, so a fixed IV is safe
    /// there.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len()` is a nonzero multiple of 8.
    pub fn cbc_encrypt(&self, data: &mut [u8]) {
        assert!(
            !data.is_empty() && data.len().is_multiple_of(BLOCK_LEN),
            "CBC data must be a nonzero multiple of 8 bytes"
        );
        let mut prev = [0u8; BLOCK_LEN];
        for chunk in data.chunks_mut(BLOCK_LEN) {
            for (c, p) in chunk.iter_mut().zip(prev.iter()) {
                *c ^= p;
            }
            let block: &mut [u8; BLOCK_LEN] = chunk.try_into().unwrap();
            self.encrypt_block(block);
            prev.copy_from_slice(block);
        }
    }

    /// CBC-decrypts `data` in place with a zero IV.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len()` is a nonzero multiple of 8.
    pub fn cbc_decrypt(&self, data: &mut [u8]) {
        assert!(
            !data.is_empty() && data.len().is_multiple_of(BLOCK_LEN),
            "CBC data must be a nonzero multiple of 8 bytes"
        );
        let mut prev = [0u8; BLOCK_LEN];
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let cipher: [u8; BLOCK_LEN] = (&*chunk).try_into().unwrap();
            let block: &mut [u8; BLOCK_LEN] = chunk.try_into().unwrap();
            self.decrypt_block(block);
            for (c, p) in block.iter_mut().zip(prev.iter()) {
                *c ^= p;
            }
            prev = cipher;
        }
    }
}

impl std::fmt::Debug for Blowfish {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Blowfish {{ .. }}") // Never leak subkeys.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hexkey(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// Eric Young's published Blowfish known-answer vectors.
    #[test]
    fn known_answer_vectors() {
        let cases = [
            ("0000000000000000", "0000000000000000", "4EF997456198DD78"),
            ("FFFFFFFFFFFFFFFF", "FFFFFFFFFFFFFFFF", "51866FD5B85ECB8A"),
            ("3000000000000000", "1000000000000001", "7D856F9A613063F2"),
            ("1111111111111111", "1111111111111111", "2466DD878B963C9D"),
            ("0123456789ABCDEF", "1111111111111111", "61F9C3802281B096"),
            ("FEDCBA9876543210", "0123456789ABCDEF", "0ACEAB0FC6A0A28D"),
            ("7CA110454A1A6E57", "01A1D6D039776742", "59C68245EB05282B"),
            ("0131D9619DC1376E", "5CD54CA83DEF57DA", "B1B8CC0B250F09A0"),
        ];
        for (key, plain, cipher) in cases {
            let bf = Blowfish::new(&hexkey(key));
            let mut block: [u8; 8] = hexkey(plain).try_into().unwrap();
            bf.encrypt_block(&mut block);
            let got: String = block.iter().map(|b| format!("{b:02X}")).collect();
            assert_eq!(got, cipher, "key={key} plain={plain}");
            bf.decrypt_block(&mut block);
            let back: String = block.iter().map(|b| format!("{b:02X}")).collect();
            assert_eq!(back, plain);
        }
    }

    #[test]
    fn twenty_byte_key_roundtrip() {
        let key = [0x42u8; 20];
        let bf = Blowfish::new(&key);
        let mut block = *b"NFSHANDL";
        let orig = block;
        bf.encrypt_block(&mut block);
        assert_ne!(block, orig);
        bf.decrypt_block(&mut block);
        assert_eq!(block, orig);
    }

    #[test]
    fn cbc_roundtrip_and_chaining() {
        let bf = Blowfish::new(b"a-20-byte-long-key!!");
        let mut data = vec![0u8; 32];
        data[0] = 1;
        let orig = data.clone();
        bf.cbc_encrypt(&mut data);
        // Identical plaintext blocks must yield different ciphertext blocks.
        assert_ne!(&data[8..16], &data[16..24]);
        bf.cbc_decrypt(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn cbc_bit_flip_garbles_following_blocks() {
        let bf = Blowfish::new(b"another-20-byte-key!");
        let mut data = b"0123456789abcdef".to_vec();
        bf.cbc_encrypt(&mut data);
        data[0] ^= 1;
        bf.cbc_decrypt(&mut data);
        assert_ne!(&data[..], b"0123456789abcdef");
    }

    #[test]
    #[should_panic(expected = "Blowfish key must be 4-56 bytes")]
    fn short_key_panics() {
        let _ = Blowfish::new(&[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "CBC data must be a nonzero multiple of 8")]
    fn unaligned_cbc_panics() {
        let bf = Blowfish::new(b"long enough key");
        let mut data = vec![0u8; 12];
        bf.cbc_encrypt(&mut data);
    }
}
