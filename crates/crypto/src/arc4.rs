//! The ARC4 stream cipher ("alleged RC4", Kaukonen–Thayer draft).
//!
//! SFS assumes ARC4 is a pseudo-random generator (§3.1.3) and uses it for
//! session encryption. The implementation follows the paper's two
//! non-standard details:
//!
//! - 20-byte (160-bit) keys are supported "by spinning the ARC4 key schedule
//!   once for each 128 bits of key data" — i.e. the key-scheduling loop runs
//!   once per 16-byte chunk of the key, feeding each chunk in turn.
//! - the stream "keeps running for the duration of a session"; the cipher is
//!   therefore a long-lived object and the MAC layer pulls bytes from the
//!   same stream (see [`crate::mac`]).

/// ARC4 stream cipher state.
///
/// The permutation is held as `[u32; 256]` rather than `[u8; 256]`: every
/// value is still a byte (0–255), but widening the slots lets the PRGA
/// run on full registers — no partial-register byte merges — which is the
/// classic ARC4 software optimization and is worth ~2× on the bulk paths.
#[derive(Clone)]
pub struct Arc4 {
    s: [u32; 256],
    i: u8,
    j: u8,
    /// Total key-stream bytes produced; used for replay diagnostics.
    position: u64,
}

impl Arc4 {
    /// Initializes from a key of 1–256 bytes.
    ///
    /// For keys longer than 128 bits the key schedule is spun once per
    /// 128-bit chunk, per SFS's construction (§3.1.3). A final partial chunk
    /// spins the schedule with just those bytes.
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty or longer than 256 bytes.
    pub fn new(key: &[u8]) -> Self {
        assert!(
            !key.is_empty() && key.len() <= 256,
            "ARC4 key must be 1-256 bytes"
        );
        let mut s = [0u32; 256];
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as u32;
        }
        // RECONSTRUCTION: the paper says the key schedule is spun "once for
        // each 128 bits of key data". We interpret this as running the KSA
        // mixing pass once per 16-byte chunk, each pass keyed by its chunk
        // (the trailing <16-byte chunk gets its own pass). For keys of at
        // most 16 bytes this is exactly standard ARC4.
        let mut j: u8 = 0;
        for chunk in key.chunks(16) {
            for i in 0..256 {
                j = j
                    .wrapping_add(s[i] as u8)
                    .wrapping_add(chunk[i % chunk.len()]);
                s.swap(i, j as usize);
            }
        }
        Arc4 {
            s,
            i: 0,
            j: 0,
            position: 0,
        }
    }

    /// Produces the next key-stream byte.
    #[inline]
    pub fn next_byte(&mut self) -> u8 {
        self.position += 1;
        let (mut i, mut j) = (self.i as usize, self.j as usize);
        let out = Self::step(&mut self.s, &mut i, &mut j);
        self.i = i as u8;
        self.j = j as u8;
        out
    }

    /// One PRGA step on hoisted state. Keeping `i`/`j` in caller-held
    /// full-width locals (masked with `& 0xff`, never stored as `u8`) lets
    /// the bulk loops run register-to-register — no partial-register byte
    /// merges, no round trip through `self` per byte — and the explicit
    /// two-store swap avoids re-reading the permutation.
    #[inline(always)]
    fn step(s: &mut [u32; 256], i: &mut usize, j: &mut usize) -> u8 {
        *i = (*i + 1) & 0xff;
        let si = s[*i];
        *j = (*j + si as usize) & 0xff;
        let sj = s[*j];
        s[*i] = sj;
        s[*j] = si;
        s[((si + sj) & 0xff) as usize] as u8
    }

    /// Fills `out` with key-stream bytes.
    pub fn keystream(&mut self, out: &mut [u8]) {
        let s = &mut self.s;
        let (mut i, mut j) = (self.i as usize, self.j as usize);
        for b in out.iter_mut() {
            *b = Self::step(s, &mut i, &mut j);
        }
        self.i = i as u8;
        self.j = j as u8;
        self.position += out.len() as u64;
    }

    /// XORs the key stream into `data` in place (encryption == decryption).
    ///
    /// The bulk loop generates eight key-stream bytes at a time and applies
    /// them with one word-sized XOR; the PRGA itself is inherently serial
    /// (each step permutes `s`), so the win is in the data side and in the
    /// per-byte bookkeeping, not the key stream.
    pub fn process(&mut self, data: &mut [u8]) {
        let s = &mut self.s;
        let (mut i, mut j) = (self.i as usize, self.j as usize);
        let mut chunks = data.chunks_exact_mut(8);
        for chunk in &mut chunks {
            let mut ks = 0u64;
            for n in 0..8 {
                ks |= (Self::step(s, &mut i, &mut j) as u64) << (8 * n);
            }
            let word = u64::from_le_bytes(chunk[..8].try_into().unwrap()) ^ ks;
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        for b in chunks.into_remainder() {
            *b ^= Self::step(s, &mut i, &mut j);
        }
        self.i = i as u8;
        self.j = j as u8;
        self.position += data.len() as u64;
    }

    /// Total key-stream bytes consumed so far. The secure channel uses this
    /// as its implicit per-direction stream position: any dropped, replayed,
    /// or reordered ciphertext desynchronizes the stream and fails the MAC.
    pub fn position(&self) -> u64 {
        self.position
    }
}

impl std::fmt::Debug for Arc4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak cipher state.
        write!(f, "Arc4 {{ position: {} }}", self.position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    /// Published ARC4 test vectors (from the original sci.crypt posting and
    /// the Kaukonen–Thayer draft) use keys of at most 16 bytes, where our
    /// construction is exactly standard ARC4.
    #[test]
    fn arcfour_vector_key_plaintext() {
        // Key 0x0123456789abcdef, plaintext 0x0123456789abcdef
        // -> ciphertext 0x75b7878099e0c596.
        let key = [0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef];
        let mut data = [0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef];
        Arc4::new(&key).process(&mut data);
        assert_eq!(hex(&data), "75b7878099e0c596");
    }

    #[test]
    fn arcfour_vector_zero_plaintext() {
        // Key 0x0123456789abcdef, plaintext all-zero
        // -> keystream 0x7494c2e7104b0879.
        let key = [0x01, 0x23, 0x45, 0x67, 0x89, 0xab, 0xcd, 0xef];
        let mut data = [0u8; 8];
        Arc4::new(&key).process(&mut data);
        assert_eq!(hex(&data), "7494c2e7104b0879");
    }

    #[test]
    fn arcfour_vector_ef_key() {
        // Key 0xef012345, plaintext 10 zero bytes
        // -> keystream 0xd6a141a7ec3c38dfbd61.
        let key = [0xef, 0x01, 0x23, 0x45];
        let mut data = [0u8; 10];
        Arc4::new(&key).process(&mut data);
        assert_eq!(hex(&data), "d6a141a7ec3c38dfbd61");
    }

    #[test]
    fn roundtrip() {
        let key = b"twenty-byte-key-....";
        assert_eq!(key.len(), 20);
        let plaintext = b"attack at dawn, via the automounter".to_vec();
        let mut data = plaintext.clone();
        Arc4::new(key).process(&mut data);
        assert_ne!(data, plaintext);
        Arc4::new(key).process(&mut data);
        assert_eq!(data, plaintext);
    }

    #[test]
    fn twenty_byte_key_spins_twice() {
        // A 20-byte key must not behave like standard single-pass ARC4 over
        // the same bytes (the second 128-bit chunk re-mixes the state).
        let key = [7u8; 20];
        let mut ours = [0u8; 16];
        Arc4::new(&key).keystream(&mut ours);

        // Standard single-pass ARC4 for comparison.
        let mut s: Vec<u8> = (0..=255).collect();
        let mut j = 0u8;
        for i in 0..256 {
            j = j.wrapping_add(s[i]).wrapping_add(key[i % 20]);
            s.swap(i, j as usize);
        }
        let (mut i, mut jj) = (0u8, 0u8);
        let mut std_out = [0u8; 16];
        for b in &mut std_out {
            i = i.wrapping_add(1);
            jj = jj.wrapping_add(s[i as usize]);
            s.swap(i as usize, jj as usize);
            *b = s[s[i as usize].wrapping_add(s[jj as usize]) as usize];
        }
        assert_ne!(ours, std_out);
    }

    #[test]
    fn bulk_paths_match_per_byte_stepping() {
        // The unrolled word-at-a-time loop must emit the exact stream the
        // scalar `next_byte` path does, at every alignment and length.
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100, 257] {
            let mut by_byte = Arc4::new(b"bulk-vs-byte");
            let mut bulk = Arc4::new(b"bulk-vs-byte");
            let mut data: Vec<u8> = (0..len as u32).map(|x| x as u8).collect();
            let expect: Vec<u8> = data.iter().map(|b| b ^ by_byte.next_byte()).collect();
            bulk.process(&mut data);
            assert_eq!(data, expect, "len={len}");
            assert_eq!(bulk.position(), by_byte.position());
            let mut ks_bulk = vec![0u8; len];
            bulk.keystream(&mut ks_bulk);
            let ks_byte: Vec<u8> = (0..len).map(|_| by_byte.next_byte()).collect();
            assert_eq!(ks_bulk, ks_byte, "keystream len={len}");
        }
    }

    #[test]
    fn position_tracks_bytes() {
        let mut c = Arc4::new(b"k");
        let mut buf = [0u8; 37];
        c.keystream(&mut buf);
        assert_eq!(c.position(), 37);
        c.next_byte();
        assert_eq!(c.position(), 38);
    }

    #[test]
    fn streams_differ_across_keys() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        Arc4::new(b"key-a").keystream(&mut a);
        Arc4::new(b"key-b").keystream(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "ARC4 key must be 1-256 bytes")]
    fn empty_key_panics() {
        let _ = Arc4::new(&[]);
    }
}
