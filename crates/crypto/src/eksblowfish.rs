//! Eksblowfish — the "expensive key schedule" Blowfish variant behind
//! bcrypt (Provos & Mazières, USENIX '99).
//!
//! SFS "makes guessing attacks expensive by transforming passwords with the
//! eksblowfish algorithm", whose cost parameter "one can increase as
//! computers get faster" so that guesses keep taking "almost a full second
//! of CPU time" (§2.5.2). The authserver stores eksblowfish hashes of SRP
//! verifiers and uses the same transform to encrypt users' registered
//! private keys.

use crate::blowfish::Blowfish;

/// Salt length in bytes (fixed by the algorithm).
pub const SALT_LEN: usize = 16;

/// Output length of [`bcrypt_hash`]: three Blowfish blocks.
pub const HASH_LEN: usize = 24;

/// The magic plaintext bcrypt encrypts 64 times ("OrpheanBeholderScryDoubt").
const MAGIC: &[u8; 24] = b"OrpheanBeholderScryDoubt";

/// Runs the EksBlowfishSetup key schedule: one salted expansion followed by
/// `2^cost` alternating unsalted expansions keyed by the password and the
/// salt.
///
/// # Panics
///
/// Panics if `key` is empty or longer than 72 bytes (bcrypt's limit), or if
/// `cost > 31`.
pub fn eks_setup(cost: u32, salt: &[u8; SALT_LEN], key: &[u8]) -> Blowfish {
    assert!(
        !key.is_empty() && key.len() <= 72,
        "eksblowfish key must be 1-72 bytes"
    );
    assert!(cost <= 31, "cost parameter must be at most 31");
    let mut state = Blowfish::init_state();
    // ExpandKey(state, salt, key).
    state.expand_key_words(key);
    state.mix_subkeys(salt);
    let zero_salt = [0u8; SALT_LEN];
    for _ in 0..1u64 << cost {
        // ExpandKey(state, 0, key) then ExpandKey(state, 0, salt).
        state.expand_key_words(key);
        state.mix_subkeys(&zero_salt);
        state.expand_key_words(salt);
        state.mix_subkeys(&zero_salt);
    }
    state
}

/// bcrypt's raw hash: eksblowfish setup, then ECB-encrypt the magic block
/// 64 times.
///
/// The output is the 24-byte raw digest; SFS stores it directly (we do not
/// reproduce the `$2a$` modular-crypt string format, which postdates the
/// construction itself).
pub fn bcrypt_hash(cost: u32, salt: &[u8; SALT_LEN], password: &[u8]) -> [u8; HASH_LEN] {
    let bf = eks_setup(cost, salt, password);
    let mut buf = *MAGIC;
    for _ in 0..64 {
        for chunk in buf.chunks_mut(8) {
            let block: &mut [u8; 8] = chunk.try_into().unwrap();
            bf.encrypt_block(block);
        }
    }
    buf
}

/// Derives `out_len` bytes of key material from a password with an
/// eksblowfish work factor, by hashing the bcrypt output through SHA-1 in
/// counter mode.
///
/// This is the transform `sfskey` and `authserv` apply before using a
/// password in SRP or to encrypt a private key (§2.5.2): the expensive part
/// is eksblowfish; the expansion is cheap.
pub fn password_kdf(cost: u32, salt: &[u8; SALT_LEN], password: &[u8], out_len: usize) -> Vec<u8> {
    let raw = bcrypt_hash(cost, salt, password);
    let mut out = Vec::with_capacity(out_len + 20);
    let mut counter: u32 = 0;
    while out.len() < out_len {
        out.extend_from_slice(&crate::sha1::sha1_concat(&[
            b"SFS-pw-kdf",
            &raw,
            &counter.to_be_bytes(),
        ]));
        counter += 1;
    }
    out.truncate(out_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SALT: [u8; 16] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];

    #[test]
    fn deterministic() {
        assert_eq!(
            bcrypt_hash(4, &SALT, b"hunter2"),
            bcrypt_hash(4, &SALT, b"hunter2")
        );
    }

    #[test]
    fn password_sensitivity() {
        assert_ne!(
            bcrypt_hash(4, &SALT, b"hunter2"),
            bcrypt_hash(4, &SALT, b"hunter3")
        );
    }

    #[test]
    fn salt_sensitivity() {
        let mut other = SALT;
        other[0] ^= 1;
        assert_ne!(
            bcrypt_hash(4, &SALT, b"hunter2"),
            bcrypt_hash(4, &other, b"hunter2")
        );
    }

    #[test]
    fn cost_changes_output() {
        assert_ne!(bcrypt_hash(4, &SALT, b"pw"), bcrypt_hash(5, &SALT, b"pw"));
    }

    #[test]
    fn cost_scales_work() {
        // The point of the scheme: doubling cost should roughly double
        // time. We only assert monotonicity to keep the test robust.
        let t = |cost| {
            let start = std::time::Instant::now();
            let _ = bcrypt_hash(cost, &SALT, b"timing");
            start.elapsed()
        };
        let t6 = t(6);
        let t9 = t(9);
        assert!(t9 > t6, "cost 9 ({t9:?}) should exceed cost 6 ({t6:?})");
    }

    #[test]
    fn kdf_expands_to_requested_length() {
        let k = password_kdf(4, &SALT, b"secret", 52);
        assert_eq!(k.len(), 52);
        // Prefix property.
        assert_eq!(&password_kdf(4, &SALT, b"secret", 20)[..], &k[..20]);
        // Password sensitivity flows through.
        assert_ne!(password_kdf(4, &SALT, b"other", 52), k);
    }

    #[test]
    #[should_panic(expected = "cost parameter must be at most 31")]
    fn absurd_cost_panics() {
        let _ = eks_setup(32, &SALT, b"pw");
    }

    #[test]
    #[should_panic(expected = "eksblowfish key must be 1-72 bytes")]
    fn empty_password_panics() {
        let _ = eks_setup(4, &SALT, b"");
    }
}
