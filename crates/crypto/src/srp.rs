//! The Secure Remote Password protocol (Wu, NDSS '98).
//!
//! Paper §2.4: "Two programs, sfskey and authserv, use the SRP protocol to
//! let people securely download self-certifying pathnames using passwords.
//! SRP permits a client and server sharing a weak secret to negotiate a
//! strong session key without exposing the weak secret to off-line guessing
//! attacks."
//!
//! This follows SRP-3 as published (and RFC 2945's evidence messages):
//!
//! ```text
//! x = SHA1(salt || SHA1(user ":" password))        v = g^x
//! client:  A = g^a                                 server: B = v + g^b
//! u = first 32 bits of SHA1(B)
//! client:  S = (B − g^x)^(a + u·x)                 server: S = (A·v^u)^b
//! K = H(S);   M1 = H(H(N)⊕H(g), H(user), salt, A, B, K);   M2 = H(A, M1, K)
//! ```
//!
//! In SFS the password is first hardened with eksblowfish
//! ([`crate::eksblowfish::password_kdf`]) so that even captured verifiers
//! make guessing expensive (§2.5.2).

use std::sync::OnceLock;

use sfs_bignum::{gen_prime_congruent, invmod, is_probable_prime, modpow, Int, Nat, RandomSource};

use crate::sha1::{sha1, sha1_concat, DIGEST_LEN};

/// Errors from the SRP handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrpError {
    /// The peer's public value was zero modulo N (an attack).
    InvalidPublicValue,
    /// The scrambling parameter u was zero (degenerate handshake).
    DegenerateHandshake,
    /// The client's evidence M1 did not verify (wrong password or MITM).
    BadClientEvidence,
    /// The server's evidence M2 did not verify (not the real server).
    BadServerEvidence,
}

impl std::fmt::Display for SrpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SrpError::InvalidPublicValue => write!(f, "peer public value is 0 mod N"),
            SrpError::DegenerateHandshake => write!(f, "degenerate SRP handshake (u = 0)"),
            SrpError::BadClientEvidence => write!(f, "client evidence M1 mismatch"),
            SrpError::BadServerEvidence => write!(f, "server evidence M2 mismatch"),
        }
    }
}

impl std::error::Error for SrpError {}

/// An SRP group: a safe prime `n` and generator `g`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrpGroup {
    /// The safe prime modulus.
    pub n: Nat,
    /// The generator.
    pub g: Nat,
}

impl SrpGroup {
    /// The 1024-bit group from RFC 5054 Appendix A (originating in the SRP
    /// distribution contemporary with SFS). Verified prime/safe-prime by
    /// tests.
    pub fn rfc5054_1024() -> &'static SrpGroup {
        static GROUP: OnceLock<SrpGroup> = OnceLock::new();
        GROUP.get_or_init(|| SrpGroup {
            n: Nat::from_hex(concat!(
                "EEAF0AB9ADB38DD69C33F80AFA8FC5E86072618775FF3C0B9EA2314C",
                "9C256576D674DF7496EA81D3383B4813D692C6E0E0D5D8E250B98BE4",
                "8E495C1D6089DAD15DC7D7B46154D6B6CE8EF4AD69B15D4982559B29",
                "7BCF1885C529F566660E57EC68EDBC3C05726CC02FD4CBF4976EAA9A",
                "FD5138FE8376435B9FC61D2FC0EB06E3"
            ))
            .expect("constant group modulus"),
            g: Nat::from(2u64),
        })
    }

    /// Generates a fresh safe-prime group of `bits` bits with `g = 2`
    /// (slow; meant for tests wanting small groups).
    pub fn generate<R: RandomSource>(bits: usize, rng: &mut R) -> SrpGroup {
        loop {
            // Safe prime: n = 2q + 1 with q prime. Choose q ≡ 1 (mod 2)
            // and check; for g = 2 to generate the large subgroup, n ≡ 7
            // (mod 8) makes 2 a quadratic residue of order q.
            let q = gen_prime_congruent(bits - 1, 3, 4, rng);
            let n = q.shl_bits(1).add_nat(&Nat::one());
            if n.div_rem_u64(8).1 == 7 && is_probable_prime(&n, 32, rng) {
                return SrpGroup {
                    n,
                    g: Nat::from(2u64),
                };
            }
        }
    }
}

/// Computes the private exponent `x = SHA1(salt || SHA1(user ":" pass))`.
pub fn private_exponent(user: &str, password: &[u8], salt: &[u8]) -> Nat {
    let inner = sha1_concat(&[user.as_bytes(), b":", password]);
    Nat::from_bytes_be(&sha1_concat(&[salt, &inner]))
}

/// Computes the verifier `v = g^x mod n` a user registers with authserv.
pub fn compute_verifier(group: &SrpGroup, user: &str, password: &[u8], salt: &[u8]) -> Nat {
    let x = private_exponent(user, password, salt);
    modpow(&group.g, &x, &group.n)
}

/// The scrambling parameter: first 32 bits of SHA1(B).
fn scramble(group: &SrpGroup, b_pub: &Nat) -> Nat {
    let d = sha1(&b_pub.to_bytes_be_padded(group.n.to_bytes_be().len()));
    Nat::from_bytes_be(&d[..4])
}

/// Derives the session key from the shared secret.
fn session_key(group: &SrpGroup, s: &Nat) -> [u8; DIGEST_LEN] {
    sha1_concat(&[b"SRP-K", &s.to_bytes_be_padded(group.n.to_bytes_be().len())])
}

fn evidence_m1(
    group: &SrpGroup,
    user: &str,
    salt: &[u8],
    a_pub: &Nat,
    b_pub: &Nat,
    key: &[u8; DIGEST_LEN],
) -> [u8; DIGEST_LEN] {
    let hn = sha1(&group.n.to_bytes_be());
    let hg = sha1(&group.g.to_bytes_be());
    let hx: Vec<u8> = hn.iter().zip(hg.iter()).map(|(a, b)| a ^ b).collect();
    let hu = sha1(user.as_bytes());
    sha1_concat(&[
        &hx,
        &hu,
        salt,
        &a_pub.to_bytes_be(),
        &b_pub.to_bytes_be(),
        key,
    ])
}

impl std::fmt::Debug for SrpClientSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SrpClientSession {{ .. }}")
    }
}

impl std::fmt::Debug for SrpServerSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SrpServerSession {{ .. }}")
    }
}

fn evidence_m2(a_pub: &Nat, m1: &[u8; DIGEST_LEN], key: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
    sha1_concat(&[&a_pub.to_bytes_be(), m1, key])
}

/// Client half of an SRP handshake.
pub struct SrpClient {
    group: SrpGroup,
    user: String,
    password: Vec<u8>,
    a: Nat,
    a_pub: Nat,
}

/// Result of a successful client-side handshake.
///
/// Debug intentionally does not print the key material.
pub struct SrpClientSession {
    /// The negotiated strong session key.
    pub key: [u8; DIGEST_LEN],
    /// Evidence to send to the server (proves the client knew the
    /// password).
    pub m1: [u8; DIGEST_LEN],
    expected_m2: [u8; DIGEST_LEN],
}

impl SrpClientSession {
    /// Checks the server's evidence message; failure means the peer did not
    /// actually know the verifier (it is not the real server).
    pub fn verify_server(&self, m2: &[u8]) -> Result<(), SrpError> {
        if m2 == self.expected_m2 {
            Ok(())
        } else {
            Err(SrpError::BadServerEvidence)
        }
    }
}

impl SrpClient {
    /// Starts a handshake; returns the client state and `A` to send.
    pub fn start<R: RandomSource>(
        group: &SrpGroup,
        user: &str,
        password: &[u8],
        rng: &mut R,
    ) -> (SrpClient, Nat) {
        let a = rng.random_bits(256).add_nat(&Nat::one());
        let a_pub = modpow(&group.g, &a, &group.n);
        (
            SrpClient {
                group: group.clone(),
                user: user.to_string(),
                password: password.to_vec(),
                a,
                a_pub: a_pub.clone(),
            },
            a_pub,
        )
    }

    /// Processes the server's `(salt, B)` reply and derives the session.
    pub fn process(self, salt: &[u8], b_pub: &Nat) -> Result<SrpClientSession, SrpError> {
        if b_pub.rem_nat(&self.group.n).unwrap().is_zero() {
            return Err(SrpError::InvalidPublicValue);
        }
        let u = scramble(&self.group, b_pub);
        if u.is_zero() {
            return Err(SrpError::DegenerateHandshake);
        }
        let x = private_exponent(&self.user, &self.password, salt);
        let gx = modpow(&self.group.g, &x, &self.group.n);
        // S = (B - g^x)^(a + u*x) mod n.
        let base = Int::from_nat(b_pub.clone())
            .sub(&Int::from_nat(gx))
            .rem_euclid(&self.group.n);
        if base.is_zero() {
            return Err(SrpError::InvalidPublicValue);
        }
        let exp = self.a.add_nat(&u.mul_nat(&x));
        let s = modpow(&base, &exp, &self.group.n);
        let key = session_key(&self.group, &s);
        let m1 = evidence_m1(&self.group, &self.user, salt, &self.a_pub, b_pub, &key);
        let expected_m2 = evidence_m2(&self.a_pub, &m1, &key);
        Ok(SrpClientSession {
            key,
            m1,
            expected_m2,
        })
    }
}

/// Server half of an SRP handshake.
pub struct SrpServer {
    group: SrpGroup,
    user: String,
    salt: Vec<u8>,
    verifier: Nat,
    b: Nat,
    b_pub: Nat,
}

/// Result of a successful server-side handshake.
///
/// Debug intentionally does not print the key material.
pub struct SrpServerSession {
    /// The negotiated strong session key.
    pub key: [u8; DIGEST_LEN],
    /// Evidence to return to the client after validating its M1.
    pub m2: [u8; DIGEST_LEN],
}

impl SrpServer {
    /// Starts the server side; returns the state and `B` to send.
    ///
    /// `verifier` is `v = g^x` as registered via [`compute_verifier`]; the
    /// server never sees the password itself ("the server never sees any
    /// password-equivalent data", §2.4).
    pub fn start<R: RandomSource>(
        group: &SrpGroup,
        user: &str,
        salt: &[u8],
        verifier: &Nat,
        rng: &mut R,
    ) -> (SrpServer, Nat) {
        let b = rng.random_bits(256).add_nat(&Nat::one());
        // B = v + g^b mod n (SRP-3).
        let gb = modpow(&group.g, &b, &group.n);
        let b_pub = verifier.add_nat(&gb).rem_nat(&group.n).unwrap();
        (
            SrpServer {
                group: group.clone(),
                user: user.to_string(),
                salt: salt.to_vec(),
                verifier: verifier.clone(),
                b,
                b_pub: b_pub.clone(),
            },
            b_pub,
        )
    }

    /// Processes the client's `A` and its evidence `M1`.
    pub fn process(self, a_pub: &Nat, m1: &[u8]) -> Result<SrpServerSession, SrpError> {
        if a_pub.rem_nat(&self.group.n).unwrap().is_zero() {
            return Err(SrpError::InvalidPublicValue);
        }
        let u = scramble(&self.group, &self.b_pub);
        if u.is_zero() {
            return Err(SrpError::DegenerateHandshake);
        }
        // S = (A * v^u)^b mod n.
        let vu = modpow(&self.verifier, &u, &self.group.n);
        let base = a_pub.mul_nat(&vu).rem_nat(&self.group.n).unwrap();
        let s = modpow(&base, &self.b, &self.group.n);
        let key = session_key(&self.group, &s);
        let expect_m1 = evidence_m1(
            &self.group,
            &self.user,
            &self.salt,
            a_pub,
            &self.b_pub,
            &key,
        );
        if m1 != expect_m1 {
            return Err(SrpError::BadClientEvidence);
        }
        let m2 = evidence_m2(a_pub, &expect_m1, &key);
        Ok(SrpServerSession { key, m2 })
    }
}

// Silence the unused-import lint path for invmod: it is part of this
// module's public story via re-export tests in sfs-bignum.
#[allow(unused)]
fn _uses(n: &Nat) -> Option<Nat> {
    invmod(n, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;

    fn small_group() -> SrpGroup {
        let mut rng = XorShiftSource::new(0x5109);
        SrpGroup::generate(128, &mut rng)
    }

    fn handshake(
        group: &SrpGroup,
        reg_pass: &[u8],
        login_pass: &[u8],
    ) -> Result<([u8; 20], [u8; 20]), SrpError> {
        let mut rng = XorShiftSource::new(42);
        let salt = b"0123456789abcdef";
        let v = compute_verifier(group, "alice", reg_pass, salt);
        let (client, a_pub) = SrpClient::start(group, "alice", login_pass, &mut rng);
        let (server, b_pub) = SrpServer::start(group, "alice", salt, &v, &mut rng);
        let cs = client.process(salt, &b_pub)?;
        let ss = server.process(&a_pub, &cs.m1)?;
        cs.verify_server(&ss.m2)?;
        Ok((cs.key, ss.key))
    }

    #[test]
    fn successful_handshake_agrees_on_key() {
        let group = small_group();
        let (ck, sk) = handshake(&group, b"correct horse", b"correct horse").unwrap();
        assert_eq!(ck, sk);
    }

    #[test]
    fn wrong_password_fails_evidence() {
        let group = small_group();
        assert_eq!(
            handshake(&group, b"correct horse", b"battery staple").unwrap_err(),
            SrpError::BadClientEvidence
        );
    }

    #[test]
    fn zero_b_rejected_by_client() {
        let group = small_group();
        let mut rng = XorShiftSource::new(1);
        let (client, _) = SrpClient::start(&group, "alice", b"pw", &mut rng);
        assert_eq!(
            client.process(b"salt", &Nat::zero()).unwrap_err(),
            SrpError::InvalidPublicValue
        );
    }

    #[test]
    fn zero_a_rejected_by_server() {
        let group = small_group();
        let mut rng = XorShiftSource::new(2);
        let v = compute_verifier(&group, "alice", b"pw", b"salt");
        let (server, _) = SrpServer::start(&group, "alice", b"salt", &v, &mut rng);
        assert_eq!(
            server.process(&Nat::zero(), &[0u8; 20]).unwrap_err(),
            SrpError::InvalidPublicValue
        );
        // n mod n == 0 too.
        let mut rng = XorShiftSource::new(3);
        let (server, _) = SrpServer::start(&group, "alice", b"salt", &v, &mut rng);
        assert_eq!(
            server.process(&group.n, &[0u8; 20]).unwrap_err(),
            SrpError::InvalidPublicValue
        );
    }

    #[test]
    fn fake_server_without_verifier_fails() {
        // A server that does not know v cannot produce a valid M2 even if
        // it completes the message flow with a made-up verifier.
        let group = small_group();
        let mut rng = XorShiftSource::new(4);
        let salt = b"salt";
        let fake_v = Nat::from(12345u64);
        let (client, a_pub) = SrpClient::start(&group, "alice", b"pw", &mut rng);
        let (server, b_pub) = SrpServer::start(&group, "alice", salt, &fake_v, &mut rng);
        let cs = client.process(salt, &b_pub).unwrap();
        // Server can't validate M1 (keys disagree)...
        let err = server.process(&a_pub, &cs.m1).unwrap_err();
        assert_eq!(err, SrpError::BadClientEvidence);
        // ...and any M2 it invents fails.
        assert_eq!(
            cs.verify_server(&[0u8; 20]).unwrap_err(),
            SrpError::BadServerEvidence
        );
    }

    #[test]
    fn verifier_not_password_equivalent() {
        // The verifier differs from anything hashed directly from the
        // password alone (it is salted and group-dependent).
        let group = small_group();
        let v1 = compute_verifier(&group, "alice", b"pw", b"salt-1");
        let v2 = compute_verifier(&group, "alice", b"pw", b"salt-2");
        assert_ne!(v1, v2);
    }

    #[test]
    fn generated_group_is_safe_prime() {
        let group = small_group();
        let mut rng = XorShiftSource::new(77);
        assert!(is_probable_prime(&group.n, 32, &mut rng));
        let q = group.n.checked_sub(&Nat::one()).unwrap().shr_bits(1);
        assert!(is_probable_prime(&q, 32, &mut rng));
    }

    #[test]
    fn rfc5054_group_is_safe_prime() {
        let group = SrpGroup::rfc5054_1024();
        assert_eq!(group.n.bit_len(), 1024);
        let mut rng = XorShiftSource::new(88);
        assert!(is_probable_prime(&group.n, 16, &mut rng), "N must be prime");
        let q = group.n.checked_sub(&Nat::one()).unwrap().shr_bits(1);
        assert!(is_probable_prime(&q, 16, &mut rng), "(N-1)/2 must be prime");
    }
}
