//! SHA-1 (FIPS 180-1).
//!
//! SFS assumes SHA-1 "behaves like a random oracle" (§3.1.3) and uses it for
//! HostIDs, session-key derivation, the per-message MAC, and the
//! pseudo-random generator. This is a from-scratch implementation with the
//! standard incremental (init/update/finalize) interface, verified against
//! the FIPS 180-1 test vectors.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 20;

/// Block size in bytes.
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    /// Partial block buffer.
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            h: H0,
            len: 0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress(&mut self.h, &block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            compress(&mut self.h, block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    /// Finishes and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manually absorb the length to avoid it perturbing `self.len`.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress(&mut self.h, &block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte strings.
///
/// SFS hashes XDR-marshaled structures, which concatenate fields; several
/// protocol values (HostID, SessionID, session keys) are defined as hashes
/// over field sequences.
pub fn sha1_concat(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// The standard SHA-1 initialization vector, exposed for the FIPS 186
/// pseudo-random generator's G function.
pub(crate) const IV: [u32; 5] = H0;

/// The raw SHA-1 compression function over one 64-byte block (no padding).
/// The FIPS 186 generator is defined directly in terms of this G function.
///
/// Dispatches to the SHA-NI instruction path when the CPU has it (the
/// dominant cost in the secure channel's per-frame MAC is this function);
/// both paths compute the identical FIPS 180-1 state update.
pub(crate) fn compress(h: &mut [u32; 5], block: &[u8; BLOCK_LEN]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sha")
        && std::arch::is_x86_feature_detected!("ssse3")
        && std::arch::is_x86_feature_detected!("sse4.1")
    {
        // SAFETY: feature presence is checked immediately above.
        unsafe { shani::compress(h, block) };
        return;
    }
    compress_scalar(h, block);
}

/// Portable scalar compression (used when SHA-NI is unavailable, and as
/// the reference the SHA-NI path is tested against).
fn compress_scalar(h: &mut [u32; 5], block: &[u8; BLOCK_LEN]) {
    // The message schedule lives in a 16-word ring fused into the round
    // loops (w[i] only ever depends on the previous 16 words), so one
    // pass touches 64 bytes of schedule state instead of materializing
    // all 80 expanded words.
    let mut w = [0u32; 16];
    for (i, word) in w.iter_mut().enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
    }
    let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
    // The 80 rounds are split into their four 20-round groups so each
    // loop body has a fixed f/k (no per-round selection). The choice and
    // majority functions use the standard equivalent forms with one fewer
    // operation: ch = d ^ (b & (c ^ d)), maj = (b & c) | (d & (b | c)).
    macro_rules! round {
        ($f:expr, $k:expr, $i:expr) => {{
            let slot = $i & 15;
            let wi = if $i < 16 {
                w[slot]
            } else {
                let x = (w[($i + 13) & 15] ^ w[($i + 8) & 15] ^ w[($i + 2) & 15] ^ w[slot])
                    .rotate_left(1);
                w[slot] = x;
                x
            };
            let t = a
                .rotate_left(5)
                .wrapping_add($f)
                .wrapping_add(e)
                .wrapping_add($k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = t;
        }};
    }
    for i in 0..20 {
        round!(d ^ (b & (c ^ d)), 0x5A827999, i);
    }
    for i in 20..40 {
        round!(b ^ c ^ d, 0x6ED9EBA1, i);
    }
    for i in 40..60 {
        round!((b & c) | (d & (b | c)), 0x8F1BBCDC, i);
    }
    for i in 60..80 {
        round!(b ^ c ^ d, 0xCA62C1D6, i);
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// SHA-1 compression via the x86 SHA extensions (`sha1rnds4`/`sha1nexte`/
/// `sha1msg1`/`sha1msg2`), following Intel's published schedule: four
/// rounds per `sha1rnds4`, with the message expansion kept in four XMM
/// registers and folded forward as the rounds consume it.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::BLOCK_LEN;
    use std::arch::x86_64::*;

    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub(super) unsafe fn compress(h: &mut [u32; 5], block: &[u8; BLOCK_LEN]) {
        // Lane order: `abcd` holds a,b,c,d with a in the high lane
        // (hence the 0x1B shuffles on load/store); `e` rides in the high
        // lane of its own register as `sha1nexte` expects.
        let mask = _mm_set_epi64x(0x0001020304050607u64 as i64, 0x08090a0b0c0d0e0fu64 as i64);
        let mut abcd = _mm_loadu_si128(h.as_ptr() as *const __m128i);
        abcd = _mm_shuffle_epi32::<0x1B>(abcd);
        let mut e0 = _mm_set_epi32(h[4] as i32, 0, 0, 0);
        let abcd_save = abcd;
        let e0_save = e0;

        let p = block.as_ptr() as *const __m128i;
        let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(p), mask);
        let mut msg1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(1)), mask);
        let mut msg2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(2)), mask);
        let mut msg3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(3)), mask);

        // Rounds 0-3.
        e0 = _mm_add_epi32(e0, msg0);
        let mut e1 = abcd;
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);

        // Rounds 4-7.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);

        // Rounds 8-11.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);

        // Rounds 12-15.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);

        // Rounds 16-19.
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<0>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);

        // Rounds 20-23.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        msg3 = _mm_xor_si128(msg3, msg1);

        // Rounds 24-27.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);

        // Rounds 28-31.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);

        // Rounds 32-35.
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);

        // Rounds 36-39.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<1>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        msg3 = _mm_xor_si128(msg3, msg1);

        // Rounds 40-43.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);

        // Rounds 44-47.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);

        // Rounds 48-51.
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);

        // Rounds 52-55.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e1);
        msg0 = _mm_sha1msg1_epu32(msg0, msg1);
        msg3 = _mm_xor_si128(msg3, msg1);

        // Rounds 56-59.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<2>(abcd, e0);
        msg1 = _mm_sha1msg1_epu32(msg1, msg2);
        msg0 = _mm_xor_si128(msg0, msg2);

        // Rounds 60-63.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        msg0 = _mm_sha1msg2_epu32(msg0, msg3);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);
        msg2 = _mm_sha1msg1_epu32(msg2, msg3);
        msg1 = _mm_xor_si128(msg1, msg3);

        // Rounds 64-67.
        e0 = _mm_sha1nexte_epu32(e0, msg0);
        e1 = abcd;
        msg1 = _mm_sha1msg2_epu32(msg1, msg0);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e0);
        msg3 = _mm_sha1msg1_epu32(msg3, msg0);
        msg2 = _mm_xor_si128(msg2, msg0);

        // Rounds 68-71.
        e1 = _mm_sha1nexte_epu32(e1, msg1);
        e0 = abcd;
        msg2 = _mm_sha1msg2_epu32(msg2, msg1);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);
        msg3 = _mm_xor_si128(msg3, msg1);

        // Rounds 72-75.
        e0 = _mm_sha1nexte_epu32(e0, msg2);
        e1 = abcd;
        msg3 = _mm_sha1msg2_epu32(msg3, msg2);
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e0);

        // Rounds 76-79.
        e1 = _mm_sha1nexte_epu32(e1, msg3);
        e0 = abcd;
        abcd = _mm_sha1rnds4_epu32::<3>(abcd, e1);

        // Fold back into the running state. `sha1nexte` rotates the
        // working e (in e0's high lane) and adds the saved value.
        e0 = _mm_sha1nexte_epu32(e0, e0_save);
        abcd = _mm_add_epi32(abcd, abcd_save);

        abcd = _mm_shuffle_epi32::<0x1B>(abcd);
        _mm_storeu_si128(h.as_mut_ptr() as *mut __m128i, abcd);
        h[4] = _mm_extract_epi32::<3>(e0) as u32;
    }
}

/// MGF1 mask generation with SHA-1 (used by the Rabin OAEP padding).
pub fn mgf1(seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(out_len + DIGEST_LEN);
    let mut counter: u32 = 0;
    while out.len() < out_len {
        let mut h = Sha1::new();
        h.update(seed);
        h.update(&counter.to_be_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(out_len);
    out
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Renders a digest as lowercase hex (test and debugging helper).
pub fn digest_hex(d: &[u8; DIGEST_LEN]) -> String {
    hex(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        // Split at awkward boundaries around the 64-byte block size.
        for split in [0usize, 1, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split={split}");
        }
    }

    #[test]
    fn concat_matches_manual() {
        let d = sha1_concat(&[b"Host", b"Info", b"x"]);
        assert_eq!(d, sha1(b"HostInfox"));
    }

    #[test]
    fn mgf1_deterministic_and_sized() {
        let a = mgf1(b"seed", 100);
        let b = mgf1(b"seed", 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // Prefix property: shorter outputs are prefixes of longer ones.
        assert_eq!(&mgf1(b"seed", 40)[..], &a[..40]);
        // Different seeds diverge.
        assert_ne!(mgf1(b"seed2", 100), a);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn shani_matches_scalar_compression() {
        if !std::arch::is_x86_feature_detected!("sha")
            || !std::arch::is_x86_feature_detected!("ssse3")
            || !std::arch::is_x86_feature_detected!("sse4.1")
        {
            return;
        }
        // Drive both compression paths over a chain of differing blocks so
        // any lane/order mistake in the SHA-NI schedule diverges the state.
        let mut h_hw = IV;
        let mut h_sw = IV;
        for round in 0..64u8 {
            let mut block = [0u8; BLOCK_LEN];
            for (k, b) in block.iter_mut().enumerate() {
                *b = round.wrapping_mul(37).wrapping_add(k as u8);
            }
            unsafe { super::shani::compress(&mut h_hw, &block) };
            compress_scalar(&mut h_sw, &block);
            assert_eq!(h_hw, h_sw, "round={round}");
        }
    }

    #[test]
    fn length_counter_wraps_safely() {
        // Just exercise a multi-gigabit length path cheaply via the len
        // field arithmetic (no overflow panics in release or debug).
        let mut h = Sha1::new();
        h.len = u64::MAX - 4;
        h.update(b"hello");
        // No panic means wrapping worked; digest is well-defined.
        let _ = h.finalize();
    }
}
