//! SHA-1 (FIPS 180-1).
//!
//! SFS assumes SHA-1 "behaves like a random oracle" (§3.1.3) and uses it for
//! HostIDs, session-key derivation, the per-message MAC, and the
//! pseudo-random generator. This is a from-scratch implementation with the
//! standard incremental (init/update/finalize) interface, verified against
//! the FIPS 180-1 test vectors.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 20;

/// Block size in bytes.
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes processed so far (for the length suffix).
    len: u64,
    /// Partial block buffer.
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            h: H0,
            len: 0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                compress(&mut self.h, &block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            compress(&mut self.h, block.try_into().unwrap());
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
        self
    }

    /// Finishes and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manually absorb the length to avoid it perturbing `self.len`.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress(&mut self.h, &block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte strings.
///
/// SFS hashes XDR-marshaled structures, which concatenate fields; several
/// protocol values (HostID, SessionID, session keys) are defined as hashes
/// over field sequences.
pub fn sha1_concat(parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
    let mut h = Sha1::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// The standard SHA-1 initialization vector, exposed for the FIPS 186
/// pseudo-random generator's G function.
pub(crate) const IV: [u32; 5] = H0;

/// The raw SHA-1 compression function over one 64-byte block (no padding).
/// The FIPS 186 generator is defined directly in terms of this G function.
pub(crate) fn compress(h: &mut [u32; 5], block: &[u8; BLOCK_LEN]) {
    let mut w = [0u32; 80];
    for i in 0..16 {
        w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | (!b & d), 0x5A827999),
            20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
            _ => (b ^ c ^ d, 0xCA62C1D6),
        };
        let t = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = t;
    }
    h[0] = h[0].wrapping_add(a);
    h[1] = h[1].wrapping_add(b);
    h[2] = h[2].wrapping_add(c);
    h[3] = h[3].wrapping_add(d);
    h[4] = h[4].wrapping_add(e);
}

/// MGF1 mask generation with SHA-1 (used by the Rabin OAEP padding).
pub fn mgf1(seed: &[u8], out_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(out_len + DIGEST_LEN);
    let mut counter: u32 = 0;
    while out.len() < out_len {
        let mut h = Sha1::new();
        h.update(seed);
        h.update(&counter.to_be_bytes());
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(out_len);
    out
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Renders a digest as lowercase hex (test and debugging helper).
pub fn digest_hex(d: &[u8; DIGEST_LEN]) -> String {
    hex(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vector_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        // Split at awkward boundaries around the 64-byte block size.
        for split in [0usize, 1, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha1(&data), "split={split}");
        }
    }

    #[test]
    fn concat_matches_manual() {
        let d = sha1_concat(&[b"Host", b"Info", b"x"]);
        assert_eq!(d, sha1(b"HostInfox"));
    }

    #[test]
    fn mgf1_deterministic_and_sized() {
        let a = mgf1(b"seed", 100);
        let b = mgf1(b"seed", 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        // Prefix property: shorter outputs are prefixes of longer ones.
        assert_eq!(&mgf1(b"seed", 40)[..], &a[..40]);
        // Different seeds diverge.
        assert_ne!(mgf1(b"seed2", 100), a);
    }

    #[test]
    fn length_counter_wraps_safely() {
        // Just exercise a multi-gigabit length path cheaply via the len
        // field arithmetic (no overflow panics in release or debug).
        let mut h = Sha1::new();
        h.len = u64::MAX - 4;
        h.update(b"hello");
        // No panic means wrapping worked; digest is well-defined.
        let _ = h.finalize();
    }
}
