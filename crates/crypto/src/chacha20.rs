//! The ChaCha20 stream cipher (RFC 8439 §2.3–2.4).
//!
//! This is the bulk half of the negotiated AEAD suite. The paper's
//! architecture deliberately separates key management from the transport
//! cipher (§3), so the channel can swap ARC4 for a modern suite without
//! touching key negotiation; this module supplies the modern stream.
//!
//! Performance follows the same two-tier approach as SHA-1 in this
//! crate. The portable tier is word-at-a-time pure Rust shaped for
//! auto-vectorization: the 4×4 state is held as four *rows* of four u32
//! ([`Row`]), so a column round is four identical element-wise ops per
//! step — one 128-bit SIMD instruction each on any x86-64 or aarch64 —
//! and the diagonal round is the same after rotating rows lane-wise
//! (a register shuffle). Two blocks run interleaved per step: the whole
//! working set is ~8 vectors, which fits the 16 XMM registers without
//! spilling (the naive 16-vector-of-lanes layout needs 32 and spills).
//!
//! The fast tiers are selected by runtime feature detection and
//! cross-checked against the portable tier in tests, exactly like the
//! SHA-NI compression path. [`avx2`] runs four blocks per step with two
//! blocks sharing each 256-bit register (the row layout again, one
//! block per 128-bit lane, so diagonalization is an in-lane shuffle)
//! and does the 16- and 8-bit rotations with a single byte shuffle.
//! [`avx512`] doubles that to eight blocks per step on 512-bit
//! registers, where every rotation is a native `vprold`.

/// Key length in bytes (256-bit keys only; RFC 8439 drops the 128-bit form).
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (96-bit IETF nonce; the block counter is 32-bit).
pub const NONCE_LEN: usize = 12;
/// One keystream block.
pub const BLOCK_LEN: usize = 64;

/// "expand 32-byte k", the §2.3 constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// One row of the state matrix; element-wise ops vectorize to one
/// 128-bit instruction.
type Row = [u32; 4];

#[inline(always)]
fn vadd(a: Row, b: Row) -> Row {
    [
        a[0].wrapping_add(b[0]),
        a[1].wrapping_add(b[1]),
        a[2].wrapping_add(b[2]),
        a[3].wrapping_add(b[3]),
    ]
}

#[inline(always)]
fn vxor(a: Row, b: Row) -> Row {
    [a[0] ^ b[0], a[1] ^ b[1], a[2] ^ b[2], a[3] ^ b[3]]
}

#[inline(always)]
fn vrotl(a: Row, n: u32) -> Row {
    [
        a[0].rotate_left(n),
        a[1].rotate_left(n),
        a[2].rotate_left(n),
        a[3].rotate_left(n),
    ]
}

/// Rotates lanes left by `N` (the diagonalization shuffle).
#[inline(always)]
fn lanes<const N: usize>(a: Row) -> Row {
    [a[N % 4], a[(N + 1) % 4], a[(N + 2) % 4], a[(N + 3) % 4]]
}

/// Four §2.1 quarter rounds at once, one per column of the row layout.
#[inline(always)]
fn column_rounds(r0: &mut Row, r1: &mut Row, r2: &mut Row, r3: &mut Row) {
    *r0 = vadd(*r0, *r1);
    *r3 = vrotl(vxor(*r3, *r0), 16);
    *r2 = vadd(*r2, *r3);
    *r1 = vrotl(vxor(*r1, *r2), 12);
    *r0 = vadd(*r0, *r1);
    *r3 = vrotl(vxor(*r3, *r0), 8);
    *r2 = vadd(*r2, *r3);
    *r1 = vrotl(vxor(*r1, *r2), 7);
}

/// The 20-round permutation plus feed-forward (§2.3) for two blocks at
/// consecutive counters, interleaved for instruction-level parallelism.
/// Returns the finished keystream words of both blocks.
#[inline(always)]
fn permute2(words: &[u32; 16]) -> [[u32; 16]; 2] {
    let i0: Row = words[0..4].try_into().unwrap();
    let i1: Row = words[4..8].try_into().unwrap();
    let i2: Row = words[8..12].try_into().unwrap();
    let i3a: Row = words[12..16].try_into().unwrap();
    let i3b: Row = [i3a[0].wrapping_add(1), i3a[1], i3a[2], i3a[3]];

    let (mut a0, mut a1, mut a2, mut a3) = (i0, i1, i2, i3a);
    let (mut b0, mut b1, mut b2, mut b3) = (i0, i1, i2, i3b);
    for _ in 0..10 {
        column_rounds(&mut a0, &mut a1, &mut a2, &mut a3);
        column_rounds(&mut b0, &mut b1, &mut b2, &mut b3);
        // Diagonalize, run the same column machinery, undo.
        a1 = lanes::<1>(a1);
        a2 = lanes::<2>(a2);
        a3 = lanes::<3>(a3);
        b1 = lanes::<1>(b1);
        b2 = lanes::<2>(b2);
        b3 = lanes::<3>(b3);
        column_rounds(&mut a0, &mut a1, &mut a2, &mut a3);
        column_rounds(&mut b0, &mut b1, &mut b2, &mut b3);
        a1 = lanes::<3>(a1);
        a2 = lanes::<2>(a2);
        a3 = lanes::<1>(a3);
        b1 = lanes::<3>(b1);
        b2 = lanes::<2>(b2);
        b3 = lanes::<1>(b3);
    }
    let mut out = [[0u32; 16]; 2];
    for (dst, rows) in out.iter_mut().zip([
        [vadd(a0, i0), vadd(a1, i1), vadd(a2, i2), vadd(a3, i3a)],
        [vadd(b0, i0), vadd(b1, i1), vadd(b2, i2), vadd(b3, i3b)],
    ]) {
        for (i, row) in rows.iter().enumerate() {
            dst[i * 4..i * 4 + 4].copy_from_slice(row);
        }
    }
    out
}

/// ChaCha20 stream state: key, nonce, and the current block counter.
#[derive(Clone)]
pub struct ChaCha20 {
    /// State-word template: constants, key, counter (word 12), nonce.
    words: [u32; 16],
}

impl ChaCha20 {
    /// Initializes the stream at block `counter` (§2.3 state layout).
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut words = [0u32; 16];
        words[..4].copy_from_slice(&SIGMA);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            words[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        words[12] = counter;
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            words[13 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha20 { words }
    }

    /// XORs keystream into `buf` in place (encryption == decryption),
    /// advancing the block counter past every block consumed. A partial
    /// final block discards its unused keystream tail: a subsequent call
    /// continues at the next 64-byte block boundary, which is the contract
    /// the AEAD layer relies on (each frame is processed in one call).
    pub fn xor_keystream(&mut self, buf: &mut [u8]) {
        #[cfg(target_arch = "x86_64")]
        let buf = if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature presence is checked immediately above.
            let done = unsafe { avx512::xor_keystream8(&mut self.words, buf) };
            &mut buf[done..]
        } else if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence is checked immediately above.
            let done = unsafe { avx2::xor_keystream4(&mut self.words, buf) };
            &mut buf[done..]
        } else {
            buf
        };
        self.xor_keystream_portable(buf);
    }

    /// The auto-vectorized two-block tier; also finishes whatever tail
    /// the four-block AVX2 tier leaves behind.
    fn xor_keystream_portable(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(2 * BLOCK_LEN);
        for chunk in &mut chunks {
            let ks = permute2(&self.words);
            // Apply word-at-a-time: one load/XOR/store per state word.
            for (half, words) in chunk.chunks_exact_mut(BLOCK_LEN).zip(ks.iter()) {
                for (i, w) in words.iter().enumerate() {
                    let o = i * 4;
                    let x = u32::from_le_bytes(half[o..o + 4].try_into().unwrap()) ^ w;
                    half[o..o + 4].copy_from_slice(&x.to_le_bytes());
                }
            }
            self.words[12] = self.words[12].wrapping_add(2);
        }
        let rest = chunks.into_remainder();
        if rest.is_empty() {
            return;
        }
        // Tail: at most two blocks' worth; one more wide step, applied
        // bytewise over however much remains.
        let ks = permute2(&self.words);
        for (i, b) in rest.iter_mut().enumerate() {
            let w = ks[i / BLOCK_LEN][(i % BLOCK_LEN) / 4];
            *b ^= w.to_le_bytes()[i % 4];
        }
        self.words[12] = self.words[12].wrapping_add(rest.len().div_ceil(BLOCK_LEN) as u32);
    }
}

/// Computes one raw keystream block (§2.3): the AEAD layer takes the
/// first 32 bytes of block 0 as the Poly1305 one-time key (§2.6).
pub fn keystream_block(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    counter: u32,
) -> [u8; BLOCK_LEN] {
    let stream = ChaCha20::new(key, nonce, counter);
    let words = permute2(&stream.words)[0];
    let mut out = [0u8; BLOCK_LEN];
    for (i, w) in words.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// Four blocks per step on 256-bit registers: two row-layout states, one
/// block per 128-bit lane. Rotations by 16 and 8 are single byte
/// shuffles; diagonalization shuffles words within each lane, so the two
/// blocks in a register never mix.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::BLOCK_LEN;
    use std::arch::x86_64::*;

    const STEP: usize = 4 * BLOCK_LEN;

    /// XORs keystream over as many whole 256-byte (four-block) chunks as
    /// fit in `buf`, advancing the counter word. Returns bytes consumed.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn xor_keystream4(words: &mut [u32; 16], buf: &mut [u8]) -> usize {
        let steps = buf.len() / STEP;
        if steps == 0 {
            return 0;
        }
        // Byte-shuffle controls for 32-bit lane rotations (same pattern
        // in both 128-bit lanes).
        let rot16 = _mm256_setr_epi8(
            2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13, //
            2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,
        );
        let rot8 = _mm256_setr_epi8(
            3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14, //
            3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14,
        );

        let p = words.as_ptr() as *const __m128i;
        let row0 = _mm256_broadcastsi128_si256(_mm_loadu_si128(p));
        let row1 = _mm256_broadcastsi128_si256(_mm_loadu_si128(p.add(1)));
        let row2 = _mm256_broadcastsi128_si256(_mm_loadu_si128(p.add(2)));
        let row3 = _mm256_broadcastsi128_si256(_mm_loadu_si128(p.add(3)));
        // Counter offsets: low lane = block n, high lane = block n+1.
        let ctr_a = _mm256_setr_epi32(0, 0, 0, 0, 1, 0, 0, 0);
        let ctr_b = _mm256_setr_epi32(2, 0, 0, 0, 3, 0, 0, 0);
        let ctr_step = _mm256_setr_epi32(4, 0, 0, 0, 4, 0, 0, 0);

        let mut i3a = _mm256_add_epi32(row3, ctr_a);
        let mut i3b = _mm256_add_epi32(row3, ctr_b);
        let mut out = buf.as_mut_ptr() as *mut __m256i;

        for _ in 0..steps {
            let (mut a0, mut a1, mut a2, mut a3) = (row0, row1, row2, i3a);
            let (mut b0, mut b1, mut b2, mut b3) = (row0, row1, row2, i3b);
            for _ in 0..10 {
                // Column rounds, both states interleaved.
                a0 = _mm256_add_epi32(a0, a1);
                b0 = _mm256_add_epi32(b0, b1);
                a3 = _mm256_shuffle_epi8(_mm256_xor_si256(a3, a0), rot16);
                b3 = _mm256_shuffle_epi8(_mm256_xor_si256(b3, b0), rot16);
                a2 = _mm256_add_epi32(a2, a3);
                b2 = _mm256_add_epi32(b2, b3);
                a1 = _mm256_xor_si256(a1, a2);
                b1 = _mm256_xor_si256(b1, b2);
                a1 = _mm256_or_si256(_mm256_slli_epi32(a1, 12), _mm256_srli_epi32(a1, 20));
                b1 = _mm256_or_si256(_mm256_slli_epi32(b1, 12), _mm256_srli_epi32(b1, 20));
                a0 = _mm256_add_epi32(a0, a1);
                b0 = _mm256_add_epi32(b0, b1);
                a3 = _mm256_shuffle_epi8(_mm256_xor_si256(a3, a0), rot8);
                b3 = _mm256_shuffle_epi8(_mm256_xor_si256(b3, b0), rot8);
                a2 = _mm256_add_epi32(a2, a3);
                b2 = _mm256_add_epi32(b2, b3);
                a1 = _mm256_xor_si256(a1, a2);
                b1 = _mm256_xor_si256(b1, b2);
                a1 = _mm256_or_si256(_mm256_slli_epi32(a1, 7), _mm256_srli_epi32(a1, 25));
                b1 = _mm256_or_si256(_mm256_slli_epi32(b1, 7), _mm256_srli_epi32(b1, 25));
                // Diagonalize (within each lane), repeat, undo.
                a1 = _mm256_shuffle_epi32(a1, 0x39);
                a2 = _mm256_shuffle_epi32(a2, 0x4E);
                a3 = _mm256_shuffle_epi32(a3, 0x93);
                b1 = _mm256_shuffle_epi32(b1, 0x39);
                b2 = _mm256_shuffle_epi32(b2, 0x4E);
                b3 = _mm256_shuffle_epi32(b3, 0x93);
                a0 = _mm256_add_epi32(a0, a1);
                b0 = _mm256_add_epi32(b0, b1);
                a3 = _mm256_shuffle_epi8(_mm256_xor_si256(a3, a0), rot16);
                b3 = _mm256_shuffle_epi8(_mm256_xor_si256(b3, b0), rot16);
                a2 = _mm256_add_epi32(a2, a3);
                b2 = _mm256_add_epi32(b2, b3);
                a1 = _mm256_xor_si256(a1, a2);
                b1 = _mm256_xor_si256(b1, b2);
                a1 = _mm256_or_si256(_mm256_slli_epi32(a1, 12), _mm256_srli_epi32(a1, 20));
                b1 = _mm256_or_si256(_mm256_slli_epi32(b1, 12), _mm256_srli_epi32(b1, 20));
                a0 = _mm256_add_epi32(a0, a1);
                b0 = _mm256_add_epi32(b0, b1);
                a3 = _mm256_shuffle_epi8(_mm256_xor_si256(a3, a0), rot8);
                b3 = _mm256_shuffle_epi8(_mm256_xor_si256(b3, b0), rot8);
                a2 = _mm256_add_epi32(a2, a3);
                b2 = _mm256_add_epi32(b2, b3);
                a1 = _mm256_xor_si256(a1, a2);
                b1 = _mm256_xor_si256(b1, b2);
                a1 = _mm256_or_si256(_mm256_slli_epi32(a1, 7), _mm256_srli_epi32(a1, 25));
                b1 = _mm256_or_si256(_mm256_slli_epi32(b1, 7), _mm256_srli_epi32(b1, 25));
                a1 = _mm256_shuffle_epi32(a1, 0x93);
                a2 = _mm256_shuffle_epi32(a2, 0x4E);
                a3 = _mm256_shuffle_epi32(a3, 0x39);
                b1 = _mm256_shuffle_epi32(b1, 0x93);
                b2 = _mm256_shuffle_epi32(b2, 0x4E);
                b3 = _mm256_shuffle_epi32(b3, 0x39);
            }
            // Feed-forward.
            a0 = _mm256_add_epi32(a0, row0);
            a1 = _mm256_add_epi32(a1, row1);
            a2 = _mm256_add_epi32(a2, row2);
            a3 = _mm256_add_epi32(a3, i3a);
            b0 = _mm256_add_epi32(b0, row0);
            b1 = _mm256_add_epi32(b1, row1);
            b2 = _mm256_add_epi32(b2, row2);
            b3 = _mm256_add_epi32(b3, i3b);
            // Reassemble per-block streams: low lanes then high lanes.
            for (j, ks) in [
                _mm256_permute2x128_si256(a0, a1, 0x20),
                _mm256_permute2x128_si256(a2, a3, 0x20),
                _mm256_permute2x128_si256(a0, a1, 0x31),
                _mm256_permute2x128_si256(a2, a3, 0x31),
                _mm256_permute2x128_si256(b0, b1, 0x20),
                _mm256_permute2x128_si256(b2, b3, 0x20),
                _mm256_permute2x128_si256(b0, b1, 0x31),
                _mm256_permute2x128_si256(b2, b3, 0x31),
            ]
            .into_iter()
            .enumerate()
            {
                let q = out.add(j);
                _mm256_storeu_si256(q, _mm256_xor_si256(_mm256_loadu_si256(q), ks));
            }
            out = out.add(8);
            i3a = _mm256_add_epi32(i3a, ctr_step);
            i3b = _mm256_add_epi32(i3b, ctr_step);
        }
        words[12] = words[12].wrapping_add((steps * 4) as u32);
        steps * STEP
    }
}

/// Eight blocks per step on 512-bit registers: two row-layout states,
/// one block per 128-bit lane (four lanes per register). AVX-512F has a
/// native 32-bit rotate, so every quarter-round rotation is a single
/// `vprold`; diagonalization is an in-lane word shuffle, exactly as in
/// the AVX2 tier.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::BLOCK_LEN;
    use std::arch::x86_64::*;

    const STEP: usize = 8 * BLOCK_LEN;

    /// `add, xor, rotate` on one column-round leg of both interleaved
    /// states, with the rotate amount as a constant.
    macro_rules! half_qr {
        ($a0:ident $a1:ident $a3:ident, $b0:ident $b1:ident $b3:ident, $rot:literal) => {
            $a0 = _mm512_add_epi32($a0, $a1);
            $b0 = _mm512_add_epi32($b0, $b1);
            $a3 = _mm512_rol_epi32::<$rot>(_mm512_xor_si512($a3, $a0));
            $b3 = _mm512_rol_epi32::<$rot>(_mm512_xor_si512($b3, $b0));
        };
    }

    /// XORs keystream over as many whole 512-byte (eight-block) chunks
    /// as fit in `buf`, advancing the counter word. Returns bytes
    /// consumed.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn xor_keystream8(words: &mut [u32; 16], buf: &mut [u8]) -> usize {
        let steps = buf.len() / STEP;
        if steps == 0 {
            return 0;
        }
        let p = words.as_ptr() as *const __m128i;
        let row0 = _mm512_broadcast_i32x4(_mm_loadu_si128(p));
        let row1 = _mm512_broadcast_i32x4(_mm_loadu_si128(p.add(1)));
        let row2 = _mm512_broadcast_i32x4(_mm_loadu_si128(p.add(2)));
        let row3 = _mm512_broadcast_i32x4(_mm_loadu_si128(p.add(3)));
        // Counter offsets: lane k of state a is block n+k, of b n+4+k.
        let ctr_a = _mm512_setr_epi32(0, 0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0);
        let ctr_b = _mm512_setr_epi32(4, 0, 0, 0, 5, 0, 0, 0, 6, 0, 0, 0, 7, 0, 0, 0);
        let ctr_step = _mm512_setr_epi32(8, 0, 0, 0, 8, 0, 0, 0, 8, 0, 0, 0, 8, 0, 0, 0);

        let mut i3a = _mm512_add_epi32(row3, ctr_a);
        let mut i3b = _mm512_add_epi32(row3, ctr_b);
        let mut out = buf.as_mut_ptr() as *mut __m512i;

        for _ in 0..steps {
            let (mut a0, mut a1, mut a2, mut a3) = (row0, row1, row2, i3a);
            let (mut b0, mut b1, mut b2, mut b3) = (row0, row1, row2, i3b);
            for _ in 0..10 {
                // Column rounds, both states interleaved.
                half_qr!(a0 a1 a3, b0 b1 b3, 16);
                a2 = _mm512_add_epi32(a2, a3);
                b2 = _mm512_add_epi32(b2, b3);
                a1 = _mm512_rol_epi32::<12>(_mm512_xor_si512(a1, a2));
                b1 = _mm512_rol_epi32::<12>(_mm512_xor_si512(b1, b2));
                half_qr!(a0 a1 a3, b0 b1 b3, 8);
                a2 = _mm512_add_epi32(a2, a3);
                b2 = _mm512_add_epi32(b2, b3);
                a1 = _mm512_rol_epi32::<7>(_mm512_xor_si512(a1, a2));
                b1 = _mm512_rol_epi32::<7>(_mm512_xor_si512(b1, b2));
                // Diagonalize (within each lane), repeat, undo.
                a1 = _mm512_shuffle_epi32::<0x39>(a1);
                a2 = _mm512_shuffle_epi32::<0x4E>(a2);
                a3 = _mm512_shuffle_epi32::<0x93>(a3);
                b1 = _mm512_shuffle_epi32::<0x39>(b1);
                b2 = _mm512_shuffle_epi32::<0x4E>(b2);
                b3 = _mm512_shuffle_epi32::<0x93>(b3);
                half_qr!(a0 a1 a3, b0 b1 b3, 16);
                a2 = _mm512_add_epi32(a2, a3);
                b2 = _mm512_add_epi32(b2, b3);
                a1 = _mm512_rol_epi32::<12>(_mm512_xor_si512(a1, a2));
                b1 = _mm512_rol_epi32::<12>(_mm512_xor_si512(b1, b2));
                half_qr!(a0 a1 a3, b0 b1 b3, 8);
                a2 = _mm512_add_epi32(a2, a3);
                b2 = _mm512_add_epi32(b2, b3);
                a1 = _mm512_rol_epi32::<7>(_mm512_xor_si512(a1, a2));
                b1 = _mm512_rol_epi32::<7>(_mm512_xor_si512(b1, b2));
                a1 = _mm512_shuffle_epi32::<0x93>(a1);
                a2 = _mm512_shuffle_epi32::<0x4E>(a2);
                a3 = _mm512_shuffle_epi32::<0x39>(a3);
                b1 = _mm512_shuffle_epi32::<0x93>(b1);
                b2 = _mm512_shuffle_epi32::<0x4E>(b2);
                b3 = _mm512_shuffle_epi32::<0x39>(b3);
            }
            // Feed-forward.
            a0 = _mm512_add_epi32(a0, row0);
            a1 = _mm512_add_epi32(a1, row1);
            a2 = _mm512_add_epi32(a2, row2);
            a3 = _mm512_add_epi32(a3, i3a);
            b0 = _mm512_add_epi32(b0, row0);
            b1 = _mm512_add_epi32(b1, row1);
            b2 = _mm512_add_epi32(b2, row2);
            b3 = _mm512_add_epi32(b3, i3b);
            // Transpose the 4×4 grid of 128-bit lanes so each register
            // holds one whole block's sixteen words in stream order.
            for (base, (r0, r1, r2, r3)) in [(0, (a0, a1, a2, a3)), (4, (b0, b1, b2, b3))] {
                let t0 = _mm512_shuffle_i32x4::<0x44>(r0, r1);
                let t1 = _mm512_shuffle_i32x4::<0x44>(r2, r3);
                let t2 = _mm512_shuffle_i32x4::<0xEE>(r0, r1);
                let t3 = _mm512_shuffle_i32x4::<0xEE>(r2, r3);
                for (j, ks) in [
                    _mm512_shuffle_i32x4::<0x88>(t0, t1),
                    _mm512_shuffle_i32x4::<0xDD>(t0, t1),
                    _mm512_shuffle_i32x4::<0x88>(t2, t3),
                    _mm512_shuffle_i32x4::<0xDD>(t2, t3),
                ]
                .into_iter()
                .enumerate()
                {
                    let q = out.add(base + j);
                    _mm512_storeu_si512(q, _mm512_xor_si512(_mm512_loadu_si512(q), ks));
                }
            }
            out = out.add(8);
            i3a = _mm512_add_epi32(i3a, ctr_step);
            i3b = _mm512_add_epi32(i3b, ctr_step);
        }
        words[12] = words[12].wrapping_add((steps * 8) as u32);
        steps * STEP
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        s.split_whitespace()
            .flat_map(|tok| {
                (0..tok.len())
                    .step_by(2)
                    .map(|i| u8::from_str_radix(&tok[i..i + 2], 16).unwrap())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn test_key() -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_function_vector() {
        // §2.3.2: key 00..1f, nonce 00 00 00 09 00 00 00 4a 00 00 00 00,
        // counter 1.
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = keystream_block(&test_key(), &nonce, 1);
        let expected = hex("10 f1 e7 e4 d1 3b 59 15 50 0f dd 1f a3 20 71 c4
             c7 d1 f4 c7 33 c0 68 03 04 22 aa 9a c3 d4 6c 4e
             d2 82 64 46 07 9f aa 09 14 c2 d7 05 d9 8b 02 a2
             b5 12 9c d1 de 16 4e b9 cb d0 83 e8 a2 50 3c 4e");
        assert_eq!(block.to_vec(), expected);
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // §2.4.2: the "sunscreen" plaintext, counter starts at 1.
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";
        let mut buf = plaintext.to_vec();
        ChaCha20::new(&test_key(), &nonce, 1).xor_keystream(&mut buf);
        let expected = hex("6e 2e 35 9a 25 68 f9 80 41 ba 07 28 dd 0d 69 81
             e9 7e 7a ec 1d 43 60 c2 0a 27 af cc fd 9f ae 0b
             f9 1b 65 c5 52 47 33 ab 8f 59 3d ab cd 62 b3 57
             16 39 d6 24 e6 51 52 ab 8f 53 0c 35 9f 08 61 d8
             07 ca 0d bf 50 0d 6a 61 56 a3 8e 08 8a 22 b6 5e
             52 bc 51 4d 16 cc f8 06 81 8c e9 1a b7 79 37 36
             5a f9 0b bf 74 a3 5b e6 b4 0b 8e ed f2 78 5e 42
             87 4d");
        assert_eq!(buf, expected);
        // Decryption is the same operation.
        ChaCha20::new(&test_key(), &nonce, 1).xor_keystream(&mut buf);
        assert_eq!(buf, plaintext.to_vec());
    }

    #[test]
    fn wide_and_tail_paths_agree() {
        // Any block-aligned split of one long message across calls must
        // equal the one-shot stream, whatever mix of the two-block fast
        // path and the bytewise tail each call uses.
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        let mut whole = vec![0xA5u8; 1024 + 64 + 17];
        ChaCha20::new(&key, &nonce, 1).xor_keystream(&mut whole);

        let mut split = vec![0xA5u8; 1024 + 64 + 17];
        let mut c = ChaCha20::new(&key, &nonce, 1);
        let (a, rest) = split.split_at_mut(128); // exactly one wide step
        let (b, rest2) = rest.split_at_mut(64); // single-block tail
        let (d, tail) = rest2.split_at_mut(1024 - 128); // wide steps
        c.xor_keystream(a);
        c.xor_keystream(b);
        c.xor_keystream(d);
        c.xor_keystream(tail); // 64 + 17: wide step + partial block
        assert_eq!(split, whole);
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx2_tier_matches_portable_tier() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        let key = test_key();
        let nonce = [9u8; NONCE_LEN];
        for len in [256usize, 512, 1024, 4096] {
            let mut fast = vec![0x3Cu8; len];
            // SAFETY: avx2 presence checked above.
            let mut words = ChaCha20::new(&key, &nonce, 1).words;
            let done = unsafe { avx2::xor_keystream4(&mut words, &mut fast) };
            assert_eq!(done, len);
            let mut portable = vec![0x3Cu8; len];
            ChaCha20::new(&key, &nonce, 1).xor_keystream_portable(&mut portable);
            assert_eq!(fast, portable, "len {len}");
            assert_eq!(words[12], 1 + (len / BLOCK_LEN) as u32);
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx512_tier_matches_portable_tier() {
        if !std::arch::is_x86_feature_detected!("avx512f") {
            return;
        }
        let key = test_key();
        let nonce = [11u8; NONCE_LEN];
        for len in [512usize, 1024, 4096, 8192] {
            let mut fast = vec![0x5Eu8; len];
            // SAFETY: avx512f presence checked above.
            let mut words = ChaCha20::new(&key, &nonce, 1).words;
            let done = unsafe { avx512::xor_keystream8(&mut words, &mut fast) };
            assert_eq!(done, len);
            let mut portable = vec![0x5Eu8; len];
            ChaCha20::new(&key, &nonce, 1).xor_keystream_portable(&mut portable);
            assert_eq!(fast, portable, "len {len}");
            assert_eq!(words[12], 1 + (len / BLOCK_LEN) as u32);
        }
        // Sub-step buffers are left for the narrower tiers.
        let mut words = ChaCha20::new(&key, &nonce, 1).words;
        assert_eq!(
            unsafe { avx512::xor_keystream8(&mut words, &mut [0u8; 511]) },
            0
        );
    }

    #[test]
    fn counter_advances_across_partial_blocks() {
        // A partial block consumes a whole counter step.
        let key = test_key();
        let nonce = [3u8; NONCE_LEN];
        let mut a = [0u8; 10];
        let mut c = ChaCha20::new(&key, &nonce, 5);
        c.xor_keystream(&mut a);
        let mut b = [0u8; 64];
        c.xor_keystream(&mut b);
        let mut direct = [0u8; 64];
        ChaCha20::new(&key, &nonce, 6).xor_keystream(&mut direct);
        assert_eq!(b, direct);
    }
}
