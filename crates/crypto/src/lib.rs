//! Cryptographic primitives for the SFS reproduction.
//!
//! Paper §3.1.3 enumerates SFS's exact cryptographic toolbox; this crate
//! implements all of it from scratch:
//!
//! - [`sha1`](mod@sha1): SHA-1 (FIPS 180-1), the hash behind HostIDs, MACs, and the
//!   pseudo-random generator.
//! - [`arc4`]: the ARC4 stream cipher, with SFS's 20-byte-key key-schedule
//!   spinning (one spin per 128 bits of key data).
//! - [`mac`]: the SHA-1-based per-message MAC, re-keyed for each RPC with 32
//!   bytes pulled from the ARC4 stream.
//! - [`blowfish`]: Blowfish (for CBC-encrypting NFS file handles, §3.3),
//!   with its P/S constant tables derived from hex digits of π computed
//!   in-tree ([`pi`]).
//! - [`eksblowfish`]: the future-adaptable password scheme (bcrypt) SFS uses
//!   to make password-guessing attacks expensive (§2.5.2).
//! - [`rabin`]: the Rabin–Williams public-key cryptosystem — encryption with
//!   plaintext-aware OAEP-style padding, and signatures with cheap
//!   verification (§3.1.3).
//! - [`prg`]: the DSS-style SHA-1 pseudo-random generator seeded from an
//!   entropy pool of external sources (§3.1.3).
//! - [`srp`]: the Secure Remote Password protocol used for password
//!   authentication of servers (§2.4).
//!
//! Beyond the paper's toolbox, the crate carries the negotiated fast
//! suite — the paper's separation of key management from the transport
//! cipher (§3) is exactly what makes the cipher swappable:
//!
//! - [`chacha20`]: the ChaCha20 stream cipher (RFC 8439), four blocks at
//!   a time in an auto-vectorizable lane layout.
//! - [`poly1305`]: the Poly1305 one-time authenticator, 44-bit limbs on
//!   `u128` products.
//! - [`chachapoly`]: the ChaCha20-Poly1305 AEAD composing the two, with
//!   in-place seal/open for the zero-copy channel path and a detached
//!   frame form for sealing session-resumption tickets.

pub mod arc4;
pub mod blowfish;
pub mod chacha20;
pub mod chachapoly;
pub mod eksblowfish;
pub mod mac;
pub mod pi;
pub mod poly1305;
pub mod prg;
pub mod rabin;
pub mod sha1;
pub mod srp;

pub use arc4::Arc4;
pub use blowfish::Blowfish;
pub use chacha20::ChaCha20;
pub use mac::SfsMac;
pub use poly1305::Poly1305;
pub use prg::{EntropyPool, SfsPrg};
pub use rabin::{RabinPrivateKey, RabinPublicKey};
pub use sha1::{sha1, Sha1};
