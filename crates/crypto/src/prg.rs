//! The SFS pseudo-random generator.
//!
//! Paper §3.1.3: "We chose DSS's pseudo-random generator [FIPS 186], both
//! because it is based on SHA-1 and because it cannot be run backwards in
//! the event that its state gets compromised. To seed the generator, SFS
//! asynchronously reads data from various external programs …, from a file
//! saved by the previous execution, and from a nanosecond timer … All of
//! the above sources are run through a SHA-1-based hash function to produce
//! a 512-bit seed."
//!
//! [`EntropyPool`] is the seeding funnel; [`SfsPrg`] is the FIPS 186
//! generator: with `b = 512`,
//!
//! ```text
//! x_j  = G(t, XKEY_j)              (G = SHA-1 compression, t = SHA-1 IV)
//! XKEY_{j+1} = (1 + XKEY_j + x_j) mod 2^b
//! ```
//!
//! Forward secrecy of the state follows because recovering `XKEY_j` from
//! `XKEY_{j+1}` and `x_j` requires inverting G.

use crate::sha1::{self, Sha1};
use sfs_bignum::{Nat, RandomSource};

/// Seed size in bytes (the paper's 512-bit seed).
pub const SEED_LEN: usize = 64;

/// Accumulates entropy from external sources into a 512-bit seed.
///
/// Each source is fed with a length prefix and an index so that source
/// boundaries cannot be confused; the pool produces four chained SHA-1
/// digests (4 × 160 = 640 bits, truncated to 512).
#[derive(Clone)]
pub struct EntropyPool {
    hasher: Sha1,
    sources: u32,
}

impl Default for EntropyPool {
    fn default() -> Self {
        Self::new()
    }
}

impl EntropyPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        EntropyPool {
            hasher: Sha1::new(),
            sources: 0,
        }
    }

    /// Mixes one entropy source (command output, saved seed file,
    /// keystrokes with timings, nanosecond timers, …).
    pub fn add_source(&mut self, data: &[u8]) -> &mut Self {
        self.hasher.update(&self.sources.to_be_bytes());
        self.hasher.update(&(data.len() as u64).to_be_bytes());
        self.hasher.update(data);
        self.sources += 1;
        self
    }

    /// Number of sources mixed so far.
    pub fn sources(&self) -> u32 {
        self.sources
    }

    /// Produces the 512-bit seed by counter-mode chaining of the pool
    /// digest.
    pub fn seed(&self) -> [u8; SEED_LEN] {
        let base = self.hasher.clone().finalize();
        let mut out = [0u8; SEED_LEN];
        let mut filled = 0;
        let mut counter: u32 = 0;
        while filled < SEED_LEN {
            let d = sha1::sha1_concat(&[b"SFS-seed", &base, &counter.to_be_bytes()]);
            let take = (SEED_LEN - filled).min(d.len());
            out[filled..filled + take].copy_from_slice(&d[..take]);
            filled += take;
            counter += 1;
        }
        out
    }

    /// Finalizes the pool into a generator.
    pub fn into_prg(self) -> SfsPrg {
        SfsPrg::from_seed(&self.seed())
    }
}

/// State a generator saves for the next execution (§3.1.3: SFS seeds
/// itself in part "from a file saved by the previous execution").
///
/// The saved blob is a hash of the current state — not the state itself —
/// so a disclosed seed file does not reveal past output (the generator
/// "cannot be run backwards").
pub fn save_seed(prg: &mut SfsPrg) -> [u8; SEED_LEN] {
    let mut out = [0u8; SEED_LEN];
    prg.fill(&mut out);
    // One-way transform so the file is useless for reconstructing the
    // generator that wrote it.
    let d = sha1::sha1_concat(&[b"SFS-saved-seed", &out]);
    let mut saved = [0u8; SEED_LEN];
    for (i, chunk) in saved.chunks_mut(20).enumerate() {
        let more = sha1::sha1_concat(&[&d, &[i as u8]]);
        chunk.copy_from_slice(&more[..chunk.len()]);
    }
    saved
}

/// The FIPS 186 (DSS) pseudo-random generator with b = 512.
#[derive(Clone)]
pub struct SfsPrg {
    /// XKEY, a 512-bit value.
    xkey: Nat,
    /// Buffered output bytes not yet handed out.
    buffer: Vec<u8>,
    /// 2^512, the modulus.
    modulus: Nat,
}

impl SfsPrg {
    /// Creates a generator from a 512-bit seed.
    pub fn from_seed(seed: &[u8; SEED_LEN]) -> Self {
        SfsPrg {
            xkey: Nat::from_bytes_be(seed),
            buffer: Vec::new(),
            modulus: Nat::one().shl_bits(SEED_LEN * 8),
        }
    }

    /// Convenience constructor for tests and deterministic benchmarks:
    /// seeds the generator from a single byte string via the entropy pool.
    pub fn from_entropy(data: &[u8]) -> Self {
        let mut pool = EntropyPool::new();
        pool.add_source(data);
        pool.into_prg()
    }

    /// One FIPS 186 step: returns x_j and advances XKEY.
    fn step(&mut self) -> [u8; 20] {
        let block_bytes = self.xkey.to_bytes_be_padded(SEED_LEN);
        // G(t, c): SHA-1 compression of the 512-bit block with the standard
        // IV, no padding.
        let mut h = sha1::IV;
        sha1::compress(&mut h, block_bytes.as_slice().try_into().unwrap());
        let mut x = [0u8; 20];
        for (i, w) in h.iter().enumerate() {
            x[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        // XKEY = (1 + XKEY + x) mod 2^b.
        let xn = Nat::from_bytes_be(&x);
        self.xkey = self
            .xkey
            .add_nat(&xn)
            .add_nat(&Nat::one())
            .rem_nat(&self.modulus)
            .unwrap();
        x
    }
}

impl RandomSource for SfsPrg {
    fn fill(&mut self, buf: &mut [u8]) {
        let mut filled = 0;
        while filled < buf.len() {
            if self.buffer.is_empty() {
                self.buffer = self.step().to_vec();
            }
            let take = (buf.len() - filled).min(self.buffer.len());
            buf[filled..filled + take].copy_from_slice(&self.buffer[..take]);
            self.buffer.drain(..take);
            filled += take;
        }
    }
}

impl std::fmt::Debug for SfsPrg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SfsPrg {{ .. }}") // Never leak generator state.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SfsPrg::from_entropy(b"seed");
        let mut b = SfsPrg::from_entropy(b"seed");
        let mut ba = [0u8; 100];
        let mut bb = [0u8; 100];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SfsPrg::from_entropy(b"seed-1");
        let mut b = SfsPrg::from_entropy(b"seed-2");
        let mut ba = [0u8; 32];
        let mut bb = [0u8; 32];
        a.fill(&mut ba);
        b.fill(&mut bb);
        assert_ne!(ba, bb);
    }

    #[test]
    fn source_order_matters() {
        let mut p1 = EntropyPool::new();
        p1.add_source(b"a").add_source(b"b");
        let mut p2 = EntropyPool::new();
        p2.add_source(b"b").add_source(b"a");
        assert_ne!(p1.seed(), p2.seed());
    }

    #[test]
    fn source_boundaries_matter() {
        // ("ab", "") vs ("a", "b") must differ (length prefixing).
        let mut p1 = EntropyPool::new();
        p1.add_source(b"ab").add_source(b"");
        let mut p2 = EntropyPool::new();
        p2.add_source(b"a").add_source(b"b");
        assert_ne!(p1.seed(), p2.seed());
    }

    #[test]
    fn output_statistics_sane() {
        // Cheap sanity: 64 KiB of output should have roughly balanced bits.
        let mut prg = SfsPrg::from_entropy(b"stats");
        let mut buf = vec![0u8; 65536];
        prg.fill(&mut buf);
        let ones: u64 = buf.iter().map(|b| b.count_ones() as u64).sum();
        let total = buf.len() as u64 * 8;
        let ratio = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&ratio), "bit ratio {ratio}");
    }

    #[test]
    fn partial_fills_consume_stream_continuously() {
        let mut a = SfsPrg::from_entropy(b"x");
        let mut b = SfsPrg::from_entropy(b"x");
        let mut out_a = [0u8; 50];
        a.fill(&mut out_a);
        let mut out_b = [0u8; 50];
        b.fill(&mut out_b[..13]);
        b.fill(&mut out_b[13..]);
        assert_eq!(out_a, out_b);
    }

    #[test]
    fn saved_seed_reseeds_next_execution() {
        let mut prg = SfsPrg::from_entropy(b"boot-1");
        let saved = save_seed(&mut prg);
        // Next boot mixes the saved file with fresh sources.
        let mut pool = EntropyPool::new();
        pool.add_source(&saved).add_source(b"nanosecond-timer");
        let mut next = pool.into_prg();
        let mut a = [0u8; 32];
        next.fill(&mut a);
        // Different saved seeds give different streams.
        let mut prg2 = SfsPrg::from_entropy(b"boot-other");
        let saved2 = save_seed(&mut prg2);
        assert_ne!(saved, saved2);
    }

    #[test]
    fn saved_seed_does_not_reveal_generator_state() {
        // The saved blob must differ from the raw output the generator
        // would produce next (it is a one-way transform of drawn output).
        let mut prg = SfsPrg::from_entropy(b"boot");
        let mut preview = prg.clone();
        let mut raw = [0u8; SEED_LEN];
        preview.fill(&mut raw);
        let saved = save_seed(&mut prg);
        assert_ne!(saved, raw);
    }

    #[test]
    fn random_below_usable_for_protocols() {
        let mut prg = SfsPrg::from_entropy(b"proto");
        let bound = Nat::from(1_000_000u64);
        for _ in 0..50 {
            assert!(prg.random_below(&bound) < bound);
        }
    }
}
