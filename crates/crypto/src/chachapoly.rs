//! The ChaCha20-Poly1305 AEAD construction (RFC 8439 §2.8).
//!
//! This is the negotiated fast suite for the secure channel: a single
//! pass seals plaintext in place (encrypt a cache-resident chunk, then
//! immediately absorb its ciphertext into the MAC), and `open_in_place`
//! verifies the tag over the ciphertext *before* decrypting — nothing
//! derived from a forged frame is ever interpreted.
//!
//! The same construction seals session-resumption tickets: unlike the
//! channel's per-direction ARC4 streams, an AEAD with an explicit nonce
//! is safe under one long-lived key across many independent tickets.

use crate::chacha20::{self, ChaCha20};
use crate::poly1305::Poly1305;

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes. Never reuse a (key, nonce) pair.
pub const NONCE_LEN: usize = 12;
/// Authenticator tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Chunk granularity for the fused encrypt-then-MAC sweep: a multiple of
/// both the ChaCha wide step (256) and the Poly1305 block (16), small
/// enough that the chunk is still in L1 when the MAC re-reads it.
const SWEEP_LEN: usize = 512;

/// Authentication failure. Deliberately carries no detail: a forged tag
/// and a truncated frame must be indistinguishable to the peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AeadError;

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEAD authentication failed")
    }
}

impl std::error::Error for AeadError {}

/// Derives the Poly1305 one-time key for this nonce (§2.6): the first 32
/// bytes of ChaCha20 block 0.
fn one_time_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20::keystream_block(key, nonce, 0);
    let mut otk = [0u8; 32];
    otk.copy_from_slice(&block[..32]);
    otk
}

/// Absorbs the §2.8 AEAD trailer: pad16(ciphertext) ‖ len(aad) ‖ len(ct).
fn absorb_lengths(poly: &mut Poly1305, aad_len: usize, ct_len: usize) {
    let pad = (16 - ct_len % 16) % 16;
    poly.update(&[0u8; 16][..pad]);
    let mut lens = [0u8; 16];
    lens[..8].copy_from_slice(&(aad_len as u64).to_le_bytes());
    lens[8..].copy_from_slice(&(ct_len as u64).to_le_bytes());
    poly.update(&lens);
}

/// Encrypts `buf` in place and returns the tag over `aad` and the
/// ciphertext. Payload keystream starts at block 1 (§2.8).
pub fn seal_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    buf: &mut [u8],
) -> [u8; TAG_LEN] {
    let mut poly = Poly1305::new(&one_time_key(key, nonce));
    poly.update_padded(aad);
    let mut cipher = ChaCha20::new(key, nonce, 1);
    // Fused sweep: each chunk is encrypted and MACed while hot in cache.
    for chunk in buf.chunks_mut(SWEEP_LEN) {
        cipher.xor_keystream(chunk);
        poly.update(chunk);
    }
    absorb_lengths(&mut poly, aad.len(), buf.len());
    poly.finish()
}

/// Verifies `tag` over `aad` and the ciphertext in `buf`, then decrypts
/// `buf` in place. On failure `buf` is left as ciphertext, untouched.
pub fn open_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    buf: &mut [u8],
    tag: &[u8],
) -> Result<(), AeadError> {
    let mut poly = Poly1305::new(&one_time_key(key, nonce));
    poly.update_padded(aad);
    poly.update(buf);
    absorb_lengths(&mut poly, aad.len(), buf.len());
    let expected = poly.finish();
    // Constant-time comparison: fold every byte difference before testing.
    if tag.len() != TAG_LEN {
        return Err(AeadError);
    }
    let diff = expected
        .iter()
        .zip(tag.iter())
        .fold(0u8, |acc, (a, b)| acc | (a ^ b));
    if diff != 0 {
        return Err(AeadError);
    }
    ChaCha20::new(key, nonce, 1).xor_keystream(buf);
    Ok(())
}

/// Seals `plaintext` into a self-contained `ciphertext ‖ tag` frame
/// (ticket-style use; the nonce travels separately).
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    out.extend_from_slice(plaintext);
    let tag = seal_in_place(key, nonce, aad, &mut out);
    out.extend_from_slice(&tag);
    out
}

/// Opens a `ciphertext ‖ tag` frame produced by [`seal`].
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    frame: &[u8],
) -> Result<Vec<u8>, AeadError> {
    if frame.len() < TAG_LEN {
        return Err(AeadError);
    }
    let (ct, tag) = frame.split_at(frame.len() - TAG_LEN);
    let mut buf = ct.to_vec();
    open_in_place(key, nonce, aad, &mut buf, tag)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> [u8; 32] {
        core::array::from_fn(|i| 0x80 + i as u8)
    }

    const RFC_NONCE: [u8; 12] = [
        0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
    ];
    const RFC_AAD: [u8; 12] = [
        0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
    ];
    const RFC_PLAINTEXT: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";

    fn hex(s: &str) -> Vec<u8> {
        s.split_whitespace()
            .flat_map(|tok| {
                (0..tok.len())
                    .step_by(2)
                    .map(|i| u8::from_str_radix(&tok[i..i + 2], 16).unwrap())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn rfc8439_poly_key_generation_vector() {
        // §2.6.2.
        let key: [u8; 32] = core::array::from_fn(|i| 0x80 + i as u8);
        let nonce = [0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7];
        let otk = one_time_key(&key, &nonce);
        let expected = hex("8a d5 a0 8b 90 5f 81 cc 81 50 40 27 4a b2 94 71
             a8 33 b6 37 e3 fd 0d a5 08 db b8 e2 fd d1 a6 46");
        assert_eq!(otk.to_vec(), expected);
    }

    #[test]
    fn rfc8439_aead_seal_vector() {
        // §2.8.2.
        let mut buf = RFC_PLAINTEXT.to_vec();
        let tag = seal_in_place(&rfc_key(), &RFC_NONCE, &RFC_AAD, &mut buf);
        let expected_ct = hex("d3 1a 8d 34 64 8e 60 db 7b 86 af bc 53 ef 7e c2
             a4 ad ed 51 29 6e 08 fe a9 e2 b5 a7 36 ee 62 d6
             3d be a4 5e 8c a9 67 12 82 fa fb 69 da 92 72 8b
             1a 71 de 0a 9e 06 0b 29 05 d6 a5 b6 7e cd 3b 36
             92 dd bd 7f 2d 77 8b 8c 98 03 ae e3 28 09 1b 58
             fa b3 24 e4 fa d6 75 94 55 85 80 8b 48 31 d7 bc
             3f f4 de f0 8e 4b 7a 9d e5 76 d2 65 86 ce c6 4b
             61 16");
        let expected_tag = hex("1a e1 0b 59 4f 09 e2 6a 7e 90 2e cb d0 60 06 91");
        assert_eq!(buf, expected_ct);
        assert_eq!(tag.to_vec(), expected_tag);
    }

    #[test]
    fn rfc8439_aead_open_vector() {
        let mut buf = RFC_PLAINTEXT.to_vec();
        let tag = seal_in_place(&rfc_key(), &RFC_NONCE, &RFC_AAD, &mut buf);
        open_in_place(&rfc_key(), &RFC_NONCE, &RFC_AAD, &mut buf, &tag).expect("authentic");
        assert_eq!(buf, RFC_PLAINTEXT);
    }

    #[test]
    fn tampering_anywhere_is_rejected_and_ciphertext_left_intact() {
        let key = rfc_key();
        let mut buf = RFC_PLAINTEXT.to_vec();
        let tag = seal_in_place(&key, &RFC_NONCE, &RFC_AAD, &mut buf);
        let sealed = buf.clone();
        for flip in [0, buf.len() / 2, buf.len() - 1] {
            let mut corrupt = sealed.clone();
            corrupt[flip] ^= 0x01;
            let before = corrupt.clone();
            assert_eq!(
                open_in_place(&key, &RFC_NONCE, &RFC_AAD, &mut corrupt, &tag),
                Err(AeadError)
            );
            // verify-before-decrypt: the buffer must not have been touched
            assert_eq!(corrupt, before);
        }
        let mut bad_tag = tag;
        bad_tag[7] ^= 0x80;
        let mut frame = sealed.clone();
        assert!(open_in_place(&key, &RFC_NONCE, &RFC_AAD, &mut frame, &bad_tag).is_err());
        let mut wrong_aad = sealed.clone();
        assert!(open_in_place(&key, &RFC_NONCE, b"other aad", &mut wrong_aad, &tag).is_err());
        let mut wrong_nonce = sealed;
        let mut nonce = RFC_NONCE;
        nonce[0] ^= 1;
        assert!(open_in_place(&key, &nonce, &RFC_AAD, &mut wrong_nonce, &tag).is_err());
    }

    #[test]
    fn detached_frame_roundtrip_all_sizes() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 13 + 1) as u8);
        for len in [0usize, 1, 15, 16, 17, 64, 511, 512, 513, 4096, 8192] {
            let nonce: [u8; 12] = core::array::from_fn(|i| (len + i) as u8);
            let plaintext: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let frame = seal(&key, &nonce, b"aad", &plaintext);
            assert_eq!(frame.len(), len + TAG_LEN);
            let opened = open(&key, &nonce, b"aad", &frame).expect("authentic");
            assert_eq!(opened, plaintext, "len {len}");
        }
        assert_eq!(open(&key, &[0u8; 12], b"", &[0u8; 15]), Err(AeadError));
    }
}
