//! The Rabin–Williams public-key cryptosystem.
//!
//! Paper §3.1.3: "SFS uses the Rabin public key cryptosystem for encryption
//! and signing. The implementation is secure against adaptive
//! chosen-ciphertext and adaptive chosen-message attacks. (Encryption is
//! actually plaintext-aware, an even stronger property.) Rabin assumes only
//! that factoring is hard … Like low-exponent RSA, encryption and signature
//! verification are particularly fast in Rabin because they do not require
//! modular exponentiation."
//!
//! Encryption is squaring modulo `n = p·q` with OAEP padding (Bellare–
//! Rogaway, giving plaintext awareness); decryption takes modular square
//! roots via CRT. Signatures are Williams' variant: primes are chosen with
//! `p ≡ 3 (mod 8)` and `q ≡ 7 (mod 8)` so that for any hash value `h`
//! coprime to `n`, exactly one of `{h, −h, 2h, −2h}` is a quadratic residue;
//! the signature is that value's square root plus the two tweak bits
//! `(e, f)`. Verification is a single modular squaring — cheap, which is
//! what lets SFS read-only servers serve many clients (§2.4).

use sfs_bignum::{crt_pair, gen_prime_congruent, jacobi, sqrt_mod_3mod4, Nat, RandomSource};

use crate::sha1::{mgf1, sha1, sha1_concat, DIGEST_LEN};

/// Errors from Rabin operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RabinError {
    /// The plaintext is too long for the modulus.
    MessageTooLong,
    /// Ciphertext failed structural or padding checks.
    DecryptionFailed,
    /// The ciphertext is not the right size for the modulus.
    BadCiphertextLength,
    /// A key blob failed to parse.
    BadKeyEncoding,
}

impl std::fmt::Display for RabinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RabinError::MessageTooLong => write!(f, "message too long for Rabin modulus"),
            RabinError::DecryptionFailed => write!(f, "Rabin decryption failed"),
            RabinError::BadCiphertextLength => write!(f, "ciphertext length mismatch"),
            RabinError::BadKeyEncoding => write!(f, "malformed Rabin key encoding"),
        }
    }
}

impl std::error::Error for RabinError {}

/// A Rabin–Williams public key (the modulus `n`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RabinPublicKey {
    n: Nat,
    /// Modulus length in bytes, cached.
    k: usize,
}

/// A Rabin–Williams private key (the factorization of `n`).
#[derive(Clone)]
pub struct RabinPrivateKey {
    p: Nat,
    q: Nat,
    public: RabinPublicKey,
}

/// A Rabin–Williams signature: tweak bits and a square root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RabinSignature {
    /// `true` when the −1 tweak was applied.
    pub negate: bool,
    /// `true` when the ×2 tweak was applied.
    pub double: bool,
    /// The square root of the tweaked hash.
    pub root: Nat,
}

impl RabinSignature {
    /// Serializes as `tweaks(1 byte) || root (n-sized big-endian)`.
    pub fn to_bytes(&self, key_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(key_len + 1);
        out.push((self.negate as u8) | (self.double as u8) << 1);
        out.extend_from_slice(&self.root.to_bytes_be_padded(key_len));
        out
    }

    /// Parses the serialization produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RabinError> {
        if bytes.len() < 2 || bytes[0] > 3 {
            return Err(RabinError::BadKeyEncoding);
        }
        Ok(RabinSignature {
            negate: bytes[0] & 1 != 0,
            double: bytes[0] & 2 != 0,
            root: Nat::from_bytes_be(&bytes[1..]),
        })
    }
}

/// Generates a Rabin–Williams key pair with a modulus of roughly `bits`
/// bits (`p ≡ 3 (mod 8)`, `q ≡ 7 (mod 8)`).
///
/// SFS servers use 1280-bit keys by default; tests use smaller ones for
/// speed.
///
/// # Panics
///
/// Panics if `bits < 256` (OAEP needs room for two SHA-1 digests).
pub fn generate_keypair<R: RandomSource>(bits: usize, rng: &mut R) -> RabinPrivateKey {
    assert!(
        bits >= 256,
        "Rabin modulus must be at least 256 bits for OAEP"
    );
    let half = bits / 2;
    loop {
        let p = gen_prime_congruent(half, 3, 8, rng);
        let q = gen_prime_congruent(bits - half, 7, 8, rng);
        if p == q {
            continue;
        }
        let n = p.mul_nat(&q);
        let k = n.to_bytes_be().len();
        return RabinPrivateKey {
            p,
            q,
            public: RabinPublicKey { n, k },
        };
    }
}

impl RabinPublicKey {
    /// Constructs a public key from a modulus.
    pub fn from_modulus(n: Nat) -> Self {
        let k = n.to_bytes_be().len();
        RabinPublicKey { n, k }
    }

    /// The modulus.
    pub fn modulus(&self) -> &Nat {
        &self.n
    }

    /// Modulus size in bytes.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Returns `true` for a degenerate (empty) key.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// Serializes the public key (big-endian modulus). This is the byte
    /// string hashed into HostIDs.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.n.to_bytes_be()
    }

    /// Parses a public key serialized by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RabinError> {
        if bytes.is_empty() || bytes[0] == 0 {
            return Err(RabinError::BadKeyEncoding);
        }
        Ok(RabinPublicKey::from_modulus(Nat::from_bytes_be(bytes)))
    }

    /// Maximum plaintext length for [`Self::encrypt`].
    pub fn max_plaintext_len(&self) -> usize {
        self.k.saturating_sub(2 * DIGEST_LEN + 2)
    }

    /// OAEP-pads and encrypts `msg` (one modular squaring — "particularly
    /// fast").
    pub fn encrypt<R: RandomSource>(&self, msg: &[u8], rng: &mut R) -> Result<Vec<u8>, RabinError> {
        if msg.len() > self.max_plaintext_len() {
            return Err(RabinError::MessageTooLong);
        }
        // EM = 0x00 || maskedSeed(20) || maskedDB(k-21)
        // DB = lHash(20) || 0x00.. || 0x01 || msg
        let db_len = self.k - 1 - DIGEST_LEN;
        let mut db = vec![0u8; db_len];
        let lhash = sha1(b"SFS-rabin-oaep");
        db[..DIGEST_LEN].copy_from_slice(&lhash);
        let msg_start = db_len - msg.len();
        db[msg_start - 1] = 0x01;
        db[msg_start..].copy_from_slice(msg);

        let mut seed = [0u8; DIGEST_LEN];
        rng.fill(&mut seed);
        let db_mask = mgf1(&seed, db_len);
        for (b, m) in db.iter_mut().zip(db_mask.iter()) {
            *b ^= m;
        }
        let seed_mask = mgf1(&db, DIGEST_LEN);
        let mut masked_seed = seed;
        for (b, m) in masked_seed.iter_mut().zip(seed_mask.iter()) {
            *b ^= m;
        }
        let mut em = Vec::with_capacity(self.k);
        em.push(0);
        em.extend_from_slice(&masked_seed);
        em.extend_from_slice(&db);
        // EM < 2^(8(k-1)) <= n because n has exactly k bytes.
        let m = Nat::from_bytes_be(&em);
        let c = m.square().rem_nat(&self.n).unwrap();
        Ok(c.to_bytes_be_padded(self.k))
    }

    /// Verifies a signature over `msg`: checks `s² ≡ e·f·H(msg) (mod n)`.
    /// One squaring, no exponentiation.
    pub fn verify(&self, msg: &[u8], sig: &RabinSignature) -> bool {
        if sig.root >= self.n {
            return false;
        }
        let h = fdh(msg, &self.n, self.k);
        let mut target = h;
        if sig.double {
            target = target.shl_bits(1).rem_nat(&self.n).unwrap();
        }
        if sig.negate {
            target = if target.is_zero() {
                target
            } else {
                self.n.checked_sub(&target).unwrap()
            };
        }
        sig.root.square().rem_nat(&self.n).unwrap() == target
    }
}

impl std::fmt::Debug for RabinPublicKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RabinPublicKey({} bits)", self.n.bit_len())
    }
}

impl RabinPrivateKey {
    /// The corresponding public key.
    pub fn public(&self) -> &RabinPublicKey {
        &self.public
    }

    /// Decrypts a ciphertext produced by [`RabinPublicKey::encrypt`].
    ///
    /// Squaring is 4-to-1, so all four square roots are recovered via CRT
    /// and the OAEP redundancy selects the correct one (plaintext
    /// awareness: an adversary cannot produce a valid ciphertext except by
    /// encrypting, so chosen-ciphertext queries are useless).
    pub fn decrypt(&self, cipher: &[u8]) -> Result<Vec<u8>, RabinError> {
        if cipher.len() != self.public.k {
            return Err(RabinError::BadCiphertextLength);
        }
        let c = Nat::from_bytes_be(cipher);
        if c >= self.public.n {
            return Err(RabinError::BadCiphertextLength);
        }
        let rp = sqrt_mod_3mod4(&c, &self.p).ok_or(RabinError::DecryptionFailed)?;
        let rq = sqrt_mod_3mod4(&c, &self.q).ok_or(RabinError::DecryptionFailed)?;
        let roots = self.all_roots(&rp, &rq);
        for r in roots {
            if let Some(m) = self.try_unpad(&r) {
                return Ok(m);
            }
        }
        Err(RabinError::DecryptionFailed)
    }

    /// Signs `msg` deterministically.
    pub fn sign(&self, msg: &[u8]) -> RabinSignature {
        let n = &self.public.n;
        let mut h = fdh(msg, n, self.public.k);
        // Degenerate h (shared factor with n) would reveal the
        // factorization; perturb deterministically. Probability ~ 2^-600.
        while h.gcd(n) != Nat::one() {
            h = h.add_nat(&Nat::one()).rem_nat(n).unwrap();
        }
        let jp = jacobi(&h, &self.p);
        let jq = jacobi(&h, &self.q);
        // ×2 flips the symbol mod p (p ≡ 3 mod 8 ⇒ (2/p) = −1) but not mod
        // q (q ≡ 7 mod 8 ⇒ (2/q) = +1); ×(−1) flips both (p, q ≡ 3 mod 4).
        let double = jp != jq;
        let mut target = h;
        if double {
            target = target.shl_bits(1).rem_nat(n).unwrap();
        }
        let negate = jacobi(&target, &self.q) == -1;
        if negate {
            target = n.checked_sub(&target).unwrap();
        }
        debug_assert_eq!(jacobi(&target, &self.p), 1);
        debug_assert_eq!(jacobi(&target, &self.q), 1);
        let rp = sqrt_mod_3mod4(&target, &self.p).expect("tweaked hash must be a QR mod p");
        let rq = sqrt_mod_3mod4(&target, &self.q).expect("tweaked hash must be a QR mod q");
        let s = crt_pair(&rp, &self.p, &rq, &self.q);
        // Canonicalize to the smaller of {s, n-s} so signing is a function.
        let s_alt = n.checked_sub(&s).unwrap();
        let root = if s_alt < s { s_alt } else { s };
        RabinSignature {
            negate,
            double,
            root,
        }
    }

    /// All four CRT combinations of `(±rp, ±rq)`.
    fn all_roots(&self, rp: &Nat, rq: &Nat) -> [Nat; 4] {
        let np = self.p.checked_sub(rp).unwrap().rem_nat(&self.p).unwrap();
        let nq = self.q.checked_sub(rq).unwrap().rem_nat(&self.q).unwrap();
        [
            crt_pair(rp, &self.p, rq, &self.q),
            crt_pair(rp, &self.p, &nq, &self.q),
            crt_pair(&np, &self.p, rq, &self.q),
            crt_pair(&np, &self.p, &nq, &self.q),
        ]
    }

    /// Attempts OAEP unpadding of a candidate root.
    fn try_unpad(&self, m: &Nat) -> Option<Vec<u8>> {
        let k = self.public.k;
        let em = m.to_bytes_be();
        if em.len() > k - 1 {
            return None;
        }
        let mut padded = vec![0u8; k - 1 - em.len()];
        padded.extend_from_slice(&em);
        let (masked_seed, db) = padded.split_at(DIGEST_LEN);
        let seed_mask = mgf1(db, DIGEST_LEN);
        let seed: Vec<u8> = masked_seed
            .iter()
            .zip(seed_mask.iter())
            .map(|(a, b)| a ^ b)
            .collect();
        let db_mask = mgf1(&seed, db.len());
        let db: Vec<u8> = db.iter().zip(db_mask.iter()).map(|(a, b)| a ^ b).collect();
        let lhash = sha1(b"SFS-rabin-oaep");
        if db[..DIGEST_LEN] != lhash {
            return None;
        }
        // Skip zero padding, expect 0x01 separator.
        let mut i = DIGEST_LEN;
        while i < db.len() && db[i] == 0 {
            i += 1;
        }
        if i >= db.len() || db[i] != 0x01 {
            return None;
        }
        Some(db[i + 1..].to_vec())
    }
}

impl RabinPrivateKey {
    /// Serializes the private key (length-prefixed `p` then `q`).
    ///
    /// Users register eksblowfish-encrypted copies of this blob with
    /// authserv so a password can recover the key from anywhere (§2.4).
    pub fn to_bytes(&self) -> Vec<u8> {
        let p = self.p.to_bytes_be();
        let q = self.q.to_bytes_be();
        let mut out = Vec::with_capacity(p.len() + q.len() + 8);
        out.extend_from_slice(&(p.len() as u32).to_be_bytes());
        out.extend_from_slice(&p);
        out.extend_from_slice(&(q.len() as u32).to_be_bytes());
        out.extend_from_slice(&q);
        out
    }

    /// Parses a blob from [`Self::to_bytes`], validating the Rabin–
    /// Williams congruences.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RabinError> {
        let take = |data: &[u8]| -> Result<(Nat, usize), RabinError> {
            if data.len() < 4 {
                return Err(RabinError::BadKeyEncoding);
            }
            let len = u32::from_be_bytes(data[..4].try_into().unwrap()) as usize;
            if data.len() < 4 + len {
                return Err(RabinError::BadKeyEncoding);
            }
            Ok((Nat::from_bytes_be(&data[4..4 + len]), 4 + len))
        };
        let (p, used) = take(bytes)?;
        let (q, used2) = take(&bytes[used..])?;
        if used + used2 != bytes.len() {
            return Err(RabinError::BadKeyEncoding);
        }
        if p.div_rem_u64(8).1 != 3 || q.div_rem_u64(8).1 != 7 {
            return Err(RabinError::BadKeyEncoding);
        }
        let n = p.mul_nat(&q);
        let k = n.to_bytes_be().len();
        Ok(RabinPrivateKey {
            p,
            q,
            public: RabinPublicKey { n, k },
        })
    }
}

impl std::fmt::Debug for RabinPrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print p or q.
        write!(f, "RabinPrivateKey({} bits)", self.public.n.bit_len())
    }
}

/// Full-domain hash of a message into `[0, n)`, via MGF1 over SHA-1.
fn fdh(msg: &[u8], n: &Nat, k: usize) -> Nat {
    let digest = sha1_concat(&[b"SFS-rw-fdh", msg]);
    // k-1 bytes guarantees the value is below n (n has k bytes).
    Nat::from_bytes_be(&mgf1(&digest, k - 1))
        .rem_nat(n)
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfs_bignum::XorShiftSource;

    fn test_key() -> RabinPrivateKey {
        let mut rng = XorShiftSource::new(0xB0B);
        generate_keypair(512, &mut rng)
    }

    #[test]
    fn keygen_congruences() {
        let key = test_key();
        assert_eq!(key.p.div_rem_u64(8).1, 3);
        assert_eq!(key.q.div_rem_u64(8).1, 7);
        assert_eq!(key.p.mul_nat(&key.q), *key.public().modulus());
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let key = test_key();
        let mut rng = XorShiftSource::new(99);
        // Max plaintext for a 512-bit key is 64 − 42 = 22 bytes.
        for msg in [&b""[..], b"x", b"session-key-half-16b"] {
            let c = key.public().encrypt(msg, &mut rng).unwrap();
            assert_eq!(c.len(), key.public().len());
            assert_eq!(key.decrypt(&c).unwrap(), msg);
        }
    }

    #[test]
    fn ciphertexts_randomized() {
        let key = test_key();
        let mut rng = XorShiftSource::new(7);
        let c1 = key.public().encrypt(b"same message", &mut rng).unwrap();
        let c2 = key.public().encrypt(b"same message", &mut rng).unwrap();
        assert_ne!(c1, c2);
    }

    #[test]
    fn oversized_message_rejected() {
        let key = test_key();
        let mut rng = XorShiftSource::new(1);
        let msg = vec![0u8; key.public().max_plaintext_len() + 1];
        assert_eq!(
            key.public().encrypt(&msg, &mut rng),
            Err(RabinError::MessageTooLong)
        );
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = test_key();
        let mut rng = XorShiftSource::new(5);
        let mut c = key.public().encrypt(b"secret", &mut rng).unwrap();
        c[10] ^= 1;
        assert!(key.decrypt(&c).is_err());
    }

    #[test]
    fn wrong_length_ciphertext_rejected() {
        let key = test_key();
        assert_eq!(
            key.decrypt(&[0u8; 10]),
            Err(RabinError::BadCiphertextLength)
        );
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = test_key();
        for msg in [&b""[..], b"AuthMsg", b"revocation certificate body"] {
            let sig = key.sign(msg);
            assert!(key.public().verify(msg, &sig), "msg={msg:?}");
        }
    }

    #[test]
    fn signature_rejects_other_message() {
        let key = test_key();
        let sig = key.sign(b"the real message");
        assert!(!key.public().verify(b"a forged message", &sig));
    }

    #[test]
    fn signature_rejects_tampered_root() {
        let key = test_key();
        let mut sig = key.sign(b"msg");
        sig.root = sig.root.add_nat(&Nat::one());
        assert!(!key.public().verify(b"msg", &sig));
    }

    #[test]
    fn signature_rejects_wrong_key() {
        let key = test_key();
        let mut rng = XorShiftSource::new(0xC0FFEE);
        let other = generate_keypair(512, &mut rng);
        let sig = key.sign(b"msg");
        assert!(!other.public().verify(b"msg", &sig));
    }

    #[test]
    fn signing_is_deterministic() {
        let key = test_key();
        assert_eq!(key.sign(b"m"), key.sign(b"m"));
    }

    #[test]
    fn signature_serialization_roundtrip() {
        let key = test_key();
        let sig = key.sign(b"serialize me");
        let bytes = sig.to_bytes(key.public().len());
        let back = RabinSignature::from_bytes(&bytes).unwrap();
        assert_eq!(back, sig);
        assert!(key.public().verify(b"serialize me", &back));
    }

    #[test]
    fn public_key_serialization_roundtrip() {
        let key = test_key();
        let bytes = key.public().to_bytes();
        let back = RabinPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(&back, key.public());
        assert_eq!(
            RabinPublicKey::from_bytes(&[]),
            Err(RabinError::BadKeyEncoding)
        );
        assert_eq!(
            RabinPublicKey::from_bytes(&[0, 1, 2]),
            Err(RabinError::BadKeyEncoding)
        );
    }

    #[test]
    fn root_too_large_rejected() {
        let key = test_key();
        let mut sig = key.sign(b"m");
        sig.root = key.public().modulus().add_nat(&sig.root);
        assert!(!key.public().verify(b"m", &sig));
    }
}
