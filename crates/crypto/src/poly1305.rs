//! The Poly1305 one-time authenticator (RFC 8439 §2.5).
//!
//! Poly1305 evaluates the message as a polynomial in the clamped key `r`
//! over the prime field 2^130 − 5, then adds the pad `s`. Security rests
//! on the key being used for exactly one message — which the AEAD layer
//! guarantees by deriving a fresh key per nonce from the ChaCha20 block
//! function (§2.6).
//!
//! The field arithmetic uses three 44/44/42-bit limbs with `u128`
//! products: one block costs nine widening multiplies and a short carry
//! chain, all on full 64-bit registers — the same "work in machine words,
//! not bytes" discipline as the ARC4 and SHA-1 inner loops. The bulk
//! path takes blocks two at a time as `(h + m₁)·r² + m₂·r`: the multiply
//! count is unchanged but the two products are independent (so they
//! pipeline) and one carry chain serves both blocks.

/// Authenticator tag length in bytes.
pub const TAG_LEN: usize = 16;
/// One-time key length in bytes (`r` ‖ `s`).
pub const KEY_LEN: usize = 32;
/// Internal block size in bytes.
pub const BLOCK_LEN: usize = 16;

const MASK44: u64 = (1 << 44) - 1;
const MASK42: u64 = (1 << 42) - 1;

/// Schoolbook 3-limb multiply mod 2^130−5 with the reduction folded in:
/// `bs` holds `[20·b1, 20·b2]` (2^132 ≡ 20 at this radix). Returns the
/// unreduced column sums.
#[inline(always)]
fn mul3(a: [u64; 3], b: [u64; 3], bs: [u64; 2]) -> [u128; 3] {
    [
        (a[0] as u128) * (b[0] as u128)
            + (a[1] as u128) * (bs[1] as u128)
            + (a[2] as u128) * (bs[0] as u128),
        (a[0] as u128) * (b[1] as u128)
            + (a[1] as u128) * (b[0] as u128)
            + (a[2] as u128) * (bs[1] as u128),
        (a[0] as u128) * (b[2] as u128)
            + (a[1] as u128) * (b[1] as u128)
            + (a[2] as u128) * (b[0] as u128),
    ]
}

/// Propagates carries on unreduced column sums back to 44/44/42 limbs
/// (the top limb's spill re-enters at ×5).
#[inline(always)]
fn carry3(d: [u128; 3]) -> [u64; 3] {
    let [d0, mut d1, mut d2] = d;
    let mut c = (d0 >> 44) as u64;
    let h0 = (d0 as u64) & MASK44;
    d1 += c as u128;
    c = (d1 >> 44) as u64;
    let h1 = (d1 as u64) & MASK44;
    d2 += c as u128;
    c = (d2 >> 42) as u64;
    let h2 = (d2 as u64) & MASK42;
    let h0 = h0 + c * 5;
    let c = h0 >> 44;
    [h0 & MASK44, h1 + c, h2]
}

/// Splits a 16-byte block into 44/44/42 limbs, ORing `hibit` (the 2^128
/// marker) into the top limb.
#[inline(always)]
fn limbs(m: &[u8], hibit: u64) -> [u64; 3] {
    let t0 = u64::from_le_bytes(m[0..8].try_into().unwrap());
    let t1 = u64::from_le_bytes(m[8..16].try_into().unwrap());
    [
        t0 & MASK44,
        ((t0 >> 44) | (t1 << 20)) & MASK44,
        ((t1 >> 24) & MASK42) | hibit,
    ]
}

/// Streaming Poly1305 state.
///
/// `update` may be fed arbitrary-length fragments; a 16-byte internal
/// buffer re-aligns them to blocks, so bulk callers that feed multiples
/// of 16 never touch it.
#[derive(Clone)]
pub struct Poly1305 {
    /// Clamped `r`, split 44/44/42, with its folded `[20·r1, 20·r2]`.
    r: [u64; 3],
    s: [u64; 2],
    /// `r²` and its folded multipliers, for the two-block bulk path.
    r2: [u64; 3],
    s2: [u64; 2],
    /// Accumulator, split 44/44/42 (plus carries in flight).
    h: [u64; 3],
    /// The pad `s` from the second key half, added after the polynomial.
    pad: [u64; 2],
    /// Partial-block staging.
    buf: [u8; BLOCK_LEN],
    buffered: usize,
}

impl Poly1305 {
    /// Initializes from a 32-byte one-time key, clamping `r` per §2.5.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let t0 = u64::from_le_bytes(key[0..8].try_into().unwrap());
        let t1 = u64::from_le_bytes(key[8..16].try_into().unwrap());
        let r0 = t0 & 0x0000_0ffc_0fff_ffff;
        let r1 = ((t0 >> 44) | (t1 << 20)) & 0x0000_0fff_ffc0_ffff;
        let r2 = (t1 >> 24) & 0x0000_000f_ffff_fc0f;
        let r = [r0, r1, r2];
        let s = [r1 * 20, r2 * 20];
        let rsq = carry3(mul3(r, r, s));
        Poly1305 {
            r,
            s,
            r2: rsq,
            s2: [rsq[1] * 20, rsq[2] * 20],
            h: [0; 3],
            pad: [
                u64::from_le_bytes(key[16..24].try_into().unwrap()),
                u64::from_le_bytes(key[24..32].try_into().unwrap()),
            ],
            buf: [0u8; BLOCK_LEN],
            buffered: 0,
        }
    }

    /// Absorbs one 16-byte block. `hibit` is `1 << 40` (the 2^128 marker
    /// in the top limb) for full blocks and 0 for the padded final
    /// fragment, which carries its own 0x01 marker byte.
    #[inline(always)]
    fn block(&mut self, m: &[u8], hibit: u64) {
        let t = limbs(m, hibit);
        let a = [self.h[0] + t[0], self.h[1] + t[1], self.h[2] + t[2]];
        self.h = carry3(mul3(a, self.r, self.s));
    }

    /// Absorbs two full 16-byte blocks as `(h + m₁)·r² + m₂·r`: the two
    /// products have no data dependency, so they pipeline, and one carry
    /// chain finishes both.
    #[inline(always)]
    fn block_pair(&mut self, m: &[u8]) {
        let m1 = limbs(&m[..BLOCK_LEN], 1 << 40);
        let m2 = limbs(&m[BLOCK_LEN..], 1 << 40);
        let a = [self.h[0] + m1[0], self.h[1] + m1[1], self.h[2] + m1[2]];
        let d = mul3(a, self.r2, self.s2);
        let u = mul3(m2, self.r, self.s);
        self.h = carry3([d[0] + u[0], d[1] + u[1], d[2] + u[2]]);
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buffered > 0 {
            let take = (BLOCK_LEN - self.buffered).min(data.len());
            self.buf[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered < BLOCK_LEN {
                return; // fragment fully staged, nothing block-aligned yet
            }
            let block = self.buf;
            self.block(&block, 1 << 40);
            self.buffered = 0;
        }
        let mut pairs = data.chunks_exact(2 * BLOCK_LEN);
        for p in &mut pairs {
            self.block_pair(p);
        }
        let mut blocks = pairs.remainder().chunks_exact(BLOCK_LEN);
        for b in &mut blocks {
            self.block(b, 1 << 40);
        }
        let rest = blocks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buffered = rest.len();
    }

    /// Absorbs `data` then zero-pads to a 16-byte boundary (the AEAD
    /// `pad16` step, §2.8). Must only be called on a block-aligned state.
    pub fn update_padded(&mut self, data: &[u8]) {
        debug_assert_eq!(self.buffered, 0, "update_padded on unaligned state");
        self.update(data);
        if self.buffered > 0 {
            let zeros = [0u8; BLOCK_LEN];
            let pad = BLOCK_LEN - self.buffered;
            self.update(&zeros[..pad]);
        }
    }

    /// Finishes the polynomial, adds the pad, and returns the tag.
    pub fn finish(mut self) -> [u8; TAG_LEN] {
        if self.buffered > 0 {
            // Final fragment: append 0x01 then zero-fill; no 2^128 bit.
            let mut last = [0u8; BLOCK_LEN];
            last[..self.buffered].copy_from_slice(&self.buf[..self.buffered]);
            last[self.buffered] = 1;
            self.block(&last, 0);
        }
        let [mut h0, mut h1, mut h2] = self.h;
        // Fully propagate carries.
        let mut c = h1 >> 44;
        h1 &= MASK44;
        h2 += c;
        c = h2 >> 42;
        h2 &= MASK42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= MASK44;
        h1 += c;
        c = h1 >> 44;
        h1 &= MASK44;
        h2 += c;
        c = h2 >> 42;
        h2 &= MASK42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= MASK44;
        h1 += c;

        // Compute h − p; select it when h ≥ p, branch-free.
        let g0 = h0.wrapping_add(5);
        c = g0 >> 44;
        let g0 = g0 & MASK44;
        let g1 = h1.wrapping_add(c);
        c = g1 >> 44;
        let g1 = g1 & MASK44;
        let g2 = h2.wrapping_add(c).wrapping_sub(1 << 42);
        let keep_g = (g2 >> 63).wrapping_sub(1); // all-ones iff no borrow
        h0 = (h0 & !keep_g) | (g0 & keep_g);
        h1 = (h1 & !keep_g) | (g1 & keep_g);
        h2 = (h2 & !keep_g) | (g2 & keep_g);

        // Add the pad mod 2^128 and serialize little-endian.
        let t0 = self.pad[0];
        let t1 = self.pad[1];
        h0 += t0 & MASK44;
        c = h0 >> 44;
        h0 &= MASK44;
        h1 += (((t0 >> 44) | (t1 << 20)) & MASK44) + c;
        c = h1 >> 44;
        h1 &= MASK44;
        h2 += ((t1 >> 24) & MASK42) + c;
        h2 &= MASK42;

        let mut tag = [0u8; TAG_LEN];
        tag[0..8].copy_from_slice(&(h0 | (h1 << 44)).to_le_bytes());
        tag[8..16].copy_from_slice(&((h1 >> 20) | (h2 << 24)).to_le_bytes());
        tag
    }
}

/// One-shot tag over a single message.
pub fn poly1305(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(msg);
    p.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_tag_vector() {
        // §2.5.2.
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        let expected: [u8; 16] = [
            0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
            0x27, 0xa9,
        ];
        assert_eq!(tag, expected);
    }

    #[test]
    fn streaming_fragments_match_one_shot() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 7 + 3) as u8);
        let msg: Vec<u8> = (0..517).map(|i| (i % 251) as u8).collect();
        let whole = poly1305(&key, &msg);
        for split in [1usize, 15, 16, 17, 64, 255] {
            let mut p = Poly1305::new(&key);
            for chunk in msg.chunks(split) {
                p.update(chunk);
            }
            assert_eq!(p.finish(), whole, "split {split}");
        }
    }

    #[test]
    fn update_padded_pads_to_block_boundary() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8 ^ 0x5a);
        let mut padded = Poly1305::new(&key);
        padded.update_padded(&[0xAB; 12]);
        padded.update(&[0xCD; 16]);
        let mut manual = Poly1305::new(&key);
        manual.update(&[0xAB; 12]);
        manual.update(&[0u8; 4]);
        manual.update(&[0xCD; 16]);
        assert_eq!(padded.finish(), manual.finish());
    }
}
