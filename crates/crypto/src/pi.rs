//! Hexadecimal digits of π.
//!
//! Blowfish's P-array and S-boxes are, by definition, the first 18 + 4·256
//! 32-bit words of the fractional hexadecimal expansion of π. Rather than
//! embedding four kilobytes of opaque constants, this module computes them
//! with Machin's formula over the crate's own fixed-point arithmetic
//! (`sfs-bignum`), which both shrinks the trusted base and gives the tables
//! an independent correctness check (the first words are verified against
//! the published expansion in tests, and Blowfish's known-answer tests
//! transitively verify the rest).

use std::sync::OnceLock;

use sfs_bignum::Nat;

/// Number of 32-bit words of π Blowfish needs (18 P-words + 4×256 S-words).
pub const BLOWFISH_WORDS: usize = 18 + 4 * 256;

/// Guard bits beyond the requested precision to absorb truncation error.
const GUARD_BITS: usize = 128;

/// Computes `arctan(1/x)` in fixed point with `prec` fractional bits,
/// truncated (error < 1 ulp per term, absorbed by guard bits).
fn arctan_inv(x: u64, prec: usize) -> Nat {
    let scale = Nat::one().shl_bits(prec);
    let x2 = x * x;
    let mut power = scale.div_rem_u64(x).0; // 1/x
    let mut sum = Nat::zero();
    let mut k: u64 = 0;
    let mut add = true;
    while !power.is_zero() {
        let term = power.div_rem_u64(2 * k + 1).0;
        if add {
            sum = sum.add_nat(&term);
        } else {
            // The alternating series is positive and decreasing, so the
            // running sum never underflows.
            sum = sum
                .checked_sub(&term)
                .expect("alternating series underflow");
        }
        power = power.div_rem_u64(x2).0;
        add = !add;
        k += 1;
    }
    sum
}

/// Computes π in fixed point with `prec` fractional bits (integer part
/// included), using Machin's formula π = 16·arctan(1/5) − 4·arctan(1/239).
fn pi_fixed(prec: usize) -> Nat {
    let p = prec + GUARD_BITS;
    let at5 = arctan_inv(5, p);
    let at239 = arctan_inv(239, p);
    let pi = at5
        .shl_bits(4)
        .checked_sub(&at239.shl_bits(2))
        .expect("Machin combination underflow");
    pi.shr_bits(GUARD_BITS)
}

/// Returns the first `n` 32-bit words of the *fractional* hexadecimal
/// expansion of π (i.e. starting `243F6A88, 85A308D3, …`).
pub fn pi_fraction_words(n: usize) -> Vec<u32> {
    let prec = n * 32;
    let pi = pi_fixed(prec);
    // Remove the integer part (3) to keep only the fraction.
    let three = Nat::from(3u64).shl_bits(prec);
    let frac = pi.checked_sub(&three).expect("pi < 3?");
    let bytes = frac.to_bytes_be_padded(prec / 8);
    bytes
        .chunks(4)
        .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
        .collect()
}

/// The Blowfish constant words, computed once and cached.
pub fn blowfish_words() -> &'static [u32; BLOWFISH_WORDS] {
    static WORDS: OnceLock<Box<[u32; BLOWFISH_WORDS]>> = OnceLock::new();
    WORDS.get_or_init(|| {
        let v = pi_fraction_words(BLOWFISH_WORDS);
        let arr: Box<[u32; BLOWFISH_WORDS]> =
            v.into_boxed_slice().try_into().expect("length mismatch");
        arr
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_words_match_published_expansion() {
        // π = 3.243F6A88 85A308D3 13198A2E 03707344 A4093822 299F31D0 …
        let w = pi_fraction_words(8);
        assert_eq!(
            w,
            vec![
                0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344, 0xA4093822, 0x299F31D0, 0x082EFA98,
                0xEC4E6C89,
            ]
        );
    }

    #[test]
    fn prefix_stability() {
        // Computing more digits must not change earlier ones (guard bits are
        // sufficient).
        let short = pi_fraction_words(16);
        let long = pi_fraction_words(64);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn blowfish_words_cached_and_sized() {
        let w1 = blowfish_words();
        let w2 = blowfish_words();
        assert!(std::ptr::eq(w1, w2));
        assert_eq!(w1.len(), 1042);
        assert_eq!(w1[0], 0x243F6A88);
    }

    #[test]
    fn arctan_one_fifth_sane() {
        // arctan(0.2) ≈ 0.19739555984988... Check 32-bit fixed point.
        let v = arctan_inv(5, 32).to_u64().unwrap();
        let expect = (0.19739555984988f64 * 4294967296.0) as u64;
        assert!(
            (v as i64 - expect as i64).unsigned_abs() < 4,
            "{v} vs {expect}"
        );
    }
}
