//! Seeded, deterministic fault injection across the simulated stack.
//!
//! Paper §2.1: the threat model assumes an attacker who can "delay,
//! duplicate, modify, or drop" packets, and a credible reproduction must
//! stay live over an actively hostile substrate. A [`FaultPlan`]
//! generalises the one-off [`crate::Interceptor`] hook into a first-class
//! subsystem: one plan, seeded from a single integer, decides the fate of
//! every packet on every attached [`crate::Wire`], every synchronous write
//! on every attached [`crate::SimDisk`], and the crash schedule of any
//! server that consults it. Because every decision is drawn from the
//! plan's own generator in call order and the whole simulation runs on
//! the deterministic virtual clock, a chaos run is byte-for-byte
//! reproducible from its seed: same seed ⇒ same fault schedule ⇒ same
//! virtual-time totals.
//!
//! Probabilities are expressed per mille (‰) so specs stay integral.
//! Scheduled windows (partitions, server crashes) are cut against the
//! virtual clock. Every injected fault is appended to the plan's event
//! log and emitted as a telemetry instant, so two runs can be compared
//! fault-for-fault.

use std::sync::Arc;

use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

use crate::net::Direction;
use crate::time::SimTime;

/// Every kind of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Packet lost; the caller observes a retransmission timeout.
    Drop,
    /// Packet delivered twice (the receiver processes both copies).
    Duplicate,
    /// Packet swapped with an adjacent packet in the same direction.
    Reorder,
    /// One bit of the packet flipped in flight.
    Corrupt,
    /// Packet delivered after an extra transit delay.
    Delay,
    /// Packet lost to a scheduled network partition window.
    Partition,
    /// Server crash-restart (all connection state lost at the scheduled
    /// instant; clients must redial and rekey).
    ServerCrash,
    /// Client crash-restart (all in-memory client state lost at the
    /// scheduled instant; the client recovers from its journal).
    ClientCrash,
    /// A synchronous disk write fails transiently and is retried.
    DiskSyncFail,
}

impl FaultKind {
    /// Stable lower-case label, used in telemetry instants and traces.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Reorder => "reorder",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Delay => "delay",
            FaultKind::Partition => "partition",
            FaultKind::ServerCrash => "server_crash",
            FaultKind::ClientCrash => "client_crash",
            FaultKind::DiskSyncFail => "disk_sync_fail",
        }
    }
}

/// Declarative description of what may go wrong.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Probability a packet is dropped, ‰.
    pub drop_pm: u32,
    /// Probability a packet is duplicated, ‰.
    pub duplicate_pm: u32,
    /// Probability a packet is reordered with its neighbour, ‰.
    pub reorder_pm: u32,
    /// Probability one bit of a packet flips, ‰.
    pub corrupt_pm: u32,
    /// Probability a packet is delayed by [`Self::delay_ns`], ‰.
    pub delay_pm: u32,
    /// Extra transit time for delayed packets, ns.
    pub delay_ns: u64,
    /// Probability a synchronous disk write fails transiently, ‰.
    pub disk_sync_fail_pm: u32,
    /// Network partition windows `[start, end)` in virtual time; every
    /// packet inside a window is dropped.
    pub partitions: Vec<(SimTime, SimTime)>,
    /// Virtual instants at which the server crash-restarts.
    pub server_crashes: Vec<SimTime>,
    /// Virtual instants at which a client crash-restarts.
    pub client_crashes: Vec<SimTime>,
}

impl FaultSpec {
    /// A spec that injects nothing (useful as a builder base).
    pub fn none() -> Self {
        Self::default()
    }

    /// Parses the `--faults` spec syntax:
    /// `drop=20,dup=5,reorder=3,corrupt=3,delay=10,delay_ns=2ms,partition=2s+500ms,crash=3s,ccrash=4s,syncfail=10`.
    ///
    /// Probabilities are per mille. Durations/instants accept `ns`, `us`,
    /// `ms`, and `s` suffixes (bare numbers are nanoseconds). `partition`
    /// is `start+length` and `partition`/`crash`/`ccrash` may repeat. A
    /// `seed=N` pair is returned separately (default 0).
    pub fn parse(spec: &str) -> Result<(u64, FaultSpec), String> {
        let mut seed = 0u64;
        let mut out = FaultSpec::none();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry {part:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let pm = |v: &str| -> Result<u32, String> {
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("bad per-mille value {v:?} for {key}"))?;
                if n > 1000 {
                    return Err(format!("{key}={n} exceeds 1000‰"));
                }
                Ok(n)
            };
            match key {
                "seed" => {
                    seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "drop" => out.drop_pm = pm(value)?,
                "dup" | "duplicate" => out.duplicate_pm = pm(value)?,
                "reorder" => out.reorder_pm = pm(value)?,
                "corrupt" => out.corrupt_pm = pm(value)?,
                "delay" => out.delay_pm = pm(value)?,
                "delay_ns" => out.delay_ns = parse_duration_ns(value)?,
                "syncfail" => out.disk_sync_fail_pm = pm(value)?,
                "partition" => {
                    let (start, len) = value
                        .split_once('+')
                        .ok_or_else(|| format!("partition {value:?} must be start+length"))?;
                    let start = parse_duration_ns(start)?;
                    let len = parse_duration_ns(len)?;
                    out.partitions.push((SimTime(start), SimTime(start + len)));
                }
                "crash" => out.server_crashes.push(SimTime(parse_duration_ns(value)?)),
                "ccrash" => out.client_crashes.push(SimTime(parse_duration_ns(value)?)),
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        out.partitions.sort();
        out.server_crashes.sort();
        out.client_crashes.sort();
        Ok((seed, out))
    }
}

/// Parses `35us` / `2ms` / `3s` / `1500` (bare = ns) into nanoseconds.
fn parse_duration_ns(v: &str) -> Result<u64, String> {
    let (digits, mult) = if let Some(d) = v.strip_suffix("ns") {
        (d, 1)
    } else if let Some(d) = v.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = v.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = v.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (v, 1)
    };
    digits
        .trim()
        .parse::<u64>()
        .map(|n| n * mult)
        .map_err(|_| format!("bad duration {v:?}"))
}

/// One injected fault, for reproducibility assertions and debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time of injection.
    pub at: SimTime,
    /// What was injected.
    pub kind: FaultKind,
    /// Where: `"req"`, `"rep"`, `"disk"`, `"server"`, or `"client"`.
    pub site: &'static str,
}

/// What the plan decided to do with one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAction {
    /// Deliver the given bytes (possibly corrupted or swapped with a
    /// held neighbour).
    Deliver(Vec<u8>),
    /// Deliver the bytes twice (the receiver processes both copies).
    Duplicate(Vec<u8>),
    /// Deliver after an extra delay of the given ns.
    Delay(u64, Vec<u8>),
    /// The packet never arrives.
    Drop,
}

struct PlanState {
    /// xorshift64* state; never zero.
    rng: u64,
    /// Held packet per direction (reorder swaps adjacent packets).
    held: [Option<Vec<u8>>; 2],
    events: Vec<FaultEvent>,
    tel: Telemetry,
}

/// A seeded, shareable fault schedule. Clones share state, so one plan
/// can be attached to wires, disks, and servers at once and its event
/// log stays globally ordered.
#[derive(Clone)]
pub struct FaultPlan {
    seed: u64,
    spec: Arc<FaultSpec>,
    state: Arc<Mutex<PlanState>>,
}

impl FaultPlan {
    /// Creates a plan from a seed and a spec.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            seed,
            spec: Arc::new(spec),
            state: Arc::new(Mutex::new(PlanState {
                // splitmix-style scramble so seed 0 is usable.
                rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                held: [None, None],
                events: Vec::new(),
                tel: Telemetry::disabled(),
            })),
        }
    }

    /// Parses a `--faults` spec string into a plan.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let (seed, spec) = FaultSpec::parse(spec)?;
        Ok(Self::new(seed, spec))
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Attaches a telemetry sink; every injected fault emits an instant.
    /// Attach a clock-stamped handle (`tel.with_clock(...)`) so instants
    /// carry virtual time.
    pub fn set_telemetry(&self, tel: &Telemetry) {
        self.state.lock().tel = tel.clone();
    }

    /// Snapshot of every fault injected so far, in injection order.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.state.lock().events.clone()
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> usize {
        self.state.lock().events.len()
    }

    fn record(&self, st: &mut PlanState, now: SimTime, kind: FaultKind, site: &'static str) {
        st.events.push(FaultEvent {
            at: now,
            kind,
            site,
        });
        st.tel
            .instant_kv("fault", "sim.fault", kind.label(), "site", site);
    }

    /// Decides the fate of one packet. Consumes generator state, so call
    /// exactly once per packet.
    pub fn net_action(&self, dir: Direction, now: SimTime, bytes: Vec<u8>) -> NetAction {
        let site = match dir {
            Direction::Request => "req",
            Direction::Reply => "rep",
        };
        let mut st = self.state.lock();
        if self
            .spec
            .partitions
            .iter()
            .any(|(start, end)| now >= *start && now < *end)
        {
            self.record(&mut st, now, FaultKind::Partition, site);
            return NetAction::Drop;
        }
        if roll(&mut st.rng, self.spec.drop_pm) {
            self.record(&mut st, now, FaultKind::Drop, site);
            return NetAction::Drop;
        }
        if roll(&mut st.rng, self.spec.duplicate_pm) {
            self.record(&mut st, now, FaultKind::Duplicate, site);
            return NetAction::Duplicate(bytes);
        }
        if roll(&mut st.rng, self.spec.reorder_pm) {
            self.record(&mut st, now, FaultKind::Reorder, site);
            let slot = match dir {
                Direction::Request => 0,
                Direction::Reply => 1,
            };
            return match st.held[slot].replace(bytes) {
                // A neighbour was already held: it now arrives in this
                // packet's place — the two swapped positions.
                Some(stale) => NetAction::Deliver(stale),
                // First of the pair: held back; the caller times out.
                None => NetAction::Drop,
            };
        }
        if roll(&mut st.rng, self.spec.corrupt_pm) {
            self.record(&mut st, now, FaultKind::Corrupt, site);
            let mut bytes = bytes;
            if !bytes.is_empty() {
                let bit = next_u64(&mut st.rng) as usize % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            return NetAction::Deliver(bytes);
        }
        if roll(&mut st.rng, self.spec.delay_pm) {
            self.record(&mut st, now, FaultKind::Delay, site);
            return NetAction::Delay(self.spec.delay_ns.max(1), bytes);
        }
        NetAction::Deliver(bytes)
    }

    /// Whether a synchronous disk write at `now` fails transiently.
    pub fn sync_write_fails(&self, now: SimTime) -> bool {
        if self.spec.disk_sync_fail_pm == 0 {
            return false;
        }
        let mut st = self.state.lock();
        if roll(&mut st.rng, self.spec.disk_sync_fail_pm) {
            self.record(&mut st, now, FaultKind::DiskSyncFail, "disk");
            return true;
        }
        false
    }

    /// The server boot epoch implied by the crash schedule at `now`: the
    /// number of scheduled crash instants at or before `now`. A server
    /// consulting the plan compares this against the epoch it last
    /// observed; a jump means it crash-restarted in between.
    pub fn server_epoch(&self, now: SimTime) -> u64 {
        self.spec
            .server_crashes
            .iter()
            .filter(|t| **t <= now)
            .count() as u64
    }

    /// Records a server crash-restart (called by the server when it
    /// observes an epoch jump, or when a test kills it by hand).
    pub fn note_server_crash(&self, now: SimTime) {
        let mut st = self.state.lock();
        self.record(&mut st, now, FaultKind::ServerCrash, "server");
    }

    /// The client boot epoch implied by the crash schedule at `now`: the
    /// number of scheduled client crash instants at or before `now`. A
    /// harness consulting the plan compares this against the epoch it
    /// last observed; a jump means the client died in between and must be
    /// rebuilt from its journal.
    pub fn client_epoch(&self, now: SimTime) -> u64 {
        self.spec
            .client_crashes
            .iter()
            .filter(|t| **t <= now)
            .count() as u64
    }

    /// Records a client crash-restart (called by the harness when it
    /// observes an epoch jump, or when a test kills a client by hand).
    pub fn note_client_crash(&self, now: SimTime) {
        let mut st = self.state.lock();
        self.record(&mut st, now, FaultKind::ClientCrash, "client");
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("injected", &self.injected())
            .finish()
    }
}

/// xorshift64*: tiny, deterministic, and plenty for fault scheduling.
fn next_u64(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// One per-mille Bernoulli trial. Always consumes generator state when
/// `pm > 0`, so the schedule depends only on the call sequence.
fn roll(state: &mut u64, pm: u32) -> bool {
    pm > 0 && next_u64(state) % 1000 < pm as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_spec() -> FaultSpec {
        FaultSpec {
            drop_pm: 100,
            duplicate_pm: 100,
            reorder_pm: 100,
            corrupt_pm: 100,
            delay_pm: 100,
            delay_ns: 1_000_000,
            disk_sync_fail_pm: 200,
            partitions: vec![(SimTime(10), SimTime(20))],
            server_crashes: vec![SimTime(5), SimTime(50)],
            client_crashes: vec![SimTime(7), SimTime(70)],
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let plan = FaultPlan::new(seed, busy_spec());
            let mut actions = Vec::new();
            for i in 0..200u64 {
                actions.push(plan.net_action(
                    Direction::Request,
                    SimTime(i * 3),
                    vec![i as u8; 16],
                ));
                let _ = plan.sync_write_fails(SimTime(i * 3 + 1));
            }
            (actions, plan.events())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds should diverge");
    }

    #[test]
    fn partition_window_drops_everything() {
        let plan = FaultPlan::new(
            1,
            FaultSpec {
                partitions: vec![(SimTime(100), SimTime(200))],
                ..FaultSpec::none()
            },
        );
        assert_eq!(
            plan.net_action(Direction::Request, SimTime(150), b"x".to_vec()),
            NetAction::Drop
        );
        // Outside the window nothing is injected.
        assert_eq!(
            plan.net_action(Direction::Request, SimTime(200), b"x".to_vec()),
            NetAction::Deliver(b"x".to_vec())
        );
        assert_eq!(plan.events().len(), 1);
        assert_eq!(plan.events()[0].kind, FaultKind::Partition);
    }

    #[test]
    fn reorder_swaps_adjacent_packets() {
        let plan = FaultPlan::new(
            7,
            FaultSpec {
                reorder_pm: 1000,
                ..FaultSpec::none()
            },
        );
        // First reordered packet is held (observed as a drop)…
        assert_eq!(
            plan.net_action(Direction::Request, SimTime(0), b"a".to_vec()),
            NetAction::Drop
        );
        // …the second arrives in its place.
        assert_eq!(
            plan.net_action(Direction::Request, SimTime(1), b"b".to_vec()),
            NetAction::Deliver(b"a".to_vec())
        );
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let plan = FaultPlan::new(
            3,
            FaultSpec {
                corrupt_pm: 1000,
                ..FaultSpec::none()
            },
        );
        let orig = vec![0u8; 32];
        let NetAction::Deliver(out) = plan.net_action(Direction::Reply, SimTime(0), orig.clone())
        else {
            panic!("expected delivery");
        };
        let flipped: u32 = out
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn server_epoch_counts_scheduled_crashes() {
        let plan = FaultPlan::new(0, busy_spec());
        assert_eq!(plan.server_epoch(SimTime(0)), 0);
        assert_eq!(plan.server_epoch(SimTime(5)), 1);
        assert_eq!(plan.server_epoch(SimTime(49)), 1);
        assert_eq!(plan.server_epoch(SimTime(1_000)), 2);
    }

    #[test]
    fn client_epoch_counts_scheduled_crashes() {
        let plan = FaultPlan::new(0, busy_spec());
        assert_eq!(plan.client_epoch(SimTime(0)), 0);
        assert_eq!(plan.client_epoch(SimTime(7)), 1);
        assert_eq!(plan.client_epoch(SimTime(69)), 1);
        assert_eq!(plan.client_epoch(SimTime(1_000)), 2);
        plan.note_client_crash(SimTime(7));
        let events = plan.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FaultKind::ClientCrash);
        assert_eq!(events[0].site, "client");
    }

    #[test]
    fn spec_parsing_round_trips() {
        let (seed, spec) = FaultSpec::parse(
            "seed=9,drop=20,dup=5,reorder=3,corrupt=2,delay=10,delay_ns=2ms,partition=2s+500ms,crash=3s,ccrash=4s,syncfail=15",
        )
        .unwrap();
        assert_eq!(seed, 9);
        assert_eq!(spec.drop_pm, 20);
        assert_eq!(spec.duplicate_pm, 5);
        assert_eq!(spec.reorder_pm, 3);
        assert_eq!(spec.corrupt_pm, 2);
        assert_eq!(spec.delay_pm, 10);
        assert_eq!(spec.delay_ns, 2_000_000);
        assert_eq!(spec.disk_sync_fail_pm, 15);
        assert_eq!(
            spec.partitions,
            vec![(SimTime(2_000_000_000), SimTime(2_500_000_000))]
        );
        assert_eq!(spec.server_crashes, vec![SimTime(3_000_000_000)]);
        assert_eq!(spec.client_crashes, vec![SimTime(4_000_000_000)]);
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(FaultSpec::parse("drop").is_err());
        assert!(FaultSpec::parse("drop=1001").is_err());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("partition=5s").is_err());
        assert!(FaultSpec::parse("crash=xyz").is_err());
    }

    /// Independent xorshift64* used to *generate* call sequences for the
    /// property tests, so the driver's randomness never shares state
    /// with the plan under test.
    fn prop_rng(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Drives a plan through a deterministic pseudo-random interleaving
    /// of packet decisions and disk probes derived from `drive_seed`.
    fn drive(plan: &FaultPlan, drive_seed: u64) -> (Vec<NetAction>, Vec<FaultEvent>) {
        let mut st = drive_seed | 1;
        let mut actions = Vec::new();
        for i in 0..400u64 {
            let now = SimTime(i * 1_000 + prop_rng(&mut st) % 1_000);
            match prop_rng(&mut st) % 3 {
                0 => actions.push(plan.net_action(
                    Direction::Request,
                    now,
                    vec![(prop_rng(&mut st) % 256) as u8; 1 + (i as usize % 64)],
                )),
                1 => actions.push(plan.net_action(
                    Direction::Reply,
                    now,
                    vec![(prop_rng(&mut st) % 256) as u8; 1 + (i as usize % 64)],
                )),
                _ => {
                    let _ = plan.sync_write_fails(now);
                    let _ = plan.server_epoch(now);
                }
            }
        }
        (actions, plan.events())
    }

    #[test]
    fn property_same_seed_same_schedule_under_any_interleaving() {
        // Property: for any (plan seed, call interleaving) pair, two
        // plans built from the same seed and driven identically produce
        // identical actions and an identical event log — the foundation
        // of reproducible chaos runs.
        for plan_seed in [0u64, 1, 7, 42, 0xDEAD_BEEF, u64::MAX] {
            for drive_seed in 1..=8u64 {
                let a = drive(&FaultPlan::new(plan_seed, busy_spec()), drive_seed);
                let b = drive(&FaultPlan::new(plan_seed, busy_spec()), drive_seed);
                assert_eq!(a, b, "plan seed {plan_seed}, drive seed {drive_seed}");
            }
        }
    }

    #[test]
    fn property_distinct_seeds_diverge() {
        // Not a correctness requirement in the strict sense, but if many
        // seeds collapsed onto one schedule the chaos suite would be
        // testing far less than it claims.
        let base = drive(&FaultPlan::new(1, busy_spec()), 5).0;
        let diverged = (2..=20u64)
            .filter(|s| drive(&FaultPlan::new(*s, busy_spec()), 5).0 != base)
            .count();
        assert!(diverged >= 18, "only {diverged}/19 seeds diverged");
    }

    #[test]
    fn property_spec_parse_is_deterministic() {
        let spec = "seed=3,drop=10,dup=5,corrupt=2,partition=1ms+2s,crash=5ms,syncfail=9";
        assert_eq!(FaultSpec::parse(spec), FaultSpec::parse(spec));
        let (sa, pa) = FaultSpec::parse(spec).unwrap();
        let (sb, pb) = FaultSpec::parse(spec).unwrap();
        assert_eq!((sa, pa), (sb, pb));
    }
}
