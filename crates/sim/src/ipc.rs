//! Authenticated local inter-process communication.
//!
//! Paper §3.2: "Within a machine, the various SFS processes communicate
//! over UNIX-domain sockets. To authenticate processes to each other, SFS
//! relies on two special properties of UNIX-domain sockets … A 100-line
//! setgid program, suidconnect, connects to a socket in this directory,
//! identifies the current user to the listening daemon, and passes the
//! connected file descriptor back to the invoking process."
//!
//! In this reproduction, [`LocalEndpoint`] is the protected-socket
//! equivalent: callers present a kernel-attested [`LocalIdentity`] (which
//! user code cannot forge because only the `connect` path constructs it —
//! the field is private), and the daemon receives it with every message.

use std::sync::Arc;

use sfs_telemetry::sync::Mutex;

/// A kernel-attested local caller identity (what `suidconnect` conveys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalIdentity {
    uid: u32,
}

impl LocalIdentity {
    /// The attested uid.
    pub fn uid(&self) -> u32 {
        self.uid
    }
}

/// A handler receiving authenticated local messages.
pub trait LocalHandler: Send {
    /// Handles one message from the identified caller.
    fn handle(&mut self, from: LocalIdentity, payload: &[u8]) -> Vec<u8>;
}

/// A local listening endpoint (a daemon's protected Unix-domain socket).
#[derive(Clone)]
pub struct LocalEndpoint {
    handler: Arc<Mutex<dyn LocalHandler>>,
}

impl LocalEndpoint {
    /// Creates an endpoint served by `handler`.
    pub fn new(handler: Arc<Mutex<dyn LocalHandler>>) -> Self {
        LocalEndpoint { handler }
    }

    /// The `suidconnect` path: the simulated kernel attests `uid` and
    /// delivers `payload`. This is the *only* constructor of
    /// [`LocalIdentity`], so a process cannot claim someone else's uid.
    pub fn connect_and_call(&self, uid: u32, payload: &[u8]) -> Vec<u8> {
        let identity = LocalIdentity { uid };
        self.handler.lock().handle(identity, payload)
    }
}

impl std::fmt::Debug for LocalEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LocalEndpoint")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echoer {
        seen: Vec<u32>,
    }

    impl LocalHandler for Echoer {
        fn handle(&mut self, from: LocalIdentity, payload: &[u8]) -> Vec<u8> {
            self.seen.push(from.uid());
            let mut out = from.uid().to_be_bytes().to_vec();
            out.extend_from_slice(payload);
            out
        }
    }

    #[test]
    fn identity_delivered_with_message() {
        let handler = Arc::new(Mutex::new(Echoer { seen: Vec::new() }));
        let ep = LocalEndpoint::new(handler.clone());
        let reply = ep.connect_and_call(1000, b"hi");
        assert_eq!(&reply[..4], &1000u32.to_be_bytes());
        assert_eq!(&reply[4..], b"hi");
        assert_eq!(handler.lock().seen, vec![1000]);
    }

    #[test]
    fn different_callers_distinguished() {
        let handler = Arc::new(Mutex::new(Echoer { seen: Vec::new() }));
        let ep = LocalEndpoint::new(handler.clone());
        ep.connect_and_call(1000, b"a");
        ep.connect_and_call(0, b"b");
        ep.connect_and_call(1001, b"c");
        assert_eq!(handler.lock().seen, vec![1000, 0, 1001]);
    }
}
