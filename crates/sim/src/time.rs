//! Virtual time.
//!
//! All SFS components in this reproduction charge their costs (network
//! transit, disk I/O, CPU work, context switches) to a shared [`SimClock`].
//! Virtual time makes benchmark output deterministic across machines while
//! preserving the *relative* costs the paper's evaluation measures.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncated).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float, for report formatting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}µs", self.0 / 1000)
        }
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Clones share state; the clock is thread-safe though benchmarks drive it
/// from one thread for determinism.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_ns.load(Ordering::SeqCst))
    }

    /// Advances the clock by `ns` nanoseconds, returning the new time.
    pub fn advance_ns(&self, ns: u64) -> SimTime {
        SimTime(self.now_ns.fetch_add(ns, Ordering::SeqCst) + ns)
    }

    /// Advances by a [`SimTime`] duration.
    pub fn advance(&self, d: SimTime) -> SimTime {
        self.advance_ns(d.0)
    }

    /// Measures the virtual time a closure consumes.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, SimTime) {
        let start = self.now();
        let out = f();
        (out, self.now().since(start))
    }

    /// Advances the clock to `target` if it is in the future; a target in
    /// the past leaves the clock untouched (virtual time never rewinds).
    /// Returns the resulting time. This is how overlapped work finishes:
    /// compute the latest completion instant of a set of concurrent
    /// operations and jump the shared clock there.
    pub fn advance_to(&self, target: SimTime) -> SimTime {
        let prev = self.now_ns.fetch_max(target.0, Ordering::SeqCst);
        SimTime(prev.max(target.0))
    }
}

impl sfs_telemetry::Clock for SimClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

/// A gap-filling reservation calendar over absolute virtual time.
///
/// One `Timeline` models one serially-reusable resource (a CPU core, a
/// disk spindle). Callers reserve `work_ns` of exclusive use starting no
/// earlier than `ready_ns`; the timeline places the reservation in the
/// earliest gap that fits, so independently-clocked request streams that
/// overlap in absolute virtual time genuinely contend, while idle gaps
/// left by one stream can be back-filled by another. Adjacent and merged
/// intervals are coalesced, so the calendar stays small (one entry per
/// *gap*, not per reservation).
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Non-overlapping busy intervals, keyed by start, coalesced when
    /// they touch.
    busy: BTreeMap<u64, u64>,
    /// Total work ever reserved.
    busy_ns: u64,
}

impl Timeline {
    /// An empty (fully idle) timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Where a reservation of `work_ns` starting no earlier than
    /// `ready_ns` would be placed, without placing it.
    pub fn probe(&self, ready_ns: u64, work_ns: u64) -> u64 {
        let mut t = ready_ns;
        let before = self
            .busy
            .range(..=t)
            .next_back()
            .map(|(&s, &e)| (s, e))
            .into_iter();
        let after = self
            .busy
            .range((Bound::Excluded(t), Bound::Unbounded))
            .map(|(&s, &e)| (s, e));
        for (s, e) in before.chain(after) {
            if s >= t.saturating_add(work_ns.max(1)) {
                break; // the gap [t, s) fits
            }
            if e > t {
                t = e;
            }
        }
        t
    }

    /// Reserves `work_ns` of exclusive time starting no earlier than
    /// `ready_ns`, in the earliest gap that fits. Returns
    /// `(start_ns, end_ns)`. A zero-length reservation returns
    /// `(ready_ns, ready_ns)` without touching the calendar.
    pub fn reserve(&mut self, ready_ns: u64, work_ns: u64) -> (u64, u64) {
        if work_ns == 0 {
            return (ready_ns, ready_ns);
        }
        let start = self.probe(ready_ns, work_ns);
        let end = start + work_ns;
        self.insert(start, end);
        self.busy_ns += work_ns;
        (start, end)
    }

    fn insert(&mut self, start: u64, end: u64) {
        let mut s = start;
        let mut e = end;
        if let Some((&ps, &pe)) = self.busy.range(..=s).next_back() {
            if pe == s {
                s = ps;
                self.busy.remove(&ps);
                e = e.max(pe);
            }
        }
        if let Some((&ns_, &ne)) = self.busy.range(e..).next() {
            if ns_ == e {
                e = ne;
                self.busy.remove(&ns_);
            }
        }
        self.busy.insert(s, e);
    }

    /// Total work reserved so far.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// The end of the latest reservation (0 when idle forever).
    pub fn horizon_ns(&self) -> u64 {
        self.busy.iter().next_back().map(|(_, &e)| e).unwrap_or(0)
    }
}

/// A placed [`CoreSet`] reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreReservation {
    /// Which core ran the work.
    pub core: usize,
    /// When the work started (≥ the requested ready time).
    pub start_ns: u64,
    /// When the work completed.
    pub end_ns: u64,
}

/// Per-core virtual timelines: N serially-reusable CPU cores sharing one
/// absolute virtual-time axis.
///
/// This is how the simulation models true parallelism: the shared
/// [`SimClock`] still serializes the *driver*, but work scheduled through
/// a `CoreSet` lands on whichever core timeline can start it earliest, so
/// two requests whose service windows overlap in absolute time run on
/// different cores instead of queueing — until all cores are busy, at
/// which point queueing (and thus sub-linear scaling) emerges naturally.
/// Placement is deterministic: earliest feasible start wins, ties go to
/// the lowest core index.
#[derive(Debug, Clone)]
pub struct CoreSet {
    cores: Vec<Timeline>,
}

impl CoreSet {
    /// A set of `n` idle cores (at least one).
    pub fn new(n: usize) -> Self {
        CoreSet {
            cores: vec![Timeline::new(); n.max(1)],
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Reserves `work_ns` on whichever core can start it earliest at or
    /// after `ready_ns` (lowest index wins ties).
    pub fn reserve(&mut self, ready_ns: u64, work_ns: u64) -> CoreReservation {
        let mut best = 0usize;
        let mut best_start = u64::MAX;
        for (i, core) in self.cores.iter().enumerate() {
            let start = core.probe(ready_ns, work_ns);
            if start < best_start {
                best = i;
                best_start = start;
            }
            if start == ready_ns {
                break; // can't do better than starting immediately
            }
        }
        let (start_ns, end_ns) = self.cores[best].reserve(ready_ns, work_ns);
        CoreReservation {
            core: best,
            start_ns,
            end_ns,
        }
    }

    /// Total work reserved on core `i`.
    pub fn busy_ns(&self, i: usize) -> u64 {
        self.cores.get(i).map(Timeline::busy_ns).unwrap_or(0)
    }

    /// The end of the latest reservation across all cores.
    pub fn horizon_ns(&self) -> u64 {
        self.cores
            .iter()
            .map(Timeline::horizon_ns)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_ns(500);
        assert_eq!(c.now().as_nanos(), 500);
        c.advance(SimTime::from_micros(2));
        assert_eq!(c.now().as_nanos(), 2_500);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_ns(100);
        assert_eq!(b.now().as_nanos(), 100);
    }

    #[test]
    fn measure_reports_elapsed() {
        let c = SimClock::new();
        let (v, dt) = c.measure(|| {
            c.advance_ns(1234);
            42
        });
        assert_eq!(v, 42);
        assert_eq!(dt.as_nanos(), 1234);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_micros(5).to_string(), "5µs");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime(2_500_000_000).to_string(), "2.500s");
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::new();
        c.advance_ns(1_000);
        assert_eq!(c.advance_to(SimTime(500)).as_nanos(), 1_000);
        assert_eq!(c.now().as_nanos(), 1_000);
        assert_eq!(c.advance_to(SimTime(2_500)).as_nanos(), 2_500);
        assert_eq!(c.now().as_nanos(), 2_500);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(5);
        let b = SimTime(10);
        assert_eq!(a.since(b), SimTime::ZERO);
        assert_eq!(b.since(a).as_nanos(), 5);
    }

    #[test]
    fn timeline_back_to_back_and_queueing() {
        let mut t = Timeline::new();
        assert_eq!(t.reserve(100, 50), (100, 150));
        // Arrives while busy: queues behind.
        assert_eq!(t.reserve(120, 30), (150, 180));
        // Arrives after the tail: starts on time.
        assert_eq!(t.reserve(500, 10), (500, 510));
        assert_eq!(t.busy_ns(), 90);
        assert_eq!(t.horizon_ns(), 510);
    }

    #[test]
    fn timeline_fills_gaps() {
        let mut t = Timeline::new();
        t.reserve(0, 100);
        t.reserve(1_000, 100);
        // A 100 ns job ready at 50 fits the [100, 1000) gap at 100.
        assert_eq!(t.reserve(50, 100), (100, 200));
        // A 900 ns job ready at 0 no longer fits any gap before 1100.
        assert_eq!(t.reserve(0, 900), (1_100, 2_000));
    }

    #[test]
    fn timeline_zero_work_is_free() {
        let mut t = Timeline::new();
        t.reserve(0, 100);
        assert_eq!(t.reserve(10, 0), (10, 10));
        assert_eq!(t.busy_ns(), 100);
    }

    #[test]
    fn coreset_spreads_overlapping_work() {
        let mut cs = CoreSet::new(2);
        let a = cs.reserve(0, 100);
        let b = cs.reserve(0, 100);
        let c = cs.reserve(0, 100);
        assert_eq!((a.core, a.start_ns, a.end_ns), (0, 0, 100));
        assert_eq!((b.core, b.start_ns, b.end_ns), (1, 0, 100));
        // Third job queues on the earliest-free core (tie → core 0).
        assert_eq!((c.core, c.start_ns, c.end_ns), (0, 100, 200));
        assert_eq!(cs.busy_ns(0), 200);
        assert_eq!(cs.busy_ns(1), 100);
    }

    #[test]
    fn coreset_single_core_serializes() {
        let mut cs = CoreSet::new(1);
        cs.reserve(0, 100);
        let r = cs.reserve(0, 100);
        assert_eq!((r.core, r.start_ns, r.end_ns), (0, 100, 200));
    }

    #[test]
    fn coreset_placement_is_deterministic() {
        let jobs: Vec<(u64, u64)> = (0..64).map(|i| (i * 37 % 500, 20 + i * 13 % 90)).collect();
        let run = |jobs: &[(u64, u64)]| {
            let mut cs = CoreSet::new(4);
            jobs.iter()
                .map(|&(r, w)| cs.reserve(r, w))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&jobs), run(&jobs));
    }
}
