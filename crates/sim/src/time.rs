//! Virtual time.
//!
//! All SFS components in this reproduction charge their costs (network
//! transit, disk I/O, CPU work, context switches) to a shared [`SimClock`].
//! Virtual time makes benchmark output deterministic across machines while
//! preserving the *relative* costs the paper's evaluation measures.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncated).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float, for report formatting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}µs", self.0 / 1000)
        }
    }
}

/// A shared, monotonically advancing virtual clock.
///
/// Clones share state; the clock is thread-safe though benchmarks drive it
/// from one thread for determinism.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_ns.load(Ordering::SeqCst))
    }

    /// Advances the clock by `ns` nanoseconds, returning the new time.
    pub fn advance_ns(&self, ns: u64) -> SimTime {
        SimTime(self.now_ns.fetch_add(ns, Ordering::SeqCst) + ns)
    }

    /// Advances by a [`SimTime`] duration.
    pub fn advance(&self, d: SimTime) -> SimTime {
        self.advance_ns(d.0)
    }

    /// Measures the virtual time a closure consumes.
    pub fn measure<T>(&self, f: impl FnOnce() -> T) -> (T, SimTime) {
        let start = self.now();
        let out = f();
        (out, self.now().since(start))
    }

    /// Advances the clock to `target` if it is in the future; a target in
    /// the past leaves the clock untouched (virtual time never rewinds).
    /// Returns the resulting time. This is how overlapped work finishes:
    /// compute the latest completion instant of a set of concurrent
    /// operations and jump the shared clock there.
    pub fn advance_to(&self, target: SimTime) -> SimTime {
        let prev = self.now_ns.fetch_max(target.0, Ordering::SeqCst);
        SimTime(prev.max(target.0))
    }
}

impl sfs_telemetry::Clock for SimClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance_ns(500);
        assert_eq!(c.now().as_nanos(), 500);
        c.advance(SimTime::from_micros(2));
        assert_eq!(c.now().as_nanos(), 2_500);
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_ns(100);
        assert_eq!(b.now().as_nanos(), 100);
    }

    #[test]
    fn measure_reports_elapsed() {
        let c = SimClock::new();
        let (v, dt) = c.measure(|| {
            c.advance_ns(1234);
            42
        });
        assert_eq!(v, 42);
        assert_eq!(dt.as_nanos(), 1234);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_micros(5).to_string(), "5µs");
        assert_eq!(SimTime::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimTime(2_500_000_000).to_string(), "2.500s");
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::new();
        c.advance_ns(1_000);
        assert_eq!(c.advance_to(SimTime(500)).as_nanos(), 1_000);
        assert_eq!(c.now().as_nanos(), 1_000);
        assert_eq!(c.advance_to(SimTime(2_500)).as_nanos(), 2_500);
        assert_eq!(c.now().as_nanos(), 2_500);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(5);
        let b = SimTime(10);
        assert_eq!(a.since(b), SimTime::ZERO);
        assert_eq!(b.since(a).as_nanos(), 5);
    }
}
