//! Deterministic virtual-time simulation of SFS's execution environment.
//!
//! The paper's evaluation (§4) ran on two 550 MHz Pentium IIIs joined by
//! 100 Mbit switched Ethernet, with FreeBSD's FFS on an IBM 18ES SCSI disk.
//! This crate substitutes a calibrated, deterministic model of that testbed
//! so that every figure can be regenerated bit-for-bit:
//!
//! - [`time`]: a shared virtual clock ([`SimClock`]) that components charge
//!   costs to;
//! - [`net`]: request/response wires with latency, bandwidth, and
//!   per-message transport overhead (UDP vs TCP), plus an [`Interceptor`]
//!   hook giving tests the paper's §2.1.2 adversary — "attackers can
//!   intercept packets, tamper with them, and inject new packets onto the
//!   network";
//! - [`disk`]: a seek/rotate/transfer disk model with a write-behind cache
//!   and explicit synchronous-write accounting (the Sprite LFS benchmarks
//!   are dominated by sync writes);
//! - [`fault`]: a seeded, deterministic [`FaultPlan`] that drops,
//!   duplicates, reorders, corrupts, and delays packets, cuts scheduled
//!   partitions, crash-restarts servers, and fails sync disk writes —
//!   every chaos run reproducible byte-for-byte from its seed;
//! - [`cpu`]: per-byte and per-operation CPU cost accounting (user-level
//!   crossings, software crypto);
//! - [`ipc`]: authenticated local inter-process calls standing in for
//!   Unix-domain sockets plus the `suidconnect` helper (§3.2);
//! - [`churn`]: seeded population-churn schedules ([`ChurnSchedule`]) for
//!   "million-user day" storm scenarios — mass remounts, key rollover,
//!   lease-expiry waves, revocation broadcast.

pub mod churn;
pub mod cpu;
pub mod disk;
pub mod fault;
pub mod ipc;
pub mod journal;
pub mod net;
pub mod repl;
pub mod time;

pub use churn::{ChurnSchedule, ChurnWave};
pub use cpu::CpuCosts;
pub use disk::{DiskCommit, DiskCommitQueue, DiskParams, DiskQueueStats, DiskTally, SimDisk};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultSpec, NetAction};
pub use ipc::{LocalEndpoint, LocalIdentity};
pub use journal::{crc32, JournalDisk, JournalError, ReplayOutcome};
pub use net::{
    Direction, Interceptor, NetParams, PacketLog, ServerCost, ServerLoad, Transport, Verdict, Wire,
    WireError,
};
pub use repl::{ReplLink, ReplTransport};
pub use time::{CoreReservation, CoreSet, SimClock, SimTime, Timeline};
