//! A simulated disk with seek, rotation, and transfer costs.
//!
//! The paper's server stored files on an IBM 18ES 9 GB SCSI disk under
//! FreeBSD FFS. The Sprite LFS small-file benchmark is "almost completely
//! dominated by synchronous writes to the disk" (§4.4), so the disk model
//! distinguishes synchronous writes (charged immediately, with positioning
//! costs) from asynchronous writes absorbed by the write-behind cache and
//! flushed in batches.

use std::sync::Arc;

use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

use crate::fault::FaultPlan;
use crate::time::SimClock;

/// Disk performance parameters.
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Average positioning (seek + rotational) cost per random access, ns.
    pub seek_ns: u64,
    /// Sequential transfer bandwidth, bytes per second.
    pub bandwidth_bps: u64,
    /// Block size for accounting purposes.
    pub block_size: usize,
    /// CPU cost per buffered write byte (block allocation, buffer
    /// management in the file system's write path) charged at write time
    /// even for write-behind data.
    pub write_path_ns_per_byte: u64,
}

impl DiskParams {
    /// Late-90s SCSI disk, roughly the IBM 18ES: ~8.5 ms average access,
    /// ~13 MB/s media rate.
    pub fn ibm_18es() -> Self {
        DiskParams {
            seek_ns: 8_500_000,
            bandwidth_bps: 13_000_000,
            block_size: 8192,
            write_path_ns_per_byte: 36,
        }
    }

    fn transfer_ns(&self, len: usize) -> u64 {
        (len as u64 * 1_000_000_000) / self.bandwidth_bps
    }
}

#[derive(Debug, Default)]
struct DiskState {
    /// Position of the head (block number), to distinguish sequential from
    /// random access.
    head: u64,
    /// Dirty bytes awaiting write-behind.
    dirty_bytes: u64,
    /// Statistics.
    reads: u64,
    writes: u64,
    syncs: u64,
    seeks: u64,
    /// Tracing sink (shared across clones, so it can be attached after
    /// the disk is threaded through the VFS).
    tel: Telemetry,
    /// Optional fault plan; synchronous writes may fail transiently.
    fault: Option<FaultPlan>,
    /// Transient sync-write failures absorbed by the retry path.
    sync_failures: u64,
}

/// A simulated disk charging a [`SimClock`].
#[derive(Debug, Clone)]
pub struct SimDisk {
    clock: SimClock,
    params: DiskParams,
    state: Arc<Mutex<DiskState>>,
}

impl SimDisk {
    /// Creates a disk on `clock`.
    pub fn new(clock: SimClock, params: DiskParams) -> Self {
        SimDisk {
            clock,
            params,
            state: Arc::new(Mutex::new(DiskState::default())),
        }
    }

    /// Attaches a shared tracing sink; events are stamped with this
    /// disk's virtual clock. Takes effect across all clones.
    pub fn set_telemetry(&self, tel: &Telemetry) {
        self.state.lock().tel = tel.clone().with_clock(self.clock.clone());
    }

    /// Attaches a seeded fault plan; synchronous writes consult it and
    /// may fail transiently (the disk retries after re-positioning, so
    /// the write still lands — the failure costs time and is counted).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.state.lock().fault = Some(plan);
    }

    /// Transient sync-write failures injected so far.
    pub fn sync_failures(&self) -> u64 {
        self.state.lock().sync_failures
    }

    /// Reads `len` bytes at block `block`, charging positioning when the
    /// access is not sequential with the previous one.
    pub fn read(&self, block: u64, len: usize) {
        let mut st = self.state.lock();
        let span = st
            .tel
            .span("server", "sim.disk", "read")
            .with_attr("bytes", len);
        st.reads += 1;
        st.tel.count("server", "disk.reads", 1);
        st.tel.count("server", "disk.bytes_read", len as u64);
        if st.head != block {
            st.seeks += 1;
            st.tel.count("server", "disk.seeks", 1);
            self.clock.advance_ns(self.params.seek_ns);
        }
        self.clock.advance_ns(self.params.transfer_ns(len));
        st.head = block + (len / self.params.block_size.max(1)) as u64;
        drop(span);
    }

    /// Buffers an asynchronous write (write-behind): the media cost is
    /// deferred to [`Self::flush`], but the write path's CPU cost (block
    /// allocation, buffer management) is charged immediately.
    pub fn write_async(&self, len: usize) {
        let mut st = self.state.lock();
        st.writes += 1;
        st.dirty_bytes += len as u64;
        st.tel.count("server", "disk.writes", 1);
        st.tel.count("server", "disk.bytes_written", len as u64);
        self.clock
            .advance_ns(self.params.write_path_ns_per_byte * len as u64);
    }

    /// Synchronously writes `len` bytes at `block` (e.g. metadata updates,
    /// fsync, NFS stable writes): pays positioning plus transfer now.
    pub fn write_sync(&self, block: u64, len: usize) {
        let mut st = self.state.lock();
        let span = st
            .tel
            .span("server", "sim.disk", "write_sync")
            .with_attr("bytes", len);
        st.writes += 1;
        st.syncs += 1;
        st.tel.count("server", "disk.writes", 1);
        st.tel.count("server", "disk.syncs", 1);
        st.tel.count("server", "disk.bytes_written", len as u64);
        // A transient media failure: the write is retried after a full
        // re-position, so the caller still sees it land (FFS panics on
        // hard metadata write failures; we model the recoverable kind).
        while st
            .fault
            .as_ref()
            .is_some_and(|p| p.sync_write_fails(self.clock.now()))
        {
            st.sync_failures += 1;
            st.tel.count("server", "disk.sync_failures", 1);
            st.tel.instant("server", "sim.disk", "sync_write_retry");
            self.clock.advance_ns(self.params.seek_ns);
        }
        if st.head != block {
            st.seeks += 1;
            st.tel.count("server", "disk.seeks", 1);
            self.clock.advance_ns(self.params.seek_ns);
        }
        self.clock.advance_ns(self.params.transfer_ns(len));
        st.head = block + (len / self.params.block_size.max(1)) as u64;
        drop(span);
    }

    /// Flushes the write-behind buffer as one large sequential write with a
    /// single positioning cost.
    pub fn flush(&self) {
        let mut st = self.state.lock();
        if st.dirty_bytes == 0 {
            return;
        }
        let span = st
            .tel
            .span("server", "sim.disk", "flush")
            .with_attr("bytes", st.dirty_bytes);
        st.seeks += 1;
        st.tel.count("server", "disk.seeks", 1);
        self.clock.advance_ns(self.params.seek_ns);
        self.clock
            .advance_ns(self.params.transfer_ns(st.dirty_bytes as usize));
        st.dirty_bytes = 0;
        drop(span);
    }

    /// (reads, writes, sync writes, seeks) so far.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let st = self.state.lock();
        (st.reads, st.writes, st.syncs, st.seeks)
    }

    /// The disk's clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(SimClock::new(), DiskParams::ibm_18es())
    }

    #[test]
    fn random_reads_pay_seeks() {
        let d = disk();
        d.read(0, 8192);
        let after_first = d.clock().now();
        d.read(1000, 8192); // random
        let dt = d.clock().now().since(after_first);
        assert!(dt.as_nanos() >= DiskParams::ibm_18es().seek_ns);
    }

    #[test]
    fn sequential_reads_skip_seeks() {
        let d = disk();
        d.read(0, 8192); // head now at block 1
        let after_first = d.clock().now();
        d.read(1, 8192); // sequential
        let dt = d.clock().now().since(after_first);
        assert!(dt.as_nanos() < DiskParams::ibm_18es().seek_ns);
    }

    #[test]
    fn async_writes_defer_media_cost_until_flush() {
        let d = disk();
        d.write_async(100_000);
        // Only the write-path CPU cost is charged up front — far less
        // than the media transfer.
        let cpu_only = d.clock().now().as_nanos();
        assert_eq!(
            cpu_only,
            100_000 * DiskParams::ibm_18es().write_path_ns_per_byte
        );
        d.flush();
        assert!(d.clock().now().as_nanos() > cpu_only + DiskParams::ibm_18es().seek_ns);
        // Second flush with nothing dirty is free.
        let t = d.clock().now();
        d.flush();
        assert_eq!(d.clock().now(), t);
    }

    #[test]
    fn sync_writes_charged_immediately() {
        let d = disk();
        d.write_sync(50, 4096);
        assert!(d.clock().now().as_nanos() >= DiskParams::ibm_18es().seek_ns);
        let (_, w, s, _) = d.stats();
        assert_eq!((w, s), (1, 1));
    }

    #[test]
    fn sync_write_failures_cost_time_but_still_land() {
        use crate::fault::{FaultPlan, FaultSpec};
        let clean = disk();
        clean.write_sync(10, 4096);
        let d = disk();
        d.set_fault_plan(FaultPlan::new(
            99,
            FaultSpec {
                disk_sync_fail_pm: 500,
                ..FaultSpec::none()
            },
        ));
        let mut failures = 0;
        for i in 0..40 {
            d.write_sync(10 + i * 7, 4096);
        }
        failures += d.sync_failures();
        assert!(failures > 0, "seed 99 at 500‰ must inject failures");
        let (_, w, s, _) = d.stats();
        assert_eq!((w, s), (40, 40), "every write still completes");
    }

    #[test]
    fn batched_flush_cheaper_than_sync_each() {
        let sync_disk = disk();
        for i in 0..10 {
            sync_disk.write_sync(i * 100, 1024);
        }
        let batched = disk();
        for _ in 0..10 {
            batched.write_async(1024);
        }
        batched.flush();
        assert!(batched.clock().now() < sync_disk.clock().now());
    }
}
