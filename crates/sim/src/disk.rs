//! A simulated disk with seek, rotation, and transfer costs.
//!
//! The paper's server stored files on an IBM 18ES 9 GB SCSI disk under
//! FreeBSD FFS. The Sprite LFS small-file benchmark is "almost completely
//! dominated by synchronous writes to the disk" (§4.4), so the disk model
//! distinguishes synchronous writes (charged immediately, with positioning
//! costs) from asynchronous writes absorbed by the write-behind cache and
//! flushed in batches.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

use crate::fault::FaultPlan;
use crate::time::{SimClock, Timeline};

/// Disk performance parameters.
#[derive(Debug, Clone, Copy)]
pub struct DiskParams {
    /// Average positioning (seek + rotational) cost per random access, ns.
    pub seek_ns: u64,
    /// Sequential transfer bandwidth, bytes per second.
    pub bandwidth_bps: u64,
    /// Block size for accounting purposes.
    pub block_size: usize,
    /// CPU cost per buffered write byte (block allocation, buffer
    /// management in the file system's write path) charged at write time
    /// even for write-behind data.
    pub write_path_ns_per_byte: u64,
}

impl DiskParams {
    /// Late-90s SCSI disk, roughly the IBM 18ES: ~8.5 ms average access,
    /// ~13 MB/s media rate.
    pub fn ibm_18es() -> Self {
        DiskParams {
            seek_ns: 8_500_000,
            bandwidth_bps: 13_000_000,
            block_size: 8192,
            write_path_ns_per_byte: 36,
        }
    }

    fn transfer_ns(&self, len: usize) -> u64 {
        (len as u64 * 1_000_000_000) / self.bandwidth_bps
    }
}

/// Device time accumulated while a [`SimDisk`] is in tally mode, split
/// into total cost and the positioning (seek + rotation) share that a
/// batched commit can skip.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DiskTally {
    /// Total device time the tallied operations would have charged.
    pub total_ns: u64,
    /// The positioning share of `total_ns`.
    pub positioning_ns: u64,
    /// Operations tallied.
    pub ops: u64,
}

#[derive(Debug, Default)]
struct DiskState {
    /// Position of the head (block number), to distinguish sequential from
    /// random access.
    head: u64,
    /// Dirty bytes awaiting write-behind.
    dirty_bytes: u64,
    /// Statistics.
    reads: u64,
    writes: u64,
    syncs: u64,
    seeks: u64,
    /// Tracing sink (shared across clones, so it can be attached after
    /// the disk is threaded through the VFS).
    tel: Telemetry,
    /// Optional fault plan; synchronous writes may fail transiently.
    fault: Option<FaultPlan>,
    /// Transient sync-write failures absorbed by the retry path.
    sync_failures: u64,
    /// When set, device costs accumulate here instead of advancing the
    /// clock, so a scheduler can place them on a per-shard timeline.
    tally: Option<DiskTally>,
}

/// A simulated disk charging a [`SimClock`].
#[derive(Debug, Clone)]
pub struct SimDisk {
    clock: SimClock,
    params: DiskParams,
    state: Arc<Mutex<DiskState>>,
}

impl SimDisk {
    /// Creates a disk on `clock`.
    pub fn new(clock: SimClock, params: DiskParams) -> Self {
        SimDisk {
            clock,
            params,
            state: Arc::new(Mutex::new(DiskState::default())),
        }
    }

    /// Attaches a shared tracing sink; events are stamped with this
    /// disk's virtual clock. Takes effect across all clones.
    pub fn set_telemetry(&self, tel: &Telemetry) {
        self.state.lock().tel = tel.clone().with_clock(self.clock.clone());
    }

    /// Attaches a seeded fault plan; synchronous writes consult it and
    /// may fail transiently (the disk retries after re-positioning, so
    /// the write still lands — the failure costs time and is counted).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.state.lock().fault = Some(plan);
    }

    /// Transient sync-write failures injected so far.
    pub fn sync_failures(&self) -> u64 {
        self.state.lock().sync_failures
    }

    /// Enters tally mode: until [`Self::tally_end`], device costs
    /// accumulate in a [`DiskTally`] instead of advancing the clock.
    /// A multi-core scheduler uses this to capture one request's disk
    /// work and place it on a per-shard disk timeline (where commits
    /// arriving back-to-back can batch), rather than charging the
    /// single shared clock serially. Stats and telemetry counters are
    /// recorded as usual.
    pub fn tally_begin(&self) {
        self.state.lock().tally = Some(DiskTally::default());
    }

    /// Leaves tally mode, returning the accumulated device time.
    /// Returns a zero tally if tally mode was never entered.
    pub fn tally_end(&self) -> DiskTally {
        self.state.lock().tally.take().unwrap_or_default()
    }

    /// Charges `ns` of device time: accumulated when tallying, otherwise
    /// advanced on the shared clock.
    fn charge(&self, st: &mut DiskState, ns: u64, positioning: bool) {
        if let Some(t) = st.tally.as_mut() {
            t.total_ns += ns;
            if positioning {
                t.positioning_ns += ns;
            }
        } else {
            self.clock.advance_ns(ns);
        }
    }

    fn note_op(st: &mut DiskState) {
        if let Some(t) = st.tally.as_mut() {
            t.ops += 1;
        }
    }

    /// Reads `len` bytes at block `block`, charging positioning when the
    /// access is not sequential with the previous one.
    pub fn read(&self, block: u64, len: usize) {
        let mut st = self.state.lock();
        let span = st
            .tel
            .span("server", "sim.disk", "read")
            .with_attr("bytes", len);
        st.reads += 1;
        Self::note_op(&mut st);
        st.tel.count("server", "disk.reads", 1);
        st.tel.count("server", "disk.bytes_read", len as u64);
        if st.head != block {
            st.seeks += 1;
            st.tel.count("server", "disk.seeks", 1);
            self.charge(&mut st, self.params.seek_ns, true);
        }
        self.charge(&mut st, self.params.transfer_ns(len), false);
        st.head = block + (len / self.params.block_size.max(1)) as u64;
        drop(span);
    }

    /// Buffers an asynchronous write (write-behind): the media cost is
    /// deferred to [`Self::flush`], but the write path's CPU cost (block
    /// allocation, buffer management) is charged immediately.
    pub fn write_async(&self, len: usize) {
        let mut st = self.state.lock();
        st.writes += 1;
        Self::note_op(&mut st);
        st.dirty_bytes += len as u64;
        st.tel.count("server", "disk.writes", 1);
        st.tel.count("server", "disk.bytes_written", len as u64);
        self.charge(
            &mut st,
            self.params.write_path_ns_per_byte * len as u64,
            false,
        );
    }

    /// Synchronously writes `len` bytes at `block` (e.g. metadata updates,
    /// fsync, NFS stable writes): pays positioning plus transfer now.
    pub fn write_sync(&self, block: u64, len: usize) {
        let mut st = self.state.lock();
        let span = st
            .tel
            .span("server", "sim.disk", "write_sync")
            .with_attr("bytes", len);
        st.writes += 1;
        st.syncs += 1;
        Self::note_op(&mut st);
        st.tel.count("server", "disk.writes", 1);
        st.tel.count("server", "disk.syncs", 1);
        st.tel.count("server", "disk.bytes_written", len as u64);
        // A transient media failure: the write is retried after a full
        // re-position, so the caller still sees it land (FFS panics on
        // hard metadata write failures; we model the recoverable kind).
        while st
            .fault
            .as_ref()
            .is_some_and(|p| p.sync_write_fails(self.clock.now()))
        {
            st.sync_failures += 1;
            st.tel.count("server", "disk.sync_failures", 1);
            st.tel.instant("server", "sim.disk", "sync_write_retry");
            self.charge(&mut st, self.params.seek_ns, true);
        }
        if st.head != block {
            st.seeks += 1;
            st.tel.count("server", "disk.seeks", 1);
            self.charge(&mut st, self.params.seek_ns, true);
        }
        self.charge(&mut st, self.params.transfer_ns(len), false);
        st.head = block + (len / self.params.block_size.max(1)) as u64;
        drop(span);
    }

    /// Flushes the write-behind buffer as one large sequential write with a
    /// single positioning cost.
    pub fn flush(&self) {
        let mut st = self.state.lock();
        if st.dirty_bytes == 0 {
            return;
        }
        let span = st
            .tel
            .span("server", "sim.disk", "flush")
            .with_attr("bytes", st.dirty_bytes);
        st.seeks += 1;
        Self::note_op(&mut st);
        st.tel.count("server", "disk.seeks", 1);
        self.charge(&mut st, self.params.seek_ns, true);
        let transfer = self.params.transfer_ns(st.dirty_bytes as usize);
        self.charge(&mut st, transfer, false);
        st.dirty_bytes = 0;
        drop(span);
    }

    /// (reads, writes, sync writes, seeks) so far.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        let st = self.state.lock();
        (st.reads, st.writes, st.syncs, st.seeks)
    }

    /// The disk's clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

/// The outcome of scheduling one commit on a [`DiskCommitQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskCommit {
    /// Absolute completion time of this commit.
    pub done_ns: u64,
    /// Whether the commit arrived while the queue was busy and joined an
    /// in-progress batch (skipping its positioning cost).
    pub joined: bool,
    /// Size of the batch this commit belongs to, so far.
    pub batch_size: u64,
    /// When this commit opened a new batch, the size of the batch it
    /// closed (for batch-size histograms).
    pub closed_batch: Option<u64>,
    /// Commits still outstanding when this one arrived (queue depth).
    pub queued_behind: u64,
}

/// Aggregate [`DiskCommitQueue`] statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskQueueStats {
    /// Commits scheduled.
    pub commits: u64,
    /// Batches opened.
    pub batches: u64,
    /// Commits that joined a batch (and skipped positioning).
    pub joined: u64,
    /// Total device time reserved.
    pub busy_ns: u64,
}

/// A per-shard disk commit queue with group commit.
///
/// Commits carry the device cost a [`SimDisk`] tallied for them, split
/// into positioning and transfer. The queue lays them out on one
/// [`Timeline`] (the shard's spindle): a commit that arrives while the
/// spindle is busy queues behind it back-to-back and *joins the batch* —
/// the head is already positioned from the previous write, so only the
/// transfer cost is paid, which is exactly the group-commit win of
/// gathering several connections' fsync barriers into one sync write. A
/// commit that finds the spindle idle pays full positioning and opens a
/// new batch.
#[derive(Debug, Clone, Default)]
pub struct DiskCommitQueue {
    lane: Timeline,
    /// Tail of the most recent batch.
    batch_end: u64,
    /// Commits in the current (still-open) batch.
    batch_size: u64,
    /// Completion times of scheduled commits, for queue-depth gauges.
    ends: BTreeMap<u64, u32>,
    commits: u64,
    batches: u64,
    joined: u64,
}

impl DiskCommitQueue {
    /// An idle queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Commits still outstanding (scheduled but not finished) at `at`.
    pub fn pending_at(&self, at: u64) -> u64 {
        self.ends
            .range((Bound::Excluded(at), Bound::Unbounded))
            .map(|(_, &c)| c as u64)
            .sum()
    }

    /// Size of the batch currently being appended to.
    pub fn current_batch(&self) -> u64 {
        self.batch_size
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DiskQueueStats {
        DiskQueueStats {
            commits: self.commits,
            batches: self.batches,
            joined: self.joined,
            busy_ns: self.lane.busy_ns(),
        }
    }

    /// Schedules a commit whose tallied device cost is `total_ns`, of
    /// which `positioning_ns` is seek/rotation, ready at `ready_ns`.
    pub fn commit(&mut self, ready_ns: u64, total_ns: u64, positioning_ns: u64) -> DiskCommit {
        let queued_behind = self.pending_at(ready_ns);
        self.commits += 1;
        if total_ns == 0 {
            return DiskCommit {
                done_ns: ready_ns,
                joined: false,
                batch_size: self.batch_size,
                closed_batch: None,
                queued_behind,
            };
        }
        // Busy (or no gap big enough) at arrival ⇒ the commit queues and
        // rides the previous write's head position: transfer only.
        let joined = self.lane.probe(ready_ns, total_ns) > ready_ns;
        let work = if joined {
            total_ns.saturating_sub(positioning_ns).max(1)
        } else {
            total_ns
        };
        let (start, done) = self.lane.reserve(ready_ns, work);
        let mut closed_batch = None;
        if joined && start == self.batch_end {
            self.batch_size += 1;
            self.joined += 1;
        } else {
            if self.batch_size > 0 {
                closed_batch = Some(self.batch_size);
            }
            self.batch_size = 1;
            self.batches += 1;
            if joined {
                self.joined += 1;
            }
        }
        if done > self.batch_end {
            self.batch_end = done;
        }
        *self.ends.entry(done).or_insert(0) += 1;
        DiskCommit {
            done_ns: done,
            joined,
            batch_size: self.batch_size,
            closed_batch,
            queued_behind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(SimClock::new(), DiskParams::ibm_18es())
    }

    #[test]
    fn random_reads_pay_seeks() {
        let d = disk();
        d.read(0, 8192);
        let after_first = d.clock().now();
        d.read(1000, 8192); // random
        let dt = d.clock().now().since(after_first);
        assert!(dt.as_nanos() >= DiskParams::ibm_18es().seek_ns);
    }

    #[test]
    fn sequential_reads_skip_seeks() {
        let d = disk();
        d.read(0, 8192); // head now at block 1
        let after_first = d.clock().now();
        d.read(1, 8192); // sequential
        let dt = d.clock().now().since(after_first);
        assert!(dt.as_nanos() < DiskParams::ibm_18es().seek_ns);
    }

    #[test]
    fn async_writes_defer_media_cost_until_flush() {
        let d = disk();
        d.write_async(100_000);
        // Only the write-path CPU cost is charged up front — far less
        // than the media transfer.
        let cpu_only = d.clock().now().as_nanos();
        assert_eq!(
            cpu_only,
            100_000 * DiskParams::ibm_18es().write_path_ns_per_byte
        );
        d.flush();
        assert!(d.clock().now().as_nanos() > cpu_only + DiskParams::ibm_18es().seek_ns);
        // Second flush with nothing dirty is free.
        let t = d.clock().now();
        d.flush();
        assert_eq!(d.clock().now(), t);
    }

    #[test]
    fn sync_writes_charged_immediately() {
        let d = disk();
        d.write_sync(50, 4096);
        assert!(d.clock().now().as_nanos() >= DiskParams::ibm_18es().seek_ns);
        let (_, w, s, _) = d.stats();
        assert_eq!((w, s), (1, 1));
    }

    #[test]
    fn sync_write_failures_cost_time_but_still_land() {
        use crate::fault::{FaultPlan, FaultSpec};
        let clean = disk();
        clean.write_sync(10, 4096);
        let d = disk();
        d.set_fault_plan(FaultPlan::new(
            99,
            FaultSpec {
                disk_sync_fail_pm: 500,
                ..FaultSpec::none()
            },
        ));
        let mut failures = 0;
        for i in 0..40 {
            d.write_sync(10 + i * 7, 4096);
        }
        failures += d.sync_failures();
        assert!(failures > 0, "seed 99 at 500‰ must inject failures");
        let (_, w, s, _) = d.stats();
        assert_eq!((w, s), (40, 40), "every write still completes");
    }

    #[test]
    fn tally_mode_accumulates_instead_of_advancing() {
        let d = disk();
        d.read(0, 8192); // position the head, charging the clock
        let before = d.clock().now();
        d.tally_begin();
        d.write_sync(500, 4096); // random: seek + transfer
        d.read(500, 4096); // sequential after the write? head moved — may seek
        let tally = d.tally_end();
        assert_eq!(
            d.clock().now(),
            before,
            "tally mode must not advance the clock"
        );
        assert!(tally.total_ns > 0);
        assert!(tally.positioning_ns >= DiskParams::ibm_18es().seek_ns);
        assert!(tally.positioning_ns < tally.total_ns);
        assert_eq!(tally.ops, 2);
        // Stats still recorded under tally.
        let (r, w, s, _) = d.stats();
        assert_eq!((r, w, s), (2, 1, 1));
        // Back to normal charging afterwards.
        d.write_sync(9_000, 4096);
        assert!(d.clock().now() > before);
    }

    #[test]
    fn commit_queue_batches_back_to_back_commits() {
        let mut q = DiskCommitQueue::new();
        let c1 = q.commit(0, 1_100, 1_000);
        assert!(!c1.joined);
        assert_eq!(c1.done_ns, 1_100);
        assert_eq!(c1.batch_size, 1);
        // Arrives while the spindle is busy: joins the batch, pays only
        // the 100 ns transfer.
        let c2 = q.commit(50, 1_100, 1_000);
        assert!(c2.joined);
        assert_eq!(c2.done_ns, 1_200);
        assert_eq!(c2.batch_size, 2);
        assert_eq!(c2.queued_behind, 1);
        // Arrives long after: new batch, full positioning, closes the old.
        let c3 = q.commit(5_000, 1_100, 1_000);
        assert!(!c3.joined);
        assert_eq!(c3.done_ns, 6_100);
        assert_eq!(c3.closed_batch, Some(2));
        let st = q.stats();
        assert_eq!((st.commits, st.batches, st.joined), (3, 2, 1));
    }

    #[test]
    fn commit_queue_group_commit_beats_serial_sync() {
        // Ten fsync barriers landing together: one positioning cost plus
        // ten transfers, versus ten full positioning costs serially.
        let mut grouped = DiskCommitQueue::new();
        let done = (0..10)
            .map(|_| grouped.commit(0, 1_100, 1_000).done_ns)
            .max()
            .unwrap();
        let serial = 10 * 1_100;
        assert_eq!(done, 1_100 + 9 * 100);
        assert!(done < serial);
    }

    #[test]
    fn commit_queue_is_deterministic() {
        let run = || {
            let mut q = DiskCommitQueue::new();
            (0..64)
                .map(|i| q.commit((i * 331) % 4_000, 900 + (i % 7) * 50, 700))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_flush_cheaper_than_sync_each() {
        let sync_disk = disk();
        for i in 0..10 {
            sync_disk.write_sync(i * 100, 1024);
        }
        let batched = disk();
        for _ in 0..10 {
            batched.write_async(1024);
        }
        batched.flush();
        assert!(batched.clock().now() < sync_disk.clock().now());
    }
}
