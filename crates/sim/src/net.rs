//! Simulated network wires with an adversary hook.
//!
//! Paper §2.1.2: "SFS assumes that malicious parties entirely control the
//! network. Attackers can intercept packets, tamper with them, and inject
//! new packets onto the network." The [`Interceptor`] trait gives tests
//! exactly those powers; [`PacketLog`] records ciphertext for
//! forward-secrecy experiments.
//!
//! A [`Wire`] is a synchronous request/response channel that charges the
//! virtual clock for transit: per-message transport overhead (UDP vs TCP
//! differ, which is how the NFS-over-TCP baseline ends up slower in
//! Figure 5), propagation latency, and serialization time at the link
//! bandwidth.

use std::sync::Arc;

use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

use crate::fault::{FaultPlan, NetAction};
use crate::time::SimClock;

/// Packet direction relative to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client to server.
    Request,
    /// Server to client.
    Reply,
}

/// What an interceptor decided to do with a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver the (possibly inspected) packet unchanged.
    Deliver,
    /// Deliver modified bytes instead.
    Replace(Vec<u8>),
    /// Drop the packet (the caller observes a timeout).
    Drop,
}

/// An active network adversary (or passive observer).
pub trait Interceptor: Send {
    /// Called for every packet on the wire.
    fn intercept(&mut self, dir: Direction, bytes: &[u8]) -> Verdict;
}

/// Records all traffic, for later cryptanalysis attempts (forward-secrecy
/// tests replay these recordings against disclosed keys).
#[derive(Debug, Default, Clone)]
pub struct PacketLog {
    packets: Arc<Mutex<Vec<LoggedPacket>>>,
}

/// One captured packet: its direction and raw bytes.
type LoggedPacket = (Direction, Vec<u8>);

impl PacketLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a packet.
    pub fn record(&self, dir: Direction, bytes: &[u8]) {
        self.packets.lock().push((dir, bytes.to_vec()));
    }

    /// Snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Vec<(Direction, Vec<u8>)> {
        self.packets.lock().clone()
    }

    /// Number of recorded packets.
    pub fn len(&self) -> usize {
        self.packets.lock().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Transport protocol under the RPC layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// UDP datagrams (the classic NFS transport).
    Udp,
    /// TCP stream (what SFS uses; slightly more per-message work).
    Tcp,
}

/// Link and transport cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// One-way propagation + switching latency, ns.
    pub latency_ns: u64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: u64,
    /// Fixed per-message transport cost (protocol processing, ACK costs
    /// amortized), ns.
    pub per_message_ns: u64,
    /// Additional per-byte protocol cost (checksumming and buffering in
    /// the transport; nonzero for TCP, whose FreeBSD NFS path the paper
    /// found "suboptimal").
    pub per_byte_extra_ns: u64,
}

impl NetParams {
    /// 100 Mbit/s switched Ethernet as in §4.1, with per-transport message
    /// costs calibrated against Figure 5 (see `sfs-bench::calib`).
    pub fn switched_100mbit(transport: Transport) -> Self {
        NetParams {
            latency_ns: 35_000, // one-way wire+switch+interrupt latency
            bandwidth_bps: 100_000_000 / 8,
            per_message_ns: match transport {
                Transport::Udp => 10_000,
                Transport::Tcp => 20_000,
            },
            per_byte_extra_ns: match transport {
                Transport::Udp => 0,
                Transport::Tcp => 24,
            },
        }
    }

    /// Transit time for a message of `len` bytes.
    pub fn transit_ns(&self, len: usize) -> u64 {
        self.latency_ns
            + self.per_message_ns
            + (len as u64 * 1_000_000_000) / self.bandwidth_bps
            + len as u64 * self.per_byte_extra_ns
    }
}

/// Error observed by a caller when the adversary interferes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The packet (or its reply) never arrived.
    Timeout,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "network timeout")
    }
}

impl std::error::Error for WireError {}

/// A synchronous request/response wire between a client and a server.
///
/// The server side is a closure; layering (secure channel, RPC dispatch,
/// NFS relay) happens in the crates above.
pub struct Wire {
    clock: SimClock,
    params: NetParams,
    interceptor: Option<Arc<Mutex<dyn Interceptor>>>,
    fault: Option<FaultPlan>,
    log: Option<PacketLog>,
    /// Counter-only telemetry sink backing [`Wire::round_trips`] and
    /// [`Wire::bytes_sent`] ("SFS's enhanced caching reduces the number
    /// of RPCs that actually need to go over the network"). Always live,
    /// never traces.
    stats: Telemetry,
    /// Optional shared tracing sink; [`Wire::bump`] keeps it and `stats`
    /// on one counting path.
    tel: Telemetry,
}

impl Wire {
    /// Creates a wire with the given clock and parameters.
    pub fn new(clock: SimClock, params: NetParams) -> Self {
        Wire {
            clock,
            params,
            interceptor: None,
            fault: None,
            log: None,
            stats: Telemetry::counters(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches an adversary.
    pub fn set_interceptor(&mut self, i: Arc<Mutex<dyn Interceptor>>) {
        self.interceptor = Some(i);
    }

    /// Removes the adversary.
    pub fn clear_interceptor(&mut self) {
        self.interceptor = None;
    }

    /// Attaches a seeded fault plan; every packet's fate is decided by
    /// the plan after the interceptor (if any) has had its turn.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Attaches a packet recorder.
    pub fn set_log(&mut self, log: PacketLog) {
        self.log = Some(log);
    }

    /// Attaches a shared tracing sink; spans and counters are stamped
    /// with this wire's virtual clock.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone().with_clock(self.clock.clone());
    }

    /// The single counting path: every wire statistic increments the
    /// private counter sink and, when attached, the shared tracing sink.
    fn bump(&self, name: &'static str, delta: u64) {
        self.stats.count("wire", name, delta);
        self.tel.count("wire", name, delta);
    }

    /// Completed round trips.
    pub fn round_trips(&self) -> u64 {
        self.stats.counter("wire", "net.round_trips")
    }

    /// Total bytes placed on the wire (both directions).
    pub fn bytes_sent(&self) -> u64 {
        self.stats.counter("wire", "net.bytes_sent")
    }

    /// The wire's clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The caller waits out a retransmission timeout on a lost packet.
    fn lost(&self) -> WireError {
        self.clock.advance_ns(1_000_000_000);
        self.bump("net.timeouts", 1);
        self.tel.instant("wire", "sim.net", "timeout");
        WireError::Timeout
    }

    /// Moves one packet across the link. On success returns the delivered
    /// bytes plus whether the fault plan duplicated the packet (the
    /// receiver must then process it twice).
    fn transit(&self, dir: Direction, bytes: Vec<u8>) -> Result<(Vec<u8>, bool), WireError> {
        let name = match dir {
            Direction::Request => "send",
            Direction::Reply => "recv",
        };
        let _span = self
            .tel
            .span("wire", "sim.net", name)
            .with_attr("bytes", bytes.len() as u64);
        self.clock.advance_ns(self.params.transit_ns(bytes.len()));
        self.bump("net.bytes_sent", bytes.len() as u64);
        if let Some(log) = &self.log {
            log.record(dir, &bytes);
        }
        let bytes = match &self.interceptor {
            None => bytes,
            Some(i) => match i.lock().intercept(dir, &bytes) {
                Verdict::Deliver => bytes,
                Verdict::Replace(other) => other,
                Verdict::Drop => return Err(self.lost()),
            },
        };
        match &self.fault {
            None => Ok((bytes, false)),
            Some(plan) => match plan.net_action(dir, self.clock.now(), bytes) {
                NetAction::Deliver(b) => Ok((b, false)),
                NetAction::Duplicate(b) => {
                    self.bump("net.duplicates", 1);
                    Ok((b, true))
                }
                NetAction::Delay(ns, b) => {
                    self.clock.advance_ns(ns);
                    self.bump("net.delays", 1);
                    Ok((b, false))
                }
                NetAction::Drop => Err(self.lost()),
            },
        }
    }

    /// Sends `request` to `server` and returns its reply, charging transit
    /// costs both ways. When the fault plan duplicates the request, the
    /// server processes both copies (and the client sees the first reply,
    /// as a real retransmission-duplicate would play out).
    pub fn call(
        &self,
        request: Vec<u8>,
        mut server: impl FnMut(Vec<u8>) -> Vec<u8>,
    ) -> Result<Vec<u8>, WireError> {
        let span = self.tel.span("wire", "sim.net", "rpc");
        let (delivered, dup_req) = self.transit(Direction::Request, request)?;
        let reply = if dup_req {
            let first = server(delivered.clone());
            let _second = server(delivered);
            first
        } else {
            server(delivered)
        };
        // A duplicated reply reaches the client twice; the RPC layer
        // discards the second copy, so only the event is observable.
        let (got, _dup_rep) = self.transit(Direction::Reply, reply)?;
        self.bump("net.round_trips", 1);
        drop(span);
        Ok(got)
    }
}

impl std::fmt::Debug for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wire")
            .field("params", &self.params)
            .field("round_trips", &self.round_trips())
            .field("bytes_sent", &self.bytes_sent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> Wire {
        Wire::new(SimClock::new(), NetParams::switched_100mbit(Transport::Udp))
    }

    #[test]
    fn call_roundtrip_charges_time() {
        let w = wire();
        let reply = w
            .call(b"ping".to_vec(), |req| {
                assert_eq!(req, b"ping");
                b"pong".to_vec()
            })
            .unwrap();
        assert_eq!(reply, b"pong");
        assert!(w.clock().now().as_nanos() > 0);
        assert_eq!(w.round_trips(), 1);
        assert_eq!(w.bytes_sent(), 8);
    }

    #[test]
    fn larger_messages_take_longer() {
        let w1 = wire();
        w1.call(vec![0; 100], |_| vec![]).unwrap();
        let w2 = wire();
        w2.call(vec![0; 100_000], |_| vec![]).unwrap();
        assert!(w2.clock().now() > w1.clock().now());
    }

    #[test]
    fn tcp_costs_more_per_message() {
        let udp = NetParams::switched_100mbit(Transport::Udp);
        let tcp = NetParams::switched_100mbit(Transport::Tcp);
        assert!(tcp.transit_ns(100) > udp.transit_ns(100));
    }

    struct Tamperer;
    impl Interceptor for Tamperer {
        fn intercept(&mut self, dir: Direction, bytes: &[u8]) -> Verdict {
            if dir == Direction::Reply {
                let mut b = bytes.to_vec();
                b[0] ^= 0xff;
                Verdict::Replace(b)
            } else {
                Verdict::Deliver
            }
        }
    }

    #[test]
    fn interceptor_can_tamper() {
        let mut w = wire();
        w.set_interceptor(Arc::new(Mutex::new(Tamperer)));
        let reply = w.call(b"hi".to_vec(), |_| vec![0x00, 0x01]).unwrap();
        assert_eq!(reply, vec![0xff, 0x01]);
    }

    struct Dropper;
    impl Interceptor for Dropper {
        fn intercept(&mut self, _d: Direction, _b: &[u8]) -> Verdict {
            Verdict::Drop
        }
    }

    #[test]
    fn interceptor_can_drop() {
        let mut w = wire();
        w.set_interceptor(Arc::new(Mutex::new(Dropper)));
        let before = w.clock().now();
        let err = w.call(b"hi".to_vec(), |_| vec![]).unwrap_err();
        assert_eq!(err, WireError::Timeout);
        // A retransmission timeout elapsed.
        assert!(w.clock().now().since(before).as_nanos() >= 1_000_000_000);
    }

    #[test]
    fn fault_plan_drop_behaves_like_timeout() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut w = wire();
        w.set_fault_plan(FaultPlan::new(
            1,
            FaultSpec {
                drop_pm: 1000,
                ..FaultSpec::none()
            },
        ));
        let before = w.clock().now();
        assert_eq!(
            w.call(b"hi".to_vec(), |_| vec![]).unwrap_err(),
            WireError::Timeout
        );
        assert!(w.clock().now().since(before).as_nanos() >= 1_000_000_000);
    }

    #[test]
    fn fault_plan_duplicate_invokes_server_twice() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut w = wire();
        w.set_fault_plan(FaultPlan::new(
            1,
            FaultSpec {
                duplicate_pm: 1000,
                ..FaultSpec::none()
            },
        ));
        let mut calls = 0;
        // The reply transit also rolls a duplicate; that is fine — the
        // client just discards the second copy.
        let reply = w
            .call(b"q".to_vec(), |_| {
                calls += 1;
                vec![calls]
            })
            .unwrap();
        assert_eq!(calls, 2, "server must process both copies");
        assert_eq!(reply, vec![1], "client sees the first reply");
    }

    #[test]
    fn fault_plan_delay_charges_extra_time() {
        use crate::fault::{FaultPlan, FaultSpec};
        let clean = wire();
        clean.call(vec![0; 64], |_| vec![0; 64]).unwrap();
        let mut w = wire();
        w.set_fault_plan(FaultPlan::new(
            1,
            FaultSpec {
                delay_pm: 1000,
                delay_ns: 5_000_000,
                ..FaultSpec::none()
            },
        ));
        w.call(vec![0; 64], |_| vec![0; 64]).unwrap();
        assert!(
            w.clock().now().as_nanos() >= clean.clock().now().as_nanos() + 10_000_000,
            "both directions should be delayed 5ms"
        );
    }

    #[test]
    fn packet_log_records_both_directions() {
        let mut w = wire();
        let log = PacketLog::new();
        w.set_log(log.clone());
        w.call(b"req".to_vec(), |_| b"rep".to_vec()).unwrap();
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], (Direction::Request, b"req".to_vec()));
        assert_eq!(snap[1], (Direction::Reply, b"rep".to_vec()));
    }
}
