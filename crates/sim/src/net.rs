//! Simulated network wires with an adversary hook.
//!
//! Paper §2.1.2: "SFS assumes that malicious parties entirely control the
//! network. Attackers can intercept packets, tamper with them, and inject
//! new packets onto the network." The [`Interceptor`] trait gives tests
//! exactly those powers; [`PacketLog`] records ciphertext for
//! forward-secrecy experiments.
//!
//! A [`Wire`] is a synchronous request/response channel that charges the
//! virtual clock for transit: per-message transport overhead (UDP vs TCP
//! differ, which is how the NFS-over-TCP baseline ends up slower in
//! Figure 5), propagation latency, and serialization time at the link
//! bandwidth.

use std::sync::Arc;

use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

use crate::time::SimClock;

/// Packet direction relative to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client to server.
    Request,
    /// Server to client.
    Reply,
}

/// What an interceptor decided to do with a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver the (possibly inspected) packet unchanged.
    Deliver,
    /// Deliver modified bytes instead.
    Replace(Vec<u8>),
    /// Drop the packet (the caller observes a timeout).
    Drop,
}

/// An active network adversary (or passive observer).
pub trait Interceptor: Send {
    /// Called for every packet on the wire.
    fn intercept(&mut self, dir: Direction, bytes: &[u8]) -> Verdict;
}

/// Records all traffic, for later cryptanalysis attempts (forward-secrecy
/// tests replay these recordings against disclosed keys).
#[derive(Debug, Default, Clone)]
pub struct PacketLog {
    packets: Arc<Mutex<Vec<LoggedPacket>>>,
}

/// One captured packet: its direction and raw bytes.
type LoggedPacket = (Direction, Vec<u8>);

impl PacketLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a packet.
    pub fn record(&self, dir: Direction, bytes: &[u8]) {
        self.packets.lock().push((dir, bytes.to_vec()));
    }

    /// Snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Vec<(Direction, Vec<u8>)> {
        self.packets.lock().clone()
    }

    /// Number of recorded packets.
    pub fn len(&self) -> usize {
        self.packets.lock().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Transport protocol under the RPC layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// UDP datagrams (the classic NFS transport).
    Udp,
    /// TCP stream (what SFS uses; slightly more per-message work).
    Tcp,
}

/// Link and transport cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// One-way propagation + switching latency, ns.
    pub latency_ns: u64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: u64,
    /// Fixed per-message transport cost (protocol processing, ACK costs
    /// amortized), ns.
    pub per_message_ns: u64,
    /// Additional per-byte protocol cost (checksumming and buffering in
    /// the transport; nonzero for TCP, whose FreeBSD NFS path the paper
    /// found "suboptimal").
    pub per_byte_extra_ns: u64,
}

impl NetParams {
    /// 100 Mbit/s switched Ethernet as in §4.1, with per-transport message
    /// costs calibrated against Figure 5 (see `sfs-bench::calib`).
    pub fn switched_100mbit(transport: Transport) -> Self {
        NetParams {
            latency_ns: 35_000, // one-way wire+switch+interrupt latency
            bandwidth_bps: 100_000_000 / 8,
            per_message_ns: match transport {
                Transport::Udp => 10_000,
                Transport::Tcp => 20_000,
            },
            per_byte_extra_ns: match transport {
                Transport::Udp => 0,
                Transport::Tcp => 24,
            },
        }
    }

    /// Transit time for a message of `len` bytes.
    pub fn transit_ns(&self, len: usize) -> u64 {
        self.latency_ns
            + self.per_message_ns
            + (len as u64 * 1_000_000_000) / self.bandwidth_bps
            + len as u64 * self.per_byte_extra_ns
    }
}

/// Error observed by a caller when the adversary interferes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The packet (or its reply) never arrived.
    Timeout,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "network timeout")
    }
}

impl std::error::Error for WireError {}

/// A synchronous request/response wire between a client and a server.
///
/// The server side is a closure; layering (secure channel, RPC dispatch,
/// NFS relay) happens in the crates above.
pub struct Wire {
    clock: SimClock,
    params: NetParams,
    interceptor: Option<Arc<Mutex<dyn Interceptor>>>,
    log: Option<PacketLog>,
    /// Counter-only telemetry sink backing [`Wire::round_trips`] and
    /// [`Wire::bytes_sent`] ("SFS's enhanced caching reduces the number
    /// of RPCs that actually need to go over the network"). Always live,
    /// never traces.
    stats: Telemetry,
    /// Optional shared tracing sink; [`Wire::bump`] keeps it and `stats`
    /// on one counting path.
    tel: Telemetry,
}

impl Wire {
    /// Creates a wire with the given clock and parameters.
    pub fn new(clock: SimClock, params: NetParams) -> Self {
        Wire {
            clock,
            params,
            interceptor: None,
            log: None,
            stats: Telemetry::counters(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches an adversary.
    pub fn set_interceptor(&mut self, i: Arc<Mutex<dyn Interceptor>>) {
        self.interceptor = Some(i);
    }

    /// Removes the adversary.
    pub fn clear_interceptor(&mut self) {
        self.interceptor = None;
    }

    /// Attaches a packet recorder.
    pub fn set_log(&mut self, log: PacketLog) {
        self.log = Some(log);
    }

    /// Attaches a shared tracing sink; spans and counters are stamped
    /// with this wire's virtual clock.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone().with_clock(self.clock.clone());
    }

    /// The single counting path: every wire statistic increments the
    /// private counter sink and, when attached, the shared tracing sink.
    fn bump(&self, name: &'static str, delta: u64) {
        self.stats.count("wire", name, delta);
        self.tel.count("wire", name, delta);
    }

    /// Completed round trips.
    pub fn round_trips(&self) -> u64 {
        self.stats.counter("wire", "net.round_trips")
    }

    /// Total bytes placed on the wire (both directions).
    pub fn bytes_sent(&self) -> u64 {
        self.stats.counter("wire", "net.bytes_sent")
    }

    /// The wire's clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn transit(&self, dir: Direction, bytes: Vec<u8>) -> Result<Vec<u8>, WireError> {
        let name = match dir {
            Direction::Request => "send",
            Direction::Reply => "recv",
        };
        let _span = self
            .tel
            .span("wire", "sim.net", name)
            .with_attr("bytes", bytes.len() as u64);
        self.clock.advance_ns(self.params.transit_ns(bytes.len()));
        self.bump("net.bytes_sent", bytes.len() as u64);
        if let Some(log) = &self.log {
            log.record(dir, &bytes);
        }
        match &self.interceptor {
            None => Ok(bytes),
            Some(i) => match i.lock().intercept(dir, &bytes) {
                Verdict::Deliver => Ok(bytes),
                Verdict::Replace(other) => Ok(other),
                Verdict::Drop => {
                    // The caller waits out a retransmission timeout.
                    self.clock.advance_ns(1_000_000_000);
                    self.bump("net.timeouts", 1);
                    self.tel.instant("wire", "sim.net", "timeout");
                    Err(WireError::Timeout)
                }
            },
        }
    }

    /// Sends `request` to `server` and returns its reply, charging transit
    /// costs both ways.
    pub fn call(
        &self,
        request: Vec<u8>,
        server: impl FnOnce(Vec<u8>) -> Vec<u8>,
    ) -> Result<Vec<u8>, WireError> {
        let span = self.tel.span("wire", "sim.net", "rpc");
        let delivered = self.transit(Direction::Request, request)?;
        let reply = server(delivered);
        let got = self.transit(Direction::Reply, reply)?;
        self.bump("net.round_trips", 1);
        drop(span);
        Ok(got)
    }
}

impl std::fmt::Debug for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wire")
            .field("params", &self.params)
            .field("round_trips", &self.round_trips())
            .field("bytes_sent", &self.bytes_sent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> Wire {
        Wire::new(SimClock::new(), NetParams::switched_100mbit(Transport::Udp))
    }

    #[test]
    fn call_roundtrip_charges_time() {
        let w = wire();
        let reply = w
            .call(b"ping".to_vec(), |req| {
                assert_eq!(req, b"ping");
                b"pong".to_vec()
            })
            .unwrap();
        assert_eq!(reply, b"pong");
        assert!(w.clock().now().as_nanos() > 0);
        assert_eq!(w.round_trips(), 1);
        assert_eq!(w.bytes_sent(), 8);
    }

    #[test]
    fn larger_messages_take_longer() {
        let w1 = wire();
        w1.call(vec![0; 100], |_| vec![]).unwrap();
        let w2 = wire();
        w2.call(vec![0; 100_000], |_| vec![]).unwrap();
        assert!(w2.clock().now() > w1.clock().now());
    }

    #[test]
    fn tcp_costs_more_per_message() {
        let udp = NetParams::switched_100mbit(Transport::Udp);
        let tcp = NetParams::switched_100mbit(Transport::Tcp);
        assert!(tcp.transit_ns(100) > udp.transit_ns(100));
    }

    struct Tamperer;
    impl Interceptor for Tamperer {
        fn intercept(&mut self, dir: Direction, bytes: &[u8]) -> Verdict {
            if dir == Direction::Reply {
                let mut b = bytes.to_vec();
                b[0] ^= 0xff;
                Verdict::Replace(b)
            } else {
                Verdict::Deliver
            }
        }
    }

    #[test]
    fn interceptor_can_tamper() {
        let mut w = wire();
        w.set_interceptor(Arc::new(Mutex::new(Tamperer)));
        let reply = w.call(b"hi".to_vec(), |_| vec![0x00, 0x01]).unwrap();
        assert_eq!(reply, vec![0xff, 0x01]);
    }

    struct Dropper;
    impl Interceptor for Dropper {
        fn intercept(&mut self, _d: Direction, _b: &[u8]) -> Verdict {
            Verdict::Drop
        }
    }

    #[test]
    fn interceptor_can_drop() {
        let mut w = wire();
        w.set_interceptor(Arc::new(Mutex::new(Dropper)));
        let before = w.clock().now();
        let err = w.call(b"hi".to_vec(), |_| vec![]).unwrap_err();
        assert_eq!(err, WireError::Timeout);
        // A retransmission timeout elapsed.
        assert!(w.clock().now().since(before).as_nanos() >= 1_000_000_000);
    }

    #[test]
    fn packet_log_records_both_directions() {
        let mut w = wire();
        let log = PacketLog::new();
        w.set_log(log.clone());
        w.call(b"req".to_vec(), |_| b"rep".to_vec()).unwrap();
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], (Direction::Request, b"req".to_vec()));
        assert_eq!(snap[1], (Direction::Reply, b"rep".to_vec()));
    }
}
