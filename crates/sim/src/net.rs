//! Simulated network wires with an adversary hook.
//!
//! Paper §2.1.2: "SFS assumes that malicious parties entirely control the
//! network. Attackers can intercept packets, tamper with them, and inject
//! new packets onto the network." The [`Interceptor`] trait gives tests
//! exactly those powers; [`PacketLog`] records ciphertext for
//! forward-secrecy experiments.
//!
//! A [`Wire`] is a synchronous request/response channel that charges the
//! virtual clock for transit: per-message transport overhead (UDP vs TCP
//! differ, which is how the NFS-over-TCP baseline ends up slower in
//! Figure 5), propagation latency, and serialization time at the link
//! bandwidth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

use crate::fault::{FaultPlan, NetAction};
use crate::time::{SimClock, SimTime};

/// Packet direction relative to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client to server.
    Request,
    /// Server to client.
    Reply,
}

/// What an interceptor decided to do with a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver the (possibly inspected) packet unchanged.
    Deliver,
    /// Deliver modified bytes instead.
    Replace(Vec<u8>),
    /// Drop the packet (the caller observes a timeout).
    Drop,
}

/// An active network adversary (or passive observer).
pub trait Interceptor: Send {
    /// Called for every packet on the wire.
    fn intercept(&mut self, dir: Direction, bytes: &[u8]) -> Verdict;
}

/// Records all traffic, for later cryptanalysis attempts (forward-secrecy
/// tests replay these recordings against disclosed keys).
#[derive(Debug, Default, Clone)]
pub struct PacketLog {
    packets: Arc<Mutex<Vec<LoggedPacket>>>,
}

/// One captured packet: its direction and raw bytes.
type LoggedPacket = (Direction, Vec<u8>);

impl PacketLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a packet.
    pub fn record(&self, dir: Direction, bytes: &[u8]) {
        self.packets.lock().push((dir, bytes.to_vec()));
    }

    /// Snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Vec<(Direction, Vec<u8>)> {
        self.packets.lock().clone()
    }

    /// Number of recorded packets.
    pub fn len(&self) -> usize {
        self.packets.lock().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Transport protocol under the RPC layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// UDP datagrams (the classic NFS transport).
    Udp,
    /// TCP stream (what SFS uses; slightly more per-message work).
    Tcp,
}

/// Link and transport cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetParams {
    /// One-way propagation + switching latency, ns.
    pub latency_ns: u64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: u64,
    /// Fixed per-message transport cost (protocol processing, ACK costs
    /// amortized), ns.
    pub per_message_ns: u64,
    /// Additional per-byte protocol cost (checksumming and buffering in
    /// the transport; nonzero for TCP, whose FreeBSD NFS path the paper
    /// found "suboptimal").
    pub per_byte_extra_ns: u64,
}

impl NetParams {
    /// 100 Mbit/s switched Ethernet as in §4.1, with per-transport message
    /// costs calibrated against Figure 5 (see `sfs-bench::calib`).
    pub fn switched_100mbit(transport: Transport) -> Self {
        NetParams {
            latency_ns: 35_000, // one-way wire+switch+interrupt latency
            bandwidth_bps: 100_000_000 / 8,
            per_message_ns: match transport {
                Transport::Udp => 10_000,
                Transport::Tcp => 20_000,
            },
            per_byte_extra_ns: match transport {
                Transport::Udp => 0,
                Transport::Tcp => 24,
            },
        }
    }

    /// Transit time for a message of `len` bytes.
    pub fn transit_ns(&self, len: usize) -> u64 {
        self.latency_ns
            + self.per_message_ns
            + (len as u64 * 1_000_000_000) / self.bandwidth_bps
            + len as u64 * self.per_byte_extra_ns
    }
}

/// Concurrent-stream tracker for one server endpoint in a multi-server
/// topology.
///
/// Each simulated server machine owns one `ServerLoad`; every client
/// [`Wire`] attached to that machine (via [`Wire::set_server_load`])
/// counts as one concurrent stream. Because per-client clocks advance
/// independently, contention cannot be simulated by interleaving — the
/// wire instead *scales* the resources one machine time-shares across
/// streams (reply-link serialization and server service time) by the
/// number of attached streams, a processor-sharing approximation. A
/// wire with no attached load (the single-server default) behaves
/// exactly as before, so existing timings are unchanged.
#[derive(Debug, Clone, Default)]
pub struct ServerLoad {
    streams: Arc<AtomicU64>,
}

impl ServerLoad {
    /// A load tracker with no attached streams.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of wires currently attached.
    pub fn streams(&self) -> u64 {
        self.streams.load(Ordering::SeqCst)
    }

    fn attach(&self) {
        self.streams.fetch_add(1, Ordering::SeqCst);
    }

    fn detach(&self) {
        self.streams.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Error observed by a caller when the adversary interferes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The packet (or its reply) never arrived.
    Timeout,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "network timeout")
    }
}

impl std::error::Error for WireError {}

/// What the observation/adversary pipeline decided about one packet.
enum Fate {
    /// Deliver these (possibly tampered) bytes.
    Deliver(Vec<u8>),
    /// Deliver the bytes, and a second copy of them.
    Duplicate(Vec<u8>),
    /// Deliver the bytes after an extra delay.
    Delay(u64, Vec<u8>),
    /// The packet never arrives.
    Drop,
}

/// How one request's service time is accounted in
/// [`Wire::exchange_on`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerCost {
    /// Analytic CPU nanoseconds for this request; the wire serializes it
    /// on the single logical server (plus any clock time the closure
    /// consumed, e.g. disk I/O), scaled by [`ServerLoad`] sharers.
    Serial(u64),
    /// An absolute completion instant already placed on per-core/per-
    /// shard timelines by an external scheduler; the wire imposes no
    /// server serialization of its own.
    Scheduled(u64),
}

/// A reply frame delivered by [`Wire::exchange`], stamped with its
/// logical arrival time at the client.
#[derive(Debug, Clone)]
pub struct ExchangeReply {
    /// The reply frame as it came off the wire.
    pub bytes: Vec<u8>,
    /// When the frame reached the client on the exchange's timeline.
    pub arrival: SimTime,
}

/// A synchronous request/response wire between a client and a server.
///
/// The server side is a closure; layering (secure channel, RPC dispatch,
/// NFS relay) happens in the crates above.
pub struct Wire {
    clock: SimClock,
    params: NetParams,
    interceptor: Option<Arc<Mutex<dyn Interceptor>>>,
    fault: Option<FaultPlan>,
    log: Option<PacketLog>,
    /// Shared contention tracker for the server machine this wire is
    /// attached to; `None` means an uncontended point-to-point link.
    load: Option<ServerLoad>,
    /// Counter-only telemetry sink backing [`Wire::round_trips`] and
    /// [`Wire::bytes_sent`] ("SFS's enhanced caching reduces the number
    /// of RPCs that actually need to go over the network"). Always live,
    /// never traces.
    stats: Telemetry,
    /// Optional shared tracing sink; [`Wire::bump`] keeps it and `stats`
    /// on one counting path.
    tel: Telemetry,
}

impl Wire {
    /// Creates a wire with the given clock and parameters.
    pub fn new(clock: SimClock, params: NetParams) -> Self {
        Wire {
            clock,
            params,
            interceptor: None,
            fault: None,
            log: None,
            load: None,
            stats: Telemetry::counters(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attaches an adversary.
    pub fn set_interceptor(&mut self, i: Arc<Mutex<dyn Interceptor>>) {
        self.interceptor = Some(i);
    }

    /// Removes the adversary.
    pub fn clear_interceptor(&mut self) {
        self.interceptor = None;
    }

    /// Attaches a seeded fault plan; every packet's fate is decided by
    /// the plan after the interceptor (if any) has had its turn.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Attaches a packet recorder.
    pub fn set_log(&mut self, log: PacketLog) {
        self.log = Some(log);
    }

    /// Attaches this wire to a server machine's [`ServerLoad`], counting
    /// it as one concurrent stream until the wire is dropped (or the
    /// load replaced). Server-side resources — reply serialization and
    /// service time — are scaled by the stream count.
    pub fn set_server_load(&mut self, load: ServerLoad) {
        if let Some(old) = self.load.take() {
            old.detach();
        }
        load.attach();
        self.load = Some(load);
    }

    /// How many streams share this wire's server machine (at least 1).
    fn sharers(&self) -> u64 {
        self.load.as_ref().map(|l| l.streams().max(1)).unwrap_or(1)
    }

    /// Attaches a shared tracing sink; spans and counters are stamped
    /// with this wire's virtual clock.
    pub fn set_telemetry(&mut self, tel: &Telemetry) {
        self.tel = tel.clone().with_clock(self.clock.clone());
    }

    /// The single counting path: every wire statistic increments the
    /// private counter sink and, when attached, the shared tracing sink.
    fn bump(&self, name: &'static str, delta: u64) {
        self.stats.count("wire", name, delta);
        self.tel.count("wire", name, delta);
    }

    /// Completed round trips.
    pub fn round_trips(&self) -> u64 {
        self.stats.counter("wire", "net.round_trips")
    }

    /// Total bytes placed on the wire (both directions).
    pub fn bytes_sent(&self) -> u64 {
        self.stats.counter("wire", "net.bytes_sent")
    }

    /// The wire's clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The caller waits out a retransmission timeout on a lost packet.
    fn lost(&self) -> WireError {
        self.clock.advance_ns(1_000_000_000);
        self.bump("net.timeouts", 1);
        self.tel.instant("wire", "sim.net", "timeout");
        WireError::Timeout
    }

    /// Waits out one retransmission timeout. The pipelined client calls
    /// this when a window exchange comes back with requests unanswered —
    /// the windowed equivalent of a lost blocking [`Wire::call`].
    pub fn timeout_wait(&self) {
        let _ = self.lost();
    }

    /// Runs one packet through the observation/adversary pipeline —
    /// accounting, packet log, interceptor, fault plan — and reports its
    /// fate. Shared by the blocking path (which charges the clock around
    /// it) and the pipelined path (which applies fates to its logical
    /// per-frame timeline instead); neither the clock nor timeout
    /// accounting is touched here.
    fn route(&self, dir: Direction, bytes: Vec<u8>) -> Fate {
        self.bump("net.bytes_sent", bytes.len() as u64);
        if let Some(log) = &self.log {
            log.record(dir, &bytes);
        }
        let bytes = match &self.interceptor {
            None => bytes,
            Some(i) => match i.lock().intercept(dir, &bytes) {
                Verdict::Deliver => bytes,
                Verdict::Replace(other) => other,
                Verdict::Drop => return Fate::Drop,
            },
        };
        match &self.fault {
            None => Fate::Deliver(bytes),
            Some(plan) => match plan.net_action(dir, self.clock.now(), bytes) {
                NetAction::Deliver(b) => Fate::Deliver(b),
                NetAction::Duplicate(b) => {
                    self.bump("net.duplicates", 1);
                    Fate::Duplicate(b)
                }
                NetAction::Delay(ns, b) => {
                    self.bump("net.delays", 1);
                    Fate::Delay(ns, b)
                }
                NetAction::Drop => Fate::Drop,
            },
        }
    }

    /// Moves one packet across the link. On success returns the delivered
    /// bytes plus whether the fault plan duplicated the packet (the
    /// receiver must then process it twice).
    fn transit(&self, dir: Direction, bytes: Vec<u8>) -> Result<(Vec<u8>, bool), WireError> {
        let name = match dir {
            Direction::Request => "send",
            Direction::Reply => "recv",
        };
        let _span = self
            .tel
            .span("wire", "sim.net", name)
            .with_attr("bytes", bytes.len() as u64);
        // Requests ride the client's private uplink; replies serialize
        // onto the server's shared downlink, which `sharers()` streams
        // time-share.
        let transit_ns = match dir {
            Direction::Request => self.params.transit_ns(bytes.len()),
            Direction::Reply => self.params.latency_ns + self.sharers() * self.ser_ns(bytes.len()),
        };
        self.clock.advance_ns(transit_ns);
        match self.route(dir, bytes) {
            Fate::Deliver(b) => Ok((b, false)),
            Fate::Duplicate(b) => Ok((b, true)),
            Fate::Delay(ns, b) => {
                self.clock.advance_ns(ns);
                Ok((b, false))
            }
            Fate::Drop => Err(self.lost()),
        }
    }

    /// Serialization time for a message of `len` bytes: the portion of
    /// [`NetParams::transit_ns`] that occupies the sender's link (the
    /// remaining `latency_ns` is propagation, which pipelines).
    fn ser_ns(&self, len: usize) -> u64 {
        self.params.per_message_ns
            + (len as u64 * 1_000_000_000) / self.params.bandwidth_bps
            + len as u64 * self.params.per_byte_extra_ns
    }

    /// Sends a whole window of frames and collects every reply the
    /// adversary lets through — the pipelined counterpart of
    /// [`Wire::call`].
    ///
    /// Unlike `call`, nothing here blocks the shared clock per frame.
    /// The exchange is computed on a logical timeline instead: each
    /// request frame departs at its `sent` stamp (or when the
    /// client→server link frees up, if later), occupies that link for
    /// its serialization time, then propagates; the server services
    /// arrivals in arrival order, one at a time — each invocation is
    /// charged `extra_ns` returned by the closure (analytic CPU cost)
    /// plus whatever virtual time the closure itself consumed (disk
    /// I/O); reply frames queue on the server→client link the same way.
    /// The shared clock finally jumps to the last reply's arrival, which
    /// is where the caller resumes — so transmission, server CPU, and
    /// disk genuinely overlap in virtual time.
    ///
    /// Fault interaction per frame: dropped frames (either direction)
    /// simply never arrive — the caller notices unanswered requests and
    /// retransmits after [`Wire::timeout_wait`]. Duplicated requests are
    /// serviced twice; duplicated replies are delivered twice; delays
    /// push a frame's arrival without holding the link.
    pub fn exchange(
        &self,
        frames: Vec<(SimTime, Vec<u8>)>,
        mut server: impl FnMut(&[u8]) -> (Vec<Vec<u8>>, u64),
    ) -> Vec<ExchangeReply> {
        self.exchange_on(frames, |_arrival, bytes| {
            let (replies, extra_ns) = server(bytes);
            (replies, ServerCost::Serial(extra_ns))
        })
    }

    /// Like [`Wire::exchange`], but the server closure sees each frame's
    /// absolute arrival time and decides how its service time is
    /// accounted: [`ServerCost::Serial`] keeps the classic single-server
    /// discipline (one request at a time, scaled by [`ServerLoad`]
    /// sharers), while [`ServerCost::Scheduled`] hands back an absolute
    /// completion instant computed by an external scheduler (a multi-core
    /// [`crate::CoreSet`] + per-shard disk queues) — the wire then treats
    /// the server as parallel and does not serialize requests against
    /// each other. Reply-link serialization is unaffected: the downlink
    /// is one NIC regardless of how many cores fed it.
    pub fn exchange_on(
        &self,
        frames: Vec<(SimTime, Vec<u8>)>,
        mut server: impl FnMut(u64, &[u8]) -> (Vec<Vec<u8>>, ServerCost),
    ) -> Vec<ExchangeReply> {
        if frames.is_empty() {
            return Vec::new();
        }
        let _span = self
            .tel
            .span("wire", "sim.net", "exchange")
            .with_attr("frames", frames.len() as u64);
        // Client→server: serialize in send order onto the shared link.
        let mut req_link_free = 0u64;
        let mut arrivals: Vec<(u64, usize, Vec<u8>, bool)> = Vec::new();
        for (idx, (sent, bytes)) in frames.into_iter().enumerate() {
            let ser = self.ser_ns(bytes.len());
            let depart = sent.as_nanos().max(req_link_free);
            req_link_free = depart + ser;
            let arrival = depart + ser + self.params.latency_ns;
            match self.route(Direction::Request, bytes) {
                Fate::Deliver(b) => arrivals.push((arrival, idx, b, false)),
                Fate::Duplicate(b) => arrivals.push((arrival, idx, b, true)),
                Fate::Delay(ns, b) => arrivals.push((arrival + ns, idx, b, false)),
                Fate::Drop => {}
            }
        }
        // Service strictly in arrival order (ties break on send order,
        // keeping the timeline deterministic).
        arrivals.sort_by_key(|&(arrival, idx, ..)| (arrival, idx));
        let mut server_free = 0u64;
        let mut reply_link_free = 0u64;
        let mut out: Vec<ExchangeReply> = Vec::new();
        let mut answered = 0u64;
        let sharers = self.sharers();
        for (arrival, _idx, bytes, dup) in arrivals {
            for _ in 0..if dup { 2 } else { 1 } {
                let ((replies, cost), dt) = self.clock.measure(|| server(arrival, &bytes));
                let end = match cost {
                    // One server core: requests queue behind each other,
                    // and `sharers` streams time-share it.
                    ServerCost::Serial(extra_ns) => {
                        let start = arrival.max(server_free);
                        let end = start + sharers * (extra_ns + dt.as_nanos());
                        server_free = end;
                        end
                    }
                    // An external scheduler already placed the work on a
                    // core/disk timeline: its completion instant stands,
                    // and the server is not a serial bottleneck here (the
                    // closure's own clock consumption was tallied by the
                    // scheduler, so `dt` is not re-charged).
                    ServerCost::Scheduled(done_ns) => done_ns.max(arrival),
                };
                for rbytes in replies {
                    let ser = sharers * self.ser_ns(rbytes.len());
                    let depart = end.max(reply_link_free);
                    reply_link_free = depart + ser;
                    let r_arrival = depart + ser + self.params.latency_ns;
                    match self.route(Direction::Reply, rbytes) {
                        Fate::Deliver(b) => {
                            out.push(ExchangeReply {
                                bytes: b,
                                arrival: SimTime(r_arrival),
                            });
                            answered += 1;
                        }
                        Fate::Duplicate(b) => {
                            out.push(ExchangeReply {
                                bytes: b.clone(),
                                arrival: SimTime(r_arrival),
                            });
                            out.push(ExchangeReply {
                                bytes: b,
                                arrival: SimTime(r_arrival),
                            });
                            answered += 1;
                        }
                        Fate::Delay(ns, b) => {
                            out.push(ExchangeReply {
                                bytes: b,
                                arrival: SimTime(r_arrival + ns),
                            });
                            answered += 1;
                        }
                        Fate::Drop => {}
                    }
                }
            }
        }
        self.bump("net.round_trips", answered);
        // The caller resumes once the last surviving reply is in; a
        // batch that lost everything costs no time here (the caller's
        // retransmission timeout charges it instead).
        if let Some(finish) = out.iter().map(|r| r.arrival).max() {
            self.clock.advance_to(finish);
        }
        out.sort_by_key(|r| r.arrival);
        out
    }

    /// Sends `request` to `server` and returns its reply, charging transit
    /// costs both ways. When the fault plan duplicates the request, the
    /// server processes both copies (and the client sees the first reply,
    /// as a real retransmission-duplicate would play out).
    pub fn call(
        &self,
        request: Vec<u8>,
        mut server: impl FnMut(Vec<u8>) -> Vec<u8>,
    ) -> Result<Vec<u8>, WireError> {
        let span = self.tel.span("wire", "sim.net", "rpc");
        let (delivered, dup_req) = self.transit(Direction::Request, request)?;
        let reply = if dup_req {
            let first = server(delivered.clone());
            let _second = server(delivered);
            first
        } else {
            server(delivered)
        };
        // A duplicated reply reaches the client twice; the RPC layer
        // discards the second copy, so only the event is observable.
        let (got, _dup_rep) = self.transit(Direction::Reply, reply)?;
        self.bump("net.round_trips", 1);
        drop(span);
        Ok(got)
    }
}

impl Drop for Wire {
    fn drop(&mut self) {
        if let Some(load) = self.load.take() {
            load.detach();
        }
    }
}

impl std::fmt::Debug for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wire")
            .field("params", &self.params)
            .field("round_trips", &self.round_trips())
            .field("bytes_sent", &self.bytes_sent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> Wire {
        Wire::new(SimClock::new(), NetParams::switched_100mbit(Transport::Udp))
    }

    #[test]
    fn call_roundtrip_charges_time() {
        let w = wire();
        let reply = w
            .call(b"ping".to_vec(), |req| {
                assert_eq!(req, b"ping");
                b"pong".to_vec()
            })
            .unwrap();
        assert_eq!(reply, b"pong");
        assert!(w.clock().now().as_nanos() > 0);
        assert_eq!(w.round_trips(), 1);
        assert_eq!(w.bytes_sent(), 8);
    }

    #[test]
    fn larger_messages_take_longer() {
        let w1 = wire();
        w1.call(vec![0; 100], |_| vec![]).unwrap();
        let w2 = wire();
        w2.call(vec![0; 100_000], |_| vec![]).unwrap();
        assert!(w2.clock().now() > w1.clock().now());
    }

    #[test]
    fn tcp_costs_more_per_message() {
        let udp = NetParams::switched_100mbit(Transport::Udp);
        let tcp = NetParams::switched_100mbit(Transport::Tcp);
        assert!(tcp.transit_ns(100) > udp.transit_ns(100));
    }

    struct Tamperer;
    impl Interceptor for Tamperer {
        fn intercept(&mut self, dir: Direction, bytes: &[u8]) -> Verdict {
            if dir == Direction::Reply {
                let mut b = bytes.to_vec();
                b[0] ^= 0xff;
                Verdict::Replace(b)
            } else {
                Verdict::Deliver
            }
        }
    }

    #[test]
    fn interceptor_can_tamper() {
        let mut w = wire();
        w.set_interceptor(Arc::new(Mutex::new(Tamperer)));
        let reply = w.call(b"hi".to_vec(), |_| vec![0x00, 0x01]).unwrap();
        assert_eq!(reply, vec![0xff, 0x01]);
    }

    struct Dropper;
    impl Interceptor for Dropper {
        fn intercept(&mut self, _d: Direction, _b: &[u8]) -> Verdict {
            Verdict::Drop
        }
    }

    #[test]
    fn interceptor_can_drop() {
        let mut w = wire();
        w.set_interceptor(Arc::new(Mutex::new(Dropper)));
        let before = w.clock().now();
        let err = w.call(b"hi".to_vec(), |_| vec![]).unwrap_err();
        assert_eq!(err, WireError::Timeout);
        // A retransmission timeout elapsed.
        assert!(w.clock().now().since(before).as_nanos() >= 1_000_000_000);
    }

    #[test]
    fn fault_plan_drop_behaves_like_timeout() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut w = wire();
        w.set_fault_plan(FaultPlan::new(
            1,
            FaultSpec {
                drop_pm: 1000,
                ..FaultSpec::none()
            },
        ));
        let before = w.clock().now();
        assert_eq!(
            w.call(b"hi".to_vec(), |_| vec![]).unwrap_err(),
            WireError::Timeout
        );
        assert!(w.clock().now().since(before).as_nanos() >= 1_000_000_000);
    }

    #[test]
    fn fault_plan_duplicate_invokes_server_twice() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut w = wire();
        w.set_fault_plan(FaultPlan::new(
            1,
            FaultSpec {
                duplicate_pm: 1000,
                ..FaultSpec::none()
            },
        ));
        let mut calls = 0;
        // The reply transit also rolls a duplicate; that is fine — the
        // client just discards the second copy.
        let reply = w
            .call(b"q".to_vec(), |_| {
                calls += 1;
                vec![calls]
            })
            .unwrap();
        assert_eq!(calls, 2, "server must process both copies");
        assert_eq!(reply, vec![1], "client sees the first reply");
    }

    #[test]
    fn fault_plan_delay_charges_extra_time() {
        use crate::fault::{FaultPlan, FaultSpec};
        let clean = wire();
        clean.call(vec![0; 64], |_| vec![0; 64]).unwrap();
        let mut w = wire();
        w.set_fault_plan(FaultPlan::new(
            1,
            FaultSpec {
                delay_pm: 1000,
                delay_ns: 5_000_000,
                ..FaultSpec::none()
            },
        ));
        w.call(vec![0; 64], |_| vec![0; 64]).unwrap();
        assert!(
            w.clock().now().as_nanos() >= clean.clock().now().as_nanos() + 10_000_000,
            "both directions should be delayed 5ms"
        );
    }

    #[test]
    fn server_load_scales_reply_serialization() {
        // Two streams attached to one server machine: replies take the
        // shared downlink at half rate, so the contended call is slower
        // than the uncontended one but cheaper than two full transits
        // (propagation latency is not shared).
        let free = wire();
        free.call(vec![0; 64], |_| vec![0; 60_000]).unwrap();

        let load = ServerLoad::new();
        let mut w = wire();
        w.set_server_load(load.clone());
        let mut other = wire();
        other.set_server_load(load.clone());
        assert_eq!(load.streams(), 2);
        w.call(vec![0; 64], |_| vec![0; 60_000]).unwrap();
        let contended = w.clock().now().as_nanos();
        let uncontended = free.clock().now().as_nanos();
        assert!(
            contended > uncontended,
            "contended {contended} must exceed uncontended {uncontended}"
        );
        assert!(contended < 2 * uncontended);
        drop(other);
        assert_eq!(load.streams(), 1);
    }

    #[test]
    fn server_load_single_stream_is_time_neutral() {
        // One attached stream must cost exactly what an unattached wire
        // does, in both the blocking and pipelined paths.
        let free = wire();
        free.call(vec![0; 512], |_| vec![0; 4096]).unwrap();
        let mut w = wire();
        w.set_server_load(ServerLoad::new());
        w.call(vec![0; 512], |_| vec![0; 4096]).unwrap();
        assert_eq!(w.clock().now(), free.clock().now());

        let free = wire();
        let sent = free.clock().now();
        free.exchange(vec![(sent, vec![0; 512])], |_| (vec![vec![0; 4096]], 1000));
        let mut w = wire();
        w.set_server_load(ServerLoad::new());
        let sent = w.clock().now();
        w.exchange(vec![(sent, vec![0; 512])], |_| (vec![vec![0; 4096]], 1000));
        assert_eq!(w.clock().now(), free.clock().now());
    }

    #[test]
    fn server_load_scales_exchange_service_time() {
        const CPU: u64 = 1_000_000;
        let free = wire();
        let sent = free.clock().now();
        free.exchange(vec![(sent, vec![0; 64])], |_| (vec![vec![0; 64]], CPU));

        let load = ServerLoad::new();
        let mut w = wire();
        w.set_server_load(load.clone());
        let mut _other = wire();
        _other.set_server_load(load.clone());
        let sent = w.clock().now();
        w.exchange(vec![(sent, vec![0; 64])], |_| (vec![vec![0; 64]], CPU));
        assert!(
            w.clock().now().as_nanos() >= free.clock().now().as_nanos() + CPU,
            "two sharers double the 1ms service time"
        );
    }

    #[test]
    fn packet_log_records_both_directions() {
        let mut w = wire();
        let log = PacketLog::new();
        w.set_log(log.clone());
        w.call(b"req".to_vec(), |_| b"rep".to_vec()).unwrap();
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], (Direction::Request, b"req".to_vec()));
        assert_eq!(snap[1], (Direction::Reply, b"rep".to_vec()));
    }

    #[test]
    fn exchange_single_frame_matches_call_timing() {
        // A one-frame exchange must cost exactly what a blocking call
        // does, so window=1 pipelining is time-neutral.
        let blocking = wire();
        blocking.call(vec![1; 400], |_| vec![2; 200]).unwrap();

        let w = wire();
        let sent = w.clock().now();
        let replies = w.exchange(vec![(sent, vec![1; 400])], |req| {
            assert_eq!(req, &[1u8; 400][..]);
            (vec![vec![2; 200]], 0)
        });
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].bytes, vec![2; 200]);
        assert_eq!(w.clock().now(), blocking.clock().now());
        assert_eq!(w.round_trips(), 1);
        assert_eq!(w.bytes_sent(), blocking.bytes_sent());
    }

    #[test]
    fn exchange_overlaps_server_work_across_frames() {
        // Eight requests, each costing 1ms of server CPU. Blocking pays
        // 8 full round trips; the exchange overlaps transit with server
        // work and must beat it while still serializing the server.
        const N: u64 = 8;
        const CPU: u64 = 1_000_000;
        let blocking = wire();
        for _ in 0..N {
            blocking
                .call(vec![0; 8192], |_| {
                    blocking.clock().advance_ns(CPU);
                    vec![0; 256]
                })
                .unwrap();
        }

        let w = wire();
        let sent = w.clock().now();
        let frames = (0..N).map(|_| (sent, vec![0; 8192])).collect();
        let replies = w.exchange(frames, |_| (vec![vec![0; 256]], CPU));
        assert_eq!(replies.len(), N as usize);
        assert_eq!(w.round_trips(), N);
        let pipelined = w.clock().now().as_nanos();
        let serial = blocking.clock().now().as_nanos();
        assert!(
            pipelined < serial,
            "pipelined {pipelined} must beat serial {serial}"
        );
        // The server itself never overlaps with itself.
        assert!(pipelined >= N * CPU);
    }

    #[test]
    fn exchange_reply_arrivals_are_sorted_and_monotone() {
        let w = wire();
        let sent = w.clock().now();
        let frames = (0..4u8).map(|i| (sent, vec![i; 64])).collect();
        let replies = w.exchange(frames, |req| (vec![req.to_vec()], 0));
        assert_eq!(replies.len(), 4);
        for pair in replies.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        // The clock lands exactly on the last arrival.
        assert_eq!(w.clock().now(), replies[3].arrival);
    }

    #[test]
    fn exchange_drop_loses_frames_without_charging_timeout() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut w = wire();
        w.set_fault_plan(FaultPlan::new(
            1,
            FaultSpec {
                drop_pm: 1000,
                ..FaultSpec::none()
            },
        ));
        let before = w.clock().now();
        let replies = w.exchange(vec![(before, vec![0; 64])], |_| {
            panic!("dropped request must not reach the server")
        });
        assert!(replies.is_empty());
        assert_eq!(w.round_trips(), 0);
        // The caller charges the timeout explicitly, not the exchange.
        assert_eq!(w.clock().now(), before);
        w.timeout_wait();
        assert!(w.clock().now().since(before).as_nanos() >= 1_000_000_000);
    }

    #[test]
    fn exchange_duplicate_request_services_twice() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut w = wire();
        w.set_fault_plan(FaultPlan::new(
            1,
            FaultSpec {
                duplicate_pm: 1000,
                ..FaultSpec::none()
            },
        ));
        let mut calls = 0u8;
        let sent = w.clock().now();
        let replies = w.exchange(vec![(sent, vec![9; 32])], |_| {
            calls += 1;
            (vec![vec![calls]], 0)
        });
        assert_eq!(calls, 2, "server must process both copies");
        // Both invocations replied and the reply leg also duplicates, so
        // the client sees every copy and discards extras itself.
        assert!(replies.len() >= 2);
    }

    #[test]
    fn exchange_delay_defers_reply_arrival() {
        use crate::fault::{FaultPlan, FaultSpec};
        let clean = wire();
        let sent = clean.clock().now();
        clean.exchange(vec![(sent, vec![0; 64])], |_| (vec![vec![0; 64]], 0));

        let mut w = wire();
        w.set_fault_plan(FaultPlan::new(
            1,
            FaultSpec {
                delay_pm: 1000,
                delay_ns: 5_000_000,
                ..FaultSpec::none()
            },
        ));
        let sent = w.clock().now();
        w.exchange(vec![(sent, vec![0; 64])], |_| (vec![vec![0; 64]], 0));
        assert!(
            w.clock().now().as_nanos() >= clean.clock().now().as_nanos() + 10_000_000,
            "both directions should be delayed 5ms"
        );
    }
}
