//! An append-only journal on top of the simulated disk.
//!
//! [`crate::SimDisk`] charges virtual time but stores no bytes; crash
//! recovery needs actual contents that outlive the process that wrote
//! them. A [`JournalDisk`] pairs a `SimDisk` (for timing: every append
//! is a synchronous write, every replay a sequence of reads) with a
//! shared record store. Clones share state, so a harness keeps one
//! clone while the "process" holding the other dies — exactly how a
//! real journal survives on disk when its writer crashes.
//!
//! Appends are synchronous by design: a record is durable before the
//! operation it protects proceeds, so a crash at any instant leaves a
//! prefix of the logical record sequence — plus, at worst, one torn
//! record at the tail. Every record carries a CRC32 over its payload;
//! [`JournalDisk::replay_checked`] verifies the frames and
//! distinguishes the two failure shapes a recovering process can meet:
//!
//! - a **torn tail** (bad frames extending to the end of the log) is
//!   what a crash mid-append legitimately leaves behind — it is
//!   truncated, counted, and recovery proceeds from the valid prefix;
//! - a **mid-log mismatch** (a bad frame followed by a valid one) can
//!   only mean the medium corrupted a record that was once durable —
//!   that is fatal, because silently dropping an interior record would
//!   fold the wrong state.

use std::sync::Arc;

use sfs_telemetry::sync::Mutex;
use sfs_telemetry::Telemetry;

use crate::disk::SimDisk;

/// Fixed per-record framing overhead charged to the disk
/// (length word + CRC32).
const RECORD_HEADER_BYTES: usize = 8;

/// CRC32 (IEEE, reflected, poly 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A checked replay failed: record `index` has a CRC mismatch but a
/// later record is intact, so the damage is interior — not a torn
/// tail — and the log cannot be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    Corrupt { index: usize },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Corrupt { index } => {
                write!(f, "journal record {index} failed CRC mid-log; log unusable")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// Result of a successful [`JournalDisk::replay_checked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The valid record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Torn frames truncated from the tail (0 on a clean log).
    pub torn_truncated: usize,
}

struct StoredRecord {
    payload: Vec<u8>,
    crc: u32,
}

impl StoredRecord {
    fn new(payload: &[u8]) -> Self {
        StoredRecord {
            payload: payload.to_vec(),
            crc: crc32(payload),
        }
    }

    fn intact(&self) -> bool {
        crc32(&self.payload) == self.crc
    }
}

struct JournalState {
    records: Vec<StoredRecord>,
    /// Next block to write; appends advance it so seek accounting is
    /// realistic for a log laid out sequentially.
    next_block: u64,
    /// Block of each record, for replay read charging.
    blocks: Vec<u64>,
    tel: Telemetry,
}

/// An append-only, crash-surviving record log on a [`SimDisk`].
///
/// Clones share both the record store and the underlying disk, so the
/// journal written by a client that "dies" is readable by its restarted
/// incarnation.
#[derive(Clone)]
pub struct JournalDisk {
    disk: SimDisk,
    state: Arc<Mutex<JournalState>>,
}

impl JournalDisk {
    /// Creates an empty journal whose appends start at `base_block`.
    pub fn new(disk: SimDisk, base_block: u64) -> Self {
        JournalDisk {
            disk,
            state: Arc::new(Mutex::new(JournalState {
                records: Vec::new(),
                next_block: base_block,
                blocks: Vec::new(),
                tel: Telemetry::disabled(),
            })),
        }
    }

    /// Attaches a telemetry sink for replay-verification counters
    /// (`journal` / `replay.torn_tail`, `replay.corrupt`). Shared by
    /// clones.
    pub fn set_telemetry(&self, tel: &Telemetry) {
        self.state.lock().tel = tel.clone();
    }

    /// Appends one record, charging a synchronous write. The record is
    /// durable when this returns (under `syncfail` faults the underlying
    /// disk retries deterministically, charging extra seeks).
    pub fn append(&self, record: &[u8]) {
        let block = {
            let mut st = self.state.lock();
            let block = st.next_block;
            st.next_block += 1;
            st.records.push(StoredRecord::new(record));
            st.blocks.push(block);
            block
        };
        // Charge outside the journal lock; SimDisk serialises internally.
        self.disk
            .write_sync(block, RECORD_HEADER_BYTES + record.len());
    }

    /// Reads every record back in append order, charging one disk read
    /// per record. Frames are **not** CRC-verified — recovery paths must
    /// use [`replay_checked`](Self::replay_checked); this raw form exists
    /// for assertions and for logs known intact.
    pub fn replay(&self) -> Vec<Vec<u8>> {
        let (records, reads) = self.snapshot_for_replay();
        for (block, len) in reads {
            self.disk.read(block, len);
        }
        records
    }

    /// Reads every record back in append order, charging one disk read
    /// per frame scanned, and verifies each CRC32.
    ///
    /// Bad frames that extend to the end of the log are a torn tail —
    /// the shape a crash mid-append leaves — and are truncated from the
    /// journal (counted in [`ReplayOutcome::torn_truncated`] and the
    /// `journal`/`replay.torn_tail` telemetry counter); replay returns
    /// the valid prefix. A bad frame *followed by* an intact one means
    /// interior corruption of a once-durable record: fatal
    /// ([`JournalError::Corrupt`], counter `replay.corrupt`).
    pub fn replay_checked(&self) -> Result<ReplayOutcome, JournalError> {
        let (reads, verdicts) = {
            let st = self.state.lock();
            let reads: Vec<(u64, usize)> = st
                .records
                .iter()
                .zip(&st.blocks)
                .map(|(r, b)| (*b, RECORD_HEADER_BYTES + r.payload.len()))
                .collect();
            let verdicts: Vec<bool> = st.records.iter().map(StoredRecord::intact).collect();
            (reads, verdicts)
        };
        // A recovering process scans the whole log before deciding; it
        // pays the read for every frame, torn or not.
        for (block, len) in reads {
            self.disk.read(block, len);
        }
        let first_bad = verdicts.iter().position(|ok| !ok);
        let mut st = self.state.lock();
        match first_bad {
            None => Ok(ReplayOutcome {
                records: st.records.iter().map(|r| r.payload.clone()).collect(),
                torn_truncated: 0,
            }),
            Some(i) if verdicts[i..].iter().all(|ok| !ok) => {
                let torn = st.records.len() - i;
                st.records.truncate(i);
                st.blocks.truncate(i);
                st.tel.count("journal", "replay.torn_tail", torn as u64);
                Ok(ReplayOutcome {
                    records: st.records.iter().map(|r| r.payload.clone()).collect(),
                    torn_truncated: torn,
                })
            }
            Some(i) => {
                st.tel.count("journal", "replay.corrupt", 1);
                Err(JournalError::Corrupt { index: i })
            }
        }
    }

    /// Atomically replaces the log's contents with `records` — the
    /// compaction primitive. The new log is written sequentially from
    /// the current head, charging one synchronous write per record, and
    /// the old blocks are abandoned. Clones observe the new contents,
    /// like a log file rewritten in place under its readers.
    pub fn replace(&self, records: &[Vec<u8>]) {
        let writes: Vec<(u64, usize)> = {
            let mut st = self.state.lock();
            st.records.clear();
            st.blocks.clear();
            let mut writes = Vec::with_capacity(records.len());
            for r in records {
                let block = st.next_block;
                st.next_block += 1;
                st.records.push(StoredRecord::new(r));
                st.blocks.push(block);
                writes.push((block, RECORD_HEADER_BYTES + r.len()));
            }
            writes
        };
        for (block, len) in writes {
            self.disk.write_sync(block, len);
        }
    }

    /// Fault-injection hook: flips one payload byte of record `index`
    /// without updating its stored CRC, modelling medium corruption of
    /// a once-durable frame. No-op timing-wise.
    pub fn corrupt_record(&self, index: usize) {
        let mut st = self.state.lock();
        let rec = &mut st.records[index];
        if rec.payload.is_empty() {
            // Zero-length payload: damage the frame itself.
            rec.crc ^= 0xFF;
        } else {
            rec.payload[0] ^= 0xFF;
        }
    }

    /// Fault-injection hook: tears the final record as a crash between
    /// the data write and its completion would — the stored frame loses
    /// the tail half of its payload while keeping the original CRC.
    /// No-op on an empty journal.
    pub fn tear_tail(&self) {
        let mut st = self.state.lock();
        if let Some(rec) = st.records.last_mut() {
            let keep = rec.payload.len() / 2;
            rec.payload.truncate(keep);
            if rec.intact() {
                // Degenerate payloads (empty, or equal-CRC halves) still
                // need to present as torn.
                rec.crc ^= 0xFF;
            }
        }
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.state.lock().records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total record payload bytes (excluding framing).
    pub fn byte_len(&self) -> usize {
        self.state
            .lock()
            .records
            .iter()
            .map(|r| r.payload.len())
            .sum()
    }

    /// Snapshot of the raw records without charging any disk time —
    /// for assertions, not for recovery paths.
    pub fn records(&self) -> Vec<Vec<u8>> {
        self.state
            .lock()
            .records
            .iter()
            .map(|r| r.payload.clone())
            .collect()
    }

    /// The underlying disk's clock.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    fn snapshot_for_replay(&self) -> (Vec<Vec<u8>>, Vec<(u64, usize)>) {
        let st = self.state.lock();
        (
            st.records.iter().map(|r| r.payload.clone()).collect(),
            st.records
                .iter()
                .zip(&st.blocks)
                .map(|(r, b)| (*b, RECORD_HEADER_BYTES + r.payload.len()))
                .collect(),
        )
    }
}

impl std::fmt::Debug for JournalDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalDisk")
            .field("records", &self.len())
            .field("bytes", &self.byte_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use crate::time::SimClock;

    fn journal() -> (SimClock, JournalDisk) {
        let clock = SimClock::new();
        let disk = SimDisk::new(clock.clone(), DiskParams::ibm_18es());
        (clock, JournalDisk::new(disk, 1_000))
    }

    #[test]
    fn clones_share_records_across_writer_death() {
        let (_clock, j) = journal();
        let writer = j.clone();
        writer.append(b"mount /sfs/a");
        writer.append(b"seq hwm 64");
        drop(writer); // the "process" dies
        assert_eq!(
            j.replay(),
            vec![b"mount /sfs/a".to_vec(), b"seq hwm 64".to_vec()]
        );
    }

    #[test]
    fn appends_charge_sync_writes_and_replay_charges_reads() {
        let (clock, j) = journal();
        let t0 = clock.now();
        j.append(b"rec");
        let t1 = clock.now();
        assert!(t1 > t0, "sync append must cost virtual time");
        let (reads0, _, syncs, _) = j.disk().stats();
        assert_eq!(syncs, 1);
        assert_eq!(reads0, 0);
        j.replay();
        let (reads1, _, _, _) = j.disk().stats();
        assert_eq!(reads1, 1);
        assert!(clock.now() > t1, "replay must cost virtual time");
    }

    #[test]
    fn replace_compacts_visibly_across_clones_and_charges_writes() {
        let (clock, j) = journal();
        let writer = j.clone();
        for i in 0..10u8 {
            writer.append(&[i; 5]);
        }
        let (_, writes_before, _, _) = j.disk().stats();
        let t0 = clock.now();
        writer.replace(&[b"checkpoint".to_vec()]);
        assert!(clock.now() > t0, "rewriting the log costs virtual time");
        let (_, writes_after, _, _) = j.disk().stats();
        assert_eq!(writes_after - writes_before, 1);
        // The clone that did not call replace sees the compacted log.
        assert_eq!(j.replay(), vec![b"checkpoint".to_vec()]);
        assert_eq!(j.len(), 1);
        // Appends continue after the compacted tail.
        j.append(b"later");
        assert_eq!(j.replay().len(), 2);
    }

    #[test]
    fn identical_append_sequences_are_byte_identical_and_time_identical() {
        let run = || {
            let (clock, j) = journal();
            for i in 0..20u8 {
                j.append(&[i; 9]);
            }
            let replayed = j.replay();
            (replayed, clock.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn clean_log_replays_checked_with_no_truncation() {
        let (_clock, j) = journal();
        j.append(b"one");
        j.append(b"two");
        let out = j.replay_checked().expect("clean log");
        assert_eq!(out.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(out.torn_truncated, 0);
    }

    #[test]
    fn torn_tail_is_truncated_counted_and_tolerated() {
        let (clock, j) = journal();
        let tel = Telemetry::counters();
        j.set_telemetry(&tel);
        j.append(b"alpha record");
        j.append(b"beta record");
        j.append(b"gamma record torn mid-append");
        j.tear_tail();
        let out = j.replay_checked().expect("torn tail is recoverable");
        assert_eq!(
            out.records,
            vec![b"alpha record".to_vec(), b"beta record".to_vec()]
        );
        assert_eq!(out.torn_truncated, 1);
        assert_eq!(tel.counter("journal", "replay.torn_tail"), 1);
        // The truncation is durable state: a second checked replay sees a
        // clean two-record log and counts nothing further.
        let again = j.replay_checked().expect("already truncated");
        assert_eq!(again.records.len(), 2);
        assert_eq!(again.torn_truncated, 0);
        assert_eq!(tel.counter("journal", "replay.torn_tail"), 1);
        // Appends continue after the truncated tail.
        j.append(b"delta");
        assert_eq!(j.replay_checked().unwrap().records.len(), 3);
        assert!(clock.now().as_nanos() > 0);
    }

    #[test]
    fn mid_log_corruption_is_fatal_and_counted() {
        let (_clock, j) = journal();
        let tel = Telemetry::counters();
        j.set_telemetry(&tel);
        j.append(b"first");
        j.append(b"second");
        j.append(b"third");
        j.corrupt_record(1);
        assert_eq!(
            j.replay_checked(),
            Err(JournalError::Corrupt { index: 1 }),
            "a bad frame before an intact one is not a torn tail"
        );
        assert_eq!(tel.counter("journal", "replay.corrupt"), 1);
        assert_eq!(tel.counter("journal", "replay.torn_tail"), 0);
        // Fatal corruption does not mutate the log; the damage stays
        // visible to whoever inspects it next.
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn checked_replay_is_deterministic_across_reruns() {
        let run = || {
            let (clock, j) = journal();
            for i in 0..6u8 {
                j.append(&[i; 11]);
            }
            j.tear_tail();
            let out = j.replay_checked().unwrap();
            (out, clock.now())
        };
        assert_eq!(run(), run());
    }
}
