//! An append-only journal on top of the simulated disk.
//!
//! [`crate::SimDisk`] charges virtual time but stores no bytes; crash
//! recovery needs actual contents that outlive the process that wrote
//! them. A [`JournalDisk`] pairs a `SimDisk` (for timing: every append
//! is a synchronous write, every replay a sequence of reads) with a
//! shared record store. Clones share state, so a harness keeps one
//! clone while the "process" holding the other dies — exactly how a
//! real journal survives on disk when its writer crashes.
//!
//! Appends are synchronous by design: a record is durable before the
//! operation it protects proceeds, so a crash at any instant leaves a
//! prefix of the logical record sequence — never a torn suffix.

use std::sync::Arc;

use sfs_telemetry::sync::Mutex;

use crate::disk::SimDisk;

/// Fixed per-record framing overhead charged to the disk (length word).
const RECORD_HEADER_BYTES: usize = 4;

struct JournalState {
    records: Vec<Vec<u8>>,
    /// Next block to write; appends advance it so seek accounting is
    /// realistic for a log laid out sequentially.
    next_block: u64,
    /// Block of each record, for replay read charging.
    blocks: Vec<u64>,
}

/// An append-only, crash-surviving record log on a [`SimDisk`].
///
/// Clones share both the record store and the underlying disk, so the
/// journal written by a client that "dies" is readable by its restarted
/// incarnation.
#[derive(Clone)]
pub struct JournalDisk {
    disk: SimDisk,
    state: Arc<Mutex<JournalState>>,
}

impl JournalDisk {
    /// Creates an empty journal whose appends start at `base_block`.
    pub fn new(disk: SimDisk, base_block: u64) -> Self {
        JournalDisk {
            disk,
            state: Arc::new(Mutex::new(JournalState {
                records: Vec::new(),
                next_block: base_block,
                blocks: Vec::new(),
            })),
        }
    }

    /// Appends one record, charging a synchronous write. The record is
    /// durable when this returns (under `syncfail` faults the underlying
    /// disk retries deterministically, charging extra seeks).
    pub fn append(&self, record: &[u8]) {
        let block = {
            let mut st = self.state.lock();
            let block = st.next_block;
            st.next_block += 1;
            st.records.push(record.to_vec());
            st.blocks.push(block);
            block
        };
        // Charge outside the journal lock; SimDisk serialises internally.
        self.disk
            .write_sync(block, RECORD_HEADER_BYTES + record.len());
    }

    /// Reads every record back in append order, charging one disk read
    /// per record — the cost a recovering client actually pays.
    pub fn replay(&self) -> Vec<Vec<u8>> {
        let (records, reads): (Vec<Vec<u8>>, Vec<(u64, usize)>) = {
            let st = self.state.lock();
            (
                st.records.clone(),
                st.records
                    .iter()
                    .zip(&st.blocks)
                    .map(|(r, b)| (*b, RECORD_HEADER_BYTES + r.len()))
                    .collect(),
            )
        };
        for (block, len) in reads {
            self.disk.read(block, len);
        }
        records
    }

    /// Atomically replaces the log's contents with `records` — the
    /// compaction primitive. The new log is written sequentially from
    /// the current head, charging one synchronous write per record, and
    /// the old blocks are abandoned. Clones observe the new contents,
    /// like a log file rewritten in place under its readers.
    pub fn replace(&self, records: &[Vec<u8>]) {
        let writes: Vec<(u64, usize)> = {
            let mut st = self.state.lock();
            st.records.clear();
            st.blocks.clear();
            let mut writes = Vec::with_capacity(records.len());
            for r in records {
                let block = st.next_block;
                st.next_block += 1;
                st.records.push(r.clone());
                st.blocks.push(block);
                writes.push((block, RECORD_HEADER_BYTES + r.len()));
            }
            writes
        };
        for (block, len) in writes {
            self.disk.write_sync(block, len);
        }
    }

    /// Number of records appended so far.
    pub fn len(&self) -> usize {
        self.state.lock().records.len()
    }

    /// Whether the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total record payload bytes (excluding framing).
    pub fn byte_len(&self) -> usize {
        self.state.lock().records.iter().map(Vec::len).sum()
    }

    /// Snapshot of the raw records without charging any disk time —
    /// for assertions, not for recovery paths.
    pub fn records(&self) -> Vec<Vec<u8>> {
        self.state.lock().records.clone()
    }

    /// The underlying disk's clock.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }
}

impl std::fmt::Debug for JournalDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalDisk")
            .field("records", &self.len())
            .field("bytes", &self.byte_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use crate::time::SimClock;

    fn journal() -> (SimClock, JournalDisk) {
        let clock = SimClock::new();
        let disk = SimDisk::new(clock.clone(), DiskParams::ibm_18es());
        (clock, JournalDisk::new(disk, 1_000))
    }

    #[test]
    fn clones_share_records_across_writer_death() {
        let (_clock, j) = journal();
        let writer = j.clone();
        writer.append(b"mount /sfs/a");
        writer.append(b"seq hwm 64");
        drop(writer); // the "process" dies
        assert_eq!(
            j.replay(),
            vec![b"mount /sfs/a".to_vec(), b"seq hwm 64".to_vec()]
        );
    }

    #[test]
    fn appends_charge_sync_writes_and_replay_charges_reads() {
        let (clock, j) = journal();
        let t0 = clock.now();
        j.append(b"rec");
        let t1 = clock.now();
        assert!(t1 > t0, "sync append must cost virtual time");
        let (reads0, _, syncs, _) = j.disk().stats();
        assert_eq!(syncs, 1);
        assert_eq!(reads0, 0);
        j.replay();
        let (reads1, _, _, _) = j.disk().stats();
        assert_eq!(reads1, 1);
        assert!(clock.now() > t1, "replay must cost virtual time");
    }

    #[test]
    fn replace_compacts_visibly_across_clones_and_charges_writes() {
        let (clock, j) = journal();
        let writer = j.clone();
        for i in 0..10u8 {
            writer.append(&[i; 5]);
        }
        let (_, writes_before, _, _) = j.disk().stats();
        let t0 = clock.now();
        writer.replace(&[b"checkpoint".to_vec()]);
        assert!(clock.now() > t0, "rewriting the log costs virtual time");
        let (_, writes_after, _, _) = j.disk().stats();
        assert_eq!(writes_after - writes_before, 1);
        // The clone that did not call replace sees the compacted log.
        assert_eq!(j.replay(), vec![b"checkpoint".to_vec()]);
        assert_eq!(j.len(), 1);
        // Appends continue after the compacted tail.
        j.append(b"later");
        assert_eq!(j.replay().len(), 2);
    }

    #[test]
    fn identical_append_sequences_are_byte_identical_and_time_identical() {
        let run = || {
            let (clock, j) = journal();
            for i in 0..20u8 {
                j.append(&[i; 9]);
            }
            let replayed = j.replay();
            (replayed, clock.now())
        };
        assert_eq!(run(), run());
    }
}
