//! Replica log-shipping transport: quorum timing in virtual time.
//!
//! A primary that ships its op log to backups does not pay one
//! round-trip per backup — the frames go out in parallel and the
//! commit waits only for the *k-th fastest* acknowledgement (the
//! quorum). [`ReplTransport`] models exactly that: each backup link
//! has its own latency and per-byte cost, a ship computes every
//! backup's ack arrival, and the shared clock advances to the k-th
//! smallest. Deterministic by construction: arrivals are pure
//! functions of link parameters and frame size.

use crate::time::SimClock;

/// One primary→backup link: fixed propagation latency plus a per-byte
/// serialization cost, each way (the ack is a small fixed frame whose
/// cost is folded into `latency_ns`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplLink {
    pub latency_ns: u64,
    pub byte_ns: u64,
}

impl ReplLink {
    /// Same-machine-room replica pair: 50 µs propagation + ack, ~80 ns/byte
    /// (≈100 Mbit effective after framing).
    pub fn lan() -> Self {
        ReplLink {
            latency_ns: 50_000,
            byte_ns: 80,
        }
    }

    /// Cross-site replica: 2 ms propagation + ack, same serialization.
    pub fn wan() -> Self {
        ReplLink {
            latency_ns: 2_000_000,
            byte_ns: 80,
        }
    }

    /// Round-trip for one shipped frame of `bytes` payload on this link:
    /// out-serialization + propagation out and back.
    pub fn ack_delay_ns(&self, bytes: usize) -> u64 {
        2 * self.latency_ns + self.byte_ns * bytes as u64
    }
}

/// Log-shipping transport for one replica group. Link `i` carries
/// frames to backup `i` (indices are the caller's backup numbering).
#[derive(Clone)]
pub struct ReplTransport {
    clock: SimClock,
    links: Vec<ReplLink>,
}

impl ReplTransport {
    pub fn new(clock: SimClock) -> Self {
        ReplTransport {
            clock,
            links: Vec::new(),
        }
    }

    /// Registers the link to the next backup; returns its index.
    pub fn add_link(&mut self, link: ReplLink) -> usize {
        self.links.push(link);
        self.links.len() - 1
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Ack delay for the k-th fastest of the given backups (1-based
    /// `need`) shipping `bytes`, without advancing time. Returns `None`
    /// when fewer than `need` backups are available — the quorum cannot
    /// be met.
    pub fn quorum_delay_ns(&self, bytes: usize, backups: &[usize], need: usize) -> Option<u64> {
        if need == 0 {
            return Some(0);
        }
        if backups.len() < need {
            return None;
        }
        let mut delays: Vec<u64> = backups
            .iter()
            .map(|&i| self.links[i].ack_delay_ns(bytes))
            .collect();
        delays.sort_unstable();
        Some(delays[need - 1])
    }

    /// Ships one `bytes`-sized log frame to the given backups and blocks
    /// (in virtual time) until `need` of them have acknowledged: the
    /// shared clock advances by the k-th fastest ack delay. Returns that
    /// delay, or `None` (no time charged) when the quorum is unreachable.
    pub fn ship(&self, bytes: usize, backups: &[usize], need: usize) -> Option<u64> {
        let d = self.quorum_delay_ns(bytes, backups, need)?;
        self.clock.advance_ns(d);
        Some(d)
    }

    /// The transport's clock (the group's shared virtual clock).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transport(latencies_us: &[u64]) -> ReplTransport {
        let clock = SimClock::new();
        let mut t = ReplTransport::new(clock);
        for &us in latencies_us {
            t.add_link(ReplLink {
                latency_ns: us * 1_000,
                byte_ns: 10,
            });
        }
        t
    }

    #[test]
    fn quorum_waits_for_kth_fastest_not_slowest() {
        let t = transport(&[50, 2_000, 100]); // fast, slow, medium
        let all = [0usize, 1, 2];
        // Quorum of 1: the fastest link answers.
        assert_eq!(t.quorum_delay_ns(0, &all, 1), Some(100_000));
        // Quorum of 2: the medium link gates, the 2 ms straggler does not.
        assert_eq!(t.quorum_delay_ns(0, &all, 2), Some(200_000));
        // Quorum of 3: now the straggler gates.
        assert_eq!(t.quorum_delay_ns(0, &all, 3), Some(4_000_000));
    }

    #[test]
    fn ship_advances_clock_by_quorum_delay_and_charges_bytes() {
        let t = transport(&[50, 50]);
        let t0 = t.clock().now();
        let d = t.ship(1_000, &[0, 1], 2).expect("quorum reachable");
        assert_eq!(d, 2 * 50_000 + 10 * 1_000);
        assert_eq!(t.clock().now().as_nanos() - t0.as_nanos(), d);
    }

    #[test]
    fn unreachable_quorum_ships_nothing_and_charges_nothing() {
        let t = transport(&[50, 50]);
        let t0 = t.clock().now();
        assert_eq!(t.ship(100, &[0], 2), None);
        assert_eq!(t.clock().now(), t0, "no quorum, no time charged");
        // A quorum of zero is trivially met instantly (single-member group).
        assert_eq!(t.ship(100, &[], 0), Some(0));
    }

    #[test]
    fn quorum_timing_is_deterministic() {
        let run = || {
            let t = transport(&[30, 700, 90, 250]);
            let mut out = Vec::new();
            for bytes in [0usize, 64, 4096] {
                for need in 1..=4 {
                    out.push(t.ship(bytes, &[0, 1, 2, 3], need));
                }
            }
            (out, t.clock().now())
        };
        assert_eq!(run(), run());
    }
}
