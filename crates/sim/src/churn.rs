//! Scheduled population churn for "million-user day" scenarios.
//!
//! A [`ChurnSchedule`] is a deterministic sequence of waves — instants at
//! which some fraction of a client population acts at once (remounting,
//! rolling keys, seeing leases expire, receiving a revocation). The
//! schedule is generated from a seed with the same xorshift64* generator
//! the fault planner uses, so a storm scenario replays byte-for-byte:
//! the same seed always yields the same wave instants and the same
//! per-member selections.
//!
//! Membership selection is a pure function of `(schedule seed, wave
//! index, member index)` — callers don't need to consume waves in order
//! or keep per-member RNG state, and two independent observers of the
//! same schedule agree on who acts in every wave.

use crate::time::SimTime;

/// One churn wave: at `at`, each population member independently acts
/// with probability `fraction_pm` per mille.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnWave {
    /// Virtual instant of the wave.
    pub at: SimTime,
    /// Selection probability in per-mille (0–1000).
    pub fraction_pm: u32,
}

/// A seeded, deterministic sequence of churn waves.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    seed: u64,
    waves: Vec<ChurnWave>,
}

fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl ChurnSchedule {
    /// Generates `waves` wave instants spaced `period_ns` apart with up
    /// to `jitter_ns` of seeded forward jitter each, starting one period
    /// after time zero. Selection fractions ramp between 250‰ and 1000‰
    /// so a storm mixes partial and full waves.
    pub fn generate(seed: u64, waves: usize, period_ns: u64, jitter_ns: u64) -> ChurnSchedule {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        // Warm the generator so small seeds diverge immediately.
        for _ in 0..4 {
            xorshift64star(&mut state);
        }
        let mut out = Vec::with_capacity(waves);
        let mut t = 0u64;
        for i in 0..waves {
            let jitter = if jitter_ns == 0 {
                0
            } else {
                xorshift64star(&mut state) % (jitter_ns + 1)
            };
            t += period_ns + jitter;
            let fraction_pm = 250 + ((xorshift64star(&mut state) % 4) * 250) as u32;
            out.push(ChurnWave {
                at: SimTime(t),
                fraction_pm,
            });
            let _ = i;
        }
        ChurnSchedule { seed, waves: out }
    }

    /// The waves, in strictly increasing time order.
    pub fn waves(&self) -> &[ChurnWave] {
        &self.waves
    }

    /// Whether population member `member` acts in wave `wave`. Pure in
    /// `(seed, wave, member)`; out-of-range wave indices select nobody.
    pub fn selects(&self, wave: usize, member: usize) -> bool {
        let Some(w) = self.waves.get(wave) else {
            return false;
        };
        let mut state = self
            .seed
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add((wave as u64) << 32)
            .wrapping_add(member as u64)
            | 1;
        for _ in 0..3 {
            xorshift64star(&mut state);
        }
        (xorshift64star(&mut state) % 1000) < w.fraction_pm as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = ChurnSchedule::generate(42, 8, 200_000_000, 50_000_000);
        let b = ChurnSchedule::generate(42, 8, 200_000_000, 50_000_000);
        assert_eq!(a.waves(), b.waves());
        for w in 0..8 {
            for m in 0..32 {
                assert_eq!(a.selects(w, m), b.selects(w, m));
            }
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = ChurnSchedule::generate(1, 8, 200_000_000, 50_000_000);
        let b = ChurnSchedule::generate(2, 8, 200_000_000, 50_000_000);
        assert_ne!(a.waves(), b.waves());
    }

    #[test]
    fn waves_strictly_increase_and_respect_period() {
        let s = ChurnSchedule::generate(7, 16, 100_000_000, 25_000_000);
        let mut prev = 0u64;
        for w in s.waves() {
            let t = w.at.as_nanos();
            assert!(t > prev, "wave instants must strictly increase");
            assert!(t - prev >= 100_000_000, "waves at least a period apart");
            assert!(t - prev <= 125_000_000, "jitter bounded");
            prev = t;
            assert!((250..=1000).contains(&w.fraction_pm));
        }
    }

    #[test]
    fn selection_fraction_tracks_wave_fraction() {
        let s = ChurnSchedule::generate(11, 6, 200_000_000, 0);
        for (i, w) in s.waves().iter().enumerate() {
            let picked = (0..2000).filter(|&m| s.selects(i, m)).count();
            let expect = w.fraction_pm as usize * 2; // of 2000 members
            let slack = 200; // 10% of population
            assert!(
                picked + slack >= expect && picked <= expect + slack,
                "wave {i}: picked {picked} of 2000 at {}‰",
                w.fraction_pm
            );
        }
    }

    #[test]
    fn out_of_range_wave_selects_nobody() {
        let s = ChurnSchedule::generate(3, 2, 100, 0);
        assert!(!s.selects(9, 0));
    }
}
