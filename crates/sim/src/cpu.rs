//! CPU cost accounting.
//!
//! Section 4.2 attributes SFS's performance gap to two things: "SFS has a
//! user-level implementation while NFS runs in the kernel" (every RPC
//! crosses the kernel boundary into `sfscd`/`sfssd` and back), and "SFS
//! encrypts and MACs network traffic". [`CpuCosts`] models both as charges
//! against the virtual clock, calibrated against Figure 5 in the bench
//! crate.

use crate::time::SimClock;

/// Per-host CPU cost parameters (a 550 MHz Pentium III in the paper).
#[derive(Debug, Clone, Copy)]
pub struct CpuCosts {
    /// Cost of one user-level daemon crossing: kernel→user context
    /// switches, socket wakeups, and the RPC re-marshaling pass through
    /// the daemon. Charged per message per user-level hop on
    /// latency-bound operations; on streaming operations the crossings
    /// overlap with data transfer (the paper: "multiple outstanding
    /// requests can overlap the latency of NFS RPCs") and only the
    /// per-byte copy cost remains.
    pub user_crossing_ns: u64,
    /// Per-byte cost of copying data through a user-level daemon
    /// (kernel↔user buffer crossings).
    pub user_copy_per_byte_ns: u64,
    /// Software encryption + MAC cost per byte (ARC4 XOR + SHA-1 over the
    /// message).
    pub crypto_per_byte_ns: u64,
    /// Fixed per-message crypto cost (MAC re-key from the ARC4 stream,
    /// finalization).
    pub crypto_per_message_ns: u64,
    /// Generic per-RPC protocol processing (marshaling, dispatch),
    /// charged at each endpoint.
    pub rpc_processing_ns: u64,
    /// Per-byte cost of the server's NFS data path (buffer copies).
    pub server_copy_per_byte_ns: u64,
}

impl CpuCosts {
    /// Calibration for the paper's 550 MHz Pentium III testbed, fitted to
    /// Figure 5's four corners (see DESIGN.md §1 and `sfs-bench::calib`):
    ///
    /// - NFS/UDP SETATTR latency 200 µs fixes latency + per-message +
    ///   2×rpc costs;
    /// - SFS's 790 µs (770 without encryption) fixes the user-level
    ///   crossing at ~275 µs per hop and software crypto at ~103 ns/byte
    ///   (≈10 MB/s ARC4+SHA-1, consistent with a PIII-550);
    /// - the throughput rows fix the per-byte TCP and copy costs.
    pub fn pentium_iii_550() -> Self {
        CpuCosts {
            user_crossing_ns: 275_000,
            user_copy_per_byte_ns: 5,
            crypto_per_byte_ns: 103,
            crypto_per_message_ns: 1_000,
            rpc_processing_ns: 45_000,
            server_copy_per_byte_ns: 8,
        }
    }

    /// The previous-generation testbed (§4.5): "The relative performance
    /// difference of SFS and NFS 3 on MAB shrunk by a factor of two when
    /// we moved from 200 MHz Pentium Pros to 550 MHz Pentium IIIs." A
    /// PPro-200 does the same work ~2.75× slower.
    pub fn pentium_pro_200() -> Self {
        Self::pentium_iii_550().scaled(2.75)
    }

    /// Scales every CPU cost by `factor` (network and disk are
    /// unaffected) — the knob behind the §4.5 hardware-trend experiment.
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |v: u64| (v as f64 * factor) as u64;
        CpuCosts {
            user_crossing_ns: s(self.user_crossing_ns),
            user_copy_per_byte_ns: s(self.user_copy_per_byte_ns),
            crypto_per_byte_ns: s(self.crypto_per_byte_ns),
            crypto_per_message_ns: s(self.crypto_per_message_ns),
            rpc_processing_ns: s(self.rpc_processing_ns),
            server_copy_per_byte_ns: s(self.server_copy_per_byte_ns),
        }
    }

    /// Charges one user-level crossing.
    pub fn charge_user_crossing(&self, clock: &SimClock) {
        clock.advance_ns(self.user_crossing_ns);
    }

    /// Charges user-level data copy over `len` bytes.
    pub fn charge_user_copy(&self, clock: &SimClock, len: usize) {
        clock.advance_ns(self.user_copy_per_byte_ns * len as u64);
    }

    /// Charges crypto work over `len` bytes at the baseline suite's
    /// rate.
    pub fn charge_crypto(&self, clock: &SimClock, len: usize) {
        self.charge_crypto_scaled(clock, len, 1, 1);
    }

    /// Charges crypto work over `len` bytes with the per-byte rate
    /// scaled by `num/den`. The calibrated [`Self::crypto_per_byte_ns`]
    /// models the baseline ARC4+SHA-1 channel; a negotiated suite passes
    /// its relative cost (e.g. 1/4 for the single-pass AEAD, matching
    /// the measured hotpath ratio) so suite choice shows up in virtual
    /// time exactly as it does on real silicon. The fixed per-message
    /// cost is unscaled: finalization and key setup don't shrink with
    /// the cipher's byte rate.
    pub fn charge_crypto_scaled(&self, clock: &SimClock, len: usize, num: u64, den: u64) {
        clock.advance_ns(
            self.crypto_per_message_ns + self.crypto_per_byte_ns * len as u64 * num / den,
        );
    }

    /// Charges generic RPC processing.
    pub fn charge_rpc(&self, clock: &SimClock) {
        clock.advance_ns(self.rpc_processing_ns);
    }

    /// Charges the server's per-byte data-path cost.
    pub fn charge_server_copy(&self, clock: &SimClock, len: usize) {
        clock.advance_ns(self.server_copy_per_byte_ns * len as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let clock = SimClock::new();
        let costs = CpuCosts::pentium_iii_550();
        costs.charge_user_crossing(&clock);
        let t1 = clock.now().as_nanos();
        assert_eq!(t1, costs.user_crossing_ns);
        costs.charge_crypto(&clock, 1000);
        let t2 = clock.now().as_nanos();
        assert_eq!(
            t2 - t1,
            costs.crypto_per_message_ns + 1000 * costs.crypto_per_byte_ns
        );
        costs.charge_rpc(&clock);
        assert_eq!(clock.now().as_nanos() - t2, costs.rpc_processing_ns);
    }

    #[test]
    fn crypto_cost_scales_with_length() {
        let clock = SimClock::new();
        let costs = CpuCosts::pentium_iii_550();
        let (_, small) = clock.measure(|| costs.charge_crypto(&clock, 100));
        let (_, large) = clock.measure(|| costs.charge_crypto(&clock, 100_000));
        assert!(large.as_nanos() > small.as_nanos() * 100);
    }
}
