//! Poison-transparent wrappers around the std locks.
//!
//! The whole workspace locks through these instead of `std::sync`
//! directly: a panic while holding a lock does not poison it for the
//! next caller (the simulator is single-threaded per virtual host, and
//! tests that probe panics still want the state afterwards). The API
//! mirrors `parking_lot`: `lock()`/`read()`/`write()` return guards
//! directly, with no `Result` to unwrap at every call site.

/// A mutual exclusion primitive; `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. A poisoned
    /// lock (panic while held) is recovered transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock; `read`/`write` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the next lock just works.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn unsized_coercion_through_arc() {
        trait Speak {
            fn speak(&self) -> &'static str;
        }
        struct Dog;
        impl Speak for Dog {
            fn speak(&self) -> &'static str {
                "woof"
            }
        }
        let m: Arc<Mutex<dyn Speak>> = Arc::new(Mutex::new(Dog));
        assert_eq!(m.lock().speak(), "woof");
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
