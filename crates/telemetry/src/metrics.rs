//! Log-linear histograms for latency/size distributions.
//!
//! Values are bucketed with 16 linear sub-buckets per power of two
//! (relative error ≤ 1/16 above 16), the classic HDR layout. Bucket
//! indices are pure integer math so two runs that record the same
//! values produce bit-identical histograms.

/// Sub-buckets per binary magnitude (16 ⇒ 4 bits of mantissa kept).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Maps a value to its bucket index. Continuous: bucket lower bounds
/// are 0,1,..,15,16,17,..,31,32,34,.. (step doubles each magnitude).
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let mag = 63 - value.leading_zeros(); // >= SUB_BITS
    let group = (mag - SUB_BITS) as usize;
    let sub = ((value >> (mag - SUB_BITS)) & (SUB - 1)) as usize;
    SUB as usize + group * SUB as usize + sub
}

/// The smallest value mapping to `index` (the bucket's lower bound).
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let group = (index - SUB as usize) / SUB as usize;
    let sub = ((index - SUB as usize) % SUB as usize) as u64;
    (SUB + sub) << group
}

/// A log-linear histogram with exact count/sum/min/max.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (exact), or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Smallest observation (exact), or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean observation, rounded down, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (0.0–1.0) as the lower bound of the bucket
    /// holding the target rank; exact for values below 16, within
    /// 1/16 relative error above. Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let mut target = (q * self.count as f64).ceil() as u64;
        if target == 0 {
            target = 1;
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bucket_lower_bound(idx).max(self.min).min(self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_continuous_and_monotone() {
        let mut prev = bucket_index(0);
        assert_eq!(prev, 0);
        for v in 1..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx == prev || idx == prev + 1, "gap at {v}");
            prev = idx;
        }
    }

    #[test]
    fn lower_bound_inverts_index() {
        for idx in 0..200 {
            let lb = bucket_lower_bound(idx);
            assert_eq!(bucket_index(lb), idx, "bucket {idx} lb {lb}");
            if lb > 0 {
                assert_eq!(bucket_index(lb - 1), idx - 1);
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(7));
        assert_eq!(h.quantile(1.0), Some(15));
    }

    #[test]
    fn quantiles_at_bucket_boundaries() {
        let mut h = Histogram::new();
        // 100 observations of exactly 1024 (a bucket lower bound).
        for _ in 0..100 {
            h.record(1024);
        }
        assert_eq!(h.quantile(0.5), Some(1024));
        assert_eq!(h.quantile(0.99), Some(1024));
        assert_eq!(h.max(), 1024);
        // One outlier at the top: p99 over 101 obs still in the 1024
        // bucket, p100 reaches the outlier's bucket.
        h.record(1 << 20);
        assert_eq!(h.quantile(0.5), Some(1024));
        assert_eq!(h.quantile(1.0), Some(1 << 20));
    }

    #[test]
    fn bounded_relative_error() {
        let mut h = Histogram::new();
        h.record(1000);
        let q = h.quantile(0.5).unwrap();
        assert!(q <= 1000 && 1000 - q <= 1000 / 16 + 1, "q={q}");
    }
}
