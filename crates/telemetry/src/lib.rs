//! `sfs-telemetry`: deterministic tracing and metrics for the SFS stack.
//!
//! The paper's evaluation (§4.2–§4.3) is an exercise in attributing
//! time — RPC round trips, crypto bytes, user-level crossings, disk
//! syncs. This crate makes those quantities first-class: every layer
//! (simulated wire, NFS3 engine, secure channel, client/server
//! daemons, benchmarks) reports **spans**, **counters**, and
//! **histograms** into a shared [`Telemetry`] handle.
//!
//! Three properties drive the design:
//!
//! - **Virtual-time aware.** Timestamps come from a [`Clock`] — in the
//!   simulator that is `SimClock`, so traces are in virtual
//!   nanoseconds and bit-for-bit reproducible.
//! - **Zero-cost when disabled.** [`Telemetry::disabled`] is a `None`
//!   inside; every call short-circuits without locking or reading the
//!   clock, and nothing ever advances virtual time.
//! - **Deterministic output.** All aggregate state lives in `BTreeMap`s,
//!   events are appended in completion order, and the exporters use
//!   integer-only formatting — two identical virtual-time runs produce
//!   byte-identical Chrome traces.
//!
//! Exporters: [`Telemetry::chrome_trace`] emits `chrome://tracing`
//! JSON (load the file via the "Load" button or Perfetto), and
//! [`Telemetry::summary`] renders a per-layer text table.
//!
//! The `process` dimension ("client", "server", "agent", "wire", …)
//! becomes the Chrome trace's process row, so one trace shows every
//! simulated host concurrently; the `category` ("sim.net", "nfs3",
//! "proto.channel", "core.client", "bench", …) becomes the thread row,
//! i.e. the layer within the host.

pub mod metrics;
pub mod sync;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

pub use metrics::Histogram;

/// A monotonic nanosecond time source. Implemented by the simulator's
/// `SimClock`; [`ZeroClock`] pins time at zero for clock-less uses
/// (pure counters, unit tests).
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds.
    fn now_ns(&self) -> u64;
}

/// A [`Clock`] that always reads zero.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZeroClock;

impl Clock for ZeroClock {
    fn now_ns(&self) -> u64 {
        0
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

/// One completed trace event.
#[derive(Clone, Debug)]
enum Event {
    Span {
        proc: String,
        cat: &'static str,
        name: String,
        start_ns: u64,
        dur_ns: u64,
        depth: u32,
        args: Vec<(&'static str, String)>,
    },
    Instant {
        proc: String,
        cat: &'static str,
        name: String,
        ts_ns: u64,
        args: Vec<(&'static str, String)>,
    },
}

#[derive(Clone, Copy, Debug, Default)]
struct CounterState {
    total: u64,
    last_ns: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct GaugeState {
    current: u64,
    hwm: u64,
    last_ns: u64,
}

#[derive(Default)]
struct State {
    events: Vec<Event>,
    /// Currently-open span count per process (for nesting depth).
    depths: BTreeMap<String, u32>,
    counters: BTreeMap<(String, &'static str), CounterState>,
    gauges: BTreeMap<(String, &'static str), GaugeState>,
    hists: BTreeMap<(String, &'static str), Histogram>,
}

struct Inner {
    /// `true`: record spans/instants/histograms too. `false`: counters
    /// only (bounded memory; used as the default backing for ad-hoc
    /// stats like `Wire::round_trips`).
    full: bool,
    state: sync::Mutex<State>,
}

/// A cheaply-clonable handle onto a telemetry sink (or onto nothing).
///
/// The handle also carries the [`Clock`] and an optional scope prefix,
/// so several subsystems with *different* clocks (e.g. one simulated
/// run per benchmarked system) can share one sink: give each its own
/// handle via [`Telemetry::scoped`] + [`Telemetry::with_clock`].
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    clock: Arc<dyn Clock>,
    scope: Option<Arc<str>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match &self.inner {
            None => "disabled",
            Some(i) if i.full => "recording",
            Some(_) => "counters",
        };
        write!(f, "Telemetry({mode})")
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

/// A completed span's record, for tests and programmatic inspection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanInfo {
    /// Process/host dimension ("client", "server", "agent", "wire").
    pub proc: String,
    /// Layer dimension ("sim.net", "nfs3", "proto.channel", …).
    pub cat: &'static str,
    /// Span name.
    pub name: String,
    /// Start timestamp, ns of the handle's clock.
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Nesting depth within the process at start time (1 = top level).
    pub depth: u32,
}

impl Telemetry {
    /// The no-op handle: every operation short-circuits.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            clock: Arc::new(ZeroClock),
            scope: None,
        }
    }

    /// A counters-only sink: `count`/`counter` work (O(1) memory), all
    /// tracing is dropped. Needs no clock.
    pub fn counters() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                full: false,
                state: sync::Mutex::new(State::default()),
            })),
            clock: Arc::new(ZeroClock),
            scope: None,
        }
    }

    /// A full recording sink timestamped by `clock`.
    pub fn recording(clock: impl Clock + 'static) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                full: true,
                state: sync::Mutex::new(State::default()),
            })),
            clock: Arc::new(clock),
            scope: None,
        }
    }

    /// This handle with a different clock (same sink).
    pub fn with_clock(mut self, clock: impl Clock + 'static) -> Self {
        self.clock = Arc::new(clock);
        self
    }

    /// This handle with process names prefixed by `label/` (same sink).
    /// Scopes compose: `t.scoped("SFS").scoped("client")` yields
    /// processes under `SFS/client/…`.
    pub fn scoped(&self, label: &str) -> Self {
        let scope: Arc<str> = match &self.scope {
            Some(s) => format!("{s}/{label}").into(),
            None => label.into(),
        };
        Telemetry {
            inner: self.inner.clone(),
            clock: self.clock.clone(),
            scope: Some(scope),
        }
    }

    /// Whether any sink is attached (counters-only or full).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether spans/instants/histograms are being recorded.
    pub fn is_tracing(&self) -> bool {
        self.inner.as_ref().map(|i| i.full).unwrap_or(false)
    }

    /// The handle's clock, in ns (0 when disabled).
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            Some(_) => self.clock.now_ns(),
            None => 0,
        }
    }

    fn qualify(&self, proc: &str) -> String {
        match &self.scope {
            Some(s) => format!("{s}/{proc}"),
            None => proc.to_string(),
        }
    }

    /// Opens a span; it closes (and is recorded) when the guard drops.
    /// No-op unless tracing.
    pub fn span(&self, proc: &str, cat: &'static str, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span(None);
        };
        if !inner.full {
            return Span(None);
        }
        let proc = self.qualify(proc);
        let start_ns = self.clock.now_ns();
        let depth = {
            let mut st = inner.state.lock();
            let d = st.depths.entry(proc.clone()).or_insert(0);
            *d += 1;
            *d
        };
        Span(Some(ActiveSpan {
            inner: inner.clone(),
            clock: self.clock.clone(),
            proc,
            cat,
            name: name.to_string(),
            start_ns,
            depth,
            args: Vec::new(),
        }))
    }

    /// Records a zero-duration instant event. No-op unless tracing.
    pub fn instant(&self, proc: &str, cat: &'static str, name: &str) {
        self.instant_args(proc, cat, name, Vec::new());
    }

    /// An instant event with one attribute.
    pub fn instant_kv(
        &self,
        proc: &str,
        cat: &'static str,
        name: &str,
        key: &'static str,
        value: impl std::fmt::Display,
    ) {
        self.instant_args(proc, cat, name, vec![(key, value.to_string())]);
    }

    fn instant_args(
        &self,
        proc: &str,
        cat: &'static str,
        name: &str,
        args: Vec<(&'static str, String)>,
    ) {
        let Some(inner) = &self.inner else { return };
        if !inner.full {
            return;
        }
        let ev = Event::Instant {
            proc: self.qualify(proc),
            cat,
            name: name.to_string(),
            ts_ns: self.clock.now_ns(),
            args,
        };
        inner.state.lock().events.push(ev);
    }

    /// Adds `delta` to counter `(proc, name)`. Works in counters-only
    /// and full modes.
    pub fn count(&self, proc: &str, name: &'static str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let ts = if inner.full { self.clock.now_ns() } else { 0 };
        let proc = self.qualify(proc);
        let mut st = inner.state.lock();
        let c = st.counters.entry((proc, name)).or_default();
        c.total += delta;
        c.last_ns = c.last_ns.max(ts);
    }

    /// Sets gauge `(proc, name)` to `value`, tracking its high-water
    /// mark. Gauges model instantaneous levels (in-flight RPCs, queue
    /// depths) where the interesting aggregate is the peak, not a sum.
    /// Works in counters-only and full modes.
    pub fn gauge_set(&self, proc: &str, name: &'static str, value: u64) {
        let Some(inner) = &self.inner else { return };
        let ts = if inner.full { self.clock.now_ns() } else { 0 };
        let proc = self.qualify(proc);
        let mut st = inner.state.lock();
        let g = st.gauges.entry((proc, name)).or_default();
        g.current = value;
        g.hwm = g.hwm.max(value);
        g.last_ns = g.last_ns.max(ts);
    }

    /// Current value of gauge `(proc, name)` (0 if never written).
    pub fn gauge(&self, proc: &str, name: &'static str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let proc = self.qualify(proc);
        inner
            .state
            .lock()
            .gauges
            .get(&(proc, name))
            .map(|g| g.current)
            .unwrap_or(0)
    }

    /// High-water mark of gauge `(proc, name)` (0 if never written).
    pub fn gauge_hwm(&self, proc: &str, name: &'static str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let proc = self.qualify(proc);
        inner
            .state
            .lock()
            .gauges
            .get(&(proc, name))
            .map(|g| g.hwm)
            .unwrap_or(0)
    }

    /// Current value of counter `(proc, name)` (0 if never written).
    pub fn counter(&self, proc: &str, name: &'static str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let proc = self.qualify(proc);
        inner
            .state
            .lock()
            .counters
            .get(&(proc, name))
            .map(|c| c.total)
            .unwrap_or(0)
    }

    /// Snapshot of every counter as `(process, name, total)`, sorted by
    /// `(process, name)` (the map order). Lets reporters discover series
    /// they did not know the process names for (e.g. per-shard
    /// `server.shard.busy_ticks` under dynamically-numbered shard
    /// processes).
    pub fn counters_snapshot(&self) -> Vec<(String, &'static str, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .state
            .lock()
            .counters
            .iter()
            .map(|((p, n), c)| (p.clone(), *n, c.total))
            .collect()
    }

    /// Snapshot of every gauge as `(process, name, current, high-water
    /// mark)`, sorted by `(process, name)`.
    pub fn gauges_snapshot(&self) -> Vec<(String, &'static str, u64, u64)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .state
            .lock()
            .gauges
            .iter()
            .map(|((p, n), g)| (p.clone(), *n, g.current, g.hwm))
            .collect()
    }

    /// Records `value` into histogram `(proc, name)`. No-op unless
    /// tracing.
    pub fn record(&self, proc: &str, name: &'static str, value: u64) {
        let Some(inner) = &self.inner else { return };
        if !inner.full {
            return;
        }
        let proc = self.qualify(proc);
        inner
            .state
            .lock()
            .hists
            .entry((proc, name))
            .or_insert_with(Histogram::new)
            .record(value);
    }

    /// Snapshot of every histogram as `(process, name, histogram)`,
    /// sorted by `(process, name)` (the map order). Empty unless
    /// tracing.
    pub fn histograms(&self) -> Vec<(String, &'static str, Histogram)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .state
            .lock()
            .hists
            .iter()
            .map(|((p, n), h)| (p.clone(), *n, h.clone()))
            .collect()
    }

    /// Every histogram as one deterministic JSON array — the
    /// per-scenario latency export benchmark binaries commit as
    /// artifacts. Rows are sorted by `(process, name)` and every field
    /// is an integer, so identical runs serialize byte-for-byte
    /// identically.
    pub fn histograms_json(&self) -> String {
        let mut out = String::from("[\n");
        let hists = self.histograms();
        for (i, (proc, name, h)) in hists.iter().enumerate() {
            let q = |p: f64| h.quantile(p).unwrap_or(0);
            out.push_str(&format!(
                "  {{\"process\": \"{}\", \"name\": \"{}\", \"count\": {}, \"mean_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
                proc,
                name,
                h.count(),
                h.mean(),
                q(0.5),
                q(0.9),
                q(0.99),
                h.max(),
                if i + 1 == hists.len() { "" } else { "," }
            ));
        }
        out.push(']');
        out
    }

    /// Quantile of histogram `(proc, name)`, if it exists and is
    /// non-empty.
    pub fn quantile(&self, proc: &str, name: &'static str, q: f64) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let proc = self.qualify(proc);
        inner
            .state
            .lock()
            .hists
            .get(&(proc, name))
            .and_then(|h| h.quantile(q))
    }

    /// Every completed span in completion order (tests/inspection).
    pub fn finished_spans(&self) -> Vec<SpanInfo> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .state
            .lock()
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Span {
                    proc,
                    cat,
                    name,
                    start_ns,
                    dur_ns,
                    depth,
                    ..
                } => Some(SpanInfo {
                    proc: proc.clone(),
                    cat,
                    name: name.clone(),
                    start_ns: *start_ns,
                    dur_ns: *dur_ns,
                    depth: *depth,
                }),
                Event::Instant { .. } => None,
            })
            .collect()
    }

    /// Exports everything recorded so far as Chrome-trace JSON
    /// (`chrome://tracing` / Perfetto "Load trace"). Deterministic:
    /// byte-identical across identical virtual-time runs.
    pub fn chrome_trace(&self) -> String {
        let Some(inner) = &self.inner else {
            return "{\"traceEvents\":[]}\n".to_string();
        };
        let st = inner.state.lock();

        // Stable pid/tid assignment: sorted process names, then sorted
        // categories within each process.
        let mut procs: BTreeSet<String> = BTreeSet::new();
        let mut tracks: BTreeSet<(String, &'static str)> = BTreeSet::new();
        for e in &st.events {
            match e {
                Event::Span { proc, cat, .. } | Event::Instant { proc, cat, .. } => {
                    procs.insert(proc.clone());
                    tracks.insert((proc.clone(), cat));
                }
            }
        }
        for (proc, _) in st.counters.keys() {
            procs.insert(proc.clone());
        }
        for (proc, _) in st.gauges.keys() {
            procs.insert(proc.clone());
        }
        let pid_of: BTreeMap<&String, usize> =
            procs.iter().enumerate().map(|(i, p)| (p, i + 1)).collect();
        let tid_of: BTreeMap<&(String, &'static str), usize> = {
            let mut next: BTreeMap<&String, usize> = BTreeMap::new();
            let mut map = BTreeMap::new();
            for track in &tracks {
                let n = next.entry(&track.0).or_insert(0);
                *n += 1;
                map.insert(track, *n);
            }
            map
        };

        let mut out = String::with_capacity(4096 + st.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |out: &mut String, line: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };

        for (proc, pid) in &pid_of {
            emit(
                &mut out,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":{}}}}}",
                    json_string(proc)
                ),
            );
        }
        for (track, tid) in &tid_of {
            let pid = pid_of[&track.0];
            emit(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
                    json_string(track.1)
                ),
            );
        }

        for e in &st.events {
            match e {
                Event::Span {
                    proc,
                    cat,
                    name,
                    start_ns,
                    dur_ns,
                    args,
                    ..
                } => {
                    let pid = pid_of[proc];
                    let tid = tid_of[&(proc.clone(), *cat)];
                    emit(
                        &mut out,
                        format!(
                            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{}{}}}",
                            json_string(name),
                            json_string(cat),
                            micros(*start_ns),
                            micros(*dur_ns),
                            json_args(args),
                        ),
                    );
                }
                Event::Instant {
                    proc,
                    cat,
                    name,
                    ts_ns,
                    args,
                } => {
                    let pid = pid_of[proc];
                    let tid = tid_of[&(proc.clone(), *cat)];
                    emit(
                        &mut out,
                        format!(
                            "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{}{}}}",
                            json_string(name),
                            json_string(cat),
                            micros(*ts_ns),
                            json_args(args),
                        ),
                    );
                }
            }
        }

        // Counters: a zero sample at t=0 and the final total at the
        // last update, so chrome draws the accumulation ramp.
        for ((proc, name), c) in &st.counters {
            let pid = pid_of[proc];
            emit(
                &mut out,
                format!(
                    "{{\"name\":{},\"ph\":\"C\",\"pid\":{pid},\"ts\":0.000,\"args\":{{\"value\":0}}}}",
                    json_string(name)
                ),
            );
            emit(
                &mut out,
                format!(
                    "{{\"name\":{},\"ph\":\"C\",\"pid\":{pid},\"ts\":{},\"args\":{{\"value\":{}}}}}",
                    json_string(name),
                    micros(c.last_ns),
                    c.total
                ),
            );
        }

        // Gauges: same counter-track rendering, with the level and its
        // high-water mark as two series on one track.
        for ((proc, name), g) in &st.gauges {
            let pid = pid_of[proc];
            emit(
                &mut out,
                format!(
                    "{{\"name\":{},\"ph\":\"C\",\"pid\":{pid},\"ts\":0.000,\"args\":{{\"value\":0,\"hwm\":0}}}}",
                    json_string(name)
                ),
            );
            emit(
                &mut out,
                format!(
                    "{{\"name\":{},\"ph\":\"C\",\"pid\":{pid},\"ts\":{},\"args\":{{\"value\":{},\"hwm\":{}}}}}",
                    json_string(name),
                    micros(g.last_ns),
                    g.current,
                    g.hwm
                ),
            );
        }

        out.push_str("\n]}\n");
        out
    }

    /// Renders the per-layer summary table: spans aggregated by
    /// (layer, process, name), then counters, then histogram
    /// quantiles. Deterministic ordering throughout.
    pub fn summary(&self) -> String {
        let Some(inner) = &self.inner else {
            return "telemetry: disabled\n".to_string();
        };
        let st = inner.state.lock();

        // (cat, proc, name) -> (count, total_ns)
        let mut spans: BTreeMap<(&'static str, &String, &String), (u64, u64)> = BTreeMap::new();
        for e in &st.events {
            if let Event::Span {
                proc,
                cat,
                name,
                dur_ns,
                ..
            } = e
            {
                let s = spans.entry((cat, proc, name)).or_insert((0, 0));
                s.0 += 1;
                s.1 += dur_ns;
            }
        }

        let mut out = String::new();
        out.push_str("== telemetry summary ==\n");
        if !spans.is_empty() {
            out.push_str("\nspans (layer / process / name):\n");
            out.push_str(&format!(
                "  {:<14} {:<24} {:<26} {:>8} {:>14}\n",
                "layer", "process", "span", "count", "total(us)"
            ));
            for ((cat, proc, name), (count, total)) in &spans {
                out.push_str(&format!(
                    "  {:<14} {:<24} {:<26} {:>8} {:>14}\n",
                    cat,
                    proc,
                    name,
                    count,
                    micros(*total)
                ));
            }
        }
        if !st.counters.is_empty() {
            out.push_str("\ncounters:\n");
            out.push_str(&format!(
                "  {:<24} {:<30} {:>14}\n",
                "process", "counter", "value"
            ));
            for ((proc, name), c) in &st.counters {
                out.push_str(&format!("  {:<24} {:<30} {:>14}\n", proc, name, c.total));
            }
        }
        if !st.gauges.is_empty() {
            out.push_str("\ngauges:\n");
            out.push_str(&format!(
                "  {:<24} {:<30} {:>10} {:>10}\n",
                "process", "gauge", "current", "hwm"
            ));
            for ((proc, name), g) in &st.gauges {
                out.push_str(&format!(
                    "  {:<24} {:<30} {:>10} {:>10}\n",
                    proc, name, g.current, g.hwm
                ));
            }
        }
        if !st.hists.is_empty() {
            out.push_str("\nhistograms (us):\n");
            out.push_str(&format!(
                "  {:<24} {:<22} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
                "process", "histogram", "count", "p50", "p90", "p99", "max"
            ));
            for ((proc, name), h) in &st.hists {
                out.push_str(&format!(
                    "  {:<24} {:<22} {:>7} {:>10} {:>10} {:>10} {:>10}\n",
                    proc,
                    name,
                    h.count(),
                    micros(h.quantile(0.5).unwrap_or(0)),
                    micros(h.quantile(0.9).unwrap_or(0)),
                    micros(h.quantile(0.99).unwrap_or(0)),
                    micros(h.max()),
                ));
            }
        }
        out
    }
}

/// An open span; records itself into the sink when dropped.
#[must_use = "a span records when dropped; binding it to _ closes it immediately"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    inner: Arc<Inner>,
    clock: Arc<dyn Clock>,
    proc: String,
    cat: &'static str,
    name: String,
    start_ns: u64,
    depth: u32,
    args: Vec<(&'static str, String)>,
}

impl Span {
    /// Attaches a key/value attribute to the span.
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(a) = &mut self.0 {
            a.args.push((key, value.to_string()));
        }
    }

    /// Builder-style [`Self::attr`].
    pub fn with_attr(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        self.attr(key, value);
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let end_ns = a.clock.now_ns();
        let mut st = a.inner.state.lock();
        if let Some(d) = st.depths.get_mut(&a.proc) {
            *d = d.saturating_sub(1);
        }
        st.events.push(Event::Span {
            proc: a.proc,
            cat: a.cat,
            name: a.name,
            start_ns: a.start_ns,
            dur_ns: end_ns.saturating_sub(a.start_ns),
            depth: a.depth,
            args: a.args,
        });
    }
}

/// Nanoseconds as a decimal-microsecond literal ("12.345"), integer
/// math only so output is platform- and run-independent.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_args(args: &[(&'static str, String)]) -> String {
    if args.is_empty() {
        return String::new();
    }
    let body: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("{}:{}", json_string(k), json_string(v)))
        .collect();
    format!(",\"args\":{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Clone, Default)]
    struct TestClock(Arc<AtomicU64>);

    impl TestClock {
        fn advance(&self, ns: u64) {
            self.0.fetch_add(ns, Ordering::SeqCst);
        }
    }

    impl Clock for TestClock {
        fn now_ns(&self) -> u64 {
            self.0.load(Ordering::SeqCst)
        }
    }

    #[test]
    fn disabled_is_inert() {
        let t = Telemetry::disabled();
        let mut sp = t.span("client", "core.client", "noop");
        sp.attr("k", 1);
        drop(sp);
        t.count("client", "x", 5);
        t.record("client", "h", 9);
        assert_eq!(t.counter("client", "x"), 0);
        assert!(t.finished_spans().is_empty());
        assert_eq!(t.chrome_trace(), "{\"traceEvents\":[]}\n");
    }

    #[test]
    fn histograms_json_is_sorted_and_integer_only() {
        let t = Telemetry::recording(ZeroClock);
        t.record("srv", "nfs3_read", 1_000);
        t.record("srv", "nfs3_read", 3_000);
        t.record("cli", "ops_stat", 500);
        let json = t.histograms_json();
        // Sorted by (process, name): cli row first.
        let cli = json.find("\"process\": \"cli\"").expect("cli row");
        let srv = json.find("\"process\": \"srv\"").expect("srv row");
        assert!(cli < srv);
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"mean_ns\": 2000"));
        assert!(!json.contains('.'), "all fields integral: {json}");
        // Deterministic: a second serialization is byte-identical.
        assert_eq!(json, t.histograms_json());
    }

    #[test]
    fn counters_only_counts_but_does_not_trace() {
        let t = Telemetry::counters();
        t.count("wire", "round_trips", 1);
        t.count("wire", "round_trips", 2);
        let _sp = t.span("wire", "sim.net", "rpc");
        t.record("wire", "lat", 10);
        assert_eq!(t.counter("wire", "round_trips"), 3);
        assert!(t.finished_spans().is_empty());
        assert!(!t.is_tracing());
        assert!(t.is_enabled());
    }

    #[test]
    fn span_nesting_and_ordering() {
        let clock = TestClock::default();
        let t = Telemetry::recording(clock.clone());
        let outer = t.span("client", "core.client", "outer");
        clock.advance(1_000);
        {
            let _inner = t.span("client", "core.client", "inner");
            clock.advance(2_000);
        }
        clock.advance(500);
        drop(outer);

        let spans = t.finished_spans();
        // Completion order: inner closes first.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 2);
        assert_eq!(spans[0].start_ns, 1_000);
        assert_eq!(spans[0].dur_ns, 2_000);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].start_ns, 0);
        assert_eq!(spans[1].dur_ns, 3_500);
        // The parent's interval contains the child's.
        assert!(spans[1].start_ns <= spans[0].start_ns);
        assert!(spans[0].start_ns + spans[0].dur_ns <= spans[1].start_ns + spans[1].dur_ns);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let t = Telemetry::recording(ZeroClock);
        drop(t.span("client", "c", "a"));
        drop(t.span("client", "c", "b"));
        let spans = t.finished_spans();
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].depth, 1);
    }

    #[test]
    fn scoped_handles_share_the_sink() {
        let t = Telemetry::recording(ZeroClock);
        let a = t.scoped("NFS");
        let b = t.scoped("SFS");
        a.count("wire", "rpcs", 1);
        b.count("wire", "rpcs", 2);
        assert_eq!(a.counter("wire", "rpcs"), 1);
        assert_eq!(b.counter("wire", "rpcs"), 2);
        let trace = t.chrome_trace();
        assert!(trace.contains("NFS/wire"));
        assert!(trace.contains("SFS/wire"));
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_deterministic() {
        let run = || {
            let clock = TestClock::default();
            let t = Telemetry::recording(clock.clone());
            let mut sp = t.span("server", "nfs3", "LOOKUP");
            sp.attr("status", "Ok");
            clock.advance(1_234);
            drop(sp);
            t.instant_kv("server", "proto.channel", "poisoned", "seq", 7);
            t.count("wire", "bytes", 4_096);
            t.record("server", "lat_ns", 1_234);
            t.chrome_trace()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"ts\":1.234") || a.contains("\"dur\":1.234"));
        // Balanced braces/brackets (cheap well-formedness check; none
        // of our strings contain braces).
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn summary_lists_all_three_kinds() {
        let t = Telemetry::recording(ZeroClock);
        drop(t.span("client", "core.client", "mount"));
        t.count("wire", "round_trips", 3);
        t.record("server", "nfs3.LOOKUP", 5_000);
        let s = t.summary();
        assert!(s.contains("mount"));
        assert!(s.contains("round_trips"));
        assert!(s.contains("nfs3.LOOKUP"));
    }

    #[test]
    fn gauges_track_level_and_high_water_mark() {
        let t = Telemetry::counters();
        assert_eq!(t.gauge("client", "pipeline.inflight"), 0);
        assert_eq!(t.gauge_hwm("client", "pipeline.inflight"), 0);
        t.gauge_set("client", "pipeline.inflight", 3);
        t.gauge_set("client", "pipeline.inflight", 8);
        t.gauge_set("client", "pipeline.inflight", 2);
        assert_eq!(t.gauge("client", "pipeline.inflight"), 2);
        assert_eq!(t.gauge_hwm("client", "pipeline.inflight"), 8);
        // Disabled handles stay inert.
        let d = Telemetry::disabled();
        d.gauge_set("client", "pipeline.inflight", 9);
        assert_eq!(d.gauge_hwm("client", "pipeline.inflight"), 0);
    }

    #[test]
    fn summary_includes_gauges() {
        let t = Telemetry::recording(ZeroClock);
        t.gauge_set("server", "pipeline.queue_depth", 5);
        t.gauge_set("server", "pipeline.queue_depth", 1);
        let s = t.summary();
        assert!(s.contains("gauges:"));
        assert!(s.contains("pipeline.queue_depth"));
        assert!(s.contains('5'));
    }

    #[test]
    fn histograms_snapshot_sorted_by_process_then_name() {
        let t = Telemetry::recording(ZeroClock);
        t.record("server", "GETATTR", 10);
        t.record("server", "GETATTR", 20);
        t.record("client", "rpc", 5);
        let hs = t.histograms();
        assert_eq!(hs.len(), 2);
        assert_eq!((hs[0].0.as_str(), hs[0].1), ("client", "rpc"));
        assert_eq!((hs[1].0.as_str(), hs[1].1), ("server", "GETATTR"));
        assert_eq!(hs[1].2.count(), 2);
        assert!(Telemetry::disabled().histograms().is_empty());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn micros_formatting() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(1_234_567), "1234.567");
    }
}
