//! The replicated write path under fire: the same 21-plan coherence
//! battery as `tests/coherence.rs`, but the relay now fronts a
//! [`ReplGroup`] — three members, each with its *own* file system and
//! its own CRC-framed op log, quorum 2 — and every plan crashes the
//! primary mid-stream (plans without a `crash=` instant get one).
//!
//! What must hold: the oracle's verdict is unchanged (committed-only
//! sizes, lease-bounded staleness, hash-exact wire reads), every
//! crashing plan produces a promotion, and a rerun of any plan is
//! byte-for-byte identical — log shipping, quorum waits and promotion
//! replay are all part of the deterministic simulation.
//!
//! The directed tests pin down the protocol's edges one at a time:
//! no acked write is lost across a mid-burst primary crash,
//! checkpoints truncate every log to the same mark, a lagging backup
//! either catches up from the primary's log or is quarantined when
//! truncation has outrun it, degraded-quorum commits are counted,
//! admission control meters a reconnect stampede into `Busy` retries,
//! and a rolling read-only republish is version-monotone mid-stream.

use std::sync::Arc;
use std::sync::OnceLock;

use sfs::authserver::{AuthServer, UserRecord};
use sfs::client::{Mount, SfsClient, SfsNetwork, DEFAULT_PIPELINE_WINDOW};
use sfs::journal::ClientJournal;
use sfs::server::{ServerConfig, SfsServer};
use sfs_bignum::{RandomSource, XorShiftSource};
use sfs_crypto::rabin::{generate_keypair, RabinPrivateKey};
use sfs_crypto::sha1::sha1;
use sfs_crypto::srp::SrpGroup;
use sfs_crypto::SfsPrg;
use sfs_nfs3::proto::{FileHandle, Nfs3Reply, Nfs3Request, StableHow};
use sfs_proto::pathname::SelfCertifyingPath;
use sfs_proto::repl::{ReplOp, ReplRecord};
use sfs_relay::{AdmissionControl, ReplGroup};
use sfs_sim::{
    DiskParams, FaultEvent, FaultPlan, JournalDisk, NetParams, SimClock, SimDisk, Transport,
};
use sfs_vfs::{Credentials, Vfs};

fn server_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xA5A5);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn user_key() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xB6B6);
        generate_keypair(512, &mut rng)
    })
    .clone()
}

fn client_ephemeral() -> RabinPrivateKey {
    static KEY: OnceLock<RabinPrivateKey> = OnceLock::new();
    KEY.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xE9E9);
        generate_keypair(768, &mut rng)
    })
    .clone()
}

fn srp_group() -> SrpGroup {
    static G: OnceLock<SrpGroup> = OnceLock::new();
    G.get_or_init(|| {
        let mut rng = XorShiftSource::new(0xC7C7);
        SrpGroup::generate(128, &mut rng)
    })
    .clone()
}

const ALICE_UID: u32 = 1000;
const LEASE_NS: u64 = 250_000_000;
const OP_GAP_NS: u64 = 60_000_000;
const FILES: usize = 3;
const OPS: usize = 36;
/// Members of the replicated write group in every harness.
const N_MEMBERS: usize = 3;
/// Durable copies (primary's included) a commit requires.
const QUORUM: usize = 2;

fn version_byte(f: usize, offset: u64) -> u8 {
    b'a' + ((f as u64 + offset) % 26) as u8
}

struct Commit {
    size: u64,
    hash: [u8; 20],
    t_ns: u64,
}

struct Harness {
    clock: SimClock,
    net: Arc<SfsNetwork>,
    plan: FaultPlan,
    path: SelfCertifyingPath,
    group: Arc<ReplGroup>,
    journals: Vec<ClientJournal>,
    clients: Vec<Arc<SfsClient>>,
    mounts: Vec<Arc<Mount>>,
    fhs: Vec<FileHandle>,
    history: Vec<Vec<Commit>>,
    contents: Vec<Vec<u8>>,
    last_seen: Vec<Vec<u64>>,
    crashes_done: usize,
    violations: Vec<String>,
}

/// Every member gets its own file system, built identically: the same
/// base tree from the same virtual instant, so identical op sequences
/// allocate identical inodes and the shared `fh_cipher` (derived from
/// the shared private key) yields handles valid on every member.
fn member_vfs(clock: &SimClock) -> Vfs {
    let vfs = Vfs::new(7, clock.clone());
    let root_creds = Credentials::root();
    let public = vfs.mkdir_p("/public").unwrap();
    vfs.setattr(
        &root_creds,
        public,
        sfs_vfs::SetAttr {
            mode: Some(0o777),
            ..Default::default()
        },
    )
    .unwrap();
    vfs
}

/// Unlike the shared-VFS `ReplicaGroup` harness, the fault plan's
/// `crash=` instants are attached only to member 0 — the initial
/// primary — so a server crash is a *primary* crash and the group must
/// fail over, not merely reconnect.
fn build_harness(spec: &str) -> Harness {
    let plan = FaultPlan::from_spec(spec).unwrap();
    let clock = SimClock::new();
    let auth = Arc::new(AuthServer::new(srp_group(), 2));
    auth.register_user(UserRecord {
        user: "alice".into(),
        uid: ALICE_UID,
        gids: vec![100],
        public_key: user_key().public().to_bytes(),
    });

    let mut servers = Vec::new();
    for r in 0..N_MEMBERS {
        let mut config = ServerConfig::new("sfs.lcs.mit.edu");
        config.lease_ns = LEASE_NS;
        let server = SfsServer::new(
            config,
            server_key(),
            member_vfs(&clock),
            auth.clone(),
            SfsPrg::from_entropy(format!("failover-server-{r}").as_bytes()),
        );
        servers.push(server);
    }
    servers[0].set_fault_plan(plan.clone());

    let group = ReplGroup::new(servers[0].path().clone(), clock.clone(), QUORUM);
    for (r, server) in servers.iter().enumerate() {
        let disk = SimDisk::new(clock.clone(), DiskParams::ibm_18es());
        let log = JournalDisk::new(disk, (0x100 + r as u64) << 32);
        group.add_member(server.clone(), log);
    }
    let path = group.path().clone();

    let net = SfsNetwork::new(clock.clone(), NetParams::switched_100mbit(Transport::Tcp));
    net.set_fault_plan(plan.clone());
    net.register_relay(&path.location, group.clone());

    Harness {
        clock,
        net,
        plan,
        path,
        group,
        journals: Vec::new(),
        clients: Vec::new(),
        mounts: Vec::new(),
        fhs: Vec::new(),
        history: Vec::new(),
        contents: vec![Vec::new(); FILES],
        last_seen: Vec::new(),
        crashes_done: 0,
        violations: Vec::new(),
    }
}

fn populate(mut h: Harness, n_clients: usize) -> Harness {
    for i in 0..n_clients {
        let disk = SimDisk::new(h.clock.clone(), DiskParams::ibm_18es());
        disk.set_fault_plan(h.plan.clone());
        let journal = ClientJournal::new(JournalDisk::new(disk, (i as u64) << 32));
        let client = SfsClient::with_ephemeral(
            h.net.clone(),
            format!("failover-client-{i}-epoch-0").as_bytes(),
            client_ephemeral(),
        );
        client.set_pipeline_window(DEFAULT_PIPELINE_WINDOW);
        client.attach_journal(journal.clone());
        client.install_agent_key(ALICE_UID, user_key());
        let mount = client.mount(ALICE_UID, &h.path).unwrap();
        h.journals.push(journal);
        h.clients.push(client);
        h.mounts.push(mount);
    }
    for f in 0..FILES {
        let p = format!("{}/public/coh-{f}", h.path.full_path());
        h.clients[0].write_file(ALICE_UID, &p, b"").unwrap();
        let (_, fh, _) = h.clients[0].resolve(ALICE_UID, &p).unwrap();
        h.fhs.push(fh);
        h.history.push(vec![Commit {
            size: 0,
            hash: sha1(b""),
            t_ns: h.clock.now().as_nanos(),
        }]);
    }
    h.last_seen = vec![vec![0; FILES]; n_clients];
    h
}

fn failover_harness(spec: &str, n_clients: usize) -> Harness {
    populate(build_harness(spec), n_clients)
}

impl Harness {
    fn honour_client_crashes(&mut self) {
        while self.crashes_done < self.plan.client_epoch(self.clock.now()) as usize {
            let victim = self.crashes_done % self.clients.len();
            self.plan.note_client_crash(self.clock.now());
            self.crashes_done += 1;
            let reborn = SfsClient::with_ephemeral(
                self.net.clone(),
                format!("failover-client-{victim}-epoch-{}", self.crashes_done).as_bytes(),
                client_ephemeral(),
            );
            reborn.set_pipeline_window(DEFAULT_PIPELINE_WINDOW);
            reborn.attach_journal(self.journals[victim].clone());
            let report = reborn.recover(ALICE_UID).unwrap();
            assert_eq!(
                report.remounted,
                vec![self.path.dir_name()],
                "recovery must re-establish the journaled mount through the relay: {report:?}"
            );
            self.mounts[victim] = reborn.mount(ALICE_UID, &self.path).unwrap();
            self.clients[victim] = reborn;
        }
    }

    fn write(&mut self, i: usize, f: usize) {
        let offset = self.history[f].last().unwrap().size;
        let byte = version_byte(f, offset);
        let reply = self.clients[i]
            .call_nfs(
                &self.mounts[i],
                ALICE_UID,
                &Nfs3Request::Write {
                    fh: self.fhs[f].clone(),
                    offset,
                    stable: StableHow::FileSync,
                    data: vec![byte],
                },
            )
            .unwrap();
        assert!(
            matches!(reply, Nfs3Reply::Write { count: 1, .. }),
            "append must write exactly one byte: {reply:?}"
        );
        self.contents[f].push(byte);
        self.history[f].push(Commit {
            size: offset + 1,
            hash: sha1(&self.contents[f]),
            t_ns: self.clock.now().as_nanos(),
        });
    }

    fn read_and_check(&mut self, i: usize, f: usize) {
        let t_read = self.clock.now().as_nanos();
        let attr = self.clients[i]
            .getattr(&self.mounts[i], ALICE_UID, &self.fhs[f])
            .unwrap();
        let s = attr.size;
        let latest = self.history[f].last().unwrap().size;
        if self.history[f].iter().all(|c| c.size != s) {
            self.violations.push(format!(
                "client {i} file {f}: observed size {s} never committed (latest {latest})"
            ));
            return;
        }
        if s < self.last_seen[i][f] {
            self.violations.push(format!(
                "client {i} file {f}: size went backwards {} -> {s}",
                self.last_seen[i][f]
            ));
        }
        self.last_seen[i][f] = s;
        if s == latest {
            return;
        }
        let next = &self.history[f][(s + 1) as usize];
        if t_read > next.t_ns + LEASE_NS {
            self.violations.push(format!(
                "client {i} file {f}: stale size {s} served {}ns past lease expiry",
                t_read - (next.t_ns + LEASE_NS)
            ));
        }
    }

    fn wire_read_and_check(&mut self, i: usize, f: usize) {
        let t_read = self.clock.now().as_nanos();
        let reply = self.clients[i]
            .call_nfs(
                &self.mounts[i],
                ALICE_UID,
                &Nfs3Request::Read {
                    fh: self.fhs[f].clone(),
                    offset: 0,
                    count: 8192,
                },
            )
            .unwrap();
        let data = match reply {
            Nfs3Reply::Read { data, .. } => data,
            other => panic!("unexpected read reply: {other:?}"),
        };
        let s = data.len() as u64;
        let latest = self.history[f].last().unwrap().size;
        match self.history[f].iter().find(|c| c.size == s) {
            None => {
                self.violations.push(format!(
                    "client {i} file {f}: wire read returned {s} bytes, a length \
                     never committed (latest {latest})"
                ));
                return;
            }
            Some(c) if c.hash != sha1(&data) => {
                self.violations.push(format!(
                    "client {i} file {f}: wire read of {s} bytes does not hash-match \
                     committed version {s} — torn or mixed-version content"
                ));
                return;
            }
            Some(_) => {}
        }
        if s < self.last_seen[i][f] {
            self.violations.push(format!(
                "client {i} file {f}: wire read went backwards {} -> {s}",
                self.last_seen[i][f]
            ));
        }
        self.last_seen[i][f] = s;
        if s < latest {
            let next = &self.history[f][(s + 1) as usize];
            if t_read > next.t_ns + LEASE_NS {
                self.violations.push(format!(
                    "client {i} file {f}: stale wire read of size {s} served \
                     {}ns past lease expiry",
                    t_read - (next.t_ns + LEASE_NS)
                ));
            }
        }
    }

    fn run(mut self, seed: u64) -> RunOutcome {
        let mut rng = XorShiftSource::new(seed | 1);
        let mut draw = move || {
            let mut b = [0u8; 8];
            rng.fill(&mut b);
            u64::from_le_bytes(b)
        };
        for _ in 0..OPS {
            self.clock.advance_ns(OP_GAP_NS);
            self.honour_client_crashes();
            let i = (draw() as usize) % self.clients.len();
            let f = (draw() as usize) % FILES;
            if draw() % 10 < 3 {
                self.write(i, f);
            } else {
                self.read_and_check(i, f);
                self.wire_read_and_check(i, f);
            }
        }
        let health = self.group.health_check();
        RunOutcome {
            violations: self.violations,
            total_ns: self.clock.now().as_nanos(),
            events: self.plan.events(),
            sizes: self
                .history
                .iter()
                .map(|h| h.last().unwrap().size)
                .collect(),
            journal_records: self.journals.iter().map(|j| j.len()).collect(),
            crashes: self.crashes_done,
            reconnects: self.mounts.iter().map(|m| m.reconnects()).sum(),
            promotions: health.promotions,
            primary: health.primary,
            commit_lsn: health.commit_lsn,
            quarantined: health.needs_full_sync,
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct RunOutcome {
    violations: Vec<String>,
    total_ns: u64,
    events: Vec<FaultEvent>,
    sizes: Vec<u64>,
    journal_records: Vec<usize>,
    crashes: usize,
    reconnects: u64,
    promotions: u64,
    primary: usize,
    commit_lsn: u64,
    quarantined: usize,
}

/// The battery from `tests/coherence.rs`; plans without a server-crash
/// instant get one appended, so every plan kills the primary mid-run.
/// (`,crash=` cannot confuse a `ccrash=` — the comma anchors it.)
fn crashing_spec(spec: &str) -> String {
    if spec.contains(",crash=") {
        spec.to_string()
    } else {
        format!("{spec},crash=1100ms")
    }
}

const COHERENCE_SPECS: &[(&str, usize)] = &[
    ("seed=401,drop=20", 2),
    ("seed=402,dup=25", 3),
    ("seed=403,reorder=25", 2),
    ("seed=404,corrupt=15", 2),
    ("seed=405,delay=150,delay_ns=2ms", 3),
    ("seed=406,partition=500ms+1s", 2),
    ("seed=407,crash=900ms", 3),
    ("seed=408,syncfail=200", 2),
    ("seed=409,ccrash=800ms", 2),
    ("seed=410,ccrash=700ms,crash=700ms", 2),
    ("seed=411,drop=15,dup=10,ccrash=900ms", 3),
    ("seed=412,corrupt=10,ccrash=600ms,crash=1500ms", 2),
    ("seed=413,drop=10,reorder=15,delay=80,delay_ns=1ms", 4),
    ("seed=414,crash=1s,ccrash=1s", 3),
    ("seed=415,drop=10,syncfail=150,ccrash=1200ms", 2),
    ("seed=416,dup=15,corrupt=10,crash=800ms", 2),
    ("seed=417,partition=600ms+800ms,ccrash=1600ms", 2),
    (
        "seed=418,drop=25,dup=10,reorder=10,corrupt=10,delay=60,delay_ns=1ms",
        3,
    ),
    ("seed=419,ccrash=600ms,ccrash=1500ms,drop=10", 2),
    ("seed=420,crash=700ms,ccrash=1300ms,dup=10", 3),
    (
        "seed=421,drop=15,corrupt=10,crash=1s,ccrash=1s,syncfail=100",
        2,
    ),
];

#[test]
fn coherence_oracle_passes_with_replicated_write_path() {
    let mut crashes = 0;
    for (spec, n) in COHERENCE_SPECS {
        let spec = crashing_spec(spec);
        let out = failover_harness(&spec, *n).run(0x5EED);
        assert!(
            out.violations.is_empty(),
            "coherence violated on the replicated write path under {spec:?}: {:#?}",
            out.violations
        );
        assert!(
            out.promotions >= 1,
            "a primary crash under {spec:?} must promote a backup"
        );
        assert_ne!(
            out.primary, 0,
            "the crashed initial primary cannot still be serving under {spec:?}"
        );
        assert!(
            out.quarantined >= 1,
            "the deposed primary must be quarantined pending resync under {spec:?}"
        );
        crashes += out.crashes;
    }
    assert!(crashes >= 8, "the battery must exercise client restarts");
}

#[test]
fn failover_runs_reproduce_byte_for_byte() {
    // Log shipping, quorum waits, promotion replay and admission-free
    // routing are all part of the deterministic simulation: rerunning a
    // plan yields the identical outcome, promotion count included.
    for (spec, n) in [
        ("seed=409,ccrash=800ms", 2usize),
        ("seed=410,ccrash=700ms,crash=700ms", 2),
        (
            "seed=418,drop=25,dup=10,reorder=10,corrupt=10,delay=60,delay_ns=1ms",
            3,
        ),
    ] {
        let spec = crashing_spec(spec);
        let a = failover_harness(&spec, n).run(0x5EED);
        let b = failover_harness(&spec, n).run(0x5EED);
        assert_eq!(a, b, "failover run diverged across reruns of {spec:?}");
    }
}

#[test]
fn promotion_loses_no_acked_write() {
    // The acknowledged-commit barrier, witnessed end to end: the primary
    // dies between two acked writes of a burst, the most-caught-up
    // backup is promoted, and the promoted member serves exactly the
    // committed history — every acked byte, in order.
    let mut h = failover_harness("seed=940", 1);
    for k in 0..6 {
        h.clock.advance_ns(OP_GAP_NS);
        h.write(0, k % FILES);
    }
    assert_eq!(h.group.primary_index(), 0);
    let commit_before = h.group.commit_lsn();
    assert!(commit_before > 0);

    h.group.member_server(0).crash_restart();

    for k in 0..6 {
        h.clock.advance_ns(OP_GAP_NS);
        h.write(0, k % FILES);
        h.wire_read_and_check(0, k % FILES);
    }
    assert!(h.violations.is_empty(), "{:#?}", h.violations);
    assert_eq!(
        h.group.promotions(),
        1,
        "the first post-crash dial must promote exactly once"
    );
    assert_eq!(
        h.group.primary_index(),
        1,
        "ties in durable LSN break to the lowest-index backup"
    );
    assert!(h.group.commit_lsn() > commit_before);
    assert!(
        h.mounts[0].reconnects() >= 1,
        "the crash must surface as a transparent reconnect"
    );
    // The deposed primary may hold unacked state; it is quarantined.
    assert!(h.group.member_stats(0).needs_full_sync);
    let health = h.group.health_check();
    assert_eq!(health.needs_full_sync, 1);
    assert_eq!(health.primary, 1);

    // Byte-for-byte: the promoted backup serves the full acked history.
    for f in 0..FILES {
        let p = format!("{}/public/coh-{f}", h.path.full_path());
        assert_eq!(
            h.clients[0].read_file(ALICE_UID, &p).unwrap(),
            h.contents[f],
            "file {f} lost acked bytes across the failover"
        );
    }
}

#[test]
fn checkpoints_truncate_every_log_to_the_same_mark() {
    let mut h = failover_harness("seed=941", 1);
    h.group.set_checkpoint_every(4);
    for k in 0..12 {
        h.clock.advance_ns(OP_GAP_NS);
        h.write(0, k % FILES);
    }
    let commit = h.group.commit_lsn();
    let mut marks = Vec::new();
    for r in 0..N_MEMBERS {
        let recs = h.group.member_log(r).records();
        let Ok(ReplRecord::Checkpoint { lsn }) = ReplRecord::from_xdr(&recs[0]) else {
            panic!("member {r}'s truncated log must begin with a checkpoint mark");
        };
        assert!(
            commit - lsn < 4,
            "member {r}'s checkpoint mark {lsn} lags commit {commit} beyond the window"
        );
        for bytes in &recs[1..] {
            assert!(
                matches!(
                    ReplRecord::from_xdr(bytes),
                    Ok(ReplRecord::Op(ReplOp { lsn: l, .. })) if l > lsn
                ),
                "member {r} kept a frame at or below its checkpoint mark"
            );
        }
        let st = h.group.member_stats(r);
        assert!(
            st.applied_lsn >= lsn,
            "member {r} was truncated past what it has applied"
        );
        assert_eq!(st.durable_lsn, commit);
        marks.push(lsn);
    }
    assert!(
        marks.windows(2).all(|w| w[0] == w[1]),
        "truncation must be coordinated: all members share one mark, got {marks:?}"
    );

    // A checkpointed backup still promotes cleanly: only the short
    // suffix beyond the mark needs replaying.
    h.group.member_server(0).crash_restart();
    h.clock.advance_ns(OP_GAP_NS);
    h.write(0, 0);
    assert_eq!(h.group.promotions(), 1);
    for f in 0..FILES {
        let p = format!("{}/public/coh-{f}", h.path.full_path());
        assert_eq!(
            h.clients[0].read_file(ALICE_UID, &p).unwrap(),
            h.contents[f],
            "file {f} diverged on the checkpoint-applied backup"
        );
    }
    assert!(h.violations.is_empty(), "{:#?}", h.violations);
}

#[test]
fn lagging_backup_catches_up_or_quarantines_past_truncation() {
    let mut h = failover_harness("seed=942", 1);
    h.group.set_checkpoint_every(1000); // freeze truncation for now

    // A short outage: the missed frames still sit in the primary's log,
    // so rejoining replays them and the backup is whole again.
    h.group.mark_down(2);
    for k in 0..3 {
        h.clock.advance_ns(OP_GAP_NS);
        h.write(0, k % FILES);
    }
    assert!(h.group.mark_up(2), "an in-window rejoin must catch up");
    assert_eq!(h.group.member_stats(2).durable_lsn, h.group.commit_lsn());
    assert!(!h.group.member_stats(2).needs_full_sync);

    // A long outage: truncation outruns the backup's durable horizon
    // while it is away, so log shipping can no longer repair it.
    h.group.mark_down(2);
    h.group.set_checkpoint_every(2);
    for k in 0..4 {
        h.clock.advance_ns(OP_GAP_NS);
        h.write(0, k % FILES);
    }
    assert!(
        !h.group.mark_up(2),
        "rejoining past coordinated truncation must fail"
    );
    assert!(h.group.member_stats(2).needs_full_sync);
    assert!(h.group.full_syncs_needed() >= 1);
    let health = h.group.health_check();
    assert_eq!(health.needs_full_sync, 1);
    assert_eq!(health.eligible_backups, 1);

    // A quarantined member is never promoted, no matter its LSN.
    h.group.member_server(0).crash_restart();
    h.clock.advance_ns(OP_GAP_NS);
    h.write(0, 0);
    assert_eq!(h.group.promotions(), 1);
    assert_eq!(
        h.group.primary_index(),
        1,
        "promotion must pass over the quarantined member"
    );
    for f in 0..FILES {
        let p = format!("{}/public/coh-{f}", h.path.full_path());
        assert_eq!(
            h.clients[0].read_file(ALICE_UID, &p).unwrap(),
            h.contents[f]
        );
    }
    assert!(h.violations.is_empty(), "{:#?}", h.violations);
}

#[test]
fn degraded_quorum_commits_are_counted() {
    let mut h = failover_harness("seed=945", 1);
    h.group.set_checkpoint_every(1000);
    assert_eq!(h.group.quorum_degraded(), 0);

    // Both backups away: the group prefers availability, commits on the
    // primary's copy alone, and says so.
    h.group.mark_down(1);
    h.group.mark_down(2);
    h.clock.advance_ns(OP_GAP_NS);
    h.write(0, 0);
    assert!(h.group.quorum_degraded() >= 1);
    let degraded = h.group.quorum_degraded();

    // One backup back within the window: quorum is met again.
    assert!(h.group.mark_up(1));
    assert_eq!(h.group.member_stats(1).durable_lsn, h.group.commit_lsn());
    h.clock.advance_ns(OP_GAP_NS);
    h.write(0, 1);
    assert_eq!(h.group.quorum_degraded(), degraded);
    assert!(h.violations.is_empty(), "{:#?}", h.violations);
}

#[test]
fn admission_control_meters_a_mount_stampede() {
    // A cold-start bucket of one: the first fresh mount spends the
    // burst token, the second is told `Busy`, backs off on the client's
    // normal schedule, and is admitted once virtual time has minted a
    // token — no dial is ever turned into a hard failure.
    let h = failover_harness("seed=943", 1);
    let ac = Arc::new(AdmissionControl::new(1, 10));
    h.group.set_admission(ac.clone());

    let mut late = Vec::new();
    for i in 0..2 {
        let c = SfsClient::with_ephemeral(
            h.net.clone(),
            format!("failover-stampede-{i}").as_bytes(),
            client_ephemeral(),
        );
        c.install_agent_key(ALICE_UID, user_key());
        let mount = c.mount(ALICE_UID, &h.path).unwrap();
        late.push((c, mount));
    }
    let (admitted, throttled) = ac.stats();
    assert!(admitted >= 2, "both stampeders must eventually mount");
    assert!(
        throttled >= 1,
        "the bucket must have throttled at least one dial"
    );

    // Throttling never corrupts the session that results: the late
    // mounts read the populated files correctly.
    h.group.clear_admission();
    for (c, _) in &late {
        let p = format!("{}/public/coh-0", h.path.full_path());
        assert_eq!(c.read_file(ALICE_UID, &p).unwrap(), h.contents[0]);
    }
}

#[test]
fn rolling_republish_stays_version_monotone() {
    // A read-only mount rides the primary while the publisher rolls a
    // new snapshot across the group: the mount may fail over mid-walk
    // when the old root's blocks vanish, but it only ever moves to a
    // *newer* signed root — version bumps are monotone, content is
    // always a consistent snapshot, never a rollback or a torn mix.
    let mut h = failover_harness("seed=944", 1);
    for k in 0..4 {
        h.clock.advance_ns(OP_GAP_NS);
        h.write(0, k % 2); // files 0 and 1
    }
    for r in 0..N_MEMBERS {
        h.group.member_server(r).publish_read_only(1);
    }
    let snapshot1_file0 = h.contents[0].clone();

    let ro = h.clients[0].mount_read_only(&h.path).unwrap();
    assert_eq!(ro.version(), 1);
    assert_eq!(ro.read_file("/public/coh-0").unwrap(), snapshot1_file0);

    // The tree grows, and the publisher republishes the primary first.
    for k in 0..4 {
        h.clock.advance_ns(OP_GAP_NS);
        h.write(0, k % 2);
    }
    h.group
        .member_server(h.group.primary_index())
        .publish_read_only(2);

    // coh-1 was never walked under v1, so this read must fetch — and
    // the v1 blocks are gone from the primary. The mount fails over to
    // the v2 root and restarts the walk there.
    assert_eq!(ro.read_file("/public/coh-1").unwrap(), h.contents[1]);
    assert_eq!(ro.version(), 2, "the republish must surface as a bump");
    assert!(ro.failovers() >= 1, "the hole must be healed by failover");

    // Finish the roll; the mount stays at v2 and keeps reading the
    // consistent v2 snapshot.
    for r in 0..N_MEMBERS {
        h.group.member_server(r).publish_read_only(2);
    }
    assert_eq!(ro.read_file("/public/coh-0").unwrap(), h.contents[0]);
    assert_eq!(ro.version(), 2);
}
